"""Throughput smoke benchmark for the corpus execution engine.

Measures the fused compile → ir2vec-featurize hot path over an MBI smoke
corpus in three regimes and emits ``BENCH_engine.json``:

* **cold serial** — empty persistent store, ``workers=0``;
* **cold parallel** — empty store, worker-pool fan-out;
* **warm serial** — second run over the store the cold-serial run filled
  (the acceptance bar: zero recompiles, verified via cache stats).

In-process memos are cleared before each timed run so the numbers
isolate the engine tiers (worker pool, persistent store) rather than
the per-process dict caches.  The parallel ≥ 2× serial assertion only
applies where the hardware can deliver it (≥ 4 effective cores — CI
runners and laptops with fewer cores still record the ratio).
"""

import json
import os
import time

import pytest

from repro.datasets import load_mbi
from repro.engine import EngineConfig, ExecutionEngine
from repro.models.features import clear_caches
from repro.pipeline.stages import (
    CFrontend,
    CFrontendConfig,
    IR2VecFeaturizer,
    IR2VecFeaturizerConfig,
)

from benchmarks.conftest import emit

_CORPUS_SIZE = 48
_OUT = "BENCH_engine.json"


def _effective_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _timed_featurize(engine: ExecutionEngine, named) -> float:
    clear_caches()            # isolate engine tiers from in-process memos
    start = time.perf_counter()
    X = engine.featurize_sources(CFrontend(CFrontendConfig(opt_level="Os")),
                                 IR2VecFeaturizer(IR2VecFeaturizerConfig()),
                                 named)
    elapsed = time.perf_counter() - start
    assert X.shape == (len(named), 512)
    return elapsed


@pytest.mark.benchmark(group="engine")
def test_engine_throughput_cold_warm_serial_parallel(tmp_path):
    named = [(s.name, s.source) for s in load_mbi(subsample=_CORPUS_SIZE)]
    n = len(named)
    cores = _effective_cores()
    workers = max(2, min(4, cores))

    # The per-process IR2vec encoder is deliberately warmed outside the
    # timers: it is a once-per-process cost, not corpus throughput.
    IR2VecFeaturizer(IR2VecFeaturizerConfig()).warmup()

    serial_dir = tmp_path / "serial"
    parallel_dir = tmp_path / "parallel"
    t_cold_serial = _timed_featurize(
        ExecutionEngine(EngineConfig(workers=0, cache_dir=str(serial_dir))),
        named)
    # min_samples_per_worker=1 forces fan-out: the benchmark *measures*
    # the small-batch parallel cost the production default now avoids
    # (48 samples < workers * 32 would otherwise stay serial by design).
    t_cold_parallel = _timed_featurize(
        ExecutionEngine(EngineConfig(workers=workers, chunk_size=8,
                                     min_samples_per_worker=1,
                                     cache_dir=str(parallel_dir))),
        named)
    warm_engine = ExecutionEngine(EngineConfig(workers=0,
                                               cache_dir=str(serial_dir)))
    t_warm = _timed_featurize(warm_engine, named)

    # Acceptance bar: the warm re-run answers entirely from the store.
    warm_stats = warm_engine.stats["features"]
    assert warm_stats.misses == 0, "warm run recompiled/refeaturized samples"
    assert warm_stats.hits == n

    results = {
        "corpus": "MBI-smoke",
        "samples": n,
        "workers": workers,
        "effective_cores": cores,
        "cold_serial_sec": round(t_cold_serial, 4),
        "cold_parallel_sec": round(t_cold_parallel, 4),
        "warm_serial_sec": round(t_warm, 4),
        "cold_serial_samples_per_sec": round(n / t_cold_serial, 2),
        "cold_parallel_samples_per_sec": round(n / t_cold_parallel, 2),
        "warm_samples_per_sec": round(n / t_warm, 2),
        "parallel_speedup": round(t_cold_serial / t_cold_parallel, 3),
        "warm_speedup": round(t_cold_serial / t_warm, 3),
        "warm_feature_hits": warm_stats.hits,
        "warm_feature_misses": warm_stats.misses,
    }
    if results["parallel_speedup"] < 1.0:
        # A sub-1 "speedup" means forced fan-out lost to the serial path
        # on this corpus size — exactly the regime the engine's
        # min_samples_per_worker guard keeps on the serial path in
        # production.  Record it loudly instead of hiding it in a ratio.
        results["warning"] = (
            f"parallel slower than serial at {n} samples "
            f"({results['parallel_speedup']}x); production engines stay "
            f"serial below workers*min_samples_per_worker items")
    with open(_OUT, "w", encoding="utf-8") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
    emit("Engine throughput (samples/sec)", json.dumps(results, indent=2,
                                                       sort_keys=True))

    # Warm-over-cold is hardware-independent: disk reads beat recompiles.
    assert results["warm_speedup"] > 2.0
    # Fan-out only pays where cores exist to fan onto, and wall-clock
    # ratios flake on noisy shared runners — hard-assert them only when
    # explicitly requested (REPRO_BENCH_STRICT=1 on dedicated hardware).
    if os.environ.get("REPRO_BENCH_STRICT") == "1":
        if cores >= 4:
            assert results["parallel_speedup"] >= 2.0
        elif cores >= 2:
            assert results["parallel_speedup"] >= 1.2
