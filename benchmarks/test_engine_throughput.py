"""Throughput benchmark for the corpus execution engine.

Measures the fused compile → ir2vec-featurize cold path over an MBI
corpus and emits ``BENCH_engine.json``:

* **cold serial** — ``workers=0``, no persistent store (best of two
  reps: the box this runs on is noisy and a single rep regularly
  wobbles 30%);
* **cold parallel** — empty store, ``workers=4`` zero-copy fan-out over
  a corpus big enough to clear the ``min_samples_per_worker`` guard at
  its production default;
* **warm serial** — second run over the store the cold-serial run
  filled (zero recompiles, verified via cache stats).

Correctness is gated hard: the parallel feature matrix must be
*byte*-identical to the serial one.  Wall-clock ratios are recorded
always but asserted only where the hardware can deliver them (≥ 4
effective cores) — and even then as a warning unless
``REPRO_BENCH_STRICT=1`` opts dedicated hardware into hard gates.
"""

import json
import os
import time
import warnings

import pytest

from repro.datasets import load_mbi
from repro.engine import EngineConfig, ExecutionEngine
from repro.models.features import clear_caches
from repro.pipeline.stages import (
    CFrontend,
    CFrontendConfig,
    IR2VecFeaturizer,
    IR2VecFeaturizerConfig,
)

from benchmarks.conftest import emit

_CORPUS_SIZE = 192        # ≥ workers * min_samples_per_worker (4 * 32)
_WORKERS = 4
_OUT = "BENCH_engine.json"


def _effective_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _timed_featurize(engine: ExecutionEngine, named):
    clear_caches()            # isolate engine tiers from in-process memos
    start = time.perf_counter()
    X = engine.featurize_sources(CFrontend(CFrontendConfig(opt_level="Os")),
                                 IR2VecFeaturizer(IR2VecFeaturizerConfig()),
                                 named)
    elapsed = time.perf_counter() - start
    assert X.shape == (len(named), 512)
    return elapsed, X


@pytest.mark.benchmark(group="engine")
def test_engine_throughput_cold_warm_serial_parallel(tmp_path):
    named = [(s.name, s.source) for s in load_mbi(subsample=_CORPUS_SIZE)]
    n = len(named)
    cores = _effective_cores()

    # The per-process IR2vec encoder is deliberately warmed outside the
    # timers: it is a once-per-process cost, not corpus throughput.
    IR2VecFeaturizer(IR2VecFeaturizerConfig()).warmup()

    serial_dir = tmp_path / "serial"
    parallel_dir = tmp_path / "parallel"

    # Cold serial, best of two reps: one pure (no store writes), one
    # filling the store the warm run reads back.
    t_pure, X_serial = _timed_featurize(
        ExecutionEngine(EngineConfig(workers=0)), named)
    t_filling, _ = _timed_featurize(
        ExecutionEngine(EngineConfig(workers=0, cache_dir=str(serial_dir))),
        named)
    t_cold_serial = min(t_pure, t_filling)

    # Cold parallel: production defaults (adaptive chunks, shm transport,
    # the stock min_samples_per_worker guard — which the corpus clears).
    parallel_engine = ExecutionEngine(EngineConfig(
        workers=_WORKERS, cache_dir=str(parallel_dir)))
    with parallel_engine:
        t_cold_parallel, X_parallel = _timed_featurize(parallel_engine,
                                                       named)
        engine_perf = parallel_engine.stats_dict()["perf"]
        engine_counters = dict(parallel_engine.counters)

    # Hard gate, hardware-independent: fan-out must not change a byte.
    assert engine_counters["parallel_chunks"] > 0, \
        "corpus failed to clear the min_samples_per_worker guard"
    assert X_parallel.tobytes() == X_serial.tobytes(), \
        "parallel features differ from serial"

    warm_engine = ExecutionEngine(EngineConfig(workers=0,
                                               cache_dir=str(serial_dir)))
    t_warm, _ = _timed_featurize(warm_engine, named)

    # Acceptance bar: the warm re-run answers entirely from the store.
    warm_stats = warm_engine.stats["features"]
    assert warm_stats.misses == 0, "warm run recompiled/refeaturized samples"
    assert warm_stats.hits == n

    results = {
        "corpus": "MBI-smoke",
        "samples": n,
        "workers": _WORKERS,
        "effective_cores": cores,
        "cold_serial_sec": round(t_cold_serial, 4),
        "cold_parallel_sec": round(t_cold_parallel, 4),
        "warm_serial_sec": round(t_warm, 4),
        "cold_serial_samples_per_sec": round(n / t_cold_serial, 2),
        "cold_parallel_samples_per_sec": round(n / t_cold_parallel, 2),
        "warm_samples_per_sec": round(n / t_warm, 2),
        "parallel_speedup": round(t_cold_serial / t_cold_parallel, 3),
        "warm_speedup": round(t_cold_serial / t_warm, 3),
        "warm_feature_hits": warm_stats.hits,
        "warm_feature_misses": warm_stats.misses,
        "payload_bytes_per_task": engine_perf["payload_bytes_per_task"],
        "pool_utilization": engine_perf["pool_utilization"],
        "shm_tasks": engine_counters["shm_tasks"],
        "parallel_tasks": engine_counters["tasks"],
        "byte_identical": True,
    }
    if cores < _WORKERS:
        results["warning"] = (
            f"only {cores} effective core(s): parallel_speedup is a "
            f"contention measurement, not a fan-out one; speedup gates "
            f"not applied")
    with open(_OUT, "w", encoding="utf-8") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
    emit("Engine throughput (samples/sec)", json.dumps(results, indent=2,
                                                       sort_keys=True))

    # Warm-over-cold is hardware-independent: disk reads beat recompiles.
    assert results["warm_speedup"] > 2.0
    # Wall-clock ratios flake on noisy shared runners — below the strict
    # bar they warn; REPRO_BENCH_STRICT=1 (dedicated hardware) hard-fails.
    strict = os.environ.get("REPRO_BENCH_STRICT") == "1"
    if cores >= 4:
        if results["parallel_speedup"] < 2.5:
            msg = (f"parallel_speedup {results['parallel_speedup']}x "
                   f"below the 2.5x bar on {cores} cores")
            if strict:
                pytest.fail(msg)
            warnings.warn(msg, RuntimeWarning)
    elif strict and cores >= 2:
        assert results["parallel_speedup"] >= 1.2
