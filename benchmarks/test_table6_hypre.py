"""Table VI: Hypre-like real-case predictions."""

from benchmarks.conftest import emit
from repro.eval import experiments as E


def test_table6_hypre(benchmark, config, profile_name):
    rows = benchmark.pedantic(E.table6_hypre, args=(config,),
                              rounds=1, iterations=1)
    emit(f"Table VI (profile={profile_name})", E.render_table6(rows))
    assert len(rows) == 4
    # Each row classifies all six Hypre columns.
    for row in rows:
        hits = [row[f"{c}_hit"] for c in
                ("O0-ok", "O2-ok", "Os-ok", "O0-ko", "O2-ko", "Os-ko")]
        assert len(hits) == 6
