"""Figs. 8 and 9: single- and pair-label ablation studies."""

from benchmarks.conftest import emit
from repro.eval import experiments as E
from repro.eval.reporting import render_series, render_table


def test_fig8_single_ablation(benchmark, config, profile_name):
    result = benchmark.pedantic(E.fig8_single_ablation, args=(config,),
                                rounds=1, iterations=1)
    for suite, series in result.items():
        emit(f"Fig. 8 — single-label ablation ({suite}, profile={profile_name})",
             render_series(dict(sorted(series.items(), key=lambda kv: -kv[1]))))
    for suite, series in result.items():
        assert all(0.0 <= v <= 1.0 for v in series.values())


def test_fig9_pair_ablation(benchmark, config, profile_name):
    result = benchmark.pedantic(E.fig9_pair_ablation, args=(config,),
                                rounds=1, iterations=1)
    rows = [[f"{a} + {b}", acc_a, acc_b]
            for (a, b), (acc_a, acc_b) in result.items()]
    emit(f"Fig. 9 — pair ablation, MPI-CorrBench (profile={profile_name})",
         render_table(["excluded pair", "1st acc", "2nd acc"], rows))
    assert len(result) == len(E.FIG9_PAIRS)
