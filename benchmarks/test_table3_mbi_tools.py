"""Table III: detailed evaluation against MBI (tools + models)."""

from benchmarks.conftest import emit
from repro.eval import experiments as E
from repro.eval.reporting import render_table


def test_table3_mbi_tools(benchmark, config, profile_name):
    rows = benchmark.pedantic(E.table3_tool_comparison, args=(config,),
                              rounds=1, iterations=1)
    headers = ["Tool", "CE", "TO", "RE", "TP", "TN", "FP", "FN", "Coverage",
               "Conclusiveness", "Specificity", "Recall", "Precision", "F1",
               "OverallAcc"]
    data = [[r["tool"], r["CE"], r["TO"], r["RE"], r["TP"], r["TN"], r["FP"],
             r["FN"], r["Coverage"], r["Conclusiveness"], r["Specificity"],
             r["Recall"], r["Precision"], r["F1"], r["OverallAccuracy"]]
            for r in rows]
    emit(f"Table III (profile={profile_name})", render_table(headers, data))
    paper = render_table(
        ["Tool", "CE", "TO", "RE", "Recall", "Precision", "F1", "Specificity"],
        [[name, p["CE"], p["TO"], p["RE"], p["Recall"], p["Precision"],
          p["F1"], p["Specificity"]]
         for name, p in E.TABLE3_PAPER.items()])
    emit("Table III — paper-reported tool rows", paper)

    by_tool = {r["tool"]: r for r in rows}
    # Shape: ITAC times out on hangs, PARCOACH never does; PARCOACH has the
    # worst specificity; ML rows are fully conclusive.
    assert by_tool["ITAC"]["TO"] > 0
    assert by_tool["PARCOACH"]["TO"] == 0
    assert by_tool["PARCOACH"]["Specificity"] <= by_tool["ITAC"]["Specificity"]
    assert by_tool["IR2vec Intra"]["Conclusiveness"] == 1.0
