"""Design-choice ablations (DESIGN.md §2): choices the paper fixed.

* IR2vec concatenates symbolic + flow-aware encodings — what does each
  half contribute on its own?
* The GNN fixes adaptive max pooling, GATv2 attention, and heterogeneous
  edge types — what happens when each is flipped?
"""

from benchmarks.conftest import emit
from repro.eval import experiments as E


def test_ir2vec_encoding_ablation(benchmark, config, profile_name):
    rows = benchmark.pedantic(E.ir2vec_encoding_ablation, args=(config,),
                              rounds=1, iterations=1)
    emit(f"IR2vec encoding ablation (profile={profile_name})",
         E.render_encoding_ablation(rows))
    assert len(rows) == 6          # 2 suites x 3 encodings
    for row in rows:
        assert 0.0 <= row["accuracy"] <= 1.0
    # Structural check: the concat rows exist for both suites and use the
    # full 512 dimensions.
    concat = [r for r in rows if r["encoding"] == "concat (paper)"]
    assert {r["suite"] for r in concat} == {"MBI", "CORR"}
    assert all(r["dim"] == 512 for r in concat)


def test_gnn_design_ablation(benchmark, config, profile_name):
    rows = benchmark.pedantic(E.gnn_design_ablation, args=(config, "CORR"),
                              rounds=1, iterations=1)
    emit(f"GNN design ablation, CorrBench (profile={profile_name})",
         E.render_gnn_ablation(rows))
    assert [r["variant"] for r in rows] == [
        "paper (max, GATv2, hetero)", "mean pooling", "no attention",
        "homogeneous edges"]
    for row in rows:
        assert 0.0 <= row["accuracy"] <= 1.0
