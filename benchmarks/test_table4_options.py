"""Table IV: IR2vec Intra across compiler options and normalizations."""

from benchmarks.conftest import emit
from repro.eval import experiments as E
from repro.eval.reporting import render_table


def test_table4_options(benchmark, config, profile_name):
    rows = benchmark.pedantic(E.table4_options, args=(config,),
                              rounds=1, iterations=1)
    headers = ["Dataset", "Norm", "Opt", "TP", "TN", "FP", "FN",
               "Recall", "Precision", "F1", "Accuracy"]
    data = [[r["dataset"], r["normalization"], r["opt"], r["TP"], r["TN"],
             r["FP"], r["FN"], r["Recall"], r["Precision"], r["F1"],
             r["Accuracy"]] for r in rows]
    emit(f"Table IV (profile={profile_name})", render_table(headers, data))
    # Paper: compiler option / normalization impact is bounded (~5% / ~3%);
    # verify the sweep produced the full grid and sane accuracies.
    assert len(rows) == 18
    accs = [r["Accuracy"] for r in rows]
    assert all(0.3 <= a <= 1.0 for a in accs)
