"""Telemetry overhead: served throughput with tracing on vs off.

The observability layer promises to be cheap enough to leave on in
production — spans and histogram observations ride the existing request
path, and every instrumentation site degrades to one attribute check
when telemetry is disabled.  This benchmark prices that promise: two
identical :class:`BackgroundServer` instances over the same warmed
artifact, one with ``trace=True`` (the default) and one with
``trace=False``, each load-tested with the same concurrent closed-loop
protocol, interleaved A/B/B/A so drift on a shared runner hits both
arms equally.

Records ``obs_overhead_pct`` into ``BENCH_serving.json`` (merged — the
serving-throughput benchmark shares the file).  The ≤5% budget is a
hard assert only under ``REPRO_BENCH_STRICT=1`` (dedicated hardware);
on shared CI runners a miss prints a GitHub ``::warning::`` and passes,
the same policy as ``ci/check_perf.py``.
"""

import json
import os

import pytest

from repro.datasets import load_mbi
from repro.ml import GAConfig
from repro.pipeline import DecisionTreeStageConfig, DetectionPipeline
from repro.serve import BackgroundServer, ServeConfig, run_load

from benchmarks.conftest import emit

_CORPUS_SIZE = 32
_CONCURRENCY = 6
_ROUNDS = 2                  # per arm, interleaved traced/untraced
_BUDGET_PCT = 5.0
_OUT = "BENCH_serving.json"


def _measure(server, jobs):
    stats = run_load("127.0.0.1", server.port, jobs,
                     concurrency=_CONCURRENCY)
    assert stats["failed"] == 0, stats
    return stats["throughput_rps"]


@pytest.mark.benchmark(group="serving")
def test_tracing_overhead_within_budget(tmp_path):
    corpus = load_mbi(subsample=_CORPUS_SIZE)
    jobs = [(s.name, s.source) for s in corpus.samples]

    pipeline = DetectionPipeline.from_names(
        "ir2vec", "decision-tree",
        classifier_config=DecisionTreeStageConfig(
            ga=GAConfig(population_size=20, generations=2)),
        method="ir2vec").fit(corpus)
    artifact = str(tmp_path / "obs-model.rpd")
    pipeline.save(artifact)
    pipeline.close()

    base = dict(port=0, max_batch=8, max_wait_ms=10, max_queue=512)
    traced_rps, untraced_rps = [], []
    # A/B/B/A: each round stands both servers up fresh and warms each
    # before its timed pass, so neither arm owns the cold compiles and
    # runner drift is split across the arms.
    for round_index in range(_ROUNDS):
        order = [(True, traced_rps), (False, untraced_rps)]
        if round_index % 2:
            order.reverse()
        for trace, sink in order:
            config = ServeConfig(trace=trace, **base)
            with BackgroundServer(artifact, config) as server:
                _measure(server, jobs)          # warm
                sink.append(_measure(server, jobs))

    traced = max(traced_rps)
    untraced = max(untraced_rps)
    overhead_pct = round((untraced - traced) / untraced * 100.0, 2) \
        if untraced else 0.0

    # Merge (not overwrite): test_serving_throughput.py shares the file,
    # and alphabetical collection order runs this benchmark first.
    doc = {}
    if os.path.exists(_OUT):
        try:
            with open(_OUT, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, ValueError):
            doc = {}
    doc["obs_overhead_pct"] = overhead_pct
    doc["obs_overhead"] = {
        "traced_rps": traced, "untraced_rps": untraced,
        "traced_runs": traced_rps, "untraced_runs": untraced_rps,
        "budget_pct": _BUDGET_PCT, "rounds": _ROUNDS,
        "requests_per_run": len(jobs), "concurrency": _CONCURRENCY,
    }
    with open(_OUT, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
    emit("Telemetry overhead (tracing on vs off)",
         json.dumps(doc["obs_overhead"], indent=2, sort_keys=True))

    assert traced > 0 and untraced > 0
    if overhead_pct > _BUDGET_PCT:
        message = (f"tracing overhead {overhead_pct:.2f}% exceeds the "
                   f"{_BUDGET_PCT}% budget "
                   f"(traced={traced} rps, untraced={untraced} rps)")
        if os.environ.get("REPRO_BENCH_STRICT") == "1":
            pytest.fail(message)
        print(f"::warning::{message} (soft on shared runners; "
              "REPRO_BENCH_STRICT=1 makes this a failure)")
