"""Fig. 6: IR2vec per-label (multi-class) accuracy on MBI."""

from benchmarks.conftest import emit
from repro.eval import experiments as E
from repro.eval.reporting import render_series

#: Labels below this validation-sample count carry no statistical signal
#: at subsampled profiles; shape assertions skip them.
MIN_SUPPORT = 5


def test_fig6_per_label(benchmark, config, profile_name):
    acc, support = benchmark.pedantic(E.fig6_per_label_with_support,
                                      args=(config,), rounds=1, iterations=1)
    ordered = dict(sorted(acc.items(), key=lambda kv: kv[1]))
    emit(f"Fig. 6 — per-label accuracy, MBI multi-class "
         f"(profile={profile_name})",
         render_series(ordered)
         + "\nsupport: "
         + ", ".join(f"{k}={v}" for k, v in sorted(support.items())))
    # Paper shape: Correct / Call Ordering are among the best-predicted,
    # the rare Resource Leak among the worst.  Only compare labels whose
    # validation support is meaningful at this profile.
    reliable = {k: v for k, v in acc.items() if support.get(k, 0) >= MIN_SUPPORT}
    assert "Correct" in reliable and "Call Ordering" in reliable
    leak = reliable.get("Resource Leak")
    if leak is not None:
        assert reliable["Correct"] >= leak
        assert reliable["Call Ordering"] >= leak
    # The best and worst reliable labels must be separated: the paper's
    # point is that label prediction quality depends strongly on the type.
    assert max(reliable.values()) - min(reliable.values()) >= 0.25
