"""Throughput smoke benchmark for the differential fuzz harness.

Times one seeded campaign over the full per-program differential check
(compile O0 + O2, graph, embedding, simulation, all five oracles) and
emits ``BENCH_fuzz.json``.  The IR2vec encoder table is warmed outside
the timed region, so the number isolates steady-state campaign
throughput — the figure that decides how much scenario coverage a CI
minute buys.

Hardware-independent assertions only (campaign cleanliness and
determinism); wall-clock expectations are gated behind
``REPRO_BENCH_STRICT=1`` like the other benchmark suites.
"""

import json
import os
import time

from repro.fuzz import FuzzConfig, run_campaign

from benchmarks.conftest import emit

_BUDGET = 48
_OUT = "BENCH_fuzz.json"


def test_fuzz_campaign_throughput():
    from repro.embeddings.ir2vec import default_encoder

    default_encoder()                     # warm outside the timed region
    config = FuzzConfig(seed=7, budget=_BUDGET, include_known_bugs=False)

    t0 = time.time()
    doc = run_campaign(config)
    elapsed = time.time() - t0

    assert doc["counts"]["programs"] == _BUDGET
    assert doc["counts"]["hard_failures"] == 0
    assert doc["counts"]["generator_rejects"] == 0

    # Determinism is the harness's core contract: a second identical
    # campaign costs the same work and yields the same document.
    assert run_campaign(config) == doc

    results = {
        "budget": _BUDGET,
        "seed": config.seed,
        "seconds": round(elapsed, 3),
        "programs_per_s": round(_BUDGET / elapsed, 2),
        "counts": doc["counts"],
        "strict": os.environ.get("REPRO_BENCH_STRICT") == "1",
    }
    with open(_OUT, "w", encoding="utf-8") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
    emit("Fuzz campaign throughput",
         f"{_BUDGET} programs in {elapsed:.2f}s "
         f"({results['programs_per_s']}/s) -> {_OUT}")

    if os.environ.get("REPRO_BENCH_STRICT") == "1":
        # Generous: the smoke campaign must beat one program a second.
        assert results["programs_per_s"] > 1.0
