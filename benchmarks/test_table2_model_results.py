"""Table II: IR2vec and GNN over Intra / Cross / Mix."""

from benchmarks.conftest import emit
from repro.eval import experiments as E


def test_table2_model_results(benchmark, config, profile_name):
    rows = benchmark.pedantic(E.table2_model_results, args=(config,),
                              rounds=1, iterations=1)
    emit(f"Table II (profile={profile_name})", E.render_table2(rows))
    by_key = {(r["model"], r["scenario"], r["train"]): r["Accuracy"] for r in rows}
    # Shape assertions from the paper: Intra beats the hard Cross direction.
    assert by_key[("IR2vec", "Intra", "MBI")] > by_key[("IR2vec", "Cross", "CORR")]
    assert by_key[("GNN", "Intra", "MBI")] > by_key[("GNN", "Cross", "CORR")]
