"""Table V: GA feature selection on/off, Intra and Cross."""

from benchmarks.conftest import emit
from repro.eval import experiments as E
from repro.eval.reporting import render_table


def test_table5_ga_effect(benchmark, config, profile_name):
    rows = benchmark.pedantic(E.table5_ga_effect, args=(config,),
                              rounds=1, iterations=1)
    headers = ["GA", "Scenario", "Train", "Val", "TP", "TN", "FP", "FN",
               "Recall", "Precision", "F1", "Accuracy"]
    data = [[r["GA"], r["scenario"], r["train"], r["val"], r["TP"], r["TN"],
             r["FP"], r["FN"], r["Recall"], r["Precision"], r["F1"],
             r["Accuracy"]] for r in rows]
    emit(f"Table V (profile={profile_name})", render_table(headers, data))
    assert len(rows) == 8
    assert {r["scenario"] for r in rows} == {"Intra", "Cross"}
