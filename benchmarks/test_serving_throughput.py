"""Serving throughput: micro-batched vs sequential single-request dispatch.

Stands up the real HTTP service (``repro.serve``) over a smoke-trained
ir2vec pipeline and runs the shared measurement protocol
(:func:`repro.serve.measure_regimes` — the same code path as
``repro bench-serve``) over an MBI-derived corpus:

* **sequential** — one closed-loop client, one request at a time; no
  coalescing is possible, so every request becomes its own
  ``predict_batch(1)`` call (plus a full batch-window wait);
* **micro-batched** — N concurrent closed-loop clients; the scheduler
  coalesces queued requests into multi-sample ``predict_batch`` calls.

Every source is pushed through once before the timed phases so both
regimes measure the same warm-cache state rather than who pays the cold
compiles.  Emits ``BENCH_serving.json`` (p50/p99 latency, throughput,
achieved batch size per regime) — the acceptance bar is micro-batched
throughput ≥ sequential and an achieved mean batch size > 1.
"""

import json
import os

import pytest

from repro.datasets import load_mbi
from repro.ml import GAConfig
from repro.pipeline import DecisionTreeStageConfig, DetectionPipeline
from repro.serve import BackgroundServer, ServeConfig, measure_regimes

from benchmarks.conftest import emit

_CORPUS_SIZE = 48
_CONCURRENCY = 8
_OUT = "BENCH_serving.json"


@pytest.mark.benchmark(group="serving")
def test_serving_microbatch_vs_sequential(tmp_path):
    corpus = load_mbi(subsample=_CORPUS_SIZE)
    jobs = [(s.name, s.source) for s in corpus.samples]

    pipeline = DetectionPipeline.from_names(
        "ir2vec", "decision-tree",
        classifier_config=DecisionTreeStageConfig(
            ga=GAConfig(population_size=20, generations=2)),
        method="ir2vec").fit(corpus)
    artifact = str(tmp_path / "serving-model.rpd")
    pipeline.save(artifact)
    pipeline.close()

    config = ServeConfig(port=0, max_batch=8, max_wait_ms=15,
                         max_queue=512)
    with BackgroundServer(artifact, config) as server:
        measured = measure_regimes(config.host, server.port, jobs,
                                   concurrency=_CONCURRENCY)

    assert measured["warmup"]["failed"] == 0
    assert measured["sequential"]["failed"] == 0
    assert measured["microbatched"]["failed"] == 0

    results = {
        "corpus": "MBI-smoke",
        "max_batch": config.max_batch,
        "max_wait_ms": config.max_wait_ms,
        **measured,
    }
    # Merge (not overwrite): test_obs_overhead.py shares the file and
    # runs first in alphabetical collection order.
    doc = {}
    if os.path.exists(_OUT):
        try:
            with open(_OUT, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, ValueError):
            doc = {}
    doc.update(results)
    with open(_OUT, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
    emit("Serving throughput (micro-batched vs sequential)",
         json.dumps(results, indent=2, sort_keys=True))

    # Sequential dispatch cannot coalesce; the scheduler must.
    assert results["sequential_batching"]["mean_batch_size"] <= 1.0
    assert results["microbatched_batching"]["mean_batch_size"] > 1.0
    assert results["microbatched_batching"]["batches"] < len(jobs)
    # The acceptance bar: coalescing beats one-at-a-time dispatch.
    assert results["throughput_speedup"] >= 1.0
