"""Extension bench (paper Section V-F / VI): mutation-injected bugs.

Two questions the paper raises but leaves to future work, answered with
the substrate this reproduction already has:

1. Does the trained detector flag *new* incorrect programs produced by
   injecting bugs into correct suite codes (mutation operators)?
2. Does adding such mutants to the training set change cross-suite
   transfer?
"""

from benchmarks.conftest import emit
from repro.eval import experiments as E


def test_mutation_detection(benchmark, config, profile_name):
    rows = benchmark.pedantic(E.mutation_detection, args=(config, "MBI"),
                              rounds=1, iterations=1)
    emit(f"Mutation detection, MBI-trained model (profile={profile_name})",
         E.render_mutation_detection(rows, "MBI"))
    assert rows, "no mutants generated"
    total = next(r for r in rows if r["operator"] == "ALL")
    assert total["mutants"] > 0
    assert 0.0 <= total["rate"] <= 1.0
    # Every operator present produced at least one mutant and a rate.
    for row in rows:
        assert row["detected"] <= row["mutants"]


def test_mutation_augmented_cross(benchmark, config, profile_name):
    rows = benchmark.pedantic(E.mutation_augmented_cross, args=(config,),
                              rounds=1, iterations=1)
    emit(f"Mutant-augmented Cross (profile={profile_name})",
         E.render_mutation_cross(rows))
    assert len(rows) == 2
    for row in rows:
        assert row["n_train_aug"] > row["n_train_base"]
        assert 0.0 <= row["acc_base"] <= 1.0
        assert 0.0 <= row["acc_augmented"] <= 1.0
