"""Fig. 7: metric bars — verification tools vs ML models on both suites."""

from benchmarks.conftest import emit
from repro.eval import experiments as E
from repro.eval.reporting import render_table


def test_fig7_tool_comparison(benchmark, config, profile_name):
    results = benchmark.pedantic(E.fig7_tool_metric_bars, args=(config,),
                                 rounds=1, iterations=1)
    for suite, tools in results.items():
        headers = ["Tool", "Recall", "Precision", "F1", "Accuracy"]
        data = [[name, m["Recall"], m["Precision"], m["F1"], m["Accuracy"]]
                for name, m in tools.items()]
        emit(f"Fig. 7 — {suite} (profile={profile_name})",
             render_table(headers, data))
    # Shape assertions: the ideal tool dominates; the ML Intra rows are
    # competitive with the best expert tool on each suite.
    for suite, tools in results.items():
        assert tools["Ideal tool"]["F1"] == 1.0
        best_tool_f1 = max(m["F1"] for name, m in tools.items()
                           if "Intra" not in name and "Cross" not in name
                           and name != "Ideal tool")
        assert tools["IR2vec Intra"]["F1"] >= best_tool_f1 - 0.25
