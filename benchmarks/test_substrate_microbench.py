"""Micro-benchmarks of the substrates (throughput-style measurements)."""

import numpy as np

from repro.datasets import load_mbi
from repro.embeddings.ir2vec import default_encoder
from repro.frontend import compile_c
from repro.graphs import build_program_graph, build_vocabulary
from repro.mpi.simulator import simulate
from repro.nn import Adam, batch_graphs, cross_entropy
from repro.models.gnn_model import _GNNNetwork

_SAMPLE = load_mbi().samples[0]


def test_bench_compile_o0(benchmark):
    benchmark(compile_c, _SAMPLE.source, _SAMPLE.name, "O0")


def test_bench_compile_os(benchmark):
    benchmark(compile_c, _SAMPLE.source, _SAMPLE.name, "Os")


def test_bench_ir2vec_encoding(benchmark):
    module = compile_c(_SAMPLE.source, _SAMPLE.name, "Os")
    encoder = default_encoder()
    vec = benchmark(encoder.encode, module)
    assert vec.shape == (512,)


def test_bench_programl_build(benchmark):
    module = compile_c(_SAMPLE.source, _SAMPLE.name, "O0")
    graph = benchmark(build_program_graph, module)
    assert graph.num_nodes > 0


def test_bench_simulator_run(benchmark):
    module = compile_c(_SAMPLE.source, _SAMPLE.name, "O0")
    report = benchmark(simulate, module, 2)
    assert report.steps > 0


def test_bench_gnn_training_step(benchmark):
    samples = load_mbi(subsample=120).samples[:32]
    graphs = [build_program_graph(compile_c(s.source, s.name, "O0"))
              for s in samples]
    vocab = build_vocabulary(graphs)
    batch = batch_graphs(graphs, vocab)
    labels = np.array([0, 1] * 16)
    rng = np.random.default_rng(0)
    net = _GNNNetwork(len(vocab), 2, rng)
    opt = Adam(net.parameters())

    def step():
        loss = cross_entropy(net(batch), labels)
        opt.zero_grad()
        loss.backward()
        opt.step()
        return float(loss.data)

    result = benchmark(step)
    assert result > 0


def test_bench_o2_pipeline_with_gvn_licm(benchmark):
    # Full -O2 pipeline including the GVN + LICM scalar stage.
    benchmark(compile_c, _SAMPLE.source, _SAMPLE.name, "O2")


def test_bench_mutation_engine(benchmark):
    from repro.datasets import MutationEngine
    from repro.datasets.labels import CORRECT

    correct = next(s for s in load_mbi() if s.label == CORRECT)
    engine = MutationEngine(seed=0)
    mutants = benchmark(engine.mutate_sample, correct, 4)
    assert mutants
