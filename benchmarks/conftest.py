"""Shared configuration for the per-table/figure benchmark harness.

Profile selection: set ``REPRO_PROFILE`` to ``smoke`` (default; minutes),
``fast`` (tens of minutes), or ``paper`` (paper-scale: full suites, 10
folds, GA population 2500 — hours in pure Python).  EXPERIMENTS.md records
which profile produced the committed numbers.
"""

import os

import pytest

from repro.eval.config import ReproConfig

_PROFILES = {
    "smoke": ReproConfig.smoke,
    "fast": ReproConfig.fast,
    "paper": ReproConfig.paper,
}


@pytest.fixture(scope="session")
def config() -> ReproConfig:
    name = os.environ.get("REPRO_PROFILE", "smoke")
    if name not in _PROFILES:
        raise ValueError(f"REPRO_PROFILE must be one of {sorted(_PROFILES)}")
    return _PROFILES[name]()


@pytest.fixture(scope="session")
def profile_name() -> str:
    return os.environ.get("REPRO_PROFILE", "smoke")


def emit(title: str, body: str) -> None:
    print(f"\n=== {title} ===")
    print(body)
