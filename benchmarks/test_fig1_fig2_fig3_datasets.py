"""Figures 1-3: dataset statistics (error distribution, code size, counts)."""

from benchmarks.conftest import emit
from repro.eval import experiments as E
from repro.eval.reporting import render_series, render_table


def test_fig1_error_distribution(benchmark, config):
    dist = benchmark.pedantic(E.fig1_error_distribution, args=(config,),
                              rounds=1, iterations=1)
    for suite, counts in dist.items():
        total = max(sum(counts.values()), 1)
        emit(f"Fig. 1 — codes per error type ({suite})",
             render_series({k: v / total for k, v in counts.items()}))
        emit(f"Fig. 1 — raw counts ({suite})",
             render_table(["label", "count"], sorted(counts.items(),
                                                     key=lambda kv: -kv[1])))


def test_fig2_code_size(benchmark, config):
    sizes = benchmark.pedantic(E.fig2_code_size, args=(config,),
                               rounds=1, iterations=1)
    for suite, rows in sizes.items():
        emit(f"Fig. 2 — LoC after preprocessing ({suite})",
             render_table(["label", "min", "median", "max"],
                          [[lbl, s["min"], s["median"], s["max"]]
                           for lbl, s in rows.items()]))
    biased = sizes["MPI-CorrBench (biased)"]["Correct"]["min"]
    assert biased >= 103, "paper: biased correct codes have >= 103 LoC"


def test_fig3_correct_incorrect(benchmark, config):
    counts = benchmark.pedantic(E.fig3_correct_incorrect, args=(config,),
                                rounds=1, iterations=1)
    emit("Fig. 3 — correct vs incorrect",
         render_table(["suite", "correct", "incorrect"],
                      [[k, v[0], v[1]] for k, v in counts.items()]))
