"""Section V-A "Seeds": sensitivity of GA features to the embedding seed.

The paper regenerates IR2vec vectors with a different seed while keeping
the GA-selected coordinates and observes small Intra losses (−0.6% MBI,
0% CorrBench) but a large loss for Cross MBI→CorrBench (−40.81%), because
the selected coordinates only mean something in the embedding basis the
GA searched.
"""

from benchmarks.conftest import emit
from repro.eval import experiments as E


def test_seed_sensitivity(benchmark, config, profile_name):
    rows = benchmark.pedantic(E.seed_sensitivity, args=(config,),
                              rounds=1, iterations=1)
    emit(f"Seed study (profile={profile_name})", E.render_seed_study(rows))
    assert len(rows) == 4
    for row in rows:
        assert 0.0 <= row["acc_original"] <= 1.0
        assert 0.0 <= row["acc_reseeded"] <= 1.0
    # Paper shape: Intra is robust to reseeding (small |delta|); the
    # brittle scenario is a Cross direction, where reused GA coordinates
    # can lose a large fraction of their accuracy.  At the smoke profile
    # the base models sit at noise level (see EXPERIMENTS.md), so deltas
    # are noise too — shape is asserted from the fast profile up.
    if profile_name != "smoke":
        intra_deltas = [abs(r["delta"]) for r in rows if r["scenario"] == "Intra"]
        cross_deltas = [abs(r["delta"]) for r in rows if r["scenario"] == "Cross"]
        assert max(intra_deltas) <= 0.25
        assert max(cross_deltas) >= max(intra_deltas) - 1e-9
