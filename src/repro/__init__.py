"""repro — reproduction of "MPI Errors Detection using GNN Embedding and
Vector Embedding over LLVM IR" (arXiv:2403.02518).

The detection pipeline is composable: a ``Frontend`` compiles C to IR
(content-hash cached), a ``Featurizer`` turns IR into features (built-ins
``ir2vec`` and ``programl``), and a ``Classifier`` labels them
(``decision-tree``, ``gnn``).  Stages are built by name from registries,
chained by the batch-first :class:`~repro.pipeline.DetectionPipeline`,
and persisted as versioned artifacts (JSON manifest + per-stage blobs):

>>> from repro.pipeline import DetectionPipeline
>>> pipe = DetectionPipeline.from_names("ir2vec", "decision-tree")
>>> pipe.fit(load_mbi(), labels="binary")
>>> [r.label for r in pipe.predict_batch(sources)]
>>> pipe.save("model.rpd"); DetectionPipeline.load("model.rpd")

Custom stages plug in without core-code edits via
:func:`~repro.pipeline.register_featurizer` /
:func:`~repro.pipeline.register_classifier`; see ``docs/pipeline.md``.
:class:`MPIErrorDetector` remains as a thin back-compat facade.

Subpackages
-----------
``ir`` / ``frontend`` / ``passes``
    mini LLVM IR, mini-C compiler, -O0/-O2/-Os pipelines.
``mpi``
    MPI API model + rank-interleaving runtime simulator.
``datasets``
    MBI and MPI-CorrBench style benchmark generators, Hypre case study.
``embeddings`` / ``graphs``
    IR2vec (TransE seeds, symbolic + flow-aware) and ProGraML graphs.
``nn`` / ``ml``
    numpy autograd + GATv2 GNN; decision tree, GA, metrics, CV.
``engine``
    parallel corpus execution engine: worker-pool fan-out plus the
    persistent content-addressed compile/feature cache.
``pipeline``
    stage protocols, registries, DetectionPipeline, artifact format.
``models`` / ``core``
    the paper's two stage stacks and the back-compat detector facade.
``verify``
    baseline tools: ITAC, MUST, PARCOACH, MPI-Checker analogues.
``eval``
    per-table/figure experiment drivers (registry-driven scenarios).
"""

from repro.core import (
    DetectionResult,
    MPIErrorDetector,
    SuspectCallSite,
    SuspectFunction,
    localize_call_sites,
    localize_error,
)
from repro.datasets import MutationEngine
from repro.pipeline import (
    DetectionPipeline,
    register_classifier,
    register_featurizer,
)

__version__ = "1.2.0"
__all__ = [
    "MPIErrorDetector", "DetectionResult", "DetectionPipeline",
    "register_featurizer", "register_classifier",
    "localize_error", "localize_call_sites",
    "SuspectFunction", "SuspectCallSite",
    "MutationEngine",
    "__version__",
]
