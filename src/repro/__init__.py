"""repro — reproduction of "MPI Errors Detection using GNN Embedding and
Vector Embedding over LLVM IR" (arXiv:2403.02518).

Subpackages
-----------
``ir`` / ``frontend`` / ``passes``
    mini LLVM IR, mini-C compiler, -O0/-O2/-Os pipelines.
``mpi``
    MPI API model + rank-interleaving runtime simulator.
``datasets``
    MBI and MPI-CorrBench style benchmark generators, Hypre case study.
``embeddings`` / ``graphs``
    IR2vec (TransE seeds, symbolic + flow-aware) and ProGraML graphs.
``nn`` / ``ml``
    numpy autograd + GATv2 GNN; decision tree, GA, metrics, CV.
``models`` / ``core``
    the paper's two pipelines and the user-facing detector API.
``verify``
    baseline tools: ITAC, MUST, PARCOACH, MPI-Checker analogues.
``eval``
    per-table/figure experiment drivers.
"""

from repro.core import (
    DetectionResult,
    MPIErrorDetector,
    SuspectCallSite,
    SuspectFunction,
    localize_call_sites,
    localize_error,
)
from repro.datasets import MutationEngine

__version__ = "1.0.0"
__all__ = [
    "MPIErrorDetector", "DetectionResult",
    "localize_error", "localize_call_sites",
    "SuspectFunction", "SuspectCallSite",
    "MutationEngine",
    "__version__",
]
