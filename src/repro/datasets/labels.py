"""Error-label taxonomies of the two benchmark suites (paper Section III)."""

from __future__ import annotations

CORRECT = "Correct"

# MBI groups its 9 error types by manifestation context:
#   single call:     Invalid Parameter
#   single process:  Resource Leak, Request Lifecycle, Epoch Lifecycle,
#                    Local Concurrency
#   multi-processes: Parameter Matching, Message Race, Call Ordering,
#                    Global Concurrency
MBI_LABELS = (
    "Invalid Parameter",
    "Parameter Matching",
    "Call Ordering",
    "Local Concurrency",
    "Request Lifecycle",
    "Epoch Lifecycle",
    "Message Race",
    "Global Concurrency",
    "Resource Leak",
)

# MPI-CorrBench's classification.
CORR_LABELS = (
    "ArgError",
    "ArgMismatch",
    "MissplacedCall",
    "MissingCall",
)

#: CorrBench label encoded in file names (ArgError-MPIIRecv-Count-1.c ...).
CORR_NAME_PREFIX = {
    "ArgError": "ArgError",
    "ArgMismatch": "ArgMismatch",
    "MissplacedCall": "MissplacedCall",
    "MissingCall": "MissingCall",
}


def binary_label(label: str) -> str:
    """Collapse any error label to the Cross-scenario binary scheme."""
    return CORRECT if label == CORRECT else "Incorrect"


def is_correct(label: str) -> bool:
    return label == CORRECT
