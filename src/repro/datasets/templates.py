"""C-source building blocks shared by the MBI / CorrBench generators."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

# (C element type, MPI datatype) pairs the generators draw from.
DTYPES: List[Tuple[str, str]] = [
    ("int", "MPI_INT"),
    ("float", "MPI_FLOAT"),
    ("double", "MPI_DOUBLE"),
    ("long", "MPI_LONG"),
    ("char", "MPI_CHAR"),
]

#: Blocking collectives with an emitter for correct calls.
COLLECTIVES = (
    "MPI_Barrier", "MPI_Bcast", "MPI_Reduce", "MPI_Allreduce", "MPI_Gather",
    "MPI_Allgather", "MPI_Scatter", "MPI_Alltoall", "MPI_Scan", "MPI_Exscan",
)
NB_COLLECTIVES = ("MPI_Ibarrier", "MPI_Ibcast", "MPI_Ireduce", "MPI_Iallreduce")
REDUCE_OPS = ("MPI_SUM", "MPI_MAX", "MPI_MIN", "MPI_PROD", "MPI_LAND", "MPI_BOR")


@dataclass
class Prog:
    """Accumulates pieces of a benchmark C program."""

    defines: List[str] = field(default_factory=list)
    decls: List[str] = field(default_factory=list)
    body: List[str] = field(default_factory=list)
    helpers: List[str] = field(default_factory=list)
    includes: List[str] = field(default_factory=lambda: ["<mpi.h>", "<stdio.h>", "<stdlib.h>"])
    min_procs: int = 2
    init: bool = True
    finalize: bool = True
    header_comment: str = ""

    def decl(self, line: str) -> None:
        if line not in self.decls:
            self.decls.append(line)

    def stmt(self, line: str) -> None:
        self.body.append(line)

    def render(self) -> str:
        parts: List[str] = []
        if self.header_comment:
            parts.append(self.header_comment)
        parts.extend(f"#include {inc}" for inc in self.includes)
        parts.append("")
        parts.extend(self.defines)
        if self.defines:
            parts.append("")
        if self.helpers:
            parts.extend(self.helpers)
            parts.append("")
        parts.append("int main(int argc, char** argv) {")
        parts.append("  int nprocs = -1;")
        parts.append("  int rank = -1;")
        parts.extend(f"  {d}" for d in self.decls)
        parts.append("")
        if self.init:
            parts.append("  MPI_Init(&argc, &argv);")
        parts.append("  MPI_Comm_size(MPI_COMM_WORLD, &nprocs);")
        parts.append("  MPI_Comm_rank(MPI_COMM_WORLD, &rank);")
        if self.min_procs > 1:
            parts.append(f"  if (nprocs < {self.min_procs}) {{")
            parts.append(f'    printf("MBI ERROR: This test needs at least '
                         f'{self.min_procs} processes to produce a bug!\\n");')
            parts.append("  }")
        parts.append("")
        parts.extend(f"  {line}" for line in self.body)
        parts.append("")
        if self.finalize:
            parts.append("  MPI_Finalize();")
        parts.append('  printf("Rank %d finished normally\\n", rank);')
        parts.append("  return 0;")
        parts.append("}")
        return "\n".join(parts) + "\n"


def mbi_header(name: str, label: str, origin: str, features: Sequence[str]) -> str:
    """MBI-style structured comment header describing the test."""
    feature_lines = "\n".join(f"  {f}: Yes" for f in features)
    expect = "OK" if label == "Correct" else "ERROR"
    detail = "" if label == "Correct" else f"\n  | ERROR CATEGORY: {label}"
    return f"""/* ///////////////////////// The MPI Bugs Initiative ////////////////////////
  Origin: {origin}
  Description: {name}
{feature_lines}
  | Test outcome: {expect}{detail}
  | END_MBI_TEST_HEADER */
"""


def filler_compute(rng: random.Random, prog: Prog, tag: str = "f") -> None:
    """Add a benign compute snippet; diversifies IR across samples."""
    choice = rng.randrange(4)
    n = rng.choice([8, 16, 32, 64])
    var = f"{tag}{rng.randrange(1000)}"
    if choice == 0:
        prog.decl(f"double acc_{var} = 0.0;")
        prog.decl(f"int i_{var};")
        prog.stmt(f"for (i_{var} = 0; i_{var} < {n}; i_{var}++) {{")
        prog.stmt(f"  acc_{var} = acc_{var} + i_{var} * {rng.choice(['0.5', '1.5', '2.0', '0.25'])};")
        prog.stmt("}")
    elif choice == 1:
        prog.decl(f"int sum_{var} = 0;")
        prog.decl(f"int i_{var};")
        prog.stmt(f"for (i_{var} = 0; i_{var} < {n}; i_{var}++) {{")
        prog.stmt(f"  sum_{var} = sum_{var} + i_{var} * {rng.randrange(1, 7)};")
        prog.stmt("}")
        prog.stmt(f"if (sum_{var} < 0) {{ printf(\"impossible\\n\"); }}")
    elif choice == 2:
        prog.decl(f"double x_{var} = {rng.randrange(1, 9)}.0;")
        prog.stmt(f"x_{var} = x_{var} * x_{var} + {rng.randrange(1, 5)};")
        prog.stmt(f"if (x_{var} > 1000.0) {{ x_{var} = 0.0; }}")
    else:
        prog.decl(f"int v_{var}[{n}];")
        prog.decl(f"int i_{var};")
        prog.stmt(f"for (i_{var} = 0; i_{var} < {n}; i_{var}++) {{")
        prog.stmt(f"  v_{var}[i_{var}] = i_{var} % {rng.randrange(2, 9)};")
        prog.stmt("}")


def buffer_decl(prog: Prog, ctype: str, name: str, count: int) -> None:
    prog.decl(f"{ctype} {name}[{max(1, count)}];")


def collective_call(prog: Prog, op: str, *, ctype: str = "int",
                    mpitype: str = "MPI_INT", count: int = 4, root: str = "0",
                    red_op: str = "MPI_SUM", comm: str = "MPI_COMM_WORLD",
                    suffix: str = "") -> str:
    """Emit declarations for a correct collective call; returns the call."""
    sb, rb = f"sbuf{suffix}", f"rbuf{suffix}"
    if op == "MPI_Barrier":
        return f"MPI_Barrier({comm});"
    if op == "MPI_Bcast":
        buffer_decl(prog, ctype, sb, count)
        return f"MPI_Bcast({sb}, {count}, {mpitype}, {root}, {comm});"
    if op == "MPI_Reduce":
        buffer_decl(prog, ctype, sb, count)
        buffer_decl(prog, ctype, rb, count)
        return f"MPI_Reduce({sb}, {rb}, {count}, {mpitype}, {red_op}, {root}, {comm});"
    if op == "MPI_Allreduce":
        buffer_decl(prog, ctype, sb, count)
        buffer_decl(prog, ctype, rb, count)
        return f"MPI_Allreduce({sb}, {rb}, {count}, {mpitype}, {red_op}, {comm});"
    if op == "MPI_Gather":
        buffer_decl(prog, ctype, sb, count)
        prog.decl(f"{ctype}* {rb} = ({ctype}*) malloc(nprocs * {count} * sizeof({ctype}));")
        return (f"MPI_Gather({sb}, {count}, {mpitype}, {rb}, {count}, {mpitype}, "
                f"{root}, {comm});")
    if op == "MPI_Allgather":
        buffer_decl(prog, ctype, sb, count)
        prog.decl(f"{ctype}* {rb} = ({ctype}*) malloc(nprocs * {count} * sizeof({ctype}));")
        return (f"MPI_Allgather({sb}, {count}, {mpitype}, {rb}, {count}, {mpitype}, "
                f"{comm});")
    if op == "MPI_Scatter":
        prog.decl(f"{ctype}* {sb} = ({ctype}*) malloc(nprocs * {count} * sizeof({ctype}));")
        buffer_decl(prog, ctype, rb, count)
        return (f"MPI_Scatter({sb}, {count}, {mpitype}, {rb}, {count}, {mpitype}, "
                f"{root}, {comm});")
    if op == "MPI_Alltoall":
        prog.decl(f"{ctype}* {sb} = ({ctype}*) malloc(nprocs * {count} * sizeof({ctype}));")
        prog.decl(f"{ctype}* {rb} = ({ctype}*) malloc(nprocs * {count} * sizeof({ctype}));")
        return (f"MPI_Alltoall({sb}, {count}, {mpitype}, {rb}, {count}, {mpitype}, "
                f"{comm});")
    if op in ("MPI_Scan", "MPI_Exscan"):
        buffer_decl(prog, ctype, sb, count)
        buffer_decl(prog, ctype, rb, count)
        return f"{op}({sb}, {rb}, {count}, {mpitype}, {red_op}, {comm});"
    if op == "MPI_Ibarrier":
        prog.decl(f"MPI_Request req{suffix};")
        prog.decl(f"MPI_Status st{suffix};")
        return (f"MPI_Ibarrier({comm}, &req{suffix}); "
                f"MPI_Wait(&req{suffix}, &st{suffix});")
    if op == "MPI_Ibcast":
        buffer_decl(prog, ctype, sb, count)
        prog.decl(f"MPI_Request req{suffix};")
        prog.decl(f"MPI_Status st{suffix};")
        return (f"MPI_Ibcast({sb}, {count}, {mpitype}, {root}, {comm}, &req{suffix}); "
                f"MPI_Wait(&req{suffix}, &st{suffix});")
    if op == "MPI_Ireduce":
        buffer_decl(prog, ctype, sb, count)
        buffer_decl(prog, ctype, rb, count)
        prog.decl(f"MPI_Request req{suffix};")
        prog.decl(f"MPI_Status st{suffix};")
        return (f"MPI_Ireduce({sb}, {rb}, {count}, {mpitype}, {red_op}, {root}, "
                f"{comm}, &req{suffix}); MPI_Wait(&req{suffix}, &st{suffix});")
    if op == "MPI_Iallreduce":
        buffer_decl(prog, ctype, sb, count)
        buffer_decl(prog, ctype, rb, count)
        prog.decl(f"MPI_Request req{suffix};")
        prog.decl(f"MPI_Status st{suffix};")
        return (f"MPI_Iallreduce({sb}, {rb}, {count}, {mpitype}, {red_op}, {comm}, "
                f"&req{suffix}); MPI_Wait(&req{suffix}, &st{suffix});")
    raise ValueError(f"unknown collective {op}")
