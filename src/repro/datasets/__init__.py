"""Benchmark-suite substrates: MBI and MPI-CorrBench style generators.

The paper trains on the MPI Bugs Initiative (~2000 C codes, 9 error
labels) and MPI-CorrBench level-zero (~400 codes, 4 labels).  Neither
suite ships with this reproduction, so :mod:`repro.datasets.mbi` and
:mod:`repro.datasets.corrbench` regenerate structurally equivalent
programs: the same error taxonomy, the same MPI feature coverage, label
distributions matching the paper's Fig. 1, code-size distributions
matching Fig. 2 (including the ``mpitest.h`` bias in CorrBench correct
codes), and deterministic seeding.
"""

from repro.datasets.loader import (
    Dataset,
    Sample,
    iter_named_sources,
    iter_sample_chunks,
    load_corrbench,
    load_mbi,
    load_mix,
)
from repro.datasets.labels import (
    CORR_LABELS,
    CORRECT,
    MBI_LABELS,
    binary_label,
)
from repro.datasets.mutation import Mutant, MutationEngine

__all__ = [
    "Dataset", "Sample", "load_mbi", "load_corrbench", "load_mix",
    "iter_sample_chunks", "iter_named_sources",
    "MBI_LABELS", "CORR_LABELS", "CORRECT", "binary_label",
    "MutationEngine", "Mutant",
]
