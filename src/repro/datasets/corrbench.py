"""MPI-CorrBench-style (level zero) benchmark generator.

~415 small C kernels across the 4 CorrBench labels plus correct codes.
Two reproduction-critical properties from the paper (Section III):

* error labels are encoded in the file *names*
  (``ArgError-MPIIrecv-Count-1.c``) — CorrBench has no in-file headers;
* **correct codes include ``mpitest.h``**, whose expansion pushes them to
  ≥103 LoC, creating the size bias the paper detects and removes.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Tuple

from repro.datasets.labels import CORRECT
from repro.datasets.loader import Sample
from repro.datasets.templates import (
    COLLECTIVES,
    DTYPES,
    Prog,
    REDUCE_OPS,
    collective_call,
    filler_compute,
)

#: Per-label counts (Fig. 1(a) / Fig. 3 shapes: 214 incorrect + 202 correct).
CORR_COUNTS: Dict[str, int] = {
    CORRECT: 202,
    "ArgError": 148,
    "ArgMismatch": 31,
    "MissplacedCall": 20,
    "MissingCall": 15,
}

_CALLS_WITH_ARGS = (
    # (call template-id, param variants for ArgError)
    ("MPISend", ("Count", "Tag", "Rank", "Buffer", "Type", "Comm")),
    ("MPIRecv", ("Count", "Tag", "Rank", "Buffer", "Type", "Comm")),
    ("MPIIsend", ("Count", "Tag", "Rank", "Type")),
    ("MPIIrecv", ("Count", "Tag", "Rank", "Type")),
    ("MPIBcast", ("Count", "Root", "Type", "Comm")),
    ("MPIReduce", ("Count", "Root", "Type", "Op")),
    ("MPIAllreduce", ("Count", "Type", "Op")),
    ("MPIGather", ("Count", "Root", "Type")),
    ("MPIScatter", ("Count", "Root", "Type")),
    ("MPIBarrier", ("Comm",)),
)


def _corr_prog(min_procs: int = 2) -> Prog:
    prog = Prog(min_procs=0)   # CorrBench kernels skip the MBI banner
    prog.min_procs = 0
    return prog


def _bad_value(param: str, i: int) -> Dict[str, str]:
    """Produce the knob overrides that corrupt one parameter."""
    if param == "Count":
        return {"count": "-1" if i % 2 == 0 else "-5"}
    if param == "Tag":
        return {"tag": "-2" if i % 2 == 0 else "123456789"}
    if param in ("Rank", "Root"):
        return {"peer": "nprocs + 1" if i % 2 == 0 else "-3"}
    if param == "Buffer":
        return {"buf": "NULL"}
    if param == "Type":
        return {"mpitype": "MPI_DATATYPE_NULL"}
    if param == "Comm":
        return {"comm": "MPI_COMM_NULL"}
    if param == "Op":
        return {"red_op": "MPI_OP_NULL"}
    raise ValueError(param)


def _emit_call(prog: Prog, call_id: str, *, count: str = "4", tag: str = "0",
               peer: str = "", buf: str = "", mpitype: str = "MPI_INT",
               comm: str = "MPI_COMM_WORLD", red_op: str = "MPI_SUM") -> None:
    """Emit a two-rank kernel around one (possibly corrupted) MPI call."""
    ctype = "int"
    n = "8"
    prog.decl(f"{ctype} buffer[{n}];")
    prog.decl("MPI_Status status;")
    b = buf or "buffer"
    if call_id == "MPISend":
        dest = peer or "1"
        prog.stmt("if (rank == 0) {")
        prog.stmt(f"  MPI_Send({b}, {count}, {mpitype}, {dest}, {tag}, {comm});")
        prog.stmt("}")
        prog.stmt("if (rank == 1) {")
        prog.stmt(f"  MPI_Recv(buffer, 8, MPI_INT, 0, {tag if tag.isdigit() else '0'}, "
                  "MPI_COMM_WORLD, &status);")
        prog.stmt("}")
    elif call_id == "MPIRecv":
        src = peer or "0"
        prog.stmt("if (rank == 0) {")
        prog.stmt("  MPI_Send(buffer, 4, MPI_INT, 1, 0, MPI_COMM_WORLD);")
        prog.stmt("}")
        prog.stmt("if (rank == 1) {")
        prog.stmt(f"  MPI_Recv({b}, {count}, {mpitype}, {src}, {tag}, {comm}, &status);")
        prog.stmt("}")
    elif call_id in ("MPIIsend", "MPIIrecv"):
        prog.decl("MPI_Request request;")
        if call_id == "MPIIsend":
            dest = peer or "1"
            prog.stmt("if (rank == 0) {")
            prog.stmt(f"  MPI_Isend({b}, {count}, {mpitype}, {dest}, {tag}, {comm}, "
                      "&request);")
            prog.stmt("  MPI_Wait(&request, &status);")
            prog.stmt("}")
            prog.stmt("if (rank == 1) {")
            prog.stmt("  MPI_Recv(buffer, 8, MPI_INT, 0, 0, MPI_COMM_WORLD, &status);")
            prog.stmt("}")
        else:
            src = peer or "0"
            prog.stmt("if (rank == 0) {")
            prog.stmt("  MPI_Send(buffer, 4, MPI_INT, 1, 0, MPI_COMM_WORLD);")
            prog.stmt("}")
            prog.stmt("if (rank == 1) {")
            prog.stmt(f"  MPI_Irecv({b}, {count}, {mpitype}, {src}, {tag}, {comm}, "
                      "&request);")
            prog.stmt("  MPI_Wait(&request, &status);")
            prog.stmt("}")
    elif call_id == "MPIBcast":
        root = peer or "0"
        prog.stmt(f"MPI_Bcast({b}, {count}, {mpitype}, {root}, {comm});")
    elif call_id == "MPIReduce":
        root = peer or "0"
        prog.decl("int result[8];")
        prog.stmt(f"MPI_Reduce({b}, result, {count}, {mpitype}, {red_op}, {root}, {comm});")
    elif call_id == "MPIAllreduce":
        prog.decl("int result[8];")
        prog.stmt(f"MPI_Allreduce({b}, result, {count}, {mpitype}, {red_op}, {comm});")
    elif call_id == "MPIGather":
        root = peer or "0"
        prog.decl("int* gathered = (int*) malloc(nprocs * 8 * sizeof(int));")
        prog.stmt(f"MPI_Gather({b}, {count}, {mpitype}, gathered, {count}, {mpitype}, "
                  f"{root}, {comm});")
    elif call_id == "MPIScatter":
        root = peer or "0"
        prog.decl("int* scattered = (int*) malloc(nprocs * 8 * sizeof(int));")
        prog.stmt(f"MPI_Scatter(scattered, {count}, {mpitype}, {b}, {count}, "
                  f"{mpitype}, {root}, {comm});")
    elif call_id == "MPIBarrier":
        prog.stmt(f"MPI_Barrier({comm});")
    else:
        raise ValueError(call_id)


class CorrBenchGenerator:
    def __init__(self, seed: int = 20210512):
        self.seed = seed

    def _arg_error_cases(self) -> List[Tuple[str, Callable]]:
        cases: List[Tuple[str, Callable]] = []
        for call_id, params in _CALLS_WITH_ARGS:
            for param in params:
                for variant in (1, 2, 3):
                    name = f"ArgError-{call_id}-{param}-{variant}.c"

                    def make(call_id=call_id, param=param, variant=variant):
                        prog = _corr_prog()
                        overrides = _bad_value(param, variant)
                        _emit_call(prog, call_id, **overrides)
                        return prog

                    cases.append((name, make))
        return cases

    def _arg_mismatch_cases(self) -> List[Tuple[str, Callable]]:
        cases: List[Tuple[str, Callable]] = []
        typed = ("MPIBcast", "MPIReduce", "MPIAllreduce", "MPIGather", "MPIScatter")
        for j, call_id in enumerate(typed):
            for variant in (1, 2, 3):
                name = f"ArgMismatch-{call_id}-Type-{variant}.c"

                def make(call_id=call_id, variant=variant, j=j):
                    prog = _corr_prog()
                    a = DTYPES[variant % len(DTYPES)][1]
                    b = DTYPES[(variant + 2) % len(DTYPES)][1]
                    prog.stmt("if (rank == 0) {")
                    _emit_call(prog, call_id, mpitype=a)
                    prog.stmt("} else {")
                    _emit_call(prog, call_id, mpitype=b)
                    prog.stmt("}")
                    return prog

                cases.append((name, make))
        rooted = ("MPIBcast", "MPIReduce", "MPIGather", "MPIScatter")
        for call_id in rooted:
            for variant in (1, 2):
                name = f"ArgMismatch-{call_id}-Root-{variant}.c"

                def make(call_id=call_id, variant=variant):
                    prog = _corr_prog()
                    _emit_call(prog, call_id, peer="rank" if variant == 1
                               else "(rank + 1) % nprocs")
                    return prog

                cases.append((name, make))
        for variant in (1, 2, 3, 4):
            name = f"ArgMismatch-MPISendRecv-Type-{variant}.c"

            def make(variant=variant):
                prog = _corr_prog()
                send = DTYPES[variant % len(DTYPES)][1]
                recv = DTYPES[(variant + 1) % len(DTYPES)][1]
                prog.decl("int buffer[8];")
                prog.decl("MPI_Status status;")
                prog.stmt("if (rank == 0) {")
                prog.stmt(f"  MPI_Send(buffer, 4, {send}, 1, 0, MPI_COMM_WORLD);")
                prog.stmt("}")
                prog.stmt("if (rank == 1) {")
                prog.stmt(f"  MPI_Recv(buffer, 4, {recv}, 0, 0, MPI_COMM_WORLD, &status);")
                prog.stmt("}")
                return prog

            cases.append((name, make))
        for variant in (1, 2):
            name = f"ArgMismatch-MPISendRecv-Count-{variant}.c"

            def make(variant=variant):
                prog = _corr_prog()
                prog.decl("int buffer[16];")
                prog.decl("MPI_Status status;")
                big = 8 * variant
                prog.stmt("if (rank == 0) {")
                prog.stmt(f"  MPI_Send(buffer, {big}, MPI_INT, 1, 0, MPI_COMM_WORLD);")
                prog.stmt("}")
                prog.stmt("if (rank == 1) {")
                prog.stmt(f"  MPI_Recv(buffer, {big // 2}, MPI_INT, 0, 0, "
                          "MPI_COMM_WORLD, &status);")
                prog.stmt("}")
                return prog

            cases.append((name, make))
        return cases

    def _missplaced_cases(self) -> List[Tuple[str, Callable]]:
        cases: List[Tuple[str, Callable]] = []
        for j, coll in enumerate(("MPIBarrier", "MPIBcast", "MPIReduce", "MPIAllreduce")):
            for variant in (1, 2):
                name = f"MissplacedCall-{coll}-Order-{variant}.c"

                def make(coll=coll, variant=variant, j=j):
                    prog = _corr_prog()
                    a = COLLECTIVES[j % len(COLLECTIVES)]
                    b = COLLECTIVES[(j + 1 + variant) % len(COLLECTIVES)]
                    prog.stmt("if (rank == 0) {")
                    prog.stmt("  " + collective_call(prog, a, suffix="A"))
                    prog.stmt("  " + collective_call(prog, b, suffix="B"))
                    prog.stmt("} else {")
                    prog.stmt("  " + collective_call(prog, b, suffix="C"))
                    prog.stmt("  " + collective_call(prog, a, suffix="D"))
                    prog.stmt("}")
                    return prog

                cases.append((name, make))
        for variant in (1, 2, 3):
            name = f"MissplacedCall-MPIInit-Late-{variant}.c"

            def make(variant=variant):
                prog = _corr_prog()
                prog.init = False
                prog.stmt("MPI_Init(&argc, &argv);")
                prog.stmt("MPI_Barrier(MPI_COMM_WORLD);")
                return prog

            cases.append((name, make))
        for variant in (1, 2, 3):
            name = f"MissplacedCall-MPIFinalize-Early-{variant}.c"

            def make(variant=variant):
                prog = _corr_prog()
                prog.finalize = False
                prog.stmt("MPI_Finalize();")
                prog.stmt("MPI_Barrier(MPI_COMM_WORLD);")
                return prog

            cases.append((name, make))
        for variant in (1, 2, 3):
            name = f"MissplacedCall-MPIRecv-Order-{variant}.c"

            def make(variant=variant):
                prog = _corr_prog()
                prog.decl("int buffer[8];")
                prog.decl("MPI_Status status;")
                prog.stmt("int peer = (rank == 0) ? 1 : 0;")
                prog.stmt("if (rank < 2) {")
                prog.stmt(f"  MPI_Recv(buffer, {4 * variant}, MPI_INT, peer, 0, "
                          "MPI_COMM_WORLD, &status);")
                prog.stmt(f"  MPI_Send(buffer, {4 * variant}, MPI_INT, peer, 0, "
                          "MPI_COMM_WORLD);")
                prog.stmt("}")
                return prog

            cases.append((name, make))
        return cases

    def _missing_cases(self) -> List[Tuple[str, Callable]]:
        cases: List[Tuple[str, Callable]] = []
        for variant in (1, 2, 3):
            name = f"MissingCall-MPIWait-{variant}.c"

            def make(variant=variant):
                prog = _corr_prog()
                prog.decl("int buffer[128];")
                prog.decl("MPI_Request request;")
                prog.decl("MPI_Status status;")
                prog.stmt("if (rank == 0) {")
                prog.stmt(f"  MPI_Isend(buffer, {64 * variant}, MPI_INT, 1, 0, "
                          "MPI_COMM_WORLD, &request);")
                prog.stmt("}")
                prog.stmt("if (rank == 1) {")
                prog.stmt(f"  MPI_Recv(buffer, {64 * variant}, MPI_INT, 0, 0, "
                          "MPI_COMM_WORLD, &status);")
                prog.stmt("}")
                return prog

            cases.append((name, make))
        for variant in (1, 2, 3):
            name = f"MissingCall-MPIFinalize-{variant}.c"

            def make(variant=variant):
                prog = _corr_prog()
                prog.finalize = False
                prog.stmt("MPI_Barrier(MPI_COMM_WORLD);")
                return prog

            cases.append((name, make))
        for variant in (1, 2, 3):
            name = f"MissingCall-MPIRecv-{variant}.c"

            def make(variant=variant):
                prog = _corr_prog()
                prog.decl("int buffer[8];")
                prog.stmt("if (rank == 0) {")
                prog.stmt(f"  MPI_Ssend(buffer, {variant * 2}, MPI_INT, 1, 0, "
                          "MPI_COMM_WORLD);")
                prog.stmt("}")
                return prog

            cases.append((name, make))
        for j, coll in enumerate(("MPIBarrier", "MPIBcast", "MPIAllreduce")):
            for variant in (1, 2):
                name = f"MissingCall-{coll}-{variant}.c"

                def make(coll=coll, variant=variant, j=j):
                    prog = _corr_prog()
                    op = COLLECTIVES[j % len(COLLECTIVES)]
                    prog.stmt("if (rank > 0) {")
                    prog.stmt("  " + collective_call(prog, op))
                    prog.stmt("}")
                    return prog

                cases.append((name, make))
        return cases

    def _correct_cases(self, rng: random.Random, count: int) -> List[Tuple[str, Callable]]:
        cases: List[Tuple[str, Callable]] = []
        i = 0
        while len(cases) < count:
            kind = i % 5
            name = f"Correct-kernel-{i + 1:03d}.c"

            def make(i=i, kind=kind):
                prog = _corr_prog()
                # CorrBench correct codes include the test-helper header —
                # this is the size bias the paper removes.
                prog.includes = ["<mpi.h>", "<stdio.h>", "<stdlib.h>", '"mpitest.h"']
                local = random.Random(self.seed * 977 + i)
                filler_compute(local, prog)
                if kind == 0:
                    ctype, mpitype = DTYPES[i % len(DTYPES)]
                    prog.decl(f"{ctype} buffer[8];")
                    prog.decl("MPI_Status status;")
                    prog.stmt("if (rank == 0) {")
                    prog.stmt(f"  MPI_Send(buffer, 4, {mpitype}, 1, 1, MPI_COMM_WORLD);")
                    prog.stmt("}")
                    prog.stmt("if (rank == 1) {")
                    prog.stmt(f"  MPI_Recv(buffer, 4, {mpitype}, 0, 1, MPI_COMM_WORLD, "
                              "&status);")
                    prog.stmt("}")
                elif kind == 1:
                    op = COLLECTIVES[i % len(COLLECTIVES)]
                    prog.stmt(collective_call(prog, op,
                                              ctype=DTYPES[i % len(DTYPES)][0],
                                              mpitype=DTYPES[i % len(DTYPES)][1],
                                              red_op=REDUCE_OPS[i % len(REDUCE_OPS)]))
                elif kind == 2:
                    prog.decl("int buffer[8];")
                    prog.decl("MPI_Request request;")
                    prog.decl("MPI_Status status;")
                    prog.stmt("if (rank == 0) {")
                    prog.stmt("  MPI_Isend(buffer, 4, MPI_INT, 1, 0, MPI_COMM_WORLD, "
                              "&request);")
                    prog.stmt("  MPI_Wait(&request, &status);")
                    prog.stmt("}")
                    prog.stmt("if (rank == 1) {")
                    prog.stmt("  MPI_Irecv(buffer, 4, MPI_INT, 0, 0, MPI_COMM_WORLD, "
                              "&request);")
                    prog.stmt("  MPI_Wait(&request, &status);")
                    prog.stmt("}")
                elif kind == 3:
                    a = COLLECTIVES[i % len(COLLECTIVES)]
                    b = COLLECTIVES[(i + 2) % len(COLLECTIVES)]
                    prog.stmt(collective_call(prog, a, suffix="A"))
                    prog.stmt(collective_call(prog, b, suffix="B"))
                else:
                    prog.decl("int buffer[8];")
                    prog.decl("MPI_Status status;")
                    prog.stmt("int peer = (rank == 0) ? 1 : 0;")
                    prog.stmt("if (rank < 2) {")
                    prog.stmt("  MPI_Sendrecv(buffer, 4, MPI_INT, peer, 2, buffer, 4, "
                              "MPI_INT, peer, 2, MPI_COMM_WORLD, &status);")
                    prog.stmt("}")
                return prog

            cases.append((name, make))
            i += 1
        return cases

    def generate(self) -> List[Sample]:
        rng = random.Random(self.seed)
        samples: List[Sample] = []
        plans = [
            ("ArgError", self._arg_error_cases()),
            ("ArgMismatch", self._arg_mismatch_cases()),
            ("MissplacedCall", self._missplaced_cases()),
            ("MissingCall", self._missing_cases()),
            (CORRECT, self._correct_cases(rng, CORR_COUNTS[CORRECT])),
        ]
        for label, cases in plans:
            want = CORR_COUNTS[label]
            picked = cases[:want]
            # Cycle with numbered suffixes if templates are fewer than quota.
            k = 0
            while len(picked) < want:
                name, make = cases[k % len(cases)]
                stem = name[:-2]
                picked.append((f"{stem}-v{k // len(cases) + 2}.c", make))
                k += 1
            for name, make in picked:
                prog = make()
                samples.append(Sample(name=name, source=prog.render(),
                                      label=label, suite="CORR"))
        return samples


def generate_corrbench(seed: int = 20210512) -> List[Sample]:
    return CorrBenchGenerator(seed).generate()
