"""Hypre-like real-case study (paper Section V-F, Table VI).

The paper evaluates its cross-trained models on Hypre 2.10.1, where
commit bc3158e fixed a bug caused by *reusing the same tag* in two
concurrent MPI exchange phases.  Hypre itself is a ~400 kLoC library we
cannot ship, so this module generates a structurally analogous program: a
multigrid-style iterative solver with halo exchanges, reductions, and a
two-phase neighbour exchange whose *incorrect* version uses one tag for
both phases (messages can cross phases) and whose *correct* version uses
distinct tags — the same bug class, in a code an order of magnitude
larger and shaped unlike any benchmark sample.
"""

from __future__ import annotations

from typing import Tuple

from repro.datasets.loader import Dataset, Sample

_SOLVER_TEMPLATE = r"""
/* hypre-like structured multigrid solver (synthetic reproduction case) */
#include <mpi.h>
#include <stdio.h>
#include <stdlib.h>

#define GRID 64
#define LEVELS 3
#define ITERS 4

double local_grid[GRID];
double halo_left[4];
double halo_right[4];

int solver_rank = 0;
int solver_size = 1;

void grid_init(double* grid, int n, int rank) {
  int i;
  for (i = 0; i < n; i++) {
    grid[i] = (double)(rank * n + i) * 0.001;
  }
}

double grid_norm(double* grid, int n) {
  double acc = 0.0;
  int i;
  for (i = 0; i < n; i++) {
    acc = acc + grid[i] * grid[i];
  }
  return acc;
}

void smooth_level(double* grid, int n, double omega) {
  int i;
  for (i = 1; i < n - 1; i++) {
    grid[i] = grid[i] + omega * (grid[i - 1] - 2.0 * grid[i] + grid[i + 1]);
  }
}

void restrict_level(double* fine, double* coarse, int n) {
  int i;
  for (i = 0; i < n / 2; i++) {
    coarse[i] = 0.5 * (fine[2 * i] + fine[2 * i + 1]);
  }
}

void prolong_level(double* coarse, double* fine, int n) {
  int i;
  for (i = 0; i < n / 2; i++) {
    fine[2 * i] = coarse[i];
    fine[2 * i + 1] = coarse[i];
  }
}

void exchange_halo(double* grid, int n, int rank, int size) {
  MPI_Status status;
  int left = rank - 1;
  int right = rank + 1;
  /* phase 1: send boundary to the right neighbour, receive from left */
  if (right < size) {
    MPI_Send(&grid[n - 4], 4, MPI_DOUBLE, right, __TAG_PHASE1__, MPI_COMM_WORLD);
  }
  if (left >= 0) {
    MPI_Recv(halo_left, 4, MPI_DOUBLE, left, __TAG_PHASE1__, MPI_COMM_WORLD, &status);
  }
  /* phase 2: send boundary to the left neighbour, receive from right */
  if (left >= 0) {
    MPI_Send(&grid[0], 4, MPI_DOUBLE, left, __TAG_PHASE2__, MPI_COMM_WORLD);
  }
  if (right < size) {
    MPI_Recv(halo_right, 4, MPI_DOUBLE, right, __TAG_PHASE2__, MPI_COMM_WORLD, &status);
  }
}

double residual_allreduce(double local) {
  double global = 0.0;
  MPI_Allreduce(&local, &global, 1, MPI_DOUBLE, MPI_SUM, MPI_COMM_WORLD);
  return global;
}

int main(int argc, char** argv) {
  double coarse[GRID];
  double residual = 0.0;
  int it, level;

  MPI_Init(&argc, &argv);
  MPI_Comm_rank(MPI_COMM_WORLD, &solver_rank);
  MPI_Comm_size(MPI_COMM_WORLD, &solver_size);

  grid_init(local_grid, GRID, solver_rank);

  for (it = 0; it < ITERS; it++) {
    for (level = 0; level < LEVELS; level++) {
      smooth_level(local_grid, GRID, 0.5);
      exchange_halo(local_grid, GRID, solver_rank, solver_size);
      restrict_level(local_grid, coarse, GRID);
      smooth_level(coarse, GRID / 2, 0.6);
      prolong_level(coarse, local_grid, GRID);
    }
    residual = residual_allreduce(grid_norm(local_grid, GRID));
    if (solver_rank == 0) {
      printf("iter %d residual %f\n", it, residual);
    }
    MPI_Barrier(MPI_COMM_WORLD);
  }

  MPI_Finalize();
  return 0;
}
"""


def hypre_pair() -> Tuple[Sample, Sample]:
    """(correct, incorrect) versions of the solver.

    Incorrect: both exchange phases use tag 0 — with more than two ranks
    a phase-2 message can match a phase-1 receive (the bc3158e bug).
    Correct: distinct per-phase tags.
    """
    correct_src = (_SOLVER_TEMPLATE
                   .replace("__TAG_PHASE1__", "100")
                   .replace("__TAG_PHASE2__", "101"))
    incorrect_src = (_SOLVER_TEMPLATE
                     .replace("__TAG_PHASE1__", "0")
                     .replace("__TAG_PHASE2__", "0"))
    return (
        Sample(name="hypre-ok.c", source=correct_src, label="Correct",
               suite="HYPRE"),
        Sample(name="hypre-ko.c", source=incorrect_src, label="Message Race",
               suite="HYPRE"),
    )


def hypre_dataset() -> Dataset:
    """The Hypre pair as a two-sample test-only dataset.

    Used by the evaluation matrix as a cross-dataset generalization
    target (train on a suite, test on real-world-shaped code) — and,
    with one sample per class, it doubles as a live single-sample-class
    metric edge case.
    """
    ok, ko = hypre_pair()
    return Dataset("Hypre", [ok, ko])
