"""Process-stable seeding for the dataset generators.

``hash()`` / ``.__hash__()`` on strings is salted per interpreter process
(PEP 456), so seeding ``random.Random`` with a tuple hash silently makes
"deterministic" generators produce *different suites in every run* —
observed as rare cross-run test flakes before this module existed.  All
generator RNG streams derive from :func:`stable_seed` instead.
"""

from __future__ import annotations

import hashlib


def stable_seed(*parts: object) -> int:
    """A 31-bit seed derived only from the reprs of ``parts``."""
    text = "\x1f".join(repr(p) for p in parts)
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little") & 0x7FFFFFFF
