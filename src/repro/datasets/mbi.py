"""MBI-style benchmark generator.

Produces ~1860 deterministic C programs across the 9 MBI error labels plus
correct codes, with the per-label counts of the paper's Fig. 1(b) / Fig. 3
(1116 incorrect + 745 correct; Resource Leak has exactly 14 instances, the
detail Section V-A calls out).
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Sequence, Tuple

from repro.datasets.labels import CORRECT
from repro.datasets.loader import Sample
from repro.datasets.seeding import stable_seed
from repro.datasets.templates import (
    COLLECTIVES,
    DTYPES,
    NB_COLLECTIVES,
    Prog,
    REDUCE_OPS,
    collective_call,
    filler_compute,
    mbi_header,
)

#: Per-label sample counts (matches Fig. 1(b) / Fig. 3 shapes).
MBI_COUNTS: Dict[str, int] = {
    CORRECT: 745,
    "Call Ordering": 582,
    "Parameter Matching": 160,
    "Invalid Parameter": 100,
    "Message Race": 70,
    "Request Lifecycle": 60,
    "Epoch Lifecycle": 50,
    "Local Concurrency": 40,
    "Global Concurrency": 40,
    "Resource Leak": 14,
}

_P2P_MODES = ("send", "ssend", "isend", "psend")


def _p2p_exchange(prog: Prog, rng: random.Random, *, mode: str = "send",
                  ctype: str = "int", mpitype: str = "MPI_INT", count: int = 4,
                  send_tag: str = "1", recv_tag: str = "1",
                  recv_type: str = "", recv_count: int = 0,
                  recv_source: str = "0", send_dest: str = "1",
                  skip_wait: bool = False, touch_buffer: bool = False) -> None:
    """Rank 0 sends to rank 1; rank 1 receives.  Knobs introduce bugs."""
    recv_type = recv_type or mpitype
    recv_count = recv_count or count
    prog.decl(f"{ctype} buf[{max(1, count, recv_count)}];")
    prog.decl("MPI_Status status;")
    body = prog.stmt
    body("if (rank == 0) {")
    if mode == "send":
        body(f"  MPI_Send(buf, {count}, {mpitype}, {send_dest}, {send_tag}, MPI_COMM_WORLD);")
    elif mode == "ssend":
        body(f"  MPI_Ssend(buf, {count}, {mpitype}, {send_dest}, {send_tag}, MPI_COMM_WORLD);")
    elif mode == "isend":
        prog.decl("MPI_Request req;")
        body(f"  MPI_Isend(buf, {count}, {mpitype}, {send_dest}, {send_tag}, MPI_COMM_WORLD, &req);")
        if touch_buffer:
            body(f"  buf[0] = ({ctype}) rank;")
        if not skip_wait:
            body("  MPI_Wait(&req, &status);")
    elif mode == "psend":
        prog.decl("MPI_Request req;")
        body(f"  MPI_Send_init(buf, {count}, {mpitype}, {send_dest}, {send_tag}, MPI_COMM_WORLD, &req);")
        body("  MPI_Start(&req);")
        if not skip_wait:
            body("  MPI_Wait(&req, &status);")
        body("  MPI_Request_free(&req);")
    body("}")
    body("if (rank == 1) {")
    body(f"  MPI_Recv(buf, {recv_count}, {recv_type}, {recv_source}, {recv_tag}, "
         "MPI_COMM_WORLD, &status);")
    body("}")


def _new_prog(rng: random.Random, min_procs: int = 2) -> Prog:
    prog = Prog(min_procs=min_procs)
    if rng.random() < 0.7:
        filler_compute(rng, prog)
    return prog


class MBIGenerator:
    """Deterministic generator for the MBI-style dataset."""

    def __init__(self, seed: int = 20240304):
        self.seed = seed

    # ------------------------------------------------------------- correct
    def _correct_variants(self) -> List[Callable[[random.Random, int], Tuple[Prog, List[str]]]]:
        def pingpong(rng, i):
            prog = _new_prog(rng)
            mode = _P2P_MODES[i % len(_P2P_MODES)]
            ctype, mpitype = DTYPES[i % len(DTYPES)]
            count = rng.choice([1, 4, 16, 64])
            tag = str(rng.randrange(0, 20))
            _p2p_exchange(prog, rng, mode=mode, ctype=ctype, mpitype=mpitype,
                          count=count, send_tag=tag, recv_tag=tag)
            return prog, ["P2P!basic" if mode in ("send", "ssend") else "P2P!nonblocking"]

        def exchange_both(rng, i):
            prog = _new_prog(rng)
            ctype, mpitype = DTYPES[i % len(DTYPES)]
            count = rng.choice([1, 4, 8])
            prog.decl(f"{ctype} sb[{count}];")
            prog.decl(f"{ctype} rb[{count}];")
            prog.decl("MPI_Status status;")
            prog.stmt("int peer = (rank == 0) ? 1 : 0;")
            prog.stmt("if (rank < 2) {")
            prog.stmt(f"  MPI_Sendrecv(sb, {count}, {mpitype}, peer, 3, rb, {count}, "
                      f"{mpitype}, peer, 3, MPI_COMM_WORLD, &status);")
            prog.stmt("}")
            return prog, ["P2P!basic"]

        def coll(rng, i):
            prog = _new_prog(rng, min_procs=2)
            op = COLLECTIVES[i % len(COLLECTIVES)]
            ctype, mpitype = DTYPES[(i // len(COLLECTIVES)) % len(DTYPES)]
            count = rng.choice([1, 4, 16])
            call = collective_call(prog, op, ctype=ctype, mpitype=mpitype,
                                   count=count, red_op=rng.choice(REDUCE_OPS))
            prog.stmt(call)
            return prog, ["COLL!basic"]

        def coll_chain(rng, i):
            prog = _new_prog(rng)
            k = 2 + (i % 2)
            ops = [COLLECTIVES[(i * 3 + j) % len(COLLECTIVES)] for j in range(k)]
            for j, op in enumerate(ops):
                ctype, mpitype = DTYPES[(i + j) % len(DTYPES)]
                prog.stmt(collective_call(prog, op, ctype=ctype, mpitype=mpitype,
                                          count=rng.choice([1, 4]), suffix=str(j)))
            return prog, ["COLL!basic"]

        def nb_coll(rng, i):
            prog = _new_prog(rng)
            op = NB_COLLECTIVES[i % len(NB_COLLECTIVES)]
            ctype, mpitype = DTYPES[i % len(DTYPES)]
            prog.stmt(collective_call(prog, op, ctype=ctype, mpitype=mpitype,
                                      count=rng.choice([1, 4])))
            return prog, ["COLL!nonblocking"]

        def persistent(rng, i):
            prog = _new_prog(rng)
            ctype, mpitype = DTYPES[i % len(DTYPES)]
            count = rng.choice([1, 4, 8])
            prog.decl(f"{ctype} buf[{count}];")
            prog.decl("MPI_Request req;")
            prog.decl("MPI_Status status;")
            prog.stmt("if (rank == 0) {")
            prog.stmt(f"  MPI_Send_init(buf, {count}, {mpitype}, 1, 0, MPI_COMM_WORLD, &req);")
            prog.stmt("  MPI_Start(&req);")
            prog.stmt("  MPI_Wait(&req, &status);")
            prog.stmt("  MPI_Request_free(&req);")
            prog.stmt("}")
            prog.stmt("if (rank == 1) {")
            prog.stmt(f"  MPI_Recv_init(buf, {count}, {mpitype}, 0, 0, MPI_COMM_WORLD, &req);")
            prog.stmt("  MPI_Start(&req);")
            prog.stmt("  MPI_Wait(&req, &status);")
            prog.stmt("  MPI_Request_free(&req);")
            prog.stmt("}")
            return prog, ["P2P!persistent"]

        def rma_fence(rng, i):
            prog = _new_prog(rng)
            kind = ("MPI_Put", "MPI_Get", "MPI_Accumulate")[i % 3]
            prog.decl("MPI_Win win;")
            prog.decl("int winbuf[16];")
            prog.decl("int data = 42;")
            prog.stmt("MPI_Win_create(winbuf, 16, sizeof(int), MPI_INFO_NULL, "
                      "MPI_COMM_WORLD, &win);")
            prog.stmt("MPI_Win_fence(0, win);")
            prog.stmt("if (rank == 0) {")
            if kind == "MPI_Put":
                prog.stmt("  MPI_Put(&data, 1, MPI_INT, 1, 0, 1, MPI_INT, win);")
            elif kind == "MPI_Get":
                prog.stmt("  MPI_Get(&data, 1, MPI_INT, 1, 0, 1, MPI_INT, win);")
            else:
                prog.stmt("  MPI_Accumulate(&data, 1, MPI_INT, 1, 0, 1, MPI_INT, "
                          "MPI_SUM, win);")
            prog.stmt("}")
            prog.stmt("MPI_Win_fence(0, win);")
            prog.stmt("MPI_Win_free(&win);")
            return prog, ["RMA!fence"]

        def rma_lock(rng, i):
            prog = _new_prog(rng)
            prog.decl("MPI_Win win;")
            prog.decl("int winbuf[8];")
            prog.decl("int data = 7;")
            prog.stmt("MPI_Win_create(winbuf, 8, sizeof(int), MPI_INFO_NULL, "
                      "MPI_COMM_WORLD, &win);")
            prog.stmt("if (rank == 0) {")
            prog.stmt("  MPI_Win_lock(MPI_LOCK_EXCLUSIVE, 1, 0, win);")
            op = "MPI_Put(&data, 1, MPI_INT, 1, 0, 1, MPI_INT, win);" if i % 2 == 0 \
                else "MPI_Get(&data, 1, MPI_INT, 1, 0, 1, MPI_INT, win);"
            prog.stmt("  " + op)
            prog.stmt("  MPI_Win_unlock(1, win);")
            prog.stmt("}")
            prog.stmt("MPI_Barrier(MPI_COMM_WORLD);")
            prog.stmt("MPI_Win_free(&win);")
            return prog, ["RMA!lock"]

        def comm_mgmt(rng, i):
            prog = _new_prog(rng)
            prog.decl("MPI_Comm newcomm;")
            if i % 2 == 0:
                prog.stmt("MPI_Comm_split(MPI_COMM_WORLD, rank % 2, rank, &newcomm);")
            else:
                prog.stmt("MPI_Comm_dup(MPI_COMM_WORLD, &newcomm);")
            prog.stmt(collective_call(prog, COLLECTIVES[i % len(COLLECTIVES)],
                                      comm="newcomm"))
            prog.stmt("MPI_Comm_free(&newcomm);")
            return prog, ["COLL!basic"]

        def anysource_single(rng, i):
            # Deterministic wildcard receive: only one possible sender.
            prog = _new_prog(rng)
            ctype, mpitype = DTYPES[i % len(DTYPES)]
            prog.decl(f"{ctype} buf[4];")
            prog.decl("MPI_Status status;")
            prog.stmt("if (rank == 1) {")
            prog.stmt(f"  MPI_Send(buf, 4, {mpitype}, 0, 9, MPI_COMM_WORLD);")
            prog.stmt("}")
            prog.stmt("if (rank == 0) {")
            prog.stmt(f"  MPI_Recv(buf, 4, {mpitype}, MPI_ANY_SOURCE, 9, "
                      "MPI_COMM_WORLD, &status);")
            prog.stmt("}")
            return prog, ["P2P!basic"]

        def compute_only(rng, i):
            prog = _new_prog(rng, min_procs=1)
            for _ in range(1 + i % 3):
                filler_compute(rng, prog)
            prog.stmt("MPI_Barrier(MPI_COMM_WORLD);")
            return prog, ["COLL!basic"]

        def iterative(rng, i):
            prog = _new_prog(rng)
            ctype, mpitype = DTYPES[i % len(DTYPES)]
            iters = rng.choice([2, 3, 4])
            prog.decl(f"{ctype} buf[4];")
            prog.decl("MPI_Status status;")
            prog.decl("int it;")
            prog.stmt(f"for (it = 0; it < {iters}; it++) {{")
            prog.stmt("  if (rank == 0) {")
            prog.stmt(f"    MPI_Send(buf, 4, {mpitype}, 1, it, MPI_COMM_WORLD);")
            prog.stmt("  }")
            prog.stmt("  if (rank == 1) {")
            prog.stmt(f"    MPI_Recv(buf, 4, {mpitype}, 0, it, MPI_COMM_WORLD, &status);")
            prog.stmt("  }")
            prog.stmt("  MPI_Barrier(MPI_COMM_WORLD);")
            prog.stmt("}")
            return prog, ["P2P!basic", "COLL!basic"]

        def probe_recv(rng, i):
            prog = _new_prog(rng)
            prog.decl("int buf[4];")
            prog.decl("MPI_Status status;")
            prog.stmt("if (rank == 0) {")
            prog.stmt("  MPI_Send(buf, 4, MPI_INT, 1, 2, MPI_COMM_WORLD);")
            prog.stmt("}")
            prog.stmt("if (rank == 1) {")
            prog.stmt("  MPI_Probe(0, 2, MPI_COMM_WORLD, &status);")
            prog.stmt("  MPI_Recv(buf, 4, MPI_INT, status.MPI_SOURCE, 2, "
                      "MPI_COMM_WORLD, &status);")
            prog.stmt("}")
            return prog, ["P2P!probe"]

        # Weights shape the suite like MBI: lots of p2p/collective variants.
        return ([pingpong] * 4 + [coll] * 5 + [coll_chain] * 4 + [exchange_both]
                + [nb_coll] + [persistent] + [rma_fence] + [rma_lock]
                + [comm_mgmt] + [anysource_single] + [compute_only]
                + [iterative] * 2 + [probe_recv])

    # ------------------------------------------------------------- errors
    def _call_ordering_variants(self):
        def recv_recv_deadlock(rng, i):
            prog = _new_prog(rng)
            ctype, mpitype = DTYPES[i % len(DTYPES)]
            count = rng.choice([1, 4, 16])
            prog.decl(f"{ctype} buf[{count}];")
            prog.decl("MPI_Status status;")
            prog.stmt("int peer = (rank == 0) ? 1 : 0;")
            prog.stmt("if (rank < 2) {")
            prog.stmt(f"  MPI_Recv(buf, {count}, {mpitype}, peer, 0, MPI_COMM_WORLD, &status);")
            prog.stmt(f"  MPI_Send(buf, {count}, {mpitype}, peer, 0, MPI_COMM_WORLD);")
            prog.stmt("}")
            return prog, ["P2P!basic"]

        def ssend_cycle(rng, i):
            prog = _new_prog(rng)
            ctype, mpitype = DTYPES[i % len(DTYPES)]
            count = rng.choice([1, 4])
            prog.decl(f"{ctype} buf[{count}];")
            prog.decl("MPI_Status status;")
            prog.stmt("int peer = (rank == 0) ? 1 : 0;")
            prog.stmt("if (rank < 2) {")
            prog.stmt(f"  MPI_Ssend(buf, {count}, {mpitype}, peer, 0, MPI_COMM_WORLD);")
            prog.stmt(f"  MPI_Recv(buf, {count}, {mpitype}, peer, 0, MPI_COMM_WORLD, &status);")
            prog.stmt("}")
            return prog, ["P2P!basic"]

        def big_send_cycle(rng, i):
            prog = _new_prog(rng)
            ctype, mpitype = DTYPES[i % len(DTYPES)]
            count = rng.choice([128, 256, 512])  # beyond the eager threshold
            prog.decl(f"{ctype} buf[{count}];")
            prog.decl("MPI_Status status;")
            prog.stmt("int peer = (rank == 0) ? 1 : 0;")
            prog.stmt("if (rank < 2) {")
            prog.stmt(f"  MPI_Send(buf, {count}, {mpitype}, peer, 0, MPI_COMM_WORLD);")
            prog.stmt(f"  MPI_Recv(buf, {count}, {mpitype}, peer, 0, MPI_COMM_WORLD, &status);")
            prog.stmt("}")
            return prog, ["P2P!basic"]

        def tag_mismatch(rng, i):
            prog = _new_prog(rng)
            t1 = rng.randrange(0, 8)
            t2 = t1 + 1 + rng.randrange(4)
            _p2p_exchange(prog, rng, mode=_P2P_MODES[i % 2],
                          ctype=DTYPES[i % len(DTYPES)][0],
                          mpitype=DTYPES[i % len(DTYPES)][1],
                          send_tag=str(t1), recv_tag=str(t2))
            return prog, ["P2P!basic"]

        def source_mismatch(rng, i):
            prog = _new_prog(rng)
            # Receiver waits on the wrong peer.
            _p2p_exchange(prog, rng, recv_source="1" if i % 2 else "2",
                          send_dest="1")
            return prog, ["P2P!basic"]

        def collective_mismatch(rng, i):
            prog = _new_prog(rng)
            ops = COLLECTIVES
            a = ops[i % len(ops)]
            b = ops[(i // len(ops) + 1 + i) % len(ops)]
            if a == b:
                b = ops[(ops.index(b) + 1) % len(ops)]
            prog.stmt("if (rank == 0) {")
            prog.stmt("  " + collective_call(prog, a, suffix="A"))
            prog.stmt("} else {")
            prog.stmt("  " + collective_call(prog, b, suffix="B"))
            prog.stmt("}")
            return prog, ["COLL!basic"]

        def collective_missing(rng, i):
            prog = _new_prog(rng)
            op = COLLECTIVES[i % len(COLLECTIVES)]
            prog.stmt("if (rank != 0) {")
            prog.stmt("  " + collective_call(prog, op))
            prog.stmt("}")
            return prog, ["COLL!basic"]

        def collective_order_swap(rng, i):
            prog = _new_prog(rng)
            a = COLLECTIVES[i % len(COLLECTIVES)]
            b = COLLECTIVES[(i + 3) % len(COLLECTIVES)]
            if a == b:
                b = COLLECTIVES[(i + 4) % len(COLLECTIVES)]
            prog.stmt("if (rank == 0) {")
            prog.stmt("  " + collective_call(prog, a, suffix="A"))
            prog.stmt("  " + collective_call(prog, b, suffix="B"))
            prog.stmt("} else {")
            prog.stmt("  " + collective_call(prog, b, suffix="C"))
            prog.stmt("  " + collective_call(prog, a, suffix="D"))
            prog.stmt("}")
            return prog, ["COLL!basic"]

        def coll_vs_p2p(rng, i):
            prog = _new_prog(rng)
            op = COLLECTIVES[i % len(COLLECTIVES)]
            prog.decl("int pbuf[4];")
            prog.decl("MPI_Status status;")
            prog.stmt("if (rank == 0) {")
            prog.stmt("  MPI_Recv(pbuf, 4, MPI_INT, 1, 0, MPI_COMM_WORLD, &status);")
            prog.stmt("  " + collective_call(prog, op))
            prog.stmt("} else if (rank == 1) {")
            prog.stmt("  " + collective_call(prog, op, suffix="B"))
            prog.stmt("  MPI_Send(pbuf, 4, MPI_INT, 0, 0, MPI_COMM_WORLD);")
            prog.stmt("}")
            return prog, ["COLL!basic", "P2P!basic"]

        def env_misuse(rng, i):
            prog = _new_prog(rng, min_procs=1)
            kind = i % 3
            if kind == 0:       # missing finalize
                prog.finalize = False
                prog.stmt("MPI_Barrier(MPI_COMM_WORLD);")
            elif kind == 1:     # double init
                prog.stmt("MPI_Init(&argc, &argv);")
            else:               # use after finalize
                prog.stmt("MPI_Finalize();")
                prog.stmt("MPI_Barrier(MPI_COMM_WORLD);")
                prog.finalize = False
            return prog, ["ENV!misuse"]

        def wait_deadlock(rng, i):
            prog = _new_prog(rng)
            ctype, mpitype = DTYPES[i % len(DTYPES)]
            prog.decl(f"{ctype} buf[4];")
            prog.decl("MPI_Request req;")
            prog.decl("MPI_Status status;")
            prog.stmt("if (rank == 0) {")
            prog.stmt(f"  MPI_Irecv(buf, 4, {mpitype}, 1, 7, MPI_COMM_WORLD, &req);")
            prog.stmt("  MPI_Wait(&req, &status);")   # never matched
            prog.stmt("}")
            return prog, ["P2P!nonblocking"]

        return ([recv_recv_deadlock] * 3 + [ssend_cycle] * 2 + [big_send_cycle] * 2
                + [tag_mismatch] * 3 + [source_mismatch] * 2
                + [collective_mismatch] * 4 + [collective_missing] * 2
                + [collective_order_swap] * 3 + [coll_vs_p2p] * 2
                + [env_misuse] + [wait_deadlock])

    def _parameter_matching_variants(self):
        def p2p_type_mismatch(rng, i):
            prog = _new_prog(rng)
            send = DTYPES[i % len(DTYPES)]
            recv = DTYPES[(i + 1 + i // len(DTYPES)) % len(DTYPES)]
            if recv[1] == send[1]:
                recv = DTYPES[(i + 2) % len(DTYPES)]
            _p2p_exchange(prog, rng, ctype=send[0], mpitype=send[1],
                          recv_type=recv[1], count=rng.choice([1, 4, 8]))
            return prog, ["P2P!basic"]

        def p2p_count_mismatch(rng, i):
            prog = _new_prog(rng)
            ctype, mpitype = DTYPES[i % len(DTYPES)]
            count = rng.choice([4, 8, 16])
            _p2p_exchange(prog, rng, ctype=ctype, mpitype=mpitype, count=count,
                          recv_count=max(1, count // 2))
            return prog, ["P2P!basic"]

        def root_mismatch(rng, i):
            prog = _new_prog(rng)
            rooted = ("MPI_Bcast", "MPI_Reduce", "MPI_Gather", "MPI_Scatter")
            op = rooted[i % len(rooted)]
            prog.stmt(collective_call(prog, op, root="rank"))
            return prog, ["COLL!basic"]

        def coll_type_mismatch(rng, i):
            prog = _new_prog(rng)
            typed = ("MPI_Bcast", "MPI_Reduce", "MPI_Allreduce", "MPI_Gather",
                     "MPI_Scatter", "MPI_Scan")
            op = typed[i % len(typed)]
            a = DTYPES[i % len(DTYPES)][1]
            b = DTYPES[(i + 2) % len(DTYPES)][1]
            ctype = DTYPES[i % len(DTYPES)][0]
            prog.stmt("if (rank == 0) {")
            prog.stmt("  " + collective_call(prog, op, ctype=ctype, mpitype=a, suffix="A"))
            prog.stmt("} else {")
            prog.stmt("  " + collective_call(prog, op, ctype=ctype, mpitype=b, suffix="B"))
            prog.stmt("}")
            return prog, ["COLL!basic"]

        def op_mismatch(rng, i):
            prog = _new_prog(rng)
            reduce_like = ("MPI_Reduce", "MPI_Allreduce", "MPI_Scan", "MPI_Exscan")
            op = reduce_like[i % len(reduce_like)]
            a = REDUCE_OPS[i % len(REDUCE_OPS)]
            b = REDUCE_OPS[(i + 1) % len(REDUCE_OPS)]
            prog.stmt("if (rank == 0) {")
            prog.stmt("  " + collective_call(prog, op, red_op=a, suffix="A"))
            prog.stmt("} else {")
            prog.stmt("  " + collective_call(prog, op, red_op=b, suffix="B"))
            prog.stmt("}")
            return prog, ["COLL!basic"]

        def coll_count_mismatch(rng, i):
            prog = _new_prog(rng)
            typed = ("MPI_Bcast", "MPI_Reduce", "MPI_Allreduce")
            op = typed[i % len(typed)]
            prog.stmt("if (rank == 0) {")
            prog.stmt("  " + collective_call(prog, op, count=4, suffix="A"))
            prog.stmt("} else {")
            prog.stmt("  " + collective_call(prog, op, count=8, suffix="B"))
            prog.stmt("}")
            return prog, ["COLL!basic"]

        return ([p2p_type_mismatch] * 3 + [p2p_count_mismatch]
                + [root_mismatch] * 2 + [coll_type_mismatch] * 2
                + [op_mismatch] + [coll_count_mismatch])

    def _invalid_parameter_variants(self):
        def negative_count(rng, i):
            prog = _new_prog(rng)
            ctype, mpitype = DTYPES[i % len(DTYPES)]
            _p2p_exchange(prog, rng, ctype=ctype, mpitype=mpitype,
                          count=4, recv_count=4)
            # Corrupt the sender count afterwards via direct emission.
            prog.body = [line.replace(f"MPI_Send(buf, 4", "MPI_Send(buf, -1")
                         .replace(f"MPI_Ssend(buf, 4", "MPI_Ssend(buf, -1")
                         for line in prog.body]
            return prog, ["P2P!basic"]

        def invalid_tag(rng, i):
            prog = _new_prog(rng)
            bad = "-2" if i % 2 == 0 else "1000000"
            _p2p_exchange(prog, rng, send_tag=bad, recv_tag=bad)
            return prog, ["P2P!basic"]

        def invalid_rank(rng, i):
            prog = _new_prog(rng)
            bad = "nprocs" if i % 2 == 0 else "-3"
            _p2p_exchange(prog, rng, send_dest=bad)
            return prog, ["P2P!basic"]

        def null_buffer(rng, i):
            prog = _new_prog(rng)
            ctype, mpitype = DTYPES[i % len(DTYPES)]
            prog.decl("MPI_Status status;")
            prog.decl(f"{ctype} buf[4];")
            prog.stmt("if (rank == 0) {")
            prog.stmt(f"  MPI_Send(NULL, 4, {mpitype}, 1, 0, MPI_COMM_WORLD);")
            prog.stmt("}")
            prog.stmt("if (rank == 1) {")
            prog.stmt(f"  MPI_Recv(buf, 4, {mpitype}, 0, 0, MPI_COMM_WORLD, &status);")
            prog.stmt("}")
            return prog, ["P2P!basic"]

        def invalid_dtype(rng, i):
            prog = _new_prog(rng)
            op = ("MPI_Bcast", "MPI_Reduce", "MPI_Allreduce")[i % 3]
            prog.stmt(collective_call(prog, op, mpitype="MPI_DATATYPE_NULL"))
            return prog, ["COLL!basic"]

        def invalid_op(rng, i):
            prog = _new_prog(rng)
            op = ("MPI_Reduce", "MPI_Allreduce", "MPI_Scan")[i % 3]
            prog.stmt(collective_call(prog, op, red_op="MPI_OP_NULL"))
            return prog, ["COLL!basic"]

        def invalid_comm(rng, i):
            prog = _new_prog(rng)
            op = ("MPI_Barrier", "MPI_Bcast", "MPI_Allreduce")[i % 3]
            prog.stmt(collective_call(prog, op, comm="MPI_COMM_NULL"))
            return prog, ["COLL!basic"]

        def invalid_root(rng, i):
            prog = _new_prog(rng)
            op = ("MPI_Bcast", "MPI_Reduce", "MPI_Gather", "MPI_Scatter")[i % 4]
            prog.stmt(collective_call(prog, op, root="-1" if i % 2 else "nprocs"))
            return prog, ["COLL!basic"]

        return ([negative_count] * 2 + [invalid_tag] * 2 + [invalid_rank] * 2
                + [null_buffer] + [invalid_dtype] + [invalid_op]
                + [invalid_comm] + [invalid_root] * 2)

    def _message_race_variants(self):
        def two_senders(rng, i):
            prog = _new_prog(rng, min_procs=3)
            ctype, mpitype = DTYPES[i % len(DTYPES)]
            prog.decl(f"{ctype} buf[2];")
            prog.decl("MPI_Status status;")
            prog.stmt("if (rank == 0) {")
            prog.stmt(f"  MPI_Recv(buf, 1, {mpitype}, MPI_ANY_SOURCE, 0, "
                      "MPI_COMM_WORLD, &status);")
            prog.stmt(f"  MPI_Recv(buf, 1, {mpitype}, MPI_ANY_SOURCE, 0, "
                      "MPI_COMM_WORLD, &status);")
            prog.stmt("} else if (rank <= 2) {")
            prog.stmt(f"  MPI_Send(buf, 1, {mpitype}, 0, 0, MPI_COMM_WORLD);")
            prog.stmt("}")
            return prog, ["P2P!basic"]

        def race_loop(rng, i):
            prog = _new_prog(rng, min_procs=3)
            prog.decl("int buf[2];")
            prog.decl("MPI_Status status;")
            prog.decl("int it;")
            prog.stmt("if (rank == 0) {")
            prog.stmt("  for (it = 0; it < nprocs - 1; it++) {")
            prog.stmt("    MPI_Recv(buf, 1, MPI_INT, MPI_ANY_SOURCE, 4, "
                      "MPI_COMM_WORLD, &status);")
            prog.stmt("  }")
            prog.stmt("} else {")
            prog.stmt("  MPI_Send(buf, 1, MPI_INT, 0, 4, MPI_COMM_WORLD);")
            prog.stmt("}")
            return prog, ["P2P!basic"]

        def anytag_race(rng, i):
            prog = _new_prog(rng, min_procs=3)
            prog.decl("int buf[2];")
            prog.decl("MPI_Status status;")
            prog.stmt("if (rank == 0) {")
            prog.stmt("  MPI_Recv(buf, 1, MPI_INT, MPI_ANY_SOURCE, MPI_ANY_TAG, "
                      "MPI_COMM_WORLD, &status);")
            prog.stmt("  MPI_Recv(buf, 1, MPI_INT, MPI_ANY_SOURCE, MPI_ANY_TAG, "
                      "MPI_COMM_WORLD, &status);")
            prog.stmt("} else if (rank <= 2) {")
            prog.stmt(f"  MPI_Send(buf, 1, MPI_INT, 0, rank, MPI_COMM_WORLD);")
            prog.stmt("}")
            return prog, ["P2P!basic"]

        def irecv_race(rng, i):
            prog = _new_prog(rng, min_procs=3)
            prog.decl("int buf[2];")
            prog.decl("MPI_Request req;")
            prog.decl("MPI_Status status;")
            prog.stmt("if (rank == 0) {")
            prog.stmt("  MPI_Irecv(buf, 1, MPI_INT, MPI_ANY_SOURCE, 0, "
                      "MPI_COMM_WORLD, &req);")
            prog.stmt("  MPI_Wait(&req, &status);")
            prog.stmt("  MPI_Recv(buf, 1, MPI_INT, MPI_ANY_SOURCE, 0, "
                      "MPI_COMM_WORLD, &status);")
            prog.stmt("} else if (rank <= 2) {")
            prog.stmt("  MPI_Send(buf, 1, MPI_INT, 0, 0, MPI_COMM_WORLD);")
            prog.stmt("}")
            return prog, ["P2P!nonblocking"]

        return [two_senders] * 2 + [race_loop] + [anytag_race] + [irecv_race]

    def _request_lifecycle_variants(self):
        def missing_wait(rng, i):
            prog = _new_prog(rng)
            mode = ("isend", "psend")[i % 2]
            _p2p_exchange(prog, rng, mode=mode, count=rng.choice([4, 128]),
                          skip_wait=True)
            return prog, ["P2P!nonblocking"]

        def wait_on_null(rng, i):
            prog = _new_prog(rng, min_procs=1)
            prog.decl("MPI_Request req = MPI_REQUEST_NULL;")
            prog.decl("MPI_Status status;")
            prog.stmt("MPI_Wait(&req, &status);")
            return prog, ["P2P!nonblocking"]

        def double_start(rng, i):
            prog = _new_prog(rng)
            prog.decl("int buf[200];")
            prog.decl("MPI_Request req;")
            prog.decl("MPI_Status status;")
            prog.stmt("if (rank == 0) {")
            prog.stmt("  MPI_Send_init(buf, 200, MPI_INT, 1, 0, MPI_COMM_WORLD, &req);")
            prog.stmt("  MPI_Start(&req);")
            prog.stmt("  MPI_Start(&req);")
            prog.stmt("  MPI_Wait(&req, &status);")
            prog.stmt("  MPI_Request_free(&req);")
            prog.stmt("}")
            prog.stmt("if (rank == 1) {")
            prog.stmt("  MPI_Recv(buf, 200, MPI_INT, 0, 0, MPI_COMM_WORLD, &status);")
            prog.stmt("  MPI_Recv(buf, 200, MPI_INT, 0, 0, MPI_COMM_WORLD, &status);")
            prog.stmt("}")
            return prog, ["P2P!persistent"]

        def free_active(rng, i):
            prog = _new_prog(rng)
            prog.decl("int buf[128];")
            prog.decl("MPI_Request req;")
            prog.decl("MPI_Status status;")
            prog.stmt("if (rank == 0) {")
            prog.stmt("  MPI_Isend(buf, 128, MPI_INT, 1, 0, MPI_COMM_WORLD, &req);")
            prog.stmt("  MPI_Request_free(&req);")
            prog.stmt("}")
            prog.stmt("if (rank == 1) {")
            prog.stmt("  MPI_Recv(buf, 128, MPI_INT, 0, 0, MPI_COMM_WORLD, &status);")
            prog.stmt("}")
            return prog, ["P2P!nonblocking"]

        def missing_start(rng, i):
            prog = _new_prog(rng)
            prog.decl("int buf[4];")
            prog.decl("MPI_Request req;")
            prog.decl("MPI_Status status;")
            prog.stmt("if (rank == 0) {")
            prog.stmt("  MPI_Send_init(buf, 4, MPI_INT, 1, 0, MPI_COMM_WORLD, &req);")
            prog.stmt("  MPI_Wait(&req, &status);")
            prog.stmt("  MPI_Request_free(&req);")
            prog.stmt("  MPI_Send(buf, 4, MPI_INT, 1, 0, MPI_COMM_WORLD);")
            prog.stmt("}")
            prog.stmt("if (rank == 1) {")
            prog.stmt("  MPI_Recv(buf, 4, MPI_INT, 0, 0, MPI_COMM_WORLD, &status);")
            prog.stmt("}")
            return prog, ["P2P!persistent"]

        return ([missing_wait] * 2 + [wait_on_null] + [double_start]
                + [free_active] + [missing_start])

    def _epoch_lifecycle_variants(self):
        def rma_no_epoch(rng, i):
            prog = _new_prog(rng)
            kind = ("MPI_Put", "MPI_Get", "MPI_Accumulate")[i % 3]
            prog.decl("MPI_Win win;")
            prog.decl("int winbuf[8];")
            prog.decl("int data = 1;")
            prog.stmt("MPI_Win_create(winbuf, 8, sizeof(int), MPI_INFO_NULL, "
                      "MPI_COMM_WORLD, &win);")
            prog.stmt("if (rank == 0) {")
            if kind == "MPI_Accumulate":
                prog.stmt("  MPI_Accumulate(&data, 1, MPI_INT, 1, 0, 1, MPI_INT, "
                          "MPI_SUM, win);")
            else:
                prog.stmt(f"  {kind}(&data, 1, MPI_INT, 1, 0, 1, MPI_INT, win);")
            prog.stmt("}")
            prog.stmt("MPI_Win_free(&win);")
            return prog, ["RMA!fence"]

        def unlock_no_lock(rng, i):
            prog = _new_prog(rng)
            prog.decl("MPI_Win win;")
            prog.decl("int winbuf[8];")
            prog.stmt("MPI_Win_create(winbuf, 8, sizeof(int), MPI_INFO_NULL, "
                      "MPI_COMM_WORLD, &win);")
            prog.stmt("if (rank == 0) {")
            prog.stmt("  MPI_Win_unlock(1, win);")
            prog.stmt("}")
            prog.stmt("MPI_Win_free(&win);")
            return prog, ["RMA!lock"]

        def missing_unlock(rng, i):
            prog = _new_prog(rng)
            prog.decl("MPI_Win win;")
            prog.decl("int winbuf[8];")
            prog.decl("int data = 2;")
            prog.stmt("MPI_Win_create(winbuf, 8, sizeof(int), MPI_INFO_NULL, "
                      "MPI_COMM_WORLD, &win);")
            prog.stmt("if (rank == 0) {")
            prog.stmt("  MPI_Win_lock(MPI_LOCK_SHARED, 1, 0, win);")
            prog.stmt("  MPI_Put(&data, 1, MPI_INT, 1, 0, 1, MPI_INT, win);")
            prog.stmt("}")
            prog.stmt("MPI_Win_free(&win);")
            return prog, ["RMA!lock"]

        def double_lock(rng, i):
            prog = _new_prog(rng)
            prog.decl("MPI_Win win;")
            prog.decl("int winbuf[8];")
            prog.stmt("MPI_Win_create(winbuf, 8, sizeof(int), MPI_INFO_NULL, "
                      "MPI_COMM_WORLD, &win);")
            prog.stmt("if (rank == 0) {")
            prog.stmt("  MPI_Win_lock(MPI_LOCK_SHARED, 1, 0, win);")
            prog.stmt("  MPI_Win_lock(MPI_LOCK_SHARED, 1, 0, win);")
            prog.stmt("  MPI_Win_unlock(1, win);")
            prog.stmt("}")
            prog.stmt("MPI_Win_free(&win);")
            return prog, ["RMA!lock"]

        def complete_no_start(rng, i):
            prog = _new_prog(rng)
            prog.decl("MPI_Win win;")
            prog.decl("int winbuf[8];")
            prog.stmt("MPI_Win_create(winbuf, 8, sizeof(int), MPI_INFO_NULL, "
                      "MPI_COMM_WORLD, &win);")
            prog.stmt("if (rank == 0) {")
            prog.stmt("  MPI_Win_complete(win);")
            prog.stmt("}")
            prog.stmt("MPI_Win_free(&win);")
            return prog, ["RMA!pscw"]

        return ([rma_no_epoch] * 3 + [unlock_no_lock] + [missing_unlock]
                + [double_lock] + [complete_no_start])

    def _local_concurrency_variants(self):
        def write_irecv_buffer(rng, i):
            prog = _new_prog(rng)
            ctype, mpitype = DTYPES[i % len(DTYPES)]
            prog.decl(f"{ctype} buf[4];")
            prog.decl("MPI_Request req;")
            prog.decl("MPI_Status status;")
            prog.stmt("if (rank == 0) {")
            prog.stmt(f"  MPI_Irecv(buf, 4, {mpitype}, 1, 0, MPI_COMM_WORLD, &req);")
            prog.stmt(f"  buf[0] = ({ctype}) 3;")
            prog.stmt("  MPI_Wait(&req, &status);")
            prog.stmt("}")
            prog.stmt("if (rank == 1) {")
            prog.stmt(f"  MPI_Send(buf, 4, {mpitype}, 0, 0, MPI_COMM_WORLD);")
            prog.stmt("}")
            return prog, ["P2P!nonblocking"]

        def write_isend_buffer(rng, i):
            prog = _new_prog(rng)
            ctype, mpitype = DTYPES[i % len(DTYPES)]
            count = 128
            prog.decl(f"{ctype} buf[{count}];")
            prog.decl("MPI_Request req;")
            prog.decl("MPI_Status status;")
            prog.stmt("if (rank == 0) {")
            prog.stmt(f"  MPI_Isend(buf, {count}, {mpitype}, 1, 0, MPI_COMM_WORLD, &req);")
            prog.stmt(f"  buf[1] = ({ctype}) 8;")
            prog.stmt("  MPI_Wait(&req, &status);")
            prog.stmt("}")
            prog.stmt("if (rank == 1) {")
            prog.stmt(f"  MPI_Recv(buf, {count}, {mpitype}, 0, 0, MPI_COMM_WORLD, &status);")
            prog.stmt("}")
            return prog, ["P2P!nonblocking"]

        def read_irecv_buffer(rng, i):
            prog = _new_prog(rng)
            prog.decl("int buf[4];")
            prog.decl("int snoop;")
            prog.decl("MPI_Request req;")
            prog.decl("MPI_Status status;")
            prog.stmt("if (rank == 0) {")
            prog.stmt("  MPI_Irecv(buf, 4, MPI_INT, 1, 0, MPI_COMM_WORLD, &req);")
            prog.stmt("  snoop = buf[0];")
            prog.stmt("  MPI_Wait(&req, &status);")
            prog.stmt("  if (snoop > 100) { printf(\"large\\n\"); }")
            prog.stmt("}")
            prog.stmt("if (rank == 1) {")
            prog.stmt("  MPI_Send(buf, 4, MPI_INT, 0, 0, MPI_COMM_WORLD);")
            prog.stmt("}")
            return prog, ["P2P!nonblocking"]

        def persistent_touch(rng, i):
            prog = _new_prog(rng)
            prog.decl("int buf[128];")
            prog.decl("MPI_Request req;")
            prog.decl("MPI_Status status;")
            prog.stmt("if (rank == 0) {")
            prog.stmt("  MPI_Send_init(buf, 128, MPI_INT, 1, 0, MPI_COMM_WORLD, &req);")
            prog.stmt("  MPI_Start(&req);")
            prog.stmt("  buf[0] = 5;")
            prog.stmt("  MPI_Wait(&req, &status);")
            prog.stmt("  MPI_Request_free(&req);")
            prog.stmt("}")
            prog.stmt("if (rank == 1) {")
            prog.stmt("  MPI_Recv(buf, 128, MPI_INT, 0, 0, MPI_COMM_WORLD, &status);")
            prog.stmt("}")
            return prog, ["P2P!persistent"]

        return ([write_irecv_buffer] * 2 + [write_isend_buffer]
                + [read_irecv_buffer] + [persistent_touch])

    def _global_concurrency_variants(self):
        def put_put_race(rng, i):
            prog = _new_prog(rng, min_procs=3)
            prog.decl("MPI_Win win;")
            prog.decl("int winbuf[8];")
            prog.decl("int data;")
            prog.stmt("data = rank * 10;")
            prog.stmt("MPI_Win_create(winbuf, 8, sizeof(int), MPI_INFO_NULL, "
                      "MPI_COMM_WORLD, &win);")
            prog.stmt("MPI_Win_fence(0, win);")
            prog.stmt("if (rank == 0 || rank == 1) {")
            prog.stmt("  MPI_Put(&data, 1, MPI_INT, 2, 0, 1, MPI_INT, win);")
            prog.stmt("}")
            prog.stmt("MPI_Win_fence(0, win);")
            prog.stmt("MPI_Win_free(&win);")
            return prog, ["RMA!fence"]

        def put_get_race(rng, i):
            prog = _new_prog(rng, min_procs=3)
            prog.decl("MPI_Win win;")
            prog.decl("int winbuf[8];")
            prog.decl("int data;")
            prog.stmt("MPI_Win_create(winbuf, 8, sizeof(int), MPI_INFO_NULL, "
                      "MPI_COMM_WORLD, &win);")
            prog.stmt("MPI_Win_fence(0, win);")
            prog.stmt("if (rank == 0) {")
            prog.stmt("  MPI_Put(&data, 1, MPI_INT, 2, 0, 1, MPI_INT, win);")
            prog.stmt("}")
            prog.stmt("if (rank == 1) {")
            prog.stmt("  MPI_Get(&data, 1, MPI_INT, 2, 0, 1, MPI_INT, win);")
            prog.stmt("}")
            prog.stmt("MPI_Win_fence(0, win);")
            prog.stmt("MPI_Win_free(&win);")
            return prog, ["RMA!fence"]

        def local_write_race(rng, i):
            prog = _new_prog(rng)
            prog.decl("MPI_Win win;")
            prog.decl("int winbuf[8];")
            prog.decl("int data = 3;")
            prog.stmt("MPI_Win_create(winbuf, 8, sizeof(int), MPI_INFO_NULL, "
                      "MPI_COMM_WORLD, &win);")
            prog.stmt("MPI_Win_fence(0, win);")
            prog.stmt("if (rank == 0) {")
            prog.stmt("  MPI_Put(&data, 1, MPI_INT, 1, 0, 1, MPI_INT, win);")
            prog.stmt("}")
            prog.stmt("if (rank == 1) {")
            prog.stmt("  winbuf[0] = 99;")
            prog.stmt("}")
            prog.stmt("MPI_Win_fence(0, win);")
            prog.stmt("MPI_Win_free(&win);")
            return prog, ["RMA!fence"]

        def lockall_race(rng, i):
            prog = _new_prog(rng, min_procs=3)
            prog.decl("MPI_Win win;")
            prog.decl("int winbuf[8];")
            prog.decl("int data;")
            prog.stmt("MPI_Win_create(winbuf, 8, sizeof(int), MPI_INFO_NULL, "
                      "MPI_COMM_WORLD, &win);")
            prog.stmt("if (rank == 0 || rank == 1) {")
            prog.stmt("  MPI_Win_lock_all(0, win);")
            prog.stmt("  MPI_Put(&data, 1, MPI_INT, 2, 0, 1, MPI_INT, win);")
            prog.stmt("  MPI_Win_unlock_all(win);")
            prog.stmt("}")
            prog.stmt("MPI_Barrier(MPI_COMM_WORLD);")
            prog.stmt("MPI_Win_free(&win);")
            return prog, ["RMA!lockall"]

        return [put_put_race] * 2 + [put_get_race] + [local_write_race] + [lockall_race]

    def _resource_leak_variants(self):
        def leak(kind):
            def make(rng, i):
                prog = _new_prog(rng, min_procs=1)
                if kind == "comm_dup":
                    prog.decl("MPI_Comm newcomm;")
                    prog.stmt("MPI_Comm_dup(MPI_COMM_WORLD, &newcomm);")
                    prog.stmt("MPI_Barrier(newcomm);")
                elif kind == "comm_split":
                    prog.decl("MPI_Comm newcomm;")
                    prog.stmt("MPI_Comm_split(MPI_COMM_WORLD, rank % 2, rank, &newcomm);")
                    prog.stmt("MPI_Barrier(newcomm);")
                elif kind == "type":
                    prog.decl("MPI_Datatype newtype;")
                    prog.decl("int buf[8];")
                    prog.stmt("MPI_Type_contiguous(4, MPI_INT, &newtype);")
                    prog.stmt("MPI_Type_commit(&newtype);")
                    prog.stmt("if (rank == 0) { MPI_Send(buf, 2, newtype, 1, 0, MPI_COMM_WORLD); }")
                    prog.stmt("if (rank == 1) { MPI_Status status; MPI_Recv(buf, 2, newtype, 0, 0, MPI_COMM_WORLD, &status); }")
                elif kind == "type_vector":
                    prog.decl("MPI_Datatype newtype;")
                    prog.stmt("MPI_Type_vector(2, 2, 4, MPI_INT, &newtype);")
                    prog.stmt("MPI_Type_commit(&newtype);")
                elif kind == "group":
                    prog.decl("MPI_Group group;")
                    prog.stmt("MPI_Comm_group(MPI_COMM_WORLD, &group);")
                elif kind == "win":
                    prog.decl("MPI_Win win;")
                    prog.decl("int winbuf[8];")
                    prog.stmt("MPI_Win_create(winbuf, 8, sizeof(int), MPI_INFO_NULL, "
                              "MPI_COMM_WORLD, &win);")
                    prog.stmt("MPI_Win_fence(0, win);")
                    prog.stmt("MPI_Win_fence(0, win);")
                elif kind == "op":
                    prog.decl("MPI_Op myop;")
                    prog.stmt("MPI_Op_create(NULL, 1, &myop);")
                return prog, ["RES!leak"]
            return make

        kinds = ["comm_dup", "comm_split", "type", "type_vector", "group", "win", "op"]
        return [leak(k) for k in kinds]

    # ------------------------------------------------------------- driver
    def generate(self) -> List[Sample]:
        variant_table = {
            CORRECT: self._correct_variants(),
            "Call Ordering": self._call_ordering_variants(),
            "Parameter Matching": self._parameter_matching_variants(),
            "Invalid Parameter": self._invalid_parameter_variants(),
            "Message Race": self._message_race_variants(),
            "Request Lifecycle": self._request_lifecycle_variants(),
            "Epoch Lifecycle": self._epoch_lifecycle_variants(),
            "Local Concurrency": self._local_concurrency_variants(),
            "Global Concurrency": self._global_concurrency_variants(),
            "Resource Leak": self._resource_leak_variants(),
        }
        samples: List[Sample] = []
        for label, count in MBI_COUNTS.items():
            variants = variant_table[label]
            rng = random.Random(stable_seed(self.seed, label))
            for i in range(count):
                maker = variants[i % len(variants)]
                prog, features = maker(rng, i // len(variants) * 7 + i)
                slug = label.replace(" ", "")
                name = f"{slug}-{maker.__name__}-{i + 1:03d}.c"
                prog.header_comment = mbi_header(name, label, "MBI", features)
                samples.append(Sample(
                    name=name, source=prog.render(), label=label, suite="MBI",
                    features=tuple(features),
                ))
        return samples


def generate_mbi(seed: int = 20240304) -> List[Sample]:
    return MBIGenerator(seed).generate()
