"""MPI-aware mutation operators — bug injection into correct codes.

The paper's Section V-F/VI names mutation techniques as the way to scale
beyond the two correctness suites: "We can use mutation techniques or
GitHub to acquire new incorrect cases."  This module implements that
direction.  Each operator takes a *correct* program and injects one
known MPI error, producing a new labeled incorrect sample whose label
follows the taxonomy of the suite it came from (MBI error types for MBI
codes, CorrBench types for CorrBench codes).

Operators (suite-appropriate label in parentheses):

==================  =======================================  =================
operator            what it does                             MBI / CORR label
==================  =======================================  =================
drop_call           deletes one MPI call statement           per call kind /
                                                             MissingCall
tag_mismatch        bumps the tag of one side of a match     Parameter
                                                             Matching /
                                                             ArgMismatch
datatype_mismatch   changes the datatype of one side         Parameter
                                                             Matching /
                                                             ArgMismatch
invalid_count       replaces a count argument with -1        Invalid Parameter
                                                             / ArgError
invalid_rank        replaces a peer rank with a huge value   Invalid Parameter
                                                             / ArgError
root_divergence     makes a collective root rank-dependent   Parameter
                                                             Matching /
                                                             ArgMismatch
detach_wait         Isend instead of Send, no wait           Request Lifecycle
                                                             / MissplacedCall
==================  =======================================  =================

All mutants are plain C text produced by structured statement rewriting
(the generated suites keep one MPI call per line), so they go through the
identical ``compile_c`` → embedding/graph pipeline as suite codes.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.datasets.labels import CORRECT
from repro.datasets.loader import Dataset, Sample
from repro.datasets.seeding import stable_seed

# One MPI call statement per line.  The suite generators emit bare calls;
# hand-written code often wraps one in a single-line rank guard, so an
# optional ``if (...) {`` prefix and ``}`` suffix are captured and kept.
# Group 1: prefix (indent + optional guard), group 2: callee,
# group 3: argument text, group 4: suffix (optional closing brace).
_CALL_RE = re.compile(
    r"^([ \t]*(?:if[ \t]*\([^)\n]*\)[ \t]*\{[ \t]*)?)"
    r"(MPI_[A-Za-z_]+)\(([^;\n]*)\);"
    r"([ \t]*\}?[ \t]*)$",
    re.MULTILINE)

#: Calls whose removal leaves an un-matched communication / missing
#: completion, keyed to the MBI label of the resulting bug.
_DROP_LABELS_MBI: Dict[str, str] = {
    "MPI_Recv": "Call Ordering",
    "MPI_Send": "Call Ordering",
    "MPI_Barrier": "Call Ordering",
    "MPI_Wait": "Request Lifecycle",
    "MPI_Waitall": "Request Lifecycle",
    "MPI_Request_free": "Resource Leak",
    "MPI_Win_free": "Resource Leak",
    "MPI_Comm_free": "Resource Leak",
    "MPI_Win_fence": "Epoch Lifecycle",
    "MPI_Win_unlock": "Epoch Lifecycle",
    "MPI_Gather": "Call Ordering",
    "MPI_Reduce": "Call Ordering",
    "MPI_Bcast": "Call Ordering",
    "MPI_Allreduce": "Call Ordering",
    "MPI_Alltoall": "Call Ordering",
    "MPI_Scan": "Call Ordering",
    "MPI_Exscan": "Call Ordering",
}

#: Point-to-point / collective calls with (tag position, count position,
#: datatype position, peer-rank position, root position) in their argument
#: list; -1 = not applicable.  Positions follow the MPI C bindings.
@dataclass(frozen=True)
class _ArgSlots:
    count: int = -1
    datatype: int = -1
    peer: int = -1
    tag: int = -1
    root: int = -1


_ARG_SLOTS: Dict[str, _ArgSlots] = {
    "MPI_Send": _ArgSlots(count=1, datatype=2, peer=3, tag=4),
    "MPI_Ssend": _ArgSlots(count=1, datatype=2, peer=3, tag=4),
    "MPI_Rsend": _ArgSlots(count=1, datatype=2, peer=3, tag=4),
    "MPI_Bsend": _ArgSlots(count=1, datatype=2, peer=3, tag=4),
    "MPI_Isend": _ArgSlots(count=1, datatype=2, peer=3, tag=4),
    "MPI_Issend": _ArgSlots(count=1, datatype=2, peer=3, tag=4),
    "MPI_Recv": _ArgSlots(count=1, datatype=2, peer=3, tag=4),
    "MPI_Irecv": _ArgSlots(count=1, datatype=2, peer=3, tag=4),
    "MPI_Send_init": _ArgSlots(count=1, datatype=2, peer=3, tag=4),
    "MPI_Recv_init": _ArgSlots(count=1, datatype=2, peer=3, tag=4),
    "MPI_Bcast": _ArgSlots(count=1, datatype=2, root=3),
    "MPI_Reduce": _ArgSlots(count=2, datatype=3, root=5),
    "MPI_Gather": _ArgSlots(count=1, datatype=2, root=6),
    "MPI_Scatter": _ArgSlots(count=1, datatype=2, root=6),
    "MPI_Allreduce": _ArgSlots(count=2, datatype=3),
    "MPI_Scan": _ArgSlots(count=2, datatype=3),
    "MPI_Exscan": _ArgSlots(count=2, datatype=3),
    "MPI_Alltoall": _ArgSlots(count=1, datatype=2),
}

_DATATYPES = ("MPI_INT", "MPI_FLOAT", "MPI_DOUBLE", "MPI_LONG", "MPI_CHAR")


@dataclass
class MPICall:
    """One matched MPI call statement inside a source string."""

    name: str
    indent: str          # prefix: indentation plus any single-line guard
    args: List[str]
    start: int           # span of the whole statement in the source
    end: int
    suffix: str = ""     # closing brace of a single-line guard, if any

    def render(self) -> str:
        return f"{self.indent}{self.name}({', '.join(self.args)});{self.suffix}"


def split_args(text: str) -> List[str]:
    """Split an argument list on top-level commas (parens-aware)."""
    args: List[str] = []
    depth = 0
    current: List[str] = []
    for ch in text:
        if ch in "([":
            depth += 1
        elif ch in ")]":
            depth -= 1
        if ch == "," and depth == 0:
            args.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail:
        args.append(tail)
    return args


def find_mpi_calls(source: str) -> List[MPICall]:
    """All single-line MPI call statements in ``source``."""
    calls: List[MPICall] = []
    for m in _CALL_RE.finditer(source):
        prefix, suffix = m.group(1), m.group(4)
        # A guard prefix must come with its closing brace (and vice versa)
        # or the rewrite would unbalance the line.
        if ("{" in prefix) != ("}" in suffix):
            continue
        calls.append(MPICall(name=m.group(2), indent=prefix,
                             args=split_args(m.group(3)),
                             start=m.start(), end=m.end(), suffix=suffix))
    return calls


def _replace_span(source: str, call: MPICall, new_text: str) -> str:
    return source[:call.start] + new_text + source[call.end:]


def _suite_label(suite: str, mbi_label: str, corr_label: str) -> str:
    return mbi_label if suite == "MBI" else corr_label


# ---------------------------------------------------------------------------
# Operators.  Each returns (mutated_source, label) or None if inapplicable.
# ---------------------------------------------------------------------------

MutationResult = Optional[Tuple[str, str]]


def drop_call(source: str, suite: str, rng: random.Random) -> MutationResult:
    """Delete one droppable MPI call statement."""
    candidates = [c for c in find_mpi_calls(source) if c.name in _DROP_LABELS_MBI]
    if not candidates:
        return None
    victim = rng.choice(candidates)
    replacement = f"{victim.indent}/* call removed by mutation */{victim.suffix}"
    mutated = _replace_span(source, victim, replacement)
    label = _suite_label(suite, _DROP_LABELS_MBI[victim.name], "MissingCall")
    return mutated, label


def tag_mismatch(source: str, suite: str, rng: random.Random) -> MutationResult:
    """Bump the tag of one side of a send/recv pair so tags diverge."""
    candidates = [c for c in find_mpi_calls(source)
                  if _ARG_SLOTS.get(c.name, _ArgSlots()).tag >= 0
                  and len(c.args) > _ARG_SLOTS[c.name].tag
                  and c.args[_ARG_SLOTS[c.name].tag].lstrip("-").isdigit()]
    if not candidates:
        return None
    victim = rng.choice(candidates)
    slot = _ARG_SLOTS[victim.name].tag
    victim.args[slot] = str(int(victim.args[slot]) + 100)
    mutated = _replace_span(source, victim, victim.render())
    return mutated, _suite_label(suite, "Parameter Matching", "ArgMismatch")


def datatype_mismatch(source: str, suite: str,
                      rng: random.Random) -> MutationResult:
    """Change the datatype of one side of a matched transfer."""
    candidates = [c for c in find_mpi_calls(source)
                  if _ARG_SLOTS.get(c.name, _ArgSlots()).datatype >= 0
                  and len(c.args) > _ARG_SLOTS[c.name].datatype
                  and c.args[_ARG_SLOTS[c.name].datatype] in _DATATYPES]
    if not candidates:
        return None
    victim = rng.choice(candidates)
    slot = _ARG_SLOTS[victim.name].datatype
    old = victim.args[slot]
    victim.args[slot] = rng.choice([d for d in _DATATYPES if d != old])
    mutated = _replace_span(source, victim, victim.render())
    return mutated, _suite_label(suite, "Parameter Matching", "ArgMismatch")


def invalid_count(source: str, suite: str, rng: random.Random) -> MutationResult:
    """Replace a count argument with -1 (invalid at the single-call level)."""
    candidates = [c for c in find_mpi_calls(source)
                  if _ARG_SLOTS.get(c.name, _ArgSlots()).count >= 0
                  and len(c.args) > _ARG_SLOTS[c.name].count]
    if not candidates:
        return None
    victim = rng.choice(candidates)
    victim.args[_ARG_SLOTS[victim.name].count] = "-1"
    mutated = _replace_span(source, victim, victim.render())
    return mutated, _suite_label(suite, "Invalid Parameter", "ArgError")


def invalid_rank(source: str, suite: str, rng: random.Random) -> MutationResult:
    """Replace a peer rank with a rank far outside the communicator."""
    candidates = [c for c in find_mpi_calls(source)
                  if _ARG_SLOTS.get(c.name, _ArgSlots()).peer >= 0
                  and len(c.args) > _ARG_SLOTS[c.name].peer
                  and c.args[_ARG_SLOTS[c.name].peer].lstrip("-").isdigit()]
    if not candidates:
        return None
    victim = rng.choice(candidates)
    victim.args[_ARG_SLOTS[victim.name].peer] = "9999"
    mutated = _replace_span(source, victim, victim.render())
    return mutated, _suite_label(suite, "Invalid Parameter", "ArgError")


def root_divergence(source: str, suite: str,
                    rng: random.Random) -> MutationResult:
    """Make a rooted collective's root rank-dependent (root mismatch)."""
    candidates = [c for c in find_mpi_calls(source)
                  if _ARG_SLOTS.get(c.name, _ArgSlots()).root >= 0
                  and len(c.args) > _ARG_SLOTS[c.name].root
                  and c.args[_ARG_SLOTS[c.name].root].lstrip("-").isdigit()]
    if not candidates:
        return None
    victim = rng.choice(candidates)
    victim.args[_ARG_SLOTS[victim.name].root] = "rank"
    mutated = _replace_span(source, victim, victim.render())
    return mutated, _suite_label(suite, "Parameter Matching", "ArgMismatch")


def detach_wait(source: str, suite: str, rng: random.Random) -> MutationResult:
    """Turn a blocking send into an Isend whose request is never completed."""
    candidates = [c for c in find_mpi_calls(source) if c.name == "MPI_Send"]
    if not candidates:
        return None
    victim = rng.choice(candidates)
    new_call = MPICall(name="MPI_Isend", indent=victim.indent,
                       args=victim.args + ["&mut_req"],
                       start=victim.start, end=victim.end,
                       suffix=victim.suffix)
    mutated = _replace_span(source, victim, new_call.render())
    # Declare the request next to the other locals (after MPI_Status or the
    # first buffer declaration — the generated codes always have one).
    decl = "  MPI_Request mut_req;\n"
    anchor = mutated.find("MPI_Init(")
    line_start = mutated.rfind("\n", 0, anchor) + 1
    mutated = mutated[:line_start] + decl + mutated[line_start:]
    return mutated, _suite_label(suite, "Request Lifecycle", "MissplacedCall")


#: Operator registry, in a stable order (deterministic given a seed).
OPERATORS: Dict[str, Callable[[str, str, random.Random], MutationResult]] = {
    "drop_call": drop_call,
    "tag_mismatch": tag_mismatch,
    "datatype_mismatch": datatype_mismatch,
    "invalid_count": invalid_count,
    "invalid_rank": invalid_rank,
    "root_divergence": root_divergence,
    "detach_wait": detach_wait,
}


@dataclass
class Mutant:
    """A mutation product: the new sample plus provenance.

    ``origin`` names the sample the mutant was derived from;
    ``origin_digest`` pins down *which* source carried that name, so
    two same-named samples from different datasets can never be
    conflated by the leak guard (``""`` on mutants made before the
    digest existed — those fall back to name-only matching).
    """

    sample: Sample
    operator: str
    origin: str
    origin_digest: str = ""


def source_digest(source: str) -> str:
    """Short content digest used to disambiguate origin names."""
    import hashlib

    return hashlib.sha256(source.encode("utf-8")).hexdigest()[:16]


def leak_safe_indices(mutants: Sequence[Mutant],
                      train_samples: Sequence[Sample]) -> List[int]:
    """Indices of mutants whose origin sample is on the train side.

    The evaluation-matrix identity cells train on a split: a mutant
    whose origin was held out would leak test information into training
    through its mutated copy.  Matching is by origin *name and source
    digest* when the mutant carries one — a train-side sample that
    merely shares a held-out sample's name (possible across generated
    datasets) does not admit the stranger's mutants.  Digest-less
    mutants match by name alone (pre-digest provenance).
    """
    by_name: Dict[str, set] = {}
    for s in train_samples:
        by_name.setdefault(s.name, set()).add(source_digest(s.source))
    keep: List[int] = []
    for i, m in enumerate(mutants):
        digests = by_name.get(m.origin)
        if digests is None:
            continue
        if m.origin_digest and m.origin_digest not in digests:
            continue
        keep.append(i)
    return keep


class MutationEngine:
    """Applies bug-injection operators to correct programs.

    >>> engine = MutationEngine(seed=3)
    >>> mutants = engine.mutate_sample(correct_sample, per_sample=2)
    >>> all(not m.sample.is_correct for m in mutants)
    True
    """

    def __init__(self, seed: int = 0,
                 operators: Optional[Sequence[str]] = None):
        unknown = set(operators or ()) - set(OPERATORS)
        if unknown:
            raise ValueError(f"unknown operators: {sorted(unknown)}")
        self.operator_names = tuple(operators) if operators else tuple(OPERATORS)
        self.seed = seed

    def mutate_sample(self, sample: Sample, per_sample: int = 1) -> List[Mutant]:
        """Up to ``per_sample`` distinct mutants of one correct sample."""
        if sample.label != CORRECT:
            raise ValueError("mutation operators expect a correct program")
        rng = random.Random(stable_seed(self.seed, sample.name))
        ops = list(self.operator_names)
        rng.shuffle(ops)
        mutants: List[Mutant] = []
        seen_sources = {sample.source}
        for op_name in ops:
            if len(mutants) >= per_sample:
                break
            result = OPERATORS[op_name](sample.source, sample.suite, rng)
            if result is None:
                continue
            mutated, label = result
            if mutated in seen_sources:
                continue
            seen_sources.add(mutated)
            name = f"Mutant-{op_name}-{sample.name}"
            mutants.append(Mutant(
                sample=Sample(name=name, source=mutated, label=label,
                              suite=sample.suite, features=sample.features),
                operator=op_name, origin=sample.name,
                origin_digest=source_digest(sample.source)))
        return mutants

    def augment(self, dataset: Dataset, per_sample: int = 1,
                max_mutants: Optional[int] = None,
                name: Optional[str] = None) -> Dataset:
        """Dataset plus mutants of its correct codes (order preserved)."""
        mutants = self.mutants_of(dataset, per_sample, max_mutants)
        return Dataset(name or f"{dataset.name}+mutants",
                       list(dataset.samples) + [m.sample for m in mutants])

    def mutants_of(self, dataset: Dataset, per_sample: int = 1,
                   max_mutants: Optional[int] = None) -> List[Mutant]:
        """Mutants derived from every correct sample of ``dataset``."""
        out: List[Mutant] = []
        for sample in dataset.samples:
            if sample.label != CORRECT:
                continue
            out.extend(self.mutate_sample(sample, per_sample))
            if max_mutants is not None and len(out) >= max_mutants:
                return out[:max_mutants]
        return out

    def mutant_dataset(self, dataset: Dataset, per_sample: int = 1,
                       max_mutants: Optional[int] = None,
                       name: Optional[str] = None) -> Dataset:
        """Only the mutants, as their own dataset (for validation use)."""
        mutants = self.mutants_of(dataset, per_sample, max_mutants)
        return Dataset(name or f"{dataset.name}-mutants",
                       [m.sample for m in mutants])
