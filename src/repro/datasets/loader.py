"""Dataset containers and loading entry points.

``load_mbi`` / ``load_corrbench`` / ``load_mix`` build the three datasets
of the paper (Section III).  CorrBench is loaded *debiased* by default —
the ``mpitest.h`` include is stripped from correct codes exactly like the
paper's preprocessing fix — pass ``debias=False`` to study the raw bias.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.datasets.labels import CORRECT, binary_label


@dataclass
class Sample:
    """One benchmark program with its ground-truth label."""

    name: str
    source: str
    label: str
    suite: str                      # 'MBI' | 'CORR'
    features: Tuple[str, ...] = ()

    @property
    def is_correct(self) -> bool:
        return self.label == CORRECT

    @property
    def binary(self) -> str:
        return binary_label(self.label)


_MPITEST_INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"mpitest\.h"\s*$', re.MULTILINE)


def strip_mpitest_header(source: str) -> str:
    """The paper's debias step: drop the ``mpitest.h`` include."""
    return _MPITEST_INCLUDE_RE.sub("", source)


@dataclass
class Dataset:
    """A labeled collection of samples."""

    name: str
    samples: List[Sample] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.samples)

    def __iter__(self):
        return iter(self.samples)

    def labels(self) -> List[str]:
        return [s.label for s in self.samples]

    def label_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for s in self.samples:
            counts[s.label] = counts.get(s.label, 0) + 1
        return counts

    def correct_incorrect_counts(self) -> Tuple[int, int]:
        correct = sum(1 for s in self.samples if s.is_correct)
        return correct, len(self.samples) - correct

    def subset(self, indices: Sequence[int], name: Optional[str] = None) -> "Dataset":
        return Dataset(name or self.name, [self.samples[i] for i in indices])

    def without_labels(self, excluded: Sequence[str]) -> "Dataset":
        excluded_set = set(excluded)
        return Dataset(self.name,
                       [s for s in self.samples if s.label not in excluded_set])

    def merged_with(self, other: "Dataset", name: str = "Mix") -> "Dataset":
        return Dataset(name, list(self.samples) + list(other.samples))

    def content_digest(self) -> str:
        """SHA-256 over every sample name and source (provenance key).

        Two datasets that differ in any sample — even one in the middle —
        digest differently; the feature memo and the evaluation-matrix
        artifact both key on this.
        """
        h = hashlib.sha256()
        h.update(self.name.encode("utf-8"))
        for s in self.samples:
            h.update(b"\x00")
            h.update(s.name.encode("utf-8"))
            h.update(b"\x01")
            h.update(s.source.encode("utf-8"))
        return h.hexdigest()

    def split(self, test_frac: float = 0.3, seed: int = 0,
              ) -> Tuple["Dataset", "Dataset"]:
        """Deterministic stratified (train, test) split.

        Every label contributes ``round(test_frac)`` of its samples to the
        test side (at least one each way when the label has two or more
        samples), selection is seeded, and within each side the original
        sample order is preserved — the same dataset, fraction, and seed
        always produce byte-identical splits on any platform.
        """
        train_idx, test_idx = stratified_split_indices(
            [s.label for s in self.samples], test_frac, seed)
        return (self.subset(train_idx, f"{self.name}-train"),
                self.subset(test_idx, f"{self.name}-test"))

    # -- streaming ----------------------------------------------------------
    def iter_chunks(self, size: int) -> Iterator[List[Sample]]:
        """Stream the samples in order as chunks of at most ``size`` —
        a convenience wrapper over :func:`iter_sample_chunks`, the
        chunker the execution engine's miss dispatch schedules with."""
        return iter_sample_chunks(self.samples, size)

    def iter_named_sources(self) -> Iterator[Tuple[str, str]]:
        """Stream ``(name, source)`` pairs in sample order."""
        return iter_named_sources(self.samples)


def iter_sample_chunks(samples: Iterable[Sample],
                       size: int) -> Iterator[List[Sample]]:
    """Chunk any sample iterable lazily, preserving order.

    Consumes ``samples`` incrementally (generators welcome); concatenating
    the yielded chunks always reproduces the input order exactly.  The
    execution engine schedules its compile/featurize misses through this,
    so only one chunk of work items is materialized at a time.
    """
    if size <= 0:
        raise ValueError("chunk size must be positive")
    chunk: List[Sample] = []
    for sample in samples:
        chunk.append(sample)
        if len(chunk) >= size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


def iter_named_sources(samples: Iterable[Sample]) -> Iterator[Tuple[str, str]]:
    """Stream ``(name, source)`` pairs from any sample iterable — the
    input shape the execution engine consumes."""
    return ((s.name, s.source) for s in samples)


def stratified_split_indices(labels: Sequence[str], test_frac: float,
                             seed: int) -> Tuple[List[int], List[int]]:
    """Deterministic per-label (train, test) index split.

    Labels with a single sample keep it on the train side (a lone test
    sample of a class the model never saw measures nothing); labels with
    two or more always land at least one sample on each side.  Indices
    come back sorted, so subsetting preserves dataset order.
    """
    if not 0.0 < test_frac < 1.0:
        raise ValueError("test_frac must be in (0, 1)")
    import random

    by_label: Dict[str, List[int]] = {}
    for i, label in enumerate(labels):
        by_label.setdefault(label, []).append(i)
    rng = random.Random(seed * 65537 + len(labels))
    test_idx: List[int] = []
    for label, group in sorted(by_label.items()):
        if len(group) < 2:
            continue
        k = min(len(group) - 1, max(1, round(len(group) * test_frac)))
        test_idx.extend(rng.sample(group, k))
    test_set = set(test_idx)
    train_idx = [i for i in range(len(labels)) if i not in test_set]
    return train_idx, sorted(test_set)


_CACHE: Dict[Tuple, Dataset] = {}


def load_mbi(seed: int = 20240304, subsample: Optional[int] = None) -> Dataset:
    """The MBI-style dataset (~1860 codes, 9 error labels + correct)."""
    key = ("mbi", seed, subsample)
    if key not in _CACHE:
        from repro.datasets.mbi import generate_mbi

        samples = generate_mbi(seed)
        _CACHE[key] = Dataset("MBI", _maybe_subsample(samples, subsample, seed))
    return _CACHE[key]


def load_corrbench(seed: int = 20210512, debias: bool = True,
                   subsample: Optional[int] = None) -> Dataset:
    """The MPI-CorrBench-style dataset (~415 codes, 4 error labels)."""
    key = ("corr", seed, debias, subsample)
    if key not in _CACHE:
        from repro.datasets.corrbench import generate_corrbench

        samples = generate_corrbench(seed)
        if debias:
            samples = [replace(s, source=strip_mpitest_header(s.source))
                       for s in samples]
        _CACHE[key] = Dataset("MPI-CorrBench",
                              _maybe_subsample(samples, subsample, seed))
    return _CACHE[key]


def load_mix(seed: int = 20240304, subsample: Optional[int] = None) -> Dataset:
    """MBI + (debiased) MPI-CorrBench, the paper's third dataset."""
    mbi = load_mbi(seed, subsample)
    corr = load_corrbench(debias=True,
                          subsample=max(1, subsample // 4) if subsample else None)
    return mbi.merged_with(corr, name="Mix")


def _maybe_subsample(samples: List[Sample], subsample: Optional[int],
                     seed: int) -> List[Sample]:
    """Stratified subsample preserving label proportions (fast profiles)."""
    if subsample is None or subsample >= len(samples):
        return samples
    import random

    rng = random.Random(seed * 31 + subsample)
    by_label: Dict[str, List[Sample]] = {}
    for s in samples:
        by_label.setdefault(s.label, []).append(s)
    total = len(samples)
    chosen: List[Sample] = []
    for label, group in sorted(by_label.items()):
        k = max(2, round(len(group) / total * subsample))
        k = min(k, len(group))
        chosen.extend(rng.sample(group, k))
    rng.shuffle(chosen)
    return chosen
