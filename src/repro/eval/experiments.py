"""One driver per paper artifact (tables II–VI, figures 1–3 and 6–9).

Every function returns structured data *and* can render itself as text;
the pytest-benchmark harness under ``benchmarks/`` wraps these drivers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.datasets.labels import CORR_LABELS, CORRECT, MBI_LABELS
from repro.datasets.loader import Dataset
from repro.eval.ablation import run_pair_ablation, run_single_ablation
from repro.eval.config import ReproConfig
from repro.eval.reporting import render_series, render_table
from repro.eval.scenarios import (
    run_cross,
    run_intra_cv,
    run_per_label,
    run_per_label_with_support,
)
from repro.frontend import preprocess_and_count_loc
from repro.ml.metrics import MetricReport, compute_metrics


# ---------------------------------------------------------------------------
# Figures 1-3: dataset statistics
# ---------------------------------------------------------------------------

def fig1_error_distribution(config: ReproConfig) -> Dict[str, Dict[str, int]]:
    """Codes per error type in each suite (paper Fig. 1)."""
    out: Dict[str, Dict[str, int]] = {}
    for name, ds in (("MPI-CorrBench", config.corrbench()), ("MBI", config.mbi())):
        counts = ds.label_counts()
        counts.pop(CORRECT, None)
        out[name] = dict(sorted(counts.items(), key=lambda kv: -kv[1]))
    return out


def fig2_code_size(config: ReproConfig) -> Dict[str, Dict[str, Dict[str, float]]]:
    """LoC (after preprocessing) per label: min/median/max (paper Fig. 2)."""
    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    suites = (("MPI-CorrBench (biased)", config.corrbench(debias=False)),
              ("MPI-CorrBench (debiased)", config.corrbench(debias=True)),
              ("MBI", config.mbi()))
    for name, ds in suites:
        per_label: Dict[str, List[int]] = {}
        for sample in ds:
            per_label.setdefault(sample.label, []).append(
                preprocess_and_count_loc(sample.source))
        out[name] = {
            label: {
                "min": float(np.min(v)), "median": float(np.median(v)),
                "max": float(np.max(v)),
            }
            for label, v in sorted(per_label.items())
        }
    return out


def fig3_correct_incorrect(config: ReproConfig) -> Dict[str, Tuple[int, int]]:
    """Correct vs incorrect counts per suite (paper Fig. 3)."""
    return {
        "MBI": config.mbi().correct_incorrect_counts(),
        "MPI-CorrBench": config.corrbench().correct_incorrect_counts(),
    }


# ---------------------------------------------------------------------------
# Table II: model results over the three datasets
# ---------------------------------------------------------------------------

_TABLE2_PAPER = {
    ("IR2vec", "Intra", "MBI", "MBI"): 0.917,
    ("IR2vec", "Intra", "CORR", "CORR"): 0.923,
    ("IR2vec", "Cross", "MBI", "CORR"): 0.860,
    ("IR2vec", "Cross", "CORR", "MBI"): 0.713,
    ("IR2vec", "Mix", "Mix", "Mix"): 0.882,
    ("GNN", "Intra", "MBI", "MBI"): 0.914,
    ("GNN", "Intra", "CORR", "CORR"): 0.803,
    ("GNN", "Cross", "MBI", "CORR"): 0.858,
    ("GNN", "Cross", "CORR", "MBI"): 0.605,
    ("GNN", "Mix", "Mix", "Mix"): 0.911,
}


def table2_model_results(config: ReproConfig,
                         methods: Sequence[str] = ("ir2vec", "gnn"),
                         ) -> List[dict]:
    """Reproduce Table II: every (model, scenario) row with full metrics."""
    mbi = config.mbi()
    corr = config.corrbench()
    mix = mbi.merged_with(corr, name="Mix")
    rows: List[dict] = []

    def add(method: str, scenario: str, train: str, val: str,
            report: MetricReport) -> None:
        name = "IR2vec" if method == "ir2vec" else "GNN"
        rows.append({
            "model": name, "scenario": scenario, "train": train, "val": val,
            **report.as_dict(),
            "paper_accuracy": _TABLE2_PAPER.get((name, scenario, train, val)),
        })

    for method in methods:
        report, _, _ = run_intra_cv(method, mbi, config)
        add(method, "Intra", "MBI", "MBI", report)
        report, _, _ = run_intra_cv(method, corr, config)
        add(method, "Intra", "CORR", "CORR", report)
        add(method, "Cross", "MBI", "CORR", run_cross(method, mbi, corr, config))
        add(method, "Cross", "CORR", "MBI", run_cross(method, corr, mbi, config))
        report, _, _ = run_intra_cv(method, mix, config)
        add(method, "Mix", "Mix", "Mix", report)
    return rows


def render_table2(rows: List[dict]) -> str:
    headers = ["Model", "Scenario", "Train", "Val", "TP", "TN", "FP", "FN",
               "Recall", "Precision", "F1", "Accuracy", "Paper Acc."]
    data = [[r["model"], r["scenario"], r["train"], r["val"], r["TP"], r["TN"],
             r["FP"], r["FN"], r["Recall"], r["Precision"], r["F1"],
             r["Accuracy"], r["paper_accuracy"] if r["paper_accuracy"] else "-"]
            for r in rows]
    return render_table(headers, data, "Table II — model results")


# ---------------------------------------------------------------------------
# Table III / Fig. 7: tools vs models
# ---------------------------------------------------------------------------

#: ITAC / PARCOACH numbers the paper reports on MBI (Table III).
TABLE3_PAPER = {
    "ITAC": dict(CE=0, TO=157, RE=1, TP=859, TN=738, FP=4, FN=102,
                 Recall=0.894, Precision=0.995, F1=0.942, Specificity=0.995),
    "PARCOACH": dict(CE=0, TO=0, RE=0, TP=775, TN=66, FP=679, FN=341,
                     Recall=0.694, Precision=0.533, F1=0.603, Specificity=0.088),
}


def table3_tool_comparison(config: ReproConfig,
                           include_models: bool = True) -> List[dict]:
    """Reproduce Table III: detailed evaluation against MBI."""
    from repro.verify import ITACTool, ParcoachTool

    mbi = config.mbi()
    rows: List[dict] = []
    for tool in (ITACTool(nprocs=config.nprocs), ParcoachTool()):
        counts = tool.evaluate(mbi.samples)
        report = compute_metrics(counts)
        rows.append({"tool": tool.name, **report.as_dict(),
                     "paper": TABLE3_PAPER.get(tool.name)})
    if include_models:
        report, _, _ = run_intra_cv("ir2vec", mbi, config)
        rows.append({"tool": "IR2vec Intra", **report.as_dict(), "paper": None})
        report, _, _ = run_intra_cv("gnn", mbi, config)
        rows.append({"tool": "GNN Intra", **report.as_dict(), "paper": None})
    # The ideal tool row.
    correct, incorrect = mbi.correct_incorrect_counts()
    from repro.ml.metrics import ConfusionCounts

    ideal = compute_metrics(ConfusionCounts(tp=incorrect, tn=correct))
    rows.append({"tool": "Ideal tool", **ideal.as_dict(), "paper": None})
    return rows


def fig7_tool_metric_bars(config: ReproConfig) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Fig. 7: Recall/Precision/F1/Accuracy per tool on both suites."""
    from repro.verify import ITACTool, MPICheckerTool, MUSTTool, ParcoachTool

    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    for suite_name, ds in (("MPI-CorrBench", config.corrbench()),
                           ("MBI", config.mbi())):
        suite: Dict[str, Dict[str, float]] = {}
        tools = [ITACTool(nprocs=config.nprocs), ParcoachTool()]
        if suite_name == "MPI-CorrBench":
            tools += [MUSTTool(nprocs=config.nprocs), MPICheckerTool()]
        for tool in tools:
            report = compute_metrics(tool.evaluate(ds.samples))
            suite[tool.name] = {
                "Recall": report.recall, "Precision": report.precision,
                "F1": report.f1, "Accuracy": report.accuracy,
            }
        for method in ("ir2vec", "gnn"):
            name = "IR2vec" if method == "ir2vec" else "GNN"
            report, _, _ = run_intra_cv(method, ds, config)
            suite[f"{name} Intra"] = {
                "Recall": report.recall, "Precision": report.precision,
                "F1": report.f1, "Accuracy": report.accuracy,
            }
            other = config.mbi() if suite_name == "MPI-CorrBench" else config.corrbench()
            cross = run_cross(method, other, ds, config)
            suite[f"{name} Cross"] = {
                "Recall": cross.recall, "Precision": cross.precision,
                "F1": cross.f1, "Accuracy": cross.accuracy,
            }
        suite["Ideal tool"] = {"Recall": 1.0, "Precision": 1.0, "F1": 1.0,
                               "Accuracy": 1.0}
        out[suite_name] = suite
    return out


# ---------------------------------------------------------------------------
# Table IV: compilation & normalization options
# ---------------------------------------------------------------------------

def table4_options(config: ReproConfig,
                   opts: Sequence[str] = ("O0", "O2", "Os"),
                   norms: Sequence[str] = ("none", "vector", "index"),
                   ) -> List[dict]:
    """Reproduce Table IV: IR2vec Intra × compiler option × normalization."""
    rows: List[dict] = []
    for dataset_name in ("MBI", "CORR"):
        ds = config.mbi() if dataset_name == "MBI" else config.corrbench()
        for norm in norms:
            for opt in opts:
                report, _, _ = run_intra_cv(
                    "ir2vec", ds, config, normalization=norm, opt_level=opt)
                rows.append({
                    "dataset": dataset_name, "normalization": norm, "opt": f"-{opt}",
                    **report.as_dict(),
                })
    return rows


# ---------------------------------------------------------------------------
# Table V: GA on/off
# ---------------------------------------------------------------------------

def table5_ga_effect(config: ReproConfig) -> List[dict]:
    """Reproduce Table V: IR2vec Intra and Cross with and without GA."""
    mbi = config.mbi()
    corr = config.corrbench()
    rows: List[dict] = []
    for use_ga in (False, True):
        for scenario, train, val in (("Intra", "MBI", "MBI"),
                                     ("Intra", "CORR", "CORR"),
                                     ("Cross", "MBI", "CORR"),
                                     ("Cross", "CORR", "MBI")):
            if scenario == "Intra":
                ds = mbi if train == "MBI" else corr
                report, _, _ = run_intra_cv("ir2vec", ds, config, use_ga=use_ga)
            else:
                t = mbi if train == "MBI" else corr
                v = corr if val == "CORR" else mbi
                report = run_cross("ir2vec", t, v, config, use_ga=use_ga)
            rows.append({"GA": "ON" if use_ga else "OFF", "scenario": scenario,
                         "train": train, "val": val, **report.as_dict()})
    return rows


# ---------------------------------------------------------------------------
# Fig. 6: per-label prediction accuracy (multi-class, MBI)
# ---------------------------------------------------------------------------

def fig6_per_label(config: ReproConfig) -> Dict[str, float]:
    """IR2vec per-label accuracy on MBI (multi-class labels)."""
    return run_per_label(config.mbi(), config)


def fig6_per_label_with_support(
        config: ReproConfig) -> Tuple[Dict[str, float], Dict[str, int]]:
    """Fig. 6 accuracies plus validation support per label."""
    return run_per_label_with_support(config.mbi(), config)


# ---------------------------------------------------------------------------
# Figs. 8 / 9: ablations
# ---------------------------------------------------------------------------

def fig8_single_ablation(config: ReproConfig) -> Dict[str, Dict[str, float]]:
    return {
        "MPI-CorrBench": run_single_ablation(config.corrbench(), config,
                                             CORR_LABELS),
        "MBI": run_single_ablation(config.mbi(), config, MBI_LABELS),
    }


#: The pairings visible in Fig. 9 (CorrBench; first excluded + second excluded).
FIG9_PAIRS: Tuple[Tuple[str, str], ...] = (
    ("MissingCall", "ArgError"),
    ("MissingCall", "ArgMismatch"),
    ("MissingCall", "MissplacedCall"),
    ("MissplacedCall", "ArgError"),
    ("MissplacedCall", "ArgMismatch"),
    ("ArgMismatch", "ArgError"),
)


def fig9_pair_ablation(config: ReproConfig) -> Dict[Tuple[str, str], Tuple[float, float]]:
    return run_pair_ablation(config.corrbench(), config, FIG9_PAIRS)


# ---------------------------------------------------------------------------
# Section V-A "Seeds": embedding-seed sensitivity of GA-selected features
# ---------------------------------------------------------------------------

#: Accuracy deltas the paper reports when vectors are regenerated with a
#: different IR2vec seed but the GA features selected on the original seed
#: are reused (Section V-A, "Seeds" paragraph).
SEED_STUDY_PAPER = {
    ("Intra", "MBI", "MBI"): -0.006,
    ("Intra", "CORR", "CORR"): 0.0,
    ("Cross", "MBI", "CORR"): -0.4081,
    ("Cross", "CORR", "MBI"): -0.0279,
}


def seed_sensitivity(config: ReproConfig, alt_seed: int = 1337) -> List[dict]:
    """Reproduce the paper's seed study.

    Protocol: run the GA over vectors generated with the original
    embedding seed; then regenerate vectors with ``alt_seed``, keep the
    GA-selected coordinates, retrain the decision tree, and compare
    accuracies.  The paper found Intra nearly seed-invariant but Cross
    (MBI→CorrBench in particular) brittle, because the GA coordinates are
    meaningful only in the embedding basis they were selected in.
    """
    from repro.ml.crossval import stratified_kfold_indices
    from repro.models.features import ir2vec_feature_matrix
    from repro.pipeline import make_classifier

    mbi = config.mbi()
    corr = config.corrbench()

    def _model(fixed: Optional[Sequence[int]] = None):
        return make_classifier(
            "decision-tree", normalization=config.normalization,
            use_ga=fixed is None, ga=config.ga,
            fixed_features=tuple(fixed) if fixed is not None else None)

    def intra(ds) -> Tuple[float, float]:
        X_a = ir2vec_feature_matrix(ds, config.ir2vec_opt,
                                    config.embedding_seed,
                                    engine=config.engine())
        X_b = ir2vec_feature_matrix(ds, config.ir2vec_opt, alt_seed,
                                    engine=config.engine())
        y = np.array([s.binary for s in ds.samples])
        hits_a = hits_b = total = 0
        for tr, va in stratified_kfold_indices(
                [s.label for s in ds.samples], config.folds, config.seed):
            model_a = _model().fit(X_a[tr], y[tr])
            hits_a += int(np.sum(model_a.predict(X_a[va]) == y[va]))
            model_b = _model(model_a.selected).fit(X_b[tr], y[tr])
            hits_b += int(np.sum(model_b.predict(X_b[va]) == y[va]))
            total += len(va)
        return hits_a / total, hits_b / total

    def cross(train_ds, val_ds) -> Tuple[float, float]:
        y_tr = np.array([s.binary for s in train_ds.samples])
        y_va = np.array([s.binary for s in val_ds.samples])
        Xtr_a = ir2vec_feature_matrix(train_ds, config.ir2vec_opt,
                                      config.embedding_seed,
                                      engine=config.engine())
        Xva_a = ir2vec_feature_matrix(val_ds, config.ir2vec_opt,
                                      config.embedding_seed,
                                      engine=config.engine())
        Xtr_b = ir2vec_feature_matrix(train_ds, config.ir2vec_opt, alt_seed,
                                      engine=config.engine())
        Xva_b = ir2vec_feature_matrix(val_ds, config.ir2vec_opt, alt_seed,
                                      engine=config.engine())
        model_a = _model().fit(Xtr_a, y_tr)
        acc_a = float(np.mean(model_a.predict(Xva_a) == y_va))
        model_b = _model(model_a.selected).fit(Xtr_b, y_tr)
        acc_b = float(np.mean(model_b.predict(Xva_b) == y_va))
        return acc_a, acc_b

    rows: List[dict] = []
    for scenario, train, val, fn in (
            ("Intra", "MBI", "MBI", lambda: intra(mbi)),
            ("Intra", "CORR", "CORR", lambda: intra(corr)),
            ("Cross", "MBI", "CORR", lambda: cross(mbi, corr)),
            ("Cross", "CORR", "MBI", lambda: cross(corr, mbi))):
        acc_orig, acc_reseeded = fn()
        rows.append({
            "scenario": scenario, "train": train, "val": val,
            "acc_original": acc_orig, "acc_reseeded": acc_reseeded,
            "delta": acc_reseeded - acc_orig,
            "paper_delta": SEED_STUDY_PAPER[(scenario, train, val)],
        })
    return rows


def render_seed_study(rows: List[dict]) -> str:
    headers = ["Scenario", "Train", "Val", "Acc (orig seed)",
               "Acc (new seed)", "Delta", "Paper delta"]
    data = [[r["scenario"], r["train"], r["val"], r["acc_original"],
             r["acc_reseeded"], r["delta"], r["paper_delta"]] for r in rows]
    return render_table(headers, data,
                        "Seed study — GA features reused across embedding seeds")


# ---------------------------------------------------------------------------
# Design-choice ablations (choices the paper fixed; DESIGN.md §2)
# ---------------------------------------------------------------------------

def ir2vec_encoding_ablation(config: ReproConfig) -> List[dict]:
    """Symbolic-only vs flow-aware-only vs the paper's concatenation.

    The paper concatenates both encodings "because the cost of inferring
    the embedding is negligible".  This ablation quantifies what each
    half contributes: per suite, Intra CV accuracy when the DT (with GA)
    only sees the symbolic 256-d half, only the flow-aware half, or the
    full 512-d concatenation.
    """
    from repro.ml.crossval import stratified_kfold_indices
    from repro.models.features import ir2vec_feature_matrix
    from repro.pipeline import make_classifier

    dim = 256
    slices = {
        "symbolic": slice(0, dim),
        "flow-aware": slice(dim, 2 * dim),
        "concat (paper)": slice(0, 2 * dim),
    }
    rows: List[dict] = []
    for suite in ("MBI", "CORR"):
        ds = config.dataset(suite)
        X_full = ir2vec_feature_matrix(ds, config.ir2vec_opt,
                                       config.embedding_seed,
                                       engine=config.engine())
        y = np.array([s.binary for s in ds.samples])
        strata = [s.label for s in ds.samples]
        for encoding, sl in slices.items():
            X = X_full[:, sl]
            hits = total = 0
            for tr, va in stratified_kfold_indices(strata, config.folds,
                                                   config.seed):
                model = make_classifier("decision-tree",
                                        normalization=config.normalization,
                                        use_ga=True, ga=config.ga)
                model.fit(X[tr], y[tr])
                hits += int(np.sum(model.predict(X[va]) == y[va]))
                total += len(va)
            rows.append({"suite": suite, "encoding": encoding,
                         "dim": sl.stop - sl.start,
                         "accuracy": hits / total})
    return rows


def gnn_design_ablation(config: ReproConfig, suite: str = "CORR") -> List[dict]:
    """GNN architecture ablations: pooling, attention, heterogeneity.

    Each variant flips exactly one of the paper's fixed choices (adaptive
    max pooling, GATv2 attention, heterogeneous edge types) and re-runs
    Intra CV with binary labels.
    """
    from repro.ml.crossval import stratified_kfold_indices
    from repro.models.features import graph_dataset
    from repro.pipeline import make_classifier, take

    ds = config.dataset(suite)
    graphs = graph_dataset(ds, config.gnn_opt, engine=config.engine())
    y = np.array([s.binary for s in ds.samples])
    strata = [s.label for s in ds.samples]

    variants = (
        ("paper (max, GATv2, hetero)", {}),
        ("mean pooling", {"pooling": "mean"}),
        ("no attention", {"attention": False}),
        ("homogeneous edges", {"hetero": False}),
    )
    rows: List[dict] = []
    for name, overrides in variants:
        hits = total = 0
        for tr, va in stratified_kfold_indices(strata, config.folds,
                                               config.seed):
            model = make_classifier("gnn", epochs=config.gnn_epochs,
                                    lr=config.gnn_lr,
                                    batch_size=config.gnn_batch_size,
                                    seed=config.seed, **overrides)
            model.fit(take(graphs, tr), y[tr])
            pred = model.predict(take(graphs, va))
            hits += int(np.sum(pred == y[va]))
            total += len(va)
        rows.append({"variant": name, "suite": suite,
                     "accuracy": hits / total, **{k: str(v) for k, v
                                                  in overrides.items()}})
    return rows


def render_encoding_ablation(rows: List[dict]) -> str:
    headers = ["Suite", "Encoding", "Dim", "Accuracy"]
    data = [[r["suite"], r["encoding"], r["dim"], r["accuracy"]] for r in rows]
    return render_table(headers, data,
                        "Ablation — IR2vec encoding halves (Intra CV)")


def render_gnn_ablation(rows: List[dict]) -> str:
    headers = ["Variant", "Suite", "Accuracy"]
    data = [[r["variant"], r["suite"], r["accuracy"]] for r in rows]
    return render_table(headers, data,
                        "Ablation — GNN architecture choices (Intra CV)")


# ---------------------------------------------------------------------------
# Extension (paper Section V-F / VI): mutation-injected bugs
# ---------------------------------------------------------------------------

def mutation_detection(config: ReproConfig, suite: str = "MBI",
                       per_sample: int = 2) -> List[dict]:
    """Detection rate of mutation-injected bugs, per operator.

    The paper proposes mutation techniques to acquire incorrect codes
    beyond the two suites.  Here we train the IR2vec detector on a suite
    (binary labels) and measure how often it flags programs whose bugs
    were injected by each mutation operator into the suite's *correct*
    codes — new incorrect programs the model has never seen.
    """
    from repro.datasets.mutation import MutationEngine
    from repro.models.features import ir2vec_feature_matrix
    from repro.pipeline import make_classifier

    ds = config.dataset(suite)
    engine = MutationEngine(seed=config.seed)
    mutants = engine.mutants_of(ds, per_sample=per_sample)
    if not mutants:
        return []

    X = ir2vec_feature_matrix(ds, config.ir2vec_opt, config.embedding_seed,
                              engine=config.engine())
    y = np.array([s.binary for s in ds.samples])
    model = make_classifier("decision-tree",
                            normalization=config.normalization,
                            use_ga=True, ga=config.ga)
    model.fit(X, y)

    from repro.datasets.loader import Dataset

    mutant_ds = Dataset(f"{ds.name}-mutants",
                        [m.sample for m in mutants])
    Xm = ir2vec_feature_matrix(mutant_ds, config.ir2vec_opt,
                               config.embedding_seed,
                               engine=config.engine())
    pred = model.predict(Xm)

    rows: List[dict] = []
    by_op: Dict[str, List[int]] = {}
    for i, m in enumerate(mutants):
        by_op.setdefault(m.operator, []).append(i)
    for op, idxs in sorted(by_op.items()):
        hits = int(np.sum(pred[idxs] == "Incorrect"))
        rows.append({"operator": op, "mutants": len(idxs),
                     "detected": hits, "rate": hits / len(idxs)})
    total = len(mutants)
    detected = int(np.sum(pred == "Incorrect"))
    rows.append({"operator": "ALL", "mutants": total, "detected": detected,
                 "rate": detected / total})
    return rows


def mutation_augmented_cross(config: ReproConfig,
                             per_sample: int = 2) -> List[dict]:
    """Does mutant-augmented training help cross-suite transfer?

    Compares Cross accuracy (train one suite → validate the other) with
    and without adding mutants of the training suite's correct codes to
    the training set — the augmentation loop the paper sketches for the
    GitHub-scale setting.
    """
    from repro.datasets.mutation import MutationEngine

    mbi = config.mbi()
    corr = config.corrbench()
    engine = MutationEngine(seed=config.seed)
    rows: List[dict] = []
    for train_ds, val_ds, train_name, val_name in (
            (mbi, corr, "MBI", "CORR"), (corr, mbi, "CORR", "MBI")):
        base = run_cross("ir2vec", train_ds, val_ds, config)
        augmented_ds = engine.augment(train_ds, per_sample=per_sample)
        augmented = run_cross("ir2vec", augmented_ds, val_ds, config)
        rows.append({
            "train": train_name, "val": val_name,
            "n_train_base": len(train_ds), "n_train_aug": len(augmented_ds),
            "acc_base": base.accuracy, "acc_augmented": augmented.accuracy,
            "recall_base": base.recall, "recall_augmented": augmented.recall,
        })
    return rows


def render_mutation_detection(rows: List[dict], suite: str) -> str:
    headers = ["Operator", "Mutants", "Detected", "Rate"]
    data = [[r["operator"], r["mutants"], r["detected"], r["rate"]]
            for r in rows]
    return render_table(headers, data,
                        f"Mutation study — injected-bug detection ({suite})")


def render_mutation_cross(rows: List[dict]) -> str:
    headers = ["Train", "Val", "N train", "N train+mut",
               "Acc base", "Acc augmented", "Recall base", "Recall augmented"]
    data = [[r["train"], r["val"], r["n_train_base"], r["n_train_aug"],
             r["acc_base"], r["acc_augmented"], r["recall_base"],
             r["recall_augmented"]] for r in rows]
    return render_table(headers, data,
                        "Mutation study — mutant-augmented Cross transfer")


# ---------------------------------------------------------------------------
# Table VI: Hypre case study
# ---------------------------------------------------------------------------

def table6_hypre(config: ReproConfig) -> List[dict]:
    """Reproduce Table VI: cross-trained models applied to the Hypre pair."""
    from repro.datasets.hypre import hypre_pair
    from repro.models.features import ir2vec_feature_matrix
    from repro.pipeline import IR2VecFeaturizer, make_classifier, make_frontend

    ok, ko = hypre_pair()
    featurizer = IR2VecFeaturizer(seed=config.embedding_seed)
    columns = []
    for opt in ("O0", "O2", "Os"):
        frontend = make_frontend("mini-c", opt_level=opt)
        vecs = config.engine().featurize_sources(
            frontend, featurizer, [(ok.name, ok.source), (ko.name, ko.source)])
        for vec, tag in zip(vecs, ("ok", "ko")):
            columns.append((f"{opt}-{tag}", vec, tag))

    rows: List[dict] = []
    for train_name in ("MBI", "MPI-CorrBench"):
        ds = config.mbi() if train_name == "MBI" else config.corrbench()
        X = ir2vec_feature_matrix(ds, config.ir2vec_opt,
                                  config.embedding_seed,
                                  engine=config.engine())
        y = np.array([s.binary for s in ds.samples])
        for features_mode in ("all", "GA"):
            model = make_classifier("decision-tree",
                                    normalization=config.normalization,
                                    use_ga=features_mode == "GA",
                                    ga=config.ga)
            model.fit(X, y)
            row = {"train": train_name, "features": features_mode}
            for col, vec, truth in columns:
                pred = model.predict(vec[None, :])[0]
                verdict = "ok" if pred == CORRECT else "ko"
                row[col] = verdict
                row[f"{col}_hit"] = verdict == truth
            rows.append(row)
    return rows


def render_table6(rows: List[dict]) -> str:
    cols = ["O0-ok", "O2-ok", "Os-ok", "O0-ko", "O2-ko", "Os-ko"]
    headers = ["Training", "Features"] + cols
    data = []
    for r in rows:
        data.append([r["train"], r["features"]]
                    + [f"{r[c]}{'*' if r[f'{c}_hit'] else '!'}" for c in cols])
    return render_table(headers, data,
                        "Table VI — Hypre predictions (*=correct, !=wrong)")
