"""Plain-text table/series rendering for experiment outputs."""

from __future__ import annotations

from typing import Dict, List, Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(series: Dict[str, float], title: str = "",
                  bar_width: int = 40) -> str:
    """ASCII bar chart for figure-style results (values in [0, 1])."""
    lines: List[str] = []
    if title:
        lines.append(title)
    if not series:
        return title
    label_width = max(len(k) for k in series)
    for key, value in series.items():
        filled = int(round(max(0.0, min(1.0, value)) * bar_width))
        bar = "#" * filled + "." * (bar_width - filled)
        lines.append(f"{key.ljust(label_width)} |{bar}| {value:.3f}")
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
