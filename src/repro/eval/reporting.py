"""Plain-text table/series rendering for experiment outputs."""

from __future__ import annotations

from typing import Dict, List, Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(series: Dict[str, float], title: str = "",
                  bar_width: int = 40) -> str:
    """ASCII bar chart for figure-style results (values in [0, 1])."""
    lines: List[str] = []
    if title:
        lines.append(title)
    if not series:
        return title
    label_width = max(len(k) for k in series)
    for key, value in series.items():
        filled = int(round(max(0.0, min(1.0, value)) * bar_width))
        bar = "#" * filled + "." * (bar_width - filled)
        lines.append(f"{key.ljust(label_width)} |{bar}| {value:.3f}")
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def _fmt_null(value) -> str:
    """Nullable metric: ``None`` renders as a literal ``null``."""
    return "null" if value is None else _fmt(float(value))


def render_matrix(doc: Dict) -> str:
    """One row per matrix cell: overall P/R/F1 plus the weakest class."""
    rows = []
    for cell in doc["cells"]:
        overall = cell["overall"]
        defined = [(cls, m["f1"]) for cls, m in sorted(cell["per_class"].items())
                   if m["f1"] is not None]
        worst = min(defined, key=lambda kv: kv[1]) if defined else None
        rows.append([
            cell["train_dataset"], cell["test_dataset"], cell["method"],
            cell["mutation_level"], cell["scenario"],
            cell["n_train"], cell["n_test"],
            _fmt_null(overall["precision"]), _fmt_null(overall["recall"]),
            _fmt_null(overall["f1"]),
            f"{worst[0]}={worst[1]:.3f}" if worst else "-",
        ])
    title = (f"Evaluation matrix — profile {doc['profile']} "
             f"(schema v{doc['schema_version']}, seed {doc['seed']})")
    return render_table(
        ["Train", "Test", "Method", "Mut", "Scenario", "N train", "N test",
         "Precision", "Recall", "F1", "Weakest class"], rows, title)


def render_generalization(doc: Dict) -> str:
    """Cross-dataset deltas (train≠test F1 minus the identity cell's)."""
    rows = [[g["method"], g["mutation_level"], g["train_dataset"],
             g["test_dataset"], _fmt_null(g["intra_f1"]),
             _fmt_null(g["cross_f1"]), _fmt_null(g["delta"])]
            for g in doc["generalization"]]
    if not rows:
        return "(no cross-dataset cells)"
    return render_table(
        ["Method", "Mut", "Train", "Test", "Intra F1", "Cross F1", "Delta"],
        rows, "Cross-dataset generalization")


def render_compare(result) -> str:
    """Human-readable verdict of an artifact comparison."""
    lines = [
        f"checked {result.checked_cells} cells, "
        f"{result.checked_classes} per-class scores; "
        f"{len(result.skipped)} skipped (null/low-support baselines)",
    ]
    for regression in result.regressions:
        lines.append(f"REGRESSION: {regression.describe()}")
    lines.append("verdict: PASS" if result.passed else "verdict: FAIL")
    return "\n".join(lines)
