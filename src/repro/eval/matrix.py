"""Declarative evaluation-matrix harness.

The paper's core evidence is a grid: embedding backend × train suite ×
test suite, scored per MPI error class, with cross-dataset cells (train
on MBI, test on CorrBench / the Hypre pair) measuring generalization.
This module makes that grid a first-class, machine-comparable artifact:

* :class:`MatrixSpec` declares the axes — train dataset × test dataset ×
  embedding backend (method) × mutation-augmentation level — and expands
  them into :class:`CellSpec` cells.
* :func:`run_matrix` executes every cell on the execution engine:
  featurization fans out over the engine's worker pool and persistent
  content-addressed store (a warm rerun recompiles nothing), features
  are extracted once per (dataset, backend) and sliced per cell, and the
  independent (fit, predict, score) cell jobs fan out through
  :meth:`~repro.engine.ExecutionEngine.map`.
* Every cell reports overall *and* per-error-class precision/recall/F1
  through the null-safe metric core (:mod:`repro.ml.metrics`) — a class
  with no test samples scores ``null``, never a fake zero — plus
  provenance: dataset content digests, the pipeline config hash, and
  the seed.
* The result serializes to a schema-checked ``EVAL_matrix.json``
  (:mod:`repro.eval.schema`); :mod:`repro.eval.compare` turns any two
  such artifacts into a pass/fail regression verdict.

Identity cells (train == test) use a deterministic stratified split
rather than cross-validation so that the trained model, the held-out
digest, and the per-class scores are all reproducible from the artifact
alone.  Cross cells train on the full train suite and score the full
test suite, mirroring the paper's Cross scenario.  Mutation level ``L``
augments the *training* side with ``L`` injected-bug mutants per correct
training sample (never the test side — the ground truth stays pristine).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import __version__
from repro.datasets.loader import Dataset, stratified_split_indices
from repro.datasets.mutation import Mutant, MutationEngine, leak_safe_indices
from repro.eval.config import ReproConfig
from repro.eval.scenarios import stage_specs
from repro.ml.metrics import binary_summary, per_class_binary_report
from repro.models.features import featurize_dataset
from repro.pipeline import CLASSIFIERS, FEATURIZERS, take

#: Bumped whenever the artifact layout changes incompatibly.
MATRIX_SCHEMA_VERSION = 1

#: Datasets that only ever appear on the test axis (too small to train on).
TEST_ONLY_DATASETS = ("hypre",)


# ---------------------------------------------------------------------------
# Declarative grid
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CellSpec:
    """One (train × test × method × mutation level) combination."""

    train_dataset: str
    test_dataset: str
    method: str
    mutation_level: int

    @property
    def scenario(self) -> str:
        return "split" if self.train_dataset == self.test_dataset else "cross"

    @property
    def cell_id(self) -> str:
        return (f"train={self.train_dataset}|test={self.test_dataset}"
                f"|method={self.method}|mut={self.mutation_level}")


@dataclass(frozen=True)
class MatrixSpec:
    """The declarative grid; profiles pick sensible default axes."""

    train_datasets: Tuple[str, ...] = ("mbi", "corrbench")
    test_datasets: Tuple[str, ...] = ("mbi", "corrbench", "hypre")
    methods: Tuple[str, ...] = ("ir2vec",)
    mutation_levels: Tuple[int, ...] = (0, 1)
    test_frac: float = 0.35
    split_seed: int = 0

    def __post_init__(self):
        if not self.train_datasets or not self.test_datasets:
            raise ValueError("matrix needs at least one train and one "
                             "test dataset")
        if any(level < 0 for level in self.mutation_levels):
            raise ValueError("mutation levels must be >= 0")
        for name in self.train_datasets:
            if name in TEST_ONLY_DATASETS:
                raise ValueError(f"{name!r} is test-only (too small to "
                                 "train on)")

    def cells(self) -> List[CellSpec]:
        """Expand the grid in a stable, documented order.

        The ``static`` backend is training-free, so the train and
        mutation axes would only replicate identical columns: it gets
        one cell per test dataset (at the first mutation level, with
        ``train == test`` where legal so it scores the same held-out
        split as the learned identity cells).
        """
        out: List[CellSpec] = []
        for method in self.methods:
            if method == "static":
                level = self.mutation_levels[0] if self.mutation_levels \
                    else 0
                for test in self.test_datasets:
                    train = (test if test in self.train_datasets
                             else self.train_datasets[0])
                    out.append(CellSpec(train, test, method, level))
                continue
            out.extend(CellSpec(train, test, method, level)
                       for level in self.mutation_levels
                       for train in self.train_datasets
                       for test in self.test_datasets)
        return out

    def as_dict(self) -> Dict[str, Any]:
        return {
            "train_datasets": list(self.train_datasets),
            "test_datasets": list(self.test_datasets),
            "methods": list(self.methods),
            "mutation_levels": list(self.mutation_levels),
            "test_frac": self.test_frac,
            "split_seed": self.split_seed,
        }

    @staticmethod
    def for_profile(profile: str) -> "MatrixSpec":
        """The default grid per scaling profile.

        ``smoke`` keeps the PR gate to the IR2vec backend (plus the
        training-free static-analyzer column) and one augmentation
        step; ``fast``/``paper`` run the full grid — both learned
        backends, three mutation levels — for the nightly sweep.
        """
        if profile == "smoke":
            return MatrixSpec(methods=("ir2vec", "static"))
        return MatrixSpec(methods=("ir2vec", "gnn", "static"),
                          mutation_levels=(0, 1, 2))


# ---------------------------------------------------------------------------
# Cell execution (module-level → picklable for engine.map fan-out)
# ---------------------------------------------------------------------------

def _concat_features(a: Any, b: Any) -> Any:
    """Stack two feature batches of the same kind (matrix or graph list)."""
    if isinstance(a, np.ndarray):
        if len(b) == 0:
            return a
        return np.concatenate([a, np.asarray(b)])
    return list(a) + list(b)


def _evaluate_cell(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Fit the cell's classifier and score it: the engine.map job body.

    ``payload`` is fully self-contained (stage specs plus materialized
    feature batches), so serial and parallel execution are byte-identical
    and a worker process needs no shared state beyond the module imports.
    """
    y_test = list(payload["y_test"])
    test_classes = list(payload["test_classes"])
    if "y_pred" in payload:
        # Training-free backend (the static analyzer): predictions were
        # computed per dataset and sliced per cell — just score them.
        y_pred = list(payload["y_pred"])
        overall = binary_summary(y_test, y_pred)
        per_class = per_class_binary_report(test_classes, y_pred,
                                            classes=payload["class_names"])
        return {"overall": overall, "per_class": per_class}
    if len(payload["y_train"]) == 0 or len(y_test) == 0:
        # Nothing to fit or nothing to score: a valid, fully-null cell.
        # Supports still reflect the (possibly non-empty) test side; the
        # scores are undefined, never fake zeros.
        overall = binary_summary([], [])
        overall["support"] = len(y_test)
        per_class = {
            cls: {"TP": 0, "TN": 0, "FP": 0, "FN": 0,
                  "precision": None, "recall": None, "f1": None,
                  "accuracy": None, "support": test_classes.count(cls)}
            for cls in payload["class_names"]}
        return {"overall": overall, "per_class": per_class}
    clf = CLASSIFIERS.create(payload["clf_name"], payload["clf_cfg"])
    clf.fit(payload["X_train"], np.asarray(payload["y_train"]))
    y_pred = list(clf.predict(payload["X_test"]))
    overall = binary_summary(y_test, y_pred)
    per_class = per_class_binary_report(test_classes, y_pred,
                                        classes=payload["class_names"])
    return {"overall": overall, "per_class": per_class}


def _static_predict_worker(payload: Tuple[str, str, int]) -> str:
    """Static-analyzer verdict for one sample: the engine.map job body.

    A frontend rejection counts as ``Incorrect`` — the dataset labels
    broken programs as buggy, and so does the analyzer.
    """
    name, source, nprocs = payload
    from repro.verify.static.analyzer import analyze_source

    verdict, _findings = analyze_source(source, name, nprocs)
    return "Correct" if verdict == "correct" else "Incorrect"


# ---------------------------------------------------------------------------
# Matrix runner
# ---------------------------------------------------------------------------

def _config_hash(*parts: Any) -> str:
    h = hashlib.sha256()
    for part in parts:
        h.update(repr(part).encode("utf-8"))
        h.update(b"\x00")
    return h.hexdigest()


@dataclass
class _MethodFeatures:
    """Features for every dataset under one embedding backend."""

    feat_name: str
    feat_cfg: Any
    clf_name: str
    clf_cfg: Any
    per_dataset: Dict[str, Any] = field(default_factory=dict)
    per_mutants: Dict[Tuple[str, int], Any] = field(default_factory=dict)


def run_matrix(spec: MatrixSpec, config: Optional[ReproConfig] = None,
               profile: str = "custom") -> Dict[str, Any]:
    """Execute every cell of ``spec``; return the versioned artifact doc.

    Feature extraction runs once per (dataset, backend) on the config's
    execution engine — parallel fan-out and the persistent store come
    from ``config.workers`` / ``config.cache_dir`` — and cells slice the
    shared batches, so adding grid axes costs classifier fits, not
    recompiles.  Cell jobs themselves fan out via ``engine.map``.
    """
    config = config or ReproConfig.smoke()
    engine = config.engine()

    dataset_names = sorted(set(spec.train_datasets) | set(spec.test_datasets))
    datasets: Dict[str, Dataset] = {name: config.dataset(name)
                                    for name in dataset_names}
    digests = {name: ds.content_digest() for name, ds in datasets.items()}

    # Deterministic stratified splits for identity (train == test) cells.
    splits: Dict[str, Tuple[List[int], List[int]]] = {}
    for name in spec.train_datasets:
        if name in spec.test_datasets:
            splits[name] = stratified_split_indices(
                datasets[name].labels(), spec.test_frac, spec.split_seed)

    # Mutation augmentation: L mutants per correct sample of each train
    # side (full suite for cross cells, train split for identity cells
    # — the split part is a subset, so one mutant set per (name, level)
    # keyed on the origin sample covers both via filtering).  The
    # Mutant objects are kept whole: their ``origin`` field drives the
    # identity-cell leak guard.
    mutation = MutationEngine(seed=config.seed)
    mutant_sets: Dict[Tuple[str, int], List[Mutant]] = {}
    for name in spec.train_datasets:
        for level in spec.mutation_levels:
            if level > 0:
                mutant_sets[(name, level)] = mutation.mutants_of(
                    datasets[name], per_sample=level)

    # Training-free static backend: one verdict per sample, computed once
    # per dataset on the engine and sliced per cell — no features, no fit.
    static_preds: Dict[str, List[str]] = {}
    if "static" in spec.methods:
        for name in sorted({c.test_dataset for c in spec.cells()
                            if c.method == "static"}):
            jobs = [(s.name, s.source, config.nprocs)
                    for s in datasets[name].samples]
            static_preds[name] = list(
                engine.map(_static_predict_worker, jobs))

    # Featurize once per (backend, dataset) through the shared cache.
    methods: Dict[str, _MethodFeatures] = {}
    for method in spec.methods:
        if method == "static":
            continue
        feat_name, feat_cfg, clf_name, clf_cfg = stage_specs(method, config)
        mf = _MethodFeatures(feat_name, feat_cfg, clf_name, clf_cfg)
        featurizer = FEATURIZERS.create(feat_name, feat_cfg)
        for name in dataset_names:
            mf.per_dataset[name] = featurize_dataset(
                featurizer, datasets[name], engine=engine)
        for (name, level), mutants in mutant_sets.items():
            mf.per_mutants[(name, level)] = featurize_dataset(
                featurizer,
                Dataset(f"{name}-mutants-x{level}",
                        [m.sample for m in mutants]),
                engine=engine)
        methods[method] = mf

    cells = spec.cells()
    payloads = [_cell_payload(cell, spec, config, datasets, splits,
                              mutant_sets, methods.get(cell.method),
                              static_preds)
                for cell in cells]
    results = engine.map(_evaluate_cell, payloads)

    cell_docs: List[Dict[str, Any]] = []
    for cell, payload, result in zip(cells, payloads, results):
        cell_docs.append({
            "id": cell.cell_id,
            "train_dataset": cell.train_dataset,
            "test_dataset": cell.test_dataset,
            "method": cell.method,
            "mutation_level": cell.mutation_level,
            "scenario": cell.scenario,
            "n_train": len(payload["y_train"]),
            "n_test": len(payload["y_test"]),
            "overall": result["overall"],
            "per_class": result["per_class"],
            "provenance": payload["provenance"],
        })

    doc = {
        "kind": "repro-eval-matrix",
        "schema_version": MATRIX_SCHEMA_VERSION,
        "repro_version": __version__,
        "profile": profile,
        "seed": config.seed,
        "spec": spec.as_dict(),
        "datasets": {name: {"digest": digests[name],
                            "n_samples": len(datasets[name])}
                     for name in dataset_names},
        "cells": cell_docs,
        "generalization": _generalization(cell_docs),
    }
    from repro.eval.schema import validate_matrix_artifact

    validate_matrix_artifact(doc)      # never emit an invalid artifact
    return doc


def _cell_payload(cell: CellSpec, spec: MatrixSpec, config: ReproConfig,
                  datasets: Dict[str, Dataset],
                  splits: Dict[str, Tuple[List[int], List[int]]],
                  mutant_sets: Dict[Tuple[str, int], List[Mutant]],
                  mf: Optional[_MethodFeatures],
                  static_preds: Optional[Dict[str, List[str]]] = None,
                  ) -> Dict[str, Any]:
    """Materialize one cell's self-contained train/test job payload."""
    train_ds = datasets[cell.train_dataset]
    test_ds = datasets[cell.test_dataset]

    if cell.scenario == "split":
        train_idx, test_idx = splits[cell.train_dataset]
    else:
        train_idx = list(range(len(train_ds)))
        test_idx = list(range(len(test_ds)))

    if cell.method == "static":
        # Training-free backend: the analyzer scored every sample of the
        # test dataset up front; the cell just slices the held-out side
        # so its support matches the learned identity cells exactly.
        preds = (static_preds or {})[cell.test_dataset]
        test_samples = [test_ds.samples[i] for i in test_idx]
        return {
            "y_train": [],
            "y_pred": [preds[i] for i in test_idx],
            "y_test": [s.binary for s in test_samples],
            "test_classes": [s.label for s in test_samples],
            "class_names": sorted({s.label for s in test_ds.samples
                                   if not s.is_correct}),
            "provenance": {
                "train_digest": "static:untrained",
                "test_digest": Dataset(f"{test_ds.name}-test",
                                       test_samples).content_digest(),
                "config_hash": _config_hash(
                    "static", config.nprocs, spec.test_frac,
                    spec.split_seed, config.seed),
                "seed": config.seed,
            },
        }

    train_features = mf.per_dataset[cell.train_dataset]
    test_features = mf.per_dataset[cell.test_dataset]

    train_samples = [train_ds.samples[i] for i in train_idx]
    X_train = take(train_features, train_idx)
    y_train = [s.binary for s in train_samples]

    kept_samples: List[Any] = []
    if cell.mutation_level > 0:
        mutants = mutant_sets[(cell.train_dataset, cell.mutation_level)]
        # Identity cells train on a split: only admit mutants whose
        # origin sample is on the train side, or held-out information
        # would leak into training through its mutated copies.  The
        # guard matches origin name *and* source digest (see
        # leak_safe_indices) so name collisions never leak either.
        keep = leak_safe_indices(mutants, train_samples)
        if keep:
            mutant_features = take(
                mf.per_mutants[(cell.train_dataset,
                                cell.mutation_level)], keep)
            kept_samples = [mutants[i].sample for i in keep]
            X_train = _concat_features(X_train, mutant_features)
            y_train = y_train + [s.binary for s in kept_samples]
    train_digest_ds = Dataset(
        f"{train_ds.name}-train+mut{cell.mutation_level}"
        if cell.mutation_level > 0 else f"{train_ds.name}-train",
        train_samples + kept_samples)

    test_samples = [test_ds.samples[i] for i in test_idx]
    class_names = sorted({s.label for s in test_ds.samples
                          if not s.is_correct})
    return {
        "clf_name": mf.clf_name,
        "clf_cfg": mf.clf_cfg,
        "X_train": X_train,
        "y_train": y_train,
        "X_test": take(test_features, test_idx),
        "y_test": [s.binary for s in test_samples],
        "test_classes": [s.label for s in test_samples],
        "class_names": class_names,
        "provenance": {
            "train_digest": train_digest_ds.content_digest(),
            "test_digest": Dataset(f"{test_ds.name}-test",
                                   test_samples).content_digest(),
            "config_hash": _config_hash(
                mf.feat_name, mf.feat_cfg, mf.clf_name, mf.clf_cfg,
                cell.mutation_level, spec.test_frac, spec.split_seed,
                config.seed),
            "seed": config.seed,
        },
    }


def _generalization(cell_docs: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Cross-dataset deltas: cross-cell F1 minus the matching identity
    cell's F1, per (method, mutation level, train dataset) — the
    train-MBI→test-CorrBench/Hypre generalization gap of the paper."""
    identity: Dict[Tuple[str, int, str], Optional[float]] = {}
    for doc in cell_docs:
        if doc["scenario"] == "split":
            key = (doc["method"], doc["mutation_level"], doc["train_dataset"])
            identity[key] = doc["overall"]["f1"]
    out: List[Dict[str, Any]] = []
    for doc in cell_docs:
        if doc["scenario"] != "cross":
            continue
        key = (doc["method"], doc["mutation_level"], doc["train_dataset"])
        intra_f1 = identity.get(key)
        cross_f1 = doc["overall"]["f1"]
        delta = (cross_f1 - intra_f1
                 if intra_f1 is not None and cross_f1 is not None else None)
        out.append({
            "method": doc["method"],
            "mutation_level": doc["mutation_level"],
            "train_dataset": doc["train_dataset"],
            "test_dataset": doc["test_dataset"],
            "intra_f1": intra_f1,
            "cross_f1": cross_f1,
            "delta": delta,
        })
    return out


# ---------------------------------------------------------------------------
# Artifact I/O
# ---------------------------------------------------------------------------

def save_matrix_artifact(doc: Dict[str, Any], path: str) -> None:
    """Write the matrix in envelope form (kind + content digest)."""
    from repro.eval.schema import MATRIX_KIND
    from repro.schema import save_envelope

    save_envelope(doc, path, kind=MATRIX_KIND)


def load_matrix_artifact(path: str) -> Dict[str, Any]:
    """Read a matrix artifact — envelope form, or a legacy flat file
    such as a committed baseline — and return the flat document."""
    from repro.eval.schema import MATRIX_KIND
    from repro.schema import validate_kind

    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    return validate_kind(MATRIX_KIND, doc)
