"""Schema checking for the evaluation-matrix artifact (compat shim).

The validator and the matrix schema now live in :mod:`repro.schema`
(the unified artifact-envelope package); this module keeps the old
import surface alive.  ``EVAL_matrix.json`` is validated on both ends
as before: :func:`repro.eval.matrix.run_matrix` refuses to emit an
invalid document and :mod:`repro.eval.compare` refuses to gate on one —
both now through :func:`repro.schema.validate_kind`, which accepts the
envelope form *and* legacy flat files (e.g. committed baselines).
"""

from __future__ import annotations

from typing import Any

from repro.schema import SchemaError, validate  # noqa: F401  (re-export)
from repro.schema.kinds import MATRIX_SCHEMA  # noqa: F401  (re-export)

MATRIX_KIND = "repro-eval-matrix"


def validate_matrix_artifact(doc: Any) -> None:
    """Raise :class:`SchemaError` unless ``doc`` is a valid matrix
    artifact (envelope or flat form) of a schema version this code
    understands."""
    from repro.schema import validate_kind

    validate_kind(MATRIX_KIND, doc)
