"""Schema checking for the evaluation-matrix artifact.

The artifact is the quality contract CI gates on, so it is validated on
*both* ends: :func:`repro.eval.matrix.run_matrix` refuses to emit an
invalid document and :mod:`repro.eval.compare` refuses to gate on one.
The validator implements the small JSON-Schema subset the artifact
needs (types, required keys, nested properties, items, enums, nullable
unions) in the stdlib — no external dependency, stable error paths.
"""

from __future__ import annotations

from typing import Any, List, Mapping, Sequence, Union


class SchemaError(ValueError):
    """A document does not match the schema; ``path`` locates the issue."""

    def __init__(self, path: str, message: str):
        self.path = path
        super().__init__(f"{path}: {message}")


_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, Mapping),
    "array": lambda v: isinstance(v, (list, tuple)),
    "string": lambda v: isinstance(v, str),
    # bool is an int subclass in Python; keep the JSON types disjoint.
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: (isinstance(v, (int, float))
                         and not isinstance(v, bool)),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def validate(doc: Any, schema: Mapping[str, Any], path: str = "$") -> None:
    """Recursively check ``doc`` against ``schema``; raise SchemaError.

    Supported keywords: ``type`` (name or list of names), ``enum``,
    ``const``, ``required``, ``properties``,
    ``additionalProperties: {schema}`` (applied to keys not named in
    ``properties``), ``items``, and ``minItems``.
    """
    types: Union[str, Sequence[str], None] = schema.get("type")
    if types is not None:
        names = (types,) if isinstance(types, str) else tuple(types)
        unknown = [n for n in names if n not in _TYPE_CHECKS]
        if unknown:
            raise SchemaError(path, f"schema names unknown types {unknown}")
        if not any(_TYPE_CHECKS[name](doc) for name in names):
            raise SchemaError(
                path, f"expected {' or '.join(names)}, "
                      f"got {type(doc).__name__} ({doc!r:.80})")
    if "const" in schema and doc != schema["const"]:
        raise SchemaError(path, f"expected {schema['const']!r}, got {doc!r}")
    if "enum" in schema and doc not in schema["enum"]:
        raise SchemaError(path, f"{doc!r} not in {schema['enum']!r}")

    if isinstance(doc, Mapping):
        for key in schema.get("required", ()):
            if key not in doc:
                raise SchemaError(path, f"missing required key {key!r}")
        properties: Mapping[str, Any] = schema.get("properties", {})
        for key, sub in properties.items():
            if key in doc:
                validate(doc[key], sub, f"{path}.{key}")
        extra = schema.get("additionalProperties")
        if isinstance(extra, Mapping):
            for key, value in doc.items():
                if key not in properties:
                    validate(value, extra, f"{path}.{key}")
    if isinstance(doc, (list, tuple)):
        if len(doc) < schema.get("minItems", 0):
            raise SchemaError(path, f"expected at least "
                                    f"{schema['minItems']} items, "
                                    f"got {len(doc)}")
        items = schema.get("items")
        if isinstance(items, Mapping):
            for i, value in enumerate(doc):
                validate(value, items, f"{path}[{i}]")


# ---------------------------------------------------------------------------
# The matrix artifact schema
# ---------------------------------------------------------------------------

_NULLABLE_NUMBER = {"type": ["number", "null"]}

#: Overall and per-class metric blocks share this shape.
_METRIC_BLOCK = {
    "type": "object",
    "required": ["precision", "recall", "f1", "support"],
    "properties": {
        "TP": {"type": "integer"}, "TN": {"type": "integer"},
        "FP": {"type": "integer"}, "FN": {"type": "integer"},
        "precision": _NULLABLE_NUMBER,
        "recall": _NULLABLE_NUMBER,
        "f1": _NULLABLE_NUMBER,
        "accuracy": _NULLABLE_NUMBER,
        "support": {"type": "integer"},
    },
}

_CELL_SCHEMA = {
    "type": "object",
    "required": ["id", "train_dataset", "test_dataset", "method",
                 "mutation_level", "scenario", "n_train", "n_test",
                 "overall", "per_class", "provenance"],
    "properties": {
        "id": {"type": "string"},
        "train_dataset": {"type": "string"},
        "test_dataset": {"type": "string"},
        "method": {"type": "string"},
        "mutation_level": {"type": "integer"},
        "scenario": {"enum": ["split", "cross"]},
        "n_train": {"type": "integer"},
        "n_test": {"type": "integer"},
        "overall": _METRIC_BLOCK,
        "per_class": {"type": "object",
                      "additionalProperties": _METRIC_BLOCK},
        "provenance": {
            "type": "object",
            "required": ["train_digest", "test_digest", "config_hash",
                         "seed"],
            "properties": {
                "train_digest": {"type": "string"},
                "test_digest": {"type": "string"},
                "config_hash": {"type": "string"},
                "seed": {"type": "integer"},
            },
        },
    },
}

MATRIX_SCHEMA = {
    "type": "object",
    "required": ["kind", "schema_version", "repro_version", "profile",
                 "seed", "spec", "datasets", "cells", "generalization"],
    "properties": {
        "kind": {"const": "repro-eval-matrix"},
        "schema_version": {"type": "integer"},
        "repro_version": {"type": "string"},
        "profile": {"type": "string"},
        "seed": {"type": "integer"},
        "spec": {
            "type": "object",
            "required": ["train_datasets", "test_datasets", "methods",
                         "mutation_levels", "test_frac", "split_seed"],
            "properties": {
                "train_datasets": {"type": "array", "minItems": 1,
                                   "items": {"type": "string"}},
                "test_datasets": {"type": "array", "minItems": 1,
                                  "items": {"type": "string"}},
                "methods": {"type": "array", "minItems": 1,
                            "items": {"type": "string"}},
                "mutation_levels": {"type": "array", "minItems": 1,
                                    "items": {"type": "integer"}},
                "test_frac": {"type": "number"},
                "split_seed": {"type": "integer"},
            },
        },
        "datasets": {
            "type": "object",
            "additionalProperties": {
                "type": "object",
                "required": ["digest", "n_samples"],
                "properties": {"digest": {"type": "string"},
                               "n_samples": {"type": "integer"}},
            },
        },
        "cells": {"type": "array", "minItems": 1, "items": _CELL_SCHEMA},
        "generalization": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["method", "mutation_level", "train_dataset",
                             "test_dataset", "intra_f1", "cross_f1",
                             "delta"],
                "properties": {
                    "method": {"type": "string"},
                    "mutation_level": {"type": "integer"},
                    "train_dataset": {"type": "string"},
                    "test_dataset": {"type": "string"},
                    "intra_f1": _NULLABLE_NUMBER,
                    "cross_f1": _NULLABLE_NUMBER,
                    "delta": _NULLABLE_NUMBER,
                },
            },
        },
    },
}


def validate_matrix_artifact(doc: Any) -> None:
    """Raise :class:`SchemaError` unless ``doc`` is a valid matrix
    artifact of a schema version this code understands."""
    validate(doc, MATRIX_SCHEMA)
    version = doc["schema_version"]
    if version != 1:
        raise SchemaError("$.schema_version",
                          f"unsupported schema version {version} "
                          f"(this build understands 1)")
    cell_ids: List[str] = [cell["id"] for cell in doc["cells"]]
    if len(set(cell_ids)) != len(cell_ids):
        dupes = sorted({c for c in cell_ids if cell_ids.count(c) > 1})
        raise SchemaError("$.cells", f"duplicate cell ids {dupes}")
