"""Label-ablation studies (paper Section V-E, Figs. 8 and 9).

Single ablation: for each error label, train binary models on folds with
*every sample of that label removed from training*, then measure how
often held-out samples of the removed label are still predicted
Incorrect — the model's generalization to unseen error types.

Pair ablation: remove two labels simultaneously and measure each
(quantifies shared code patterns between error types).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.datasets.loader import Dataset
from repro.eval.config import ReproConfig
from repro.ml.crossval import stratified_kfold_indices
from repro.models.features import ir2vec_feature_matrix
from repro.pipeline import make_classifier


def _ablation_accuracy(dataset: Dataset, excluded: Sequence[str],
                       config: ReproConfig) -> Dict[str, float]:
    """Detection accuracy of each excluded label when absent in training."""
    X = ir2vec_feature_matrix(dataset, config.ir2vec_opt, config.embedding_seed)
    labels = np.array([s.label for s in dataset.samples])
    binary = np.array([s.binary for s in dataset.samples])
    excluded_set = set(excluded)

    hits = {lbl: 0 for lbl in excluded}
    totals = {lbl: 0 for lbl in excluded}
    for train_idx, val_idx in stratified_kfold_indices(
            list(labels), config.folds, config.seed):
        keep = np.array([labels[i] not in excluded_set for i in train_idx])
        train_kept = train_idx[keep]
        model = make_classifier("decision-tree",
                                normalization=config.normalization,
                                use_ga=True, ga=config.ga)
        model.fit(X[train_kept], binary[train_kept])
        targets = [i for i in val_idx if labels[i] in excluded_set]
        if not targets:
            continue
        pred = model.predict(X[targets])
        for i, p in zip(targets, pred):
            totals[labels[i]] += 1
            if p == "Incorrect":
                hits[labels[i]] += 1
    return {lbl: (hits[lbl] / totals[lbl] if totals[lbl] else 0.0)
            for lbl in excluded}


def run_single_ablation(dataset: Dataset, config: ReproConfig,
                        labels: Sequence[str]) -> Dict[str, float]:
    """Fig. 8: leave-one-label-out detection accuracy per error label."""
    results: Dict[str, float] = {}
    for label in labels:
        results[label] = _ablation_accuracy(dataset, [label], config)[label]
    return results


def run_pair_ablation(dataset: Dataset, config: ReproConfig,
                      pairs: Sequence[Tuple[str, str]]
                      ) -> Dict[Tuple[str, str], Tuple[float, float]]:
    """Fig. 9: leave-two-labels-out; accuracy of (first, second) label."""
    results: Dict[Tuple[str, str], Tuple[float, float]] = {}
    for first, second in pairs:
        acc = _ablation_accuracy(dataset, [first, second], config)
        results[(first, second)] = (acc[first], acc[second])
    return results
