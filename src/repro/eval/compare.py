"""Regression gating between two evaluation-matrix artifacts.

``repro eval compare CANDIDATE --baseline BASELINE`` turns two
schema-checked ``EVAL_matrix.json`` documents into a pass/fail verdict:
a cell (or an error class inside a cell) regresses when its F1 drops
below the baseline by more than the configured threshold.  Null metrics
are first-class — a baseline ``null`` gates nothing, while a defined
baseline score degrading to ``null`` *is* a regression (the detector
stopped producing a comparable score).  Comparing an artifact against
itself always passes, by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional


@dataclass(frozen=True)
class CompareThresholds:
    """Per-class F1 drop tolerances.

    ``max_f1_drop`` applies to the overall cell score and to every class
    without an entry in ``per_class``; classes below ``min_support`` in
    the baseline are skipped (single-sample accuracy is noise, not a
    signal worth gating on).
    """

    max_f1_drop: float = 0.05
    per_class: Mapping[str, float] = field(default_factory=dict)
    min_support: int = 2

    def for_class(self, cls: str) -> float:
        return self.per_class.get(cls, self.max_f1_drop)


@dataclass
class Regression:
    cell_id: str
    scope: str                       # 'overall' | 'cell' | error-class name
    reason: str
    baseline_f1: Optional[float] = None
    candidate_f1: Optional[float] = None
    threshold: Optional[float] = None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "cell_id": self.cell_id, "scope": self.scope,
            "reason": self.reason, "baseline_f1": self.baseline_f1,
            "candidate_f1": self.candidate_f1, "threshold": self.threshold,
        }

    def describe(self) -> str:
        detail = self.reason
        if self.baseline_f1 is not None:
            cand = ("null" if self.candidate_f1 is None
                    else f"{self.candidate_f1:.3f}")
            detail += (f" (baseline F1 {self.baseline_f1:.3f} -> {cand}, "
                       f"threshold {self.threshold})")
        return f"{self.cell_id} [{self.scope}]: {detail}"


@dataclass
class CompareResult:
    passed: bool
    regressions: List[Regression]
    checked_cells: int
    checked_classes: int
    skipped: List[Dict[str, Any]]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "passed": self.passed,
            "checked_cells": self.checked_cells,
            "checked_classes": self.checked_classes,
            "regressions": [r.as_dict() for r in self.regressions],
            "skipped": list(self.skipped),
        }


def compare_artifacts(baseline: Mapping[str, Any],
                      candidate: Mapping[str, Any],
                      thresholds: Optional[CompareThresholds] = None,
                      ) -> CompareResult:
    """Gate ``candidate`` against ``baseline`` (both already validated).

    Every baseline cell must exist in the candidate (a disappearing cell
    is a silent coverage loss, which is exactly what the gate exists to
    catch); candidate-only cells are new coverage and pass freely.
    """
    thresholds = thresholds or CompareThresholds()
    cand_cells = {cell["id"]: cell for cell in candidate["cells"]}
    regressions: List[Regression] = []
    skipped: List[Dict[str, Any]] = []
    checked_cells = checked_classes = 0

    for base_cell in baseline["cells"]:
        cell_id = base_cell["id"]
        cand_cell = cand_cells.get(cell_id)
        if cand_cell is None:
            regressions.append(Regression(
                cell_id, "cell", "cell missing from candidate artifact"))
            continue
        checked_cells += 1
        _check_score(cell_id, "overall", base_cell["overall"],
                     cand_cell["overall"], thresholds.max_f1_drop,
                     0, regressions, skipped)
        for cls, base_metrics in sorted(base_cell["per_class"].items()):
            cand_metrics = cand_cell["per_class"].get(cls)
            if cand_metrics is None:
                # Same gate as a scored class: null or low-support
                # baselines are noise, not a contract.
                if (base_metrics["f1"] is not None
                        and base_metrics.get("support", 0)
                        >= thresholds.min_support):
                    regressions.append(Regression(
                        cell_id, cls, "class missing from candidate cell",
                        baseline_f1=base_metrics["f1"],
                        threshold=thresholds.for_class(cls)))
                else:
                    skipped.append({
                        "cell_id": cell_id, "scope": cls,
                        "reason": "class absent from candidate; baseline "
                                  "null or below min_support"})
                continue
            checked_classes += 1
            _check_score(cell_id, cls, base_metrics, cand_metrics,
                         thresholds.for_class(cls), thresholds.min_support,
                         regressions, skipped)
    return CompareResult(passed=not regressions, regressions=regressions,
                         checked_cells=checked_cells,
                         checked_classes=checked_classes, skipped=skipped)


def _check_score(cell_id: str, scope: str, base: Mapping[str, Any],
                 cand: Mapping[str, Any], threshold: float,
                 min_support: int, regressions: List[Regression],
                 skipped: List[Dict[str, Any]]) -> None:
    base_f1 = base.get("f1")
    cand_f1 = cand.get("f1")
    if base_f1 is None:
        # Nothing to gate on: an undefined baseline constrains nothing.
        skipped.append({"cell_id": cell_id, "scope": scope,
                        "reason": "baseline f1 undefined"})
        return
    if base.get("support", 0) < min_support:
        skipped.append({"cell_id": cell_id, "scope": scope,
                        "reason": f"baseline support "
                                  f"{base.get('support', 0)} below "
                                  f"min_support {min_support}"})
        return
    if cand_f1 is None:
        regressions.append(Regression(
            cell_id, scope, "F1 degraded to null",
            baseline_f1=base_f1, candidate_f1=None, threshold=threshold))
        return
    drop = base_f1 - cand_f1
    if drop > threshold:
        regressions.append(Regression(
            cell_id, scope, f"F1 dropped by {drop:.3f}",
            baseline_f1=base_f1, candidate_f1=cand_f1, threshold=threshold))


def parse_class_thresholds(entries: List[str]) -> Dict[str, float]:
    """Parse repeated ``--class-threshold 'Call Ordering=0.1'`` flags."""
    out: Dict[str, float] = {}
    for entry in entries:
        cls, sep, value = entry.rpartition("=")
        if not sep or not cls:
            raise ValueError(f"expected CLASS=DROP, got {entry!r}")
        try:
            out[cls] = float(value)
        except ValueError:
            raise ValueError(f"non-numeric threshold in {entry!r}") from None
    return out
