"""Experiment harness: one driver per table/figure of the paper."""

from repro.eval.config import ReproConfig
from repro.eval.scenarios import (
    run_cross,
    run_intra_cv,
    run_per_label,
    run_per_label_with_support,
)
from repro.eval.ablation import run_pair_ablation, run_single_ablation

__all__ = [
    "ReproConfig",
    "run_intra_cv", "run_cross", "run_per_label",
    "run_per_label_with_support",
    "run_single_ablation", "run_pair_ablation",
]
