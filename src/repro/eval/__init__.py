"""Experiment harness: paper drivers plus the evaluation-matrix gate."""

from repro.eval.config import ReproConfig
from repro.eval.scenarios import (
    run_cross,
    run_cross_predictions,
    run_intra_cv,
    run_per_label,
    run_per_label_with_support,
    stage_specs,
)
from repro.eval.ablation import run_pair_ablation, run_single_ablation
from repro.eval.matrix import (
    CellSpec,
    MatrixSpec,
    load_matrix_artifact,
    run_matrix,
    save_matrix_artifact,
)
from repro.eval.compare import (
    CompareResult,
    CompareThresholds,
    compare_artifacts,
)
from repro.eval.schema import SchemaError, validate_matrix_artifact

__all__ = [
    "ReproConfig",
    "run_intra_cv", "run_cross", "run_cross_predictions", "run_per_label",
    "run_per_label_with_support", "stage_specs",
    "run_single_ablation", "run_pair_ablation",
    # evaluation matrix
    "MatrixSpec", "CellSpec", "run_matrix",
    "save_matrix_artifact", "load_matrix_artifact",
    "CompareThresholds", "CompareResult", "compare_artifacts",
    "SchemaError", "validate_matrix_artifact",
]
