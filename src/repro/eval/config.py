"""Experiment scaling profiles.

``paper()`` matches the paper's settings (10 folds, full suites, GA with
population 2500 × 25 generations, GNN 10 epochs at lr 4e-4).  ``fast()``
is the CI/bench profile: stratified subsamples, 3 folds, a small GA, and
a shorter, higher-lr GNN schedule (fewer gradient steps on less data need
a larger step size).  EXPERIMENTS.md records which profile produced every
reported number.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.ml.genetic import GAConfig


@dataclass
class ReproConfig:
    folds: int = 10
    mbi_subsample: Optional[int] = None
    corr_subsample: Optional[int] = None
    ga: GAConfig = field(default_factory=GAConfig.paper)
    gnn_epochs: int = 10
    gnn_lr: float = 4e-4
    gnn_batch_size: int = 32
    embedding_seed: int = 42
    seed: int = 0
    ir2vec_opt: str = "Os"
    gnn_opt: str = "O0"
    normalization: str = "vector"
    nprocs: int = 3                       # simulator width for dynamic tools
    # Execution-engine knobs: 0 workers = serial, None cache_dir = follow
    # the process default (REPRO_CACHE_DIR / repro.engine.configure()).
    workers: Optional[int] = None
    cache_dir: Optional[str] = None

    def engine(self):
        """The execution engine experiment drivers run corpus work on.

        A knob left ``None`` inherits the process default (CLI flags /
        ``REPRO_WORKERS`` / ``REPRO_CACHE_DIR``), so e.g. setting only
        ``cache_dir`` here still honours the env-configured worker count.
        With neither overridden this *is* the default engine.
        """
        from repro.engine import ExecutionEngine, default_engine

        base = default_engine()
        workers = base.config.workers if self.workers is None else self.workers
        cache_dir = (base.config.cache_dir if self.cache_dir is None
                     else self.cache_dir)
        if (workers, cache_dir) == (base.config.workers,
                                    base.config.cache_dir):
            return base
        # Memoized per resolved knobs (and outside dataclass fields so
        # config equality / replace() stay value-based): mutating
        # workers/cache_dir after a call rebuilds rather than returning
        # a stale engine.
        if getattr(self, "_engine_key", None) != (workers, cache_dir):
            object.__setattr__(self, "_engine", ExecutionEngine(
                workers=workers, cache_dir=cache_dir))
            object.__setattr__(self, "_engine_key", (workers, cache_dir))
        return self._engine

    @staticmethod
    def paper() -> "ReproConfig":
        return ReproConfig()

    @staticmethod
    def fast() -> "ReproConfig":
        return ReproConfig(
            folds=3,
            mbi_subsample=420,
            corr_subsample=220,
            ga=GAConfig.fast(),
            gnn_epochs=8,
            gnn_lr=2e-3,
        )

    @staticmethod
    def smoke() -> "ReproConfig":
        """Minutes-scale profile for unit tests."""
        return ReproConfig(
            folds=2,
            mbi_subsample=120,
            corr_subsample=80,
            ga=GAConfig(population_size=40, generations=3),
            gnn_epochs=3,
            gnn_lr=3e-3,
        )

    # -- dataset accessors --------------------------------------------------
    def mbi(self):
        from repro.datasets import load_mbi

        return load_mbi(subsample=self.mbi_subsample)

    def corrbench(self, debias: bool = True):
        from repro.datasets import load_corrbench

        return load_corrbench(debias=debias, subsample=self.corr_subsample)

    def mix(self):
        return self.mbi().merged_with(self.corrbench(), name="Mix")

    def hypre(self):
        from repro.datasets.hypre import hypre_dataset

        return hypre_dataset()

    def dataset(self, name: str):
        key = name.lower()
        if key == "mbi":
            return self.mbi()
        if key in ("corr", "corrbench", "mpi-corrbench"):
            return self.corrbench()
        if key == "mix":
            return self.mix()
        if key == "hypre":
            return self.hypre()
        raise ValueError(f"unknown dataset {name!r}")
