"""Intra / Mix / Cross evaluation scenarios (paper Section V).

Intra and Mix use 10-fold cross-validation with predictions aggregated
over all validation folds; Cross trains on one full suite and validates
on the other with binary labels (the suites' error taxonomies differ).

Both scenarios are method-agnostic: stages come from the pipeline
registries via :func:`repro.pipeline.method_stage_specs`, features from
the shared :func:`~repro.models.features.featurize_dataset` cache, and
fold selection uses :func:`repro.pipeline.take` — one code path for
matrices and graph lists alike.  Feature extraction runs on the config's
execution engine (``ReproConfig.workers`` / ``cache_dir``), so scenario
sweeps fan out across processes and warm persistent caches skip the
compile/featurize work entirely.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.datasets.loader import Dataset
from repro.eval.config import ReproConfig
from repro.ml.crossval import stratified_kfold_indices
from repro.ml.metrics import (
    MetricReport,
    compute_metrics,
    confusion_from_predictions,
    per_label_accuracy,
    per_label_support,
)
from repro.models.features import featurize_dataset
from repro.pipeline import CLASSIFIERS, FEATURIZERS, method_stage_specs, take


def _binary_labels(dataset: Dataset) -> np.ndarray:
    return np.array([s.binary for s in dataset.samples])


def stage_specs(method: str, config: ReproConfig, *, use_ga: bool = True,
                normalization: Optional[str] = None,
                opt_level: Optional[str] = None) -> Tuple[str, Any, str, Any]:
    """(featurizer name, config, classifier name, config) for a method.

    The single place a :class:`ReproConfig` is lowered onto pipeline
    stage specs — scenarios, the evaluation matrix, and the CLI all
    resolve methods through here so their cells are comparable.
    """
    if opt_level is None:
        opt_level = config.ir2vec_opt if method == "ir2vec" else config.gnn_opt
    return method_stage_specs(
        method, opt_level=opt_level,
        embedding_seed=config.embedding_seed,
        normalization=normalization or config.normalization,
        use_ga=use_ga, ga_config=config.ga,
        epochs=config.gnn_epochs, lr=config.gnn_lr,
        batch_size=config.gnn_batch_size, seed=config.seed)


_stage_specs = stage_specs            # internal alias (pre-matrix name)


def run_intra_cv(method: str, dataset: Dataset, config: ReproConfig, *,
                 labels: Optional[np.ndarray] = None, use_ga: bool = True,
                 normalization: Optional[str] = None,
                 opt_level: Optional[str] = None,
                 ) -> Tuple[MetricReport, np.ndarray, np.ndarray]:
    """K-fold CV; returns (metrics, y_true, y_pred) aggregated over folds.

    ``labels`` defaults to binary correct/incorrect; pass error-type
    labels for the multi-class experiments (Fig. 6).
    """
    feat_name, feat_cfg, clf_name, clf_cfg = _stage_specs(
        method, config, use_ga=use_ga, normalization=normalization,
        opt_level=opt_level)
    y = labels if labels is not None else _binary_labels(dataset)
    features = featurize_dataset(FEATURIZERS.create(feat_name, feat_cfg),
                                 dataset, engine=config.engine())
    y_true: List[str] = []
    y_pred: List[str] = []
    for train_idx, val_idx in stratified_kfold_indices(
            [s.label for s in dataset.samples], config.folds, config.seed):
        model = CLASSIFIERS.create(clf_name, clf_cfg)
        model.fit(take(features, train_idx), y[train_idx])
        pred = model.predict(take(features, val_idx))
        y_true.extend(y[val_idx])
        y_pred.extend(pred)
    counts = confusion_from_predictions(y_true, y_pred)
    return compute_metrics(counts), np.array(y_true), np.array(y_pred)


def run_cross_predictions(
        method: str, train_ds: Dataset, val_ds: Dataset,
        config: ReproConfig, *, use_ga: bool = True,
        normalization: Optional[str] = None,
        ) -> Tuple[MetricReport, np.ndarray, np.ndarray]:
    """Cross scenario returning (metrics, y_true, y_pred).

    The prediction arrays let callers derive per-error-class reports via
    :func:`repro.ml.metrics.per_class_binary_report` — the evaluation
    matrix scores its cross cells exactly this way.
    """
    feat_name, feat_cfg, clf_name, clf_cfg = _stage_specs(
        method, config, use_ga=use_ga, normalization=normalization)
    featurizer = FEATURIZERS.create(feat_name, feat_cfg)
    X_train = featurize_dataset(featurizer, train_ds, engine=config.engine())
    X_val = featurize_dataset(featurizer, val_ds, engine=config.engine())
    model = CLASSIFIERS.create(clf_name, clf_cfg)
    model.fit(X_train, _binary_labels(train_ds))
    y_true = _binary_labels(val_ds)
    y_pred = np.asarray(model.predict(X_val))
    counts = confusion_from_predictions(list(y_true), list(y_pred))
    return compute_metrics(counts), y_true, y_pred


def run_cross(method: str, train_ds: Dataset, val_ds: Dataset,
              config: ReproConfig, *, use_ga: bool = True,
              normalization: Optional[str] = None) -> MetricReport:
    """Train on one suite, validate on the other (binary labels)."""
    report, _, _ = run_cross_predictions(
        method, train_ds, val_ds, config, use_ga=use_ga,
        normalization=normalization)
    return report


def run_per_label(dataset: Dataset, config: ReproConfig,
                  method: str = "ir2vec") -> Dict[str, float]:
    """Multi-class CV; per-label accuracy (paper Fig. 6 protocol)."""
    acc, _ = run_per_label_with_support(dataset, config, method)
    return acc


def run_per_label_with_support(
        dataset: Dataset, config: ReproConfig, method: str = "ir2vec",
        ) -> Tuple[Dict[str, float], Dict[str, int]]:
    """Per-label accuracy plus validation support counts.

    Support matters when shape-checking the series: a subsampled profile
    can leave a rare label (Resource Leak has 14 instances even at paper
    scale) with one or two validation samples, where accuracy is noise.
    """
    type_labels = np.array([s.label for s in dataset.samples])
    _, y_true, y_pred = run_intra_cv(method, dataset, config, labels=type_labels)
    all_labels = sorted(set(type_labels))
    return (per_label_accuracy(all_labels, y_true, y_pred),
            per_label_support(all_labels, y_true))
