"""Intra / Mix / Cross evaluation scenarios (paper Section V).

Intra and Mix use 10-fold cross-validation with predictions aggregated
over all validation folds; Cross trains on one full suite and validates
on the other with binary labels (the suites' error taxonomies differ).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.datasets.loader import Dataset
from repro.eval.config import ReproConfig
from repro.graphs.vocab import build_vocabulary
from repro.ml.crossval import stratified_kfold_indices
from repro.ml.metrics import (
    MetricReport,
    compute_metrics,
    confusion_from_predictions,
    per_label_accuracy,
    per_label_support,
)
from repro.models.features import graph_dataset, ir2vec_feature_matrix
from repro.models.gnn_model import GNNModel
from repro.models.ir2vec_model import IR2vecModel


def _binary_labels(dataset: Dataset) -> np.ndarray:
    return np.array([s.binary for s in dataset.samples])


def _make_model(method: str, config: ReproConfig, *, use_ga: bool = True,
                normalization: Optional[str] = None):
    if method == "ir2vec":
        return IR2vecModel(normalization=normalization or config.normalization,
                           use_ga=use_ga, ga_config=config.ga)
    if method == "gnn":
        return GNNModel(epochs=config.gnn_epochs, lr=config.gnn_lr,
                        batch_size=config.gnn_batch_size, seed=config.seed)
    raise ValueError(f"unknown method {method!r}")


def _features_for(method: str, dataset: Dataset, config: ReproConfig,
                  opt_level: Optional[str] = None):
    if method == "ir2vec":
        return ir2vec_feature_matrix(dataset, opt_level or config.ir2vec_opt,
                                     config.embedding_seed)
    return graph_dataset(dataset, opt_level or config.gnn_opt)


def run_intra_cv(method: str, dataset: Dataset, config: ReproConfig, *,
                 labels: Optional[np.ndarray] = None, use_ga: bool = True,
                 normalization: Optional[str] = None,
                 opt_level: Optional[str] = None,
                 ) -> Tuple[MetricReport, np.ndarray, np.ndarray]:
    """K-fold CV; returns (metrics, y_true, y_pred) aggregated over folds.

    ``labels`` defaults to binary correct/incorrect; pass error-type
    labels for the multi-class experiments (Fig. 6).
    """
    y = labels if labels is not None else _binary_labels(dataset)
    features = _features_for(method, dataset, config, opt_level)
    y_true: List[str] = []
    y_pred: List[str] = []
    for train_idx, val_idx in stratified_kfold_indices(
            [s.label for s in dataset.samples], config.folds, config.seed):
        model = _make_model(method, config, use_ga=use_ga,
                            normalization=normalization)
        if method == "ir2vec":
            model.fit(features[train_idx], y[train_idx])
            pred = model.predict(features[val_idx])
        else:
            train_graphs = [features[i] for i in train_idx]
            vocab = build_vocabulary(train_graphs)
            model.fit(train_graphs, y[train_idx], vocab)
            pred = model.predict([features[i] for i in val_idx])
        y_true.extend(y[val_idx])
        y_pred.extend(pred)
    counts = confusion_from_predictions(y_true, y_pred)
    return compute_metrics(counts), np.array(y_true), np.array(y_pred)


def run_cross(method: str, train_ds: Dataset, val_ds: Dataset,
              config: ReproConfig, *, use_ga: bool = True,
              normalization: Optional[str] = None) -> MetricReport:
    """Train on one suite, validate on the other (binary labels)."""
    y_train = _binary_labels(train_ds)
    y_val = _binary_labels(val_ds)
    model = _make_model(method, config, use_ga=use_ga, normalization=normalization)
    if method == "ir2vec":
        X_train = _features_for(method, train_ds, config)
        X_val = _features_for(method, val_ds, config)
        model.fit(X_train, y_train)
        pred = model.predict(X_val)
    else:
        g_train = _features_for(method, train_ds, config)
        g_val = _features_for(method, val_ds, config)
        vocab = build_vocabulary(g_train)
        model.fit(g_train, y_train, vocab)
        pred = model.predict(g_val)
    counts = confusion_from_predictions(list(y_val), list(pred))
    return compute_metrics(counts)


def run_per_label(dataset: Dataset, config: ReproConfig,
                  method: str = "ir2vec") -> Dict[str, float]:
    """Multi-class CV; per-label accuracy (paper Fig. 6 protocol)."""
    acc, _ = run_per_label_with_support(dataset, config, method)
    return acc


def run_per_label_with_support(
        dataset: Dataset, config: ReproConfig, method: str = "ir2vec",
        ) -> Tuple[Dict[str, float], Dict[str, int]]:
    """Per-label accuracy plus validation support counts.

    Support matters when shape-checking the series: a subsampled profile
    can leave a rare label (Resource Leak has 14 instances even at paper
    scale) with one or two validation samples, where accuracy is noise.
    """
    type_labels = np.array([s.label for s in dataset.samples])
    _, y_true, y_pred = run_intra_cv(method, dataset, config, labels=type_labels)
    all_labels = sorted(set(type_labels))
    return (per_label_accuracy(all_labels, y_true, y_pred),
            per_label_support(all_labels, y_true))
