"""Shared-memory transport for worker → parent feature matrices.

Pickling a chunk's feature rows back through the process-pool result
queue copies every byte twice (pickle in the worker, unpickle in the
parent) and serializes on the queue reader thread.  For the engine's
matrix-shaped featurizer outputs the worker instead stacks its rows into
one ``multiprocessing.shared_memory`` segment and sends only a tiny
``(name, shape, dtype)`` handle; the parent maps the segment, copies the
matrix out, and unlinks it.

Ownership protocol: the **creating worker** detaches and unregisters the
segment from its ``resource_tracker`` (otherwise the tracker would
reclaim it when the worker exits, racing the parent's read); the
**parent** is the sole owner and always unlinks in ``load_matrix`` —
even if the copy fails — so no segment outlives the batch that made it.

Small results are not worth a segment (two extra syscalls beat one small
pickle), which is what the engine's ``shm_min_bytes`` threshold gates.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

import numpy as np

try:
    from multiprocessing import resource_tracker, shared_memory
except ImportError:                      # pragma: no cover - py<3.8 only
    resource_tracker = None              # type: ignore[assignment]
    shared_memory = None                 # type: ignore[assignment]

#: (segment name, matrix shape, numpy dtype string)
MatrixHandle = Tuple[str, Tuple[int, ...], str]


def shm_available() -> bool:
    return shared_memory is not None


def _disown(seg: Any) -> None:
    """Drop the creating process's resource-tracker claim on ``seg``.

    ``SharedMemory(create=True)`` registers the segment with the
    caller's tracker; the parent unlinks it later, so the worker must
    unregister or the tracker reclaims (or double-frees) it on worker
    exit.  Registration uses the raw ``/psm_...`` name kept in ``_name``.
    """
    if resource_tracker is None:
        return
    try:
        resource_tracker.unregister(getattr(seg, "_name", seg.name),
                                    "shared_memory")
    except Exception:
        pass


def share_matrix(matrix: np.ndarray) -> Optional[MatrixHandle]:
    """Copy ``matrix`` into a fresh segment and hand over ownership.

    Returns ``None`` when shared memory is unavailable or the segment
    cannot be created (e.g. ``/dev/shm`` full) — callers fall back to
    the pickle path, never fail.
    """
    if shared_memory is None:
        return None
    matrix = np.ascontiguousarray(matrix)
    try:
        seg = shared_memory.SharedMemory(create=True,
                                         size=max(1, matrix.nbytes))
    except (OSError, ValueError):
        return None
    try:
        view = np.ndarray(matrix.shape, dtype=matrix.dtype, buffer=seg.buf)
        view[...] = matrix
        handle = (seg.name, tuple(matrix.shape), matrix.dtype.str)
    except Exception:
        try:
            seg.close()
            seg.unlink()
        except OSError:
            pass
        return None
    seg.close()
    _disown(seg)
    return handle


def share_rows(rows: List[Any], min_bytes: int) -> Optional[MatrixHandle]:
    """Stack uniform ndarray rows into a segment if they clear
    ``min_bytes``; ``None`` (= "pickle instead") for anything else."""
    if not rows or min_bytes < 0 or shared_memory is None:
        return None
    first = rows[0]
    if not isinstance(first, np.ndarray):
        return None
    if any(not isinstance(r, np.ndarray) or r.shape != first.shape
           or r.dtype != first.dtype for r in rows):
        return None
    matrix = np.stack(rows)
    if matrix.nbytes < min_bytes:
        return None
    return share_matrix(matrix)


def load_matrix(handle: MatrixHandle) -> np.ndarray:
    """Copy the matrix out of a worker's segment and unlink it.

    The unlink happens unconditionally: a segment whose payload cannot
    be read must still not leak into ``/dev/shm``.
    """
    name, shape, dtype = handle
    seg = shared_memory.SharedMemory(name=name)
    try:
        view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=seg.buf)
        return view.copy()
    finally:
        seg.close()
        try:
            seg.unlink()
        except (OSError, FileNotFoundError):
            pass
