"""Caching primitives for the corpus execution engine.

Two cache shapes live here:

:class:`LRUCache`
    A bounded in-process mapping with hit/miss/eviction counters.  The
    frontend's per-process compile memo uses it so long-lived processes
    (servers, paper-scale experiment sweeps over many opt levels) stop
    growing without bound.
:class:`ContentStore`
    A persistent on-disk content-addressed store shared by every engine
    stage.  Keys are SHA-256 digests over (stage name, stage config,
    code version, input identity); values are pickled per-sample results
    (IR modules, embedding rows, program graphs).  Writes are atomic
    (tmp file + ``os.replace``) so concurrent workers and concurrent
    engine processes can share one store without locks; a corrupted or
    truncated entry is deleted and treated as a miss, never an error.

Neither class imports anything above :mod:`repro`'s leaf layers, so the
frontend and the engine can both depend on this module.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import tempfile
from collections import OrderedDict
from typing import Any, Dict, Iterable, Optional, Tuple

#: Bump to invalidate every persisted entry after a change to how any
#: stage computes its results (the on-disk layout namespaces on it).
ENGINE_CACHE_VERSION = "2"


def code_version() -> str:
    """The code-version token mixed into every persistent cache key."""
    import repro

    return f"{repro.__version__}+engine{ENGINE_CACHE_VERSION}"


@dataclasses.dataclass
class CacheStats:
    """Counters for one cache (in-process or persistent)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    errors: int = 0          # corrupted entries recovered as misses

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {**dataclasses.asdict(self), "hit_rate": round(self.hit_rate, 4)}

    def clear(self) -> None:
        self.hits = self.misses = self.stores = self.evictions = self.errors = 0


class LRUCache:
    """Bounded mapping with least-recently-used eviction and counters.

    ``maxsize=0`` disables storage entirely (every lookup misses) —
    the supported way to switch a memo off via configuration.
    """

    def __init__(self, maxsize: int = 2048):
        if maxsize < 0:
            raise ValueError("maxsize must be >= 0")
        self.maxsize = maxsize
        self.stats = CacheStats()
        self._data: "OrderedDict[Any, Any]" = OrderedDict()

    def get(self, key: Any, default: Any = None) -> Any:
        try:
            value = self._data[key]
        except KeyError:
            self.stats.misses += 1
            return default
        self._data.move_to_end(key)
        self.stats.hits += 1
        return value

    def put(self, key: Any, value: Any) -> None:
        if self.maxsize == 0:
            return
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        self.stats.stores += 1
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)
            self.stats.evictions += 1

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Any) -> bool:
        return key in self._data

    def clear(self) -> None:
        self._data.clear()


def digest_parts(parts: Iterable[Any]) -> str:
    """SHA-256 over a canonical encoding of heterogeneous key parts."""
    h = hashlib.sha256()
    for part in parts:
        if isinstance(part, bytes):
            blob = part
        else:
            blob = str(part).encode("utf-8")
        h.update(len(blob).to_bytes(8, "little"))
        h.update(blob)
    return h.hexdigest()


class ContentStore:
    """Persistent content-addressed store, one subtree per stage.

    Layout (``version`` namespaces the whole tree, so bumping the code
    version simply orphans old entries rather than corrupting reads)::

        <root>/v<version-digest>/<stage>/<digest[:2]>/<digest>.pkl
    """

    def __init__(self, root: str, version: Optional[str] = None):
        self.root = os.path.abspath(os.path.expanduser(root))
        self.version = version if version is not None else code_version()
        self._tree = os.path.join(
            self.root, f"v{digest_parts([self.version])[:16]}")
        self.stats: Dict[str, CacheStats] = {}

    # -- keys ---------------------------------------------------------------
    def key(self, stage: str, parts: Iterable[Any]) -> str:
        """Content address for ``parts`` under ``stage`` at this version."""
        return digest_parts([stage, self.version, *parts])

    def _path(self, stage: str, key: str) -> str:
        return os.path.join(self._tree, stage, key[:2], f"{key}.pkl")

    def _stage_stats(self, stage: str) -> CacheStats:
        return self.stats.setdefault(stage, CacheStats())

    # -- read / write -------------------------------------------------------
    def get(self, stage: str, key: str) -> Tuple[bool, Any]:
        """Return ``(found, value)``; corrupted entries recover as misses."""
        stats = self._stage_stats(stage)
        path = self._path(stage, key)
        try:
            with open(path, "rb") as fh:
                value = pickle.load(fh)
        except FileNotFoundError:
            stats.misses += 1
            return False, None
        except Exception:
            # Truncated write from a killed process, disk corruption, or
            # an unpicklable-for-this-code-version blob: drop the entry
            # and recompute rather than failing the run.
            stats.errors += 1
            stats.misses += 1
            try:
                os.unlink(path)
            except OSError:
                pass
            return False, None
        stats.hits += 1
        return True, value

    def put(self, stage: str, key: str, value: Any) -> None:
        path = self._path(stage, key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)        # atomic on POSIX
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._stage_stats(stage).stores += 1

    # -- maintenance --------------------------------------------------------
    def summary(self) -> Dict[str, Dict[str, int]]:
        """On-disk entry/byte counts per stage, across *all* versions."""
        out: Dict[str, Dict[str, int]] = {}
        if not os.path.isdir(self.root):
            return out
        for version_dir in sorted(os.listdir(self.root)):
            vpath = os.path.join(self.root, version_dir)
            if not os.path.isdir(vpath):
                continue
            for stage in sorted(os.listdir(vpath)):
                spath = os.path.join(vpath, stage)
                if not os.path.isdir(spath):
                    continue
                entry = out.setdefault(stage, {"entries": 0, "bytes": 0})
                for dirpath, _dirnames, filenames in os.walk(spath):
                    for fname in filenames:
                        if not fname.endswith(".pkl"):
                            continue
                        entry["entries"] += 1
                        try:
                            entry["bytes"] += os.path.getsize(
                                os.path.join(dirpath, fname))
                        except OSError:
                            pass
        return out

    def clear(self, stage: Optional[str] = None) -> int:
        """Delete persisted entries (one stage, or everything); returns
        the number of entries removed."""
        removed = 0
        if not os.path.isdir(self.root):
            return removed
        for version_dir in os.listdir(self.root):
            vpath = os.path.join(self.root, version_dir)
            if not os.path.isdir(vpath):
                continue
            stages = [stage] if stage is not None else os.listdir(vpath)
            for stage_name in stages:
                spath = os.path.join(vpath, stage_name)
                if not os.path.isdir(spath):
                    continue
                for dirpath, _dirnames, filenames in os.walk(spath,
                                                             topdown=False):
                    for fname in filenames:
                        try:
                            os.unlink(os.path.join(dirpath, fname))
                            if fname.endswith(".pkl"):
                                removed += 1
                        except OSError:
                            pass
                    try:
                        os.rmdir(dirpath)
                    except OSError:
                        pass
        return removed
