"""Parallel corpus execution engine over the compile → featurize hot path.

The paper's detector pushes thousands of MBI / CorrBench / Hypre samples
through the same ``compile → embed/graph → classify`` pipeline, and the
per-sample work is pure: one source at one stage config always produces
the same IR module, embedding row, or program graph.  The engine exploits
both facts:

* **Zero-copy fan-out** — the frontend/featurizer stages are installed
  in workers **once per pool**, not pickled into every chunk: under the
  ``fork`` start method (Linux) workers inherit the parent's warmed
  stage state copy-on-write, elsewhere a one-time pool initializer ships
  it.  Chunk payloads carry only ``(stage token, samples)``; feature
  matrices return through ``multiprocessing.shared_memory`` segments
  instead of the pickle result queue once they clear
  ``EngineConfig.shm_min_bytes``.  A stage-identity token guards the
  installed state: running different stages restarts the pool.
* **Adaptive chunking** — ``chunk_size=0`` (the default) sizes chunks
  from the observed per-sample latency (EWMA), targeting
  ``~50 ms`` of work per task while keeping at least four chunks per
  worker for load balance.  A fixed ``chunk_size > 0`` opts out.
* **Never redo work** — every stage is backed by the persistent
  content-addressed :class:`~repro.engine.cache.ContentStore`.  A warm
  re-run of ``fit``, ``predict_batch``, an eval scenario, or a benchmark
  skips compilation and featurization entirely; cache keys mix in the
  stage config and the code version, so changing any input recomputes.

Parallel and serial runs are bit-identical by construction: per-sample
results are computed independently and reassembled in input order, and
the featurizers themselves guarantee batch-composition independence.
``workers=0`` is the serial fallback and the default.

Workers also time their stages against :data:`repro.perf.PERF` and ship
the snapshot home with each chunk, so ``repro profile`` sees per-stage
seconds even for fanned-out runs; ``stats_dict()`` exposes the transport
counters (payload bytes per task, shared-memory usage, pool utilization).

>>> engine = ExecutionEngine(workers=4, cache_dir="~/.cache/repro")
>>> X = engine.featurize_sources(frontend, featurizer, named_sources)
"""

from __future__ import annotations

import math
import multiprocessing
import os
import pickle
import sys
import threading
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.engine.cache import CacheStats, ContentStore, digest_parts
from repro.engine.shm import load_matrix, share_rows
from repro.obs.log import EVENTS
from repro.obs.metrics import METRICS
from repro.obs.trace import TRACER
from repro.perf import PERF

#: Engine fan-out telemetry (observations dropped until METRICS is
#: enabled; sites below guard with one attribute check to keep the
#: library hot path free even of no-op calls).
_OBS_TASKS = METRICS.counter(
    "repro_engine_tasks_total", "Worker tasks submitted to the pool.")
_OBS_SHM = METRICS.counter(
    "repro_engine_shm_tasks_total",
    "Worker tasks whose results returned via shared memory.")
_OBS_POOL_STARTS = METRICS.counter(
    "repro_engine_pool_starts_total", "Worker pool (re)starts.")
_OBS_CHUNK_SIZE = METRICS.gauge(
    "repro_engine_chunk_size", "Most recent adaptive chunk size.")
_OBS_WORKER_BUSY = METRICS.histogram(
    "repro_engine_worker_busy_seconds", "Busy seconds per worker task.")

#: Store subtrees, one per engine stage.
COMPILE_STAGE = "compile"
FEATURE_STAGE = "features"

#: Adaptive chunking targets ~this much work per task: big enough to
#: amortize scheduling, small enough to load-balance a 4-worker pool.
_TARGET_CHUNK_SEC = 0.05
_DEFAULT_CHUNK_SIZE = 16          # before any latency has been observed
_MAX_CHUNK_SIZE = 128
_MIN_CHUNKS_PER_WORKER = 4        # keep the pool fed near the tail
_EWMA_ALPHA = 0.3                 # weight of the newest latency sample


def effective_cores() -> int:
    """Cores this process may actually schedule on (cgroup/affinity
    aware where the platform exposes it, unlike ``os.cpu_count``)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def stage_identity(stage: Any) -> str:
    """Stable identity of a stage instance for cache keys.

    Covers the implementation (qualname + registered name) and the full
    config repr, so two differently-parameterized instances never share
    an entry.  Stages without a ``config`` attribute get ``id=None`` —
    the engine treats those as uncacheable (see ``_cacheable``).
    """
    config = getattr(stage, "config", None)
    return (f"{type(stage).__qualname__}"
            f":{getattr(stage, 'name', type(stage).__name__)}"
            f":{config!r}")


def _cacheable(stage: Any) -> bool:
    return getattr(stage, "config", None) is not None


def _build_store(cache_dir: Optional[str], cas_addr: Optional[str],
                 version: Optional[str] = None) -> Optional[ContentStore]:
    """The engine's stage store: plain local disk, or — when a fleet
    CAS address is configured — the two-tier store (local disk in front
    of the shared network CAS) so one replica's cold compile becomes
    every replica's warm hit.  Imported lazily: the engine must not
    depend on the fleet layer unless a fleet is actually in play."""
    if not cache_dir:
        return None
    if cas_addr:
        from repro.fleet.cas import TieredStore

        return TieredStore(cache_dir, cas_addr, version)
    return ContentStore(cache_dir, version)


def _compile_parts(frontend: Any, name: str, source: str) -> Tuple[str, ...]:
    return (stage_identity(frontend), name, source)


def _feature_parts(frontend: Any, featurizer: Any, name: str,
                   source: str) -> Tuple[str, ...]:
    return (stage_identity(frontend), stage_identity(featurizer), name, source)


def _split_batch(features: Any, n: int) -> List[Any]:
    """Per-sample rows of a batch featurizer output (matrix or list)."""
    if isinstance(features, np.ndarray):
        return [features[i] for i in range(n)]
    return list(features)


def _join_batch(featurizer: Any, rows: Sequence[Any]) -> Any:
    """Reassemble per-sample rows into the featurizer's batch shape."""
    kind = getattr(featurizer, "kind", None)
    if kind == "matrix" or (kind is None and rows
                            and all(isinstance(r, np.ndarray)
                                    and r.shape == rows[0].shape
                                    for r in rows)):
        if not rows:
            return featurizer.transform([])
        return np.stack(rows)
    if not rows and kind is None:
        return featurizer.transform([])
    return list(rows)


def _compile_one(store: Optional[ContentStore], frontend: Any,
                 name: str, source: str) -> Any:
    if store is not None and _cacheable(frontend):
        key = store.key(COMPILE_STAGE, _compile_parts(frontend, name, source))
        found, module = store.get(COMPILE_STAGE, key)
        if found:
            return module
        module = frontend.compile(source, name)
        store.put(COMPILE_STAGE, key, module)
        return module
    return frontend.compile(source, name)


def _process_chunk(store: Optional[ContentStore], frontend: Any,
                   featurizer: Optional[Any],
                   chunk: Sequence[Tuple[str, str]]) -> List[Any]:
    """Compile (and optionally featurize) one chunk, through the store."""
    modules = [_compile_one(store, frontend, name, source)
               for name, source in chunk]
    if featurizer is None:
        return modules
    rows = _split_batch(featurizer.transform(modules), len(modules))
    if store is not None and _cacheable(frontend) and _cacheable(featurizer):
        for (name, source), row in zip(chunk, rows):
            key = store.key(FEATURE_STAGE,
                            _feature_parts(frontend, featurizer, name, source))
            store.put(FEATURE_STAGE, key, row)
    return rows


# ---------------------------------------------------------------------------
# Worker-side stage state (installed once per pool, never per chunk)
# ---------------------------------------------------------------------------

class _WorkerState:
    """Everything a stage worker needs, installed once per pool."""

    __slots__ = ("token", "frontend", "featurizer", "cache_dir", "version",
                 "shm_min_bytes", "cas_addr")

    def __init__(self, token: str, frontend: Any, featurizer: Optional[Any],
                 cache_dir: Optional[str], version: Optional[str],
                 shm_min_bytes: int, cas_addr: Optional[str] = None):
        self.token = token
        self.frontend = frontend
        self.featurizer = featurizer
        self.cache_dir = cache_dir
        self.version = version
        self.shm_min_bytes = shm_min_bytes
        self.cas_addr = cas_addr

    def __getstate__(self):              # slots + spawn initializer pickling
        return {name: getattr(self, name) for name in self.__slots__}

    def __setstate__(self, state):
        for name, value in state.items():
            setattr(self, name, value)


#: The installed stage state.  Under ``fork`` the parent sets this
#: before pool creation and children inherit it copy-on-write (zero
#: pickling); under ``spawn`` the pool initializer installs it once per
#: worker process.
_WORKER_STATE: Optional[_WorkerState] = None


def _install_worker_state(state: Optional[_WorkerState]) -> None:
    global _WORKER_STATE
    _WORKER_STATE = state


def _init_worker(blob: bytes) -> None:
    """Pool initializer for non-fork start methods."""
    _install_worker_state(pickle.loads(blob))


def _stage_chunk_worker(payload: bytes) -> Tuple[str, Any, float,
                                                 Dict[str, Any],
                                                 List[Dict[str, Any]]]:
    """Process one ``(stage token, chunk, trace ctx)`` payload against
    the installed state.  Returns ``(transport, value, busy_sec,
    perf_snapshot, spans)`` where transport is ``"shm"`` (value = matrix
    handle) or ``"rows"``; ``spans`` are trace spans recorded in this
    worker (empty unless the parent shipped a trace context)."""
    token, chunk, ctx = pickle.loads(payload)
    state = _WORKER_STATE
    if state is None or state.token != token:
        raise RuntimeError(
            f"engine worker has no installed state for stage token {token!r}"
            " (pool restarted under a different stage?)")
    start = time.perf_counter()
    PERF.reset()
    PERF.enabled = True
    try:
        with TRACER.worker_scope(ctx) as spans:
            store = _build_store(state.cache_dir, state.cas_addr,
                                 state.version)
            rows = _process_chunk(store, state.frontend, state.featurizer,
                                  chunk)
    finally:
        PERF.enabled = False
    busy = time.perf_counter() - start
    snapshot = PERF.snapshot()
    if state.featurizer is not None:
        handle = share_rows(rows, state.shm_min_bytes)
        if handle is not None:
            return ("shm", handle, busy, snapshot, spans)
    return ("rows", rows, busy, snapshot, spans)


def _map_worker(payload: bytes) -> Any:
    """Worker entry point for :meth:`ExecutionEngine.map` tasks."""
    fn, item = pickle.loads(payload)
    return fn(item)


def _map_chunk_worker(payload: bytes) -> List[Any]:
    """Worker entry point for chunked :meth:`ExecutionEngine.map` runs."""
    fn, items = pickle.loads(payload)
    return [fn(item) for item in items]


@dataclass(frozen=True)
class EngineConfig:
    """Knobs of the execution engine.

    ``workers=0`` runs serially in-process; ``workers=N`` fans chunks out
    to N worker processes.  ``cache_dir=None`` disables the persistent
    store (in-process memos still apply).

    ``chunk_size=0`` (default) sizes chunks adaptively from observed
    per-sample latency (~50 ms of work per task, at least four tasks per
    worker); a positive value pins it.

    ``min_samples_per_worker`` is the cold-path guard: a parallel run
    only pays off once per-item work amortizes pool startup and payload
    pickling, so batches smaller than ``workers * min_samples_per_worker``
    stay serial even with ``workers > 0`` (set it to 1 to force fan-out,
    as the throughput benchmark does).

    ``shm_min_bytes`` is the feature-matrix transport threshold: chunk
    results at least this large return via shared memory instead of the
    pickle result queue.  Negative disables shared memory entirely.

    ``cas_addr`` (``host:port``) attaches the persistent store to a
    fleet-shared network CAS (see :mod:`repro.fleet.cas`): local misses
    consult the fleet tier before recomputing, and local stores are
    published so sibling replicas never redo the work.  Requires
    ``cache_dir``; ignored without one.
    """

    workers: int = 0
    cache_dir: Optional[str] = None
    chunk_size: int = 0
    min_samples_per_worker: int = 32
    start_method: str = "auto"      # 'auto' prefers fork where available
    shm_min_bytes: int = 32768
    cas_addr: Optional[str] = None

    def __post_init__(self):
        if self.workers < 0:
            raise ValueError("workers must be >= 0")
        if self.chunk_size < 0:
            raise ValueError("chunk_size must be >= 0 (0 = adaptive)")
        if self.min_samples_per_worker < 1:
            raise ValueError("min_samples_per_worker must be >= 1")


class ExecutionEngine:
    """Chunked, cached executor for the frontend/featurizer stages."""

    def __init__(self, config: Optional[EngineConfig] = None, **overrides):
        self.config = config or EngineConfig(**overrides)
        self.store: Optional[ContentStore] = _build_store(
            self.config.cache_dir, self.config.cas_addr)
        #: Parent-side work counters (worker-side compiles land in the
        #: shared store but are not mirrored here).  ``tasks`` /
        #: ``payload_bytes`` / ``shm_tasks`` count the parallel
        #: transport: submitted worker tasks, bytes pickled into their
        #: payloads, and how many returned via shared memory.
        self.counters: Dict[str, int] = {
            "compiled": 0, "featurized": 0, "chunks": 0, "parallel_chunks": 0,
            "pool_starts": 0, "mapped": 0, "tasks": 0, "payload_bytes": 0,
            "shm_tasks": 0,
        }
        # The worker pool is persistent: started lazily on the first
        # parallel run and reused across calls (long-lived callers like
        # the serving loop would otherwise pay pool startup per batch).
        # It is keyed by the stage token whose state its workers hold —
        # running a different stage restarts it.  close() tears it down
        # deterministically; the engine stays usable afterwards.  The
        # lock only guards create/close (threads sharing the default
        # engine must not each fork a pool and orphan one).
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_token: Optional[str] = None
        self._pool_lock = threading.Lock()
        # Scheduling feedback: EWMA of observed per-sample seconds
        # (drives adaptive chunk sizing) and pool-utilization inputs.
        self._ewma_sample_sec: Optional[float] = None
        self._worker_busy_sec = 0.0
        self._parallel_wall_sec = 0.0

    # -- introspection ------------------------------------------------------
    @property
    def workers(self) -> int:
        return self.config.workers

    @property
    def cache_dir(self) -> Optional[str]:
        return self.config.cache_dir

    @property
    def pool_active(self) -> bool:
        """Whether a worker pool is currently alive."""
        return self._pool is not None

    @property
    def stats(self) -> Dict[str, CacheStats]:
        """Per-stage persistent-store counters seen by this process."""
        return self.store.stats if self.store is not None else {}

    def stats_dict(self) -> Dict[str, Any]:
        tasks = self.counters["tasks"]
        wall = self._parallel_wall_sec
        capacity = wall * max(1, self.config.workers)
        return {
            "workers": self.config.workers,
            "cache_dir": self.config.cache_dir,
            "pool_active": self.pool_active,
            "counters": dict(self.counters),
            "perf": {
                "payload_bytes_per_task": (
                    round(self.counters["payload_bytes"] / tasks, 1)
                    if tasks else 0.0),
                "worker_busy_sec": round(self._worker_busy_sec, 6),
                "parallel_wall_sec": round(wall, 6),
                "pool_utilization": (
                    round(min(1.0, self._worker_busy_sec / capacity), 4)
                    if capacity > 0 else 0.0),
                "ewma_sample_sec": (round(self._ewma_sample_sec, 6)
                                    if self._ewma_sample_sec else 0.0),
                # Visible on every box so "fan-out never validated on
                # multi-core" (ROADMAP) shows up in /metrics and
                # `cache stats`: configured workers vs what the
                # scheduler can actually use here.
                "effective_cores": effective_cores(),
            },
            "pool": {
                "configured_workers": self.config.workers,
                "active": self.pool_active,
                "starts": self.counters["pool_starts"],
                "start_method": (self._mp_context().get_start_method()
                                 if self.config.workers > 0 else None),
                "min_samples_per_worker": self.config.min_samples_per_worker,
                "chunk_size": self.config.chunk_size,
            },
            "store": {stage: s.as_dict() for stage, s in self.stats.items()},
            # Two-tier fleet CAS counters (None on plain local stores).
            "cas": (self.store.cas_stats()
                    if hasattr(self.store, "cas_stats") else None),
        }

    # -- lifecycle ----------------------------------------------------------
    def close(self) -> None:
        """Shut down the worker pool deterministically (idempotent).

        Serial engines are a no-op.  The engine remains usable: a later
        parallel run simply starts a fresh pool.
        """
        with self._pool_lock:
            pool, self._pool = self._pool, None
            self._pool_token = None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "ExecutionEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- public API ---------------------------------------------------------
    def compile_sources(self, frontend: Any,
                        named_sources: Iterable[Tuple[str, str]]) -> List[Any]:
        """IR modules for ``(name, source)`` pairs, in input order."""
        out = self._run(frontend, None, COMPILE_STAGE, named_sources)
        self.counters["compiled"] += len(out)
        return out

    def featurize_sources(self, frontend: Any, featurizer: Any,
                          named_sources: Iterable[Tuple[str, str]]) -> Any:
        """Feature batch for ``(name, source)`` pairs, in input order.

        The fused hot path: compile misses and featurize in one worker
        trip, so modules never cross a process boundary.

        Per-sample caching and chunked fan-out require ``transform`` to
        be per-sample decomposable, which a featurizer asserts by
        declaring ``per_sample = True`` (the built-ins do).  Anything
        else gets exactly one whole-batch ``transform`` call — the
        pre-engine behavior, safe for batch-relative featurizers —
        with compilation still engine-cached but features never
        chunked or persisted.
        """
        if not getattr(featurizer, "per_sample", False):
            modules = self.compile_sources(frontend, named_sources)
            self.counters["featurized"] += len(modules)
            return featurizer.transform(modules)
        rows = self._run(frontend, featurizer, FEATURE_STAGE, named_sources)
        self.counters["featurized"] += len(rows)
        return _join_batch(featurizer, rows)

    def featurize_samples(self, frontend: Any, featurizer: Any,
                          samples: Iterable[Any]) -> Any:
        """Feature batch for dataset :class:`~repro.datasets.loader.Sample`
        objects (or anything with ``.name`` / ``.source``)."""
        from repro.datasets.loader import iter_named_sources

        return self.featurize_sources(frontend, featurizer,
                                      iter_named_sources(samples))

    def map(self, fn: Any, items: Sequence[Any],
            chunk_size: Optional[int] = None) -> List[Any]:
        """Order-preserving parallel map over the persistent worker pool.

        The generic fan-out primitive for work that is not a compile or
        featurize stage — e.g. evaluation-matrix cells, each an
        independent (train, predict, score) job.  ``fn`` must be a
        module-level callable and each item picklable; anything that
        cannot cross a process boundary falls back to serial execution
        with a warning, exactly like the stage scheduler.  Serial and
        parallel runs return identical results in input order.  Like the
        stage path, small batches (under ``workers *
        min_samples_per_worker`` items) stay serial: the guard is
        uniform across every engine entry point.

        ``chunk_size`` groups items per worker trip: one pickle + one
        future per *chunk* instead of per item, which is what makes
        fanning out thousands of cheap tasks (the fuzz campaign's
        per-program differential checks) pay off.  ``None`` keeps the
        one-future-per-item scheduling of heavyweight tasks like
        evaluation-matrix cells.
        """
        items = list(items)
        self.counters["mapped"] = self.counters.get("mapped", 0) + len(items)
        if chunk_size is not None and chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        if self._parallel_worthwhile(len(items)):
            if chunk_size is None:
                worker = _map_worker
                wraps: List[Any] = [(fn, item) for item in items]
            else:
                worker = _map_chunk_worker
                wraps = [(fn, list(items[i:i + chunk_size]))
                         for i in range(0, len(items), chunk_size)]
            try:
                payloads = [pickle.dumps(w) for w in wraps]
            except Exception as exc:
                warnings.warn(
                    f"engine: map task is not picklable ({exc!r}); "
                    "falling back to serial execution", RuntimeWarning,
                    stacklevel=2)
                payloads = None
            if payloads is not None:
                self.counters["tasks"] += len(payloads)
                self.counters["payload_bytes"] += sum(len(p)
                                                      for p in payloads)
                pool = self._ensure_pool()
                try:
                    futures = [pool.submit(worker, p) for p in payloads]
                except RuntimeError:
                    # close() raced us; retry once on a fresh pool.
                    self._discard_pool(pool)
                    pool = self._ensure_pool()
                    futures = [pool.submit(worker, p) for p in payloads]
                try:
                    if chunk_size is None:
                        return [future.result() for future in futures]
                    out: List[Any] = []
                    for future in futures:
                        out.extend(future.result())
                    return out
                except BrokenProcessPool:
                    self._discard_pool(pool)
                    pool.shutdown(wait=False)
                    raise
        return [fn(item) for item in items]

    # -- core scheduling ----------------------------------------------------
    def _parallel_worthwhile(self, n_items: int) -> bool:
        """Whether ``n_items`` tasks justify crossing a process boundary.

        Below ``workers * min_samples_per_worker`` items the fixed costs
        (pool startup, payload pickling, result transfer) dominate and a
        "parallel" run is slower than the serial path — the cold-path
        regression the throughput benchmark's small regime measures.
        """
        if self.config.workers <= 0 or n_items <= 1:
            return False
        return n_items >= self.config.workers \
            * self.config.min_samples_per_worker

    def _effective_chunk_size(self, n_items: int) -> int:
        """Fixed ``config.chunk_size`` if positive, else adaptive:
        ~``_TARGET_CHUNK_SEC`` of observed work per task, capped so every
        worker still sees at least ``_MIN_CHUNKS_PER_WORKER`` tasks."""
        if self.config.chunk_size > 0:
            return self.config.chunk_size
        ewma = self._ewma_sample_sec
        if ewma and ewma > 0:
            size = min(_MAX_CHUNK_SIZE,
                       max(1, int(_TARGET_CHUNK_SEC / ewma)))
        else:
            size = _DEFAULT_CHUNK_SIZE
        if self.config.workers > 0:
            cap = math.ceil(n_items / (self.config.workers
                                       * _MIN_CHUNKS_PER_WORKER))
            size = min(size, max(1, cap))
        return max(1, size)

    def _observe_sample_sec(self, sec_per_sample: float) -> None:
        if sec_per_sample <= 0:
            return
        if self._ewma_sample_sec is None:
            self._ewma_sample_sec = sec_per_sample
        else:
            self._ewma_sample_sec = (
                (1.0 - _EWMA_ALPHA) * self._ewma_sample_sec
                + _EWMA_ALPHA * sec_per_sample)

    def _run(self, frontend: Any, featurizer: Optional[Any], stage: str,
             named_sources: Iterable[Tuple[str, str]]) -> List[Any]:
        results: List[Any] = []
        misses: List[Tuple[int, str, str]] = []
        cacheable = (self.store is not None and _cacheable(frontend)
                     and (featurizer is None or _cacheable(featurizer)))
        for index, (name, source) in enumerate(named_sources):
            results.append(None)
            if cacheable:
                parts = (_compile_parts(frontend, name, source)
                         if featurizer is None
                         else _feature_parts(frontend, featurizer, name,
                                             source))
                found, value = self.store.get(stage, self.store.key(stage,
                                                                    parts))
                if found:
                    results[index] = value
                    continue
            misses.append((index, name, source))
        if misses:
            # Miss scheduling uses the loader's generic order-preserving
            # chunker, so one chunk of modules is live at a time.
            from repro.datasets.loader import iter_sample_chunks

            chunks = list(iter_sample_chunks(
                misses, self._effective_chunk_size(len(misses))))
            for chunk, values in self._map_chunks(frontend, featurizer,
                                                  chunks):
                for (index, _name, _source), value in zip(chunk, values):
                    results[index] = value
        return results

    def _map_chunks(self, frontend: Any, featurizer: Optional[Any],
                    chunks: List[List[Tuple[int, str, str]]],
                    ) -> Iterator[Tuple[List[Tuple[int, str, str]],
                                        List[Any]]]:
        """Yield ``(chunk, per-sample values)`` in submission order."""
        self.counters["chunks"] += len(chunks)
        n_samples = sum(len(chunk) for chunk in chunks)
        if len(chunks) > 1 and self._parallel_worthwhile(n_samples):
            payloads = self._stage_payloads(frontend, featurizer, chunks)
            if payloads is not None:
                token, blobs = payloads
                # Warm before every parallel run, not just pool creation:
                # the executor spawns workers lazily, so processes forked
                # by a *later* run (or after a featurizer change, e.g. a
                # serving hot reload) still inherit the warm state.
                self._warmup(featurizer)
                state = _WorkerState(
                    token, frontend, featurizer, self.config.cache_dir,
                    self.store.version if self.store is not None else None,
                    self.config.shm_min_bytes, self.config.cas_addr)
                wall_start = time.perf_counter()
                pool = self._ensure_pool(state)
                try:
                    futures = [pool.submit(_stage_chunk_worker, b)
                               for b in blobs]
                except RuntimeError:
                    # close() raced us (another thread tore the pool
                    # down between _ensure_pool and submit); closing is
                    # reversible by design, so retry on a fresh pool.
                    self._discard_pool(pool)
                    pool = self._ensure_pool(state)
                    futures = [pool.submit(_stage_chunk_worker, b)
                               for b in blobs]
                self.counters["parallel_chunks"] += len(chunks)
                self.counters["tasks"] += len(blobs)
                self.counters["payload_bytes"] += sum(len(b) for b in blobs)
                if METRICS.enabled:
                    _OBS_TASKS.inc(len(blobs))
                    _OBS_CHUNK_SIZE.set(max(len(c) for c in chunks))
                if EVENTS.enabled:
                    EVENTS.emit("engine.fanout", severity="debug",
                                chunks=len(chunks), samples=n_samples,
                                workers=self.config.workers)
                wall_t0 = time.time()
                try:
                    for chunk, future in zip(chunks, futures):
                        transport, value, busy, snapshot, spans = \
                            future.result()
                        self._worker_busy_sec += busy
                        self._observe_sample_sec(busy / max(1, len(chunk)))
                        if PERF.enabled and snapshot:
                            PERF.merge(snapshot)
                        if spans:
                            TRACER.merge_spans(spans)
                        if METRICS.enabled:
                            _OBS_WORKER_BUSY.observe(busy)
                        if transport == "shm":
                            self.counters["shm_tasks"] += 1
                            if METRICS.enabled:
                                _OBS_SHM.inc()
                            matrix = load_matrix(value)
                            values = _split_batch(matrix, matrix.shape[0])
                        else:
                            values = value
                        yield chunk, values
                except BrokenProcessPool:
                    # A dead worker poisons the whole executor; drop it
                    # so the next run starts a healthy pool.
                    self._discard_pool(pool)
                    pool.shutdown(wait=False)
                    raise
                finally:
                    wall = time.perf_counter() - wall_start
                    self._parallel_wall_sec += wall
                    # record(), not span(): a context-manager span from
                    # inside a generator would leak its context to the
                    # consumer between yields.
                    TRACER.record("engine.fanout", kind="engine",
                                  start_s=wall_t0, elapsed_s=wall,
                                  attrs={"chunks": len(chunks),
                                         "samples": n_samples,
                                         "workers": self.config.workers})
                return
        for chunk in chunks:
            named = [(name, source) for _i, name, source in chunk]
            start = time.perf_counter()
            values = _process_chunk(self.store, frontend, featurizer, named)
            self._observe_sample_sec((time.perf_counter() - start)
                                     / max(1, len(chunk)))
            yield chunk, values

    def _stage_token(self, frontend: Any, featurizer: Optional[Any]) -> str:
        """Identity of the worker-side state a pool must hold to run
        these stages (stage configs + store coordinates)."""
        version = self.store.version if self.store is not None else ""
        return digest_parts([
            stage_identity(frontend),
            stage_identity(featurizer) if featurizer is not None else "",
            self.config.cache_dir or "", version,
            self.config.cas_addr or "",
        ])

    def _stage_payloads(self, frontend: Any, featurizer: Optional[Any],
                        chunks: List[List[Tuple[int, str, str]]],
                        ) -> Optional[Tuple[str, List[bytes]]]:
        """``(stage token, per-chunk payloads)``, or ``None`` if the
        stages can't cross a process boundary (custom closure-y stages
        fall back to serial).

        The stages themselves are *not* in the payloads — they install
        once per pool — but they must still be picklable for the spawn
        initializer, so the probe runs on every platform (it also keeps
        the serial-fallback contract identical under fork).
        """
        try:
            pickle.dumps((frontend, featurizer))
        except Exception as exc:     # pickling failure → serial fallback
            warnings.warn(
                f"engine: stages are not picklable ({exc!r}); "
                "falling back to serial execution", RuntimeWarning,
                stacklevel=3)
            return None
        token = self._stage_token(frontend, featurizer)
        # The trace context rides every chunk payload (None while
        # tracing is off — a few bytes) so workers can attribute their
        # stage spans to the originating request(s).
        ctx = TRACER.capture()
        blobs = [pickle.dumps((token,
                               [(name, source) for _i, name, source
                                in chunk], ctx))
                 for chunk in chunks]
        return token, blobs

    def _ensure_pool(self,
                     state: Optional[_WorkerState] = None,
                     ) -> ProcessPoolExecutor:
        """The persistent worker pool, started on first parallel use.

        With ``state``, the pool must hold exactly that stage state:
        a live pool keyed to the same token is reused, anything else is
        torn down and restarted with the new state installed (fork:
        parent-side global inherited copy-on-write; spawn: one-time
        initializer).  Without ``state`` (generic ``map`` tasks) any
        live pool is reused.
        """
        with self._pool_lock:
            token = state.token if state is not None else None
            if self._pool is not None:
                if token is None or token == self._pool_token:
                    return self._pool
                stale, self._pool = self._pool, None
                stale.shutdown(wait=False)
            context = self._mp_context()
            initializer = None
            initargs: Tuple[Any, ...] = ()
            if state is not None:
                if context.get_start_method() == "fork":
                    # Zero-copy hand-off: forked workers inherit the
                    # parent's global (and every warm memo under it).
                    _install_worker_state(state)
                else:
                    initializer = _init_worker
                    initargs = (pickle.dumps(state),)
            self._pool = ProcessPoolExecutor(
                max_workers=self.config.workers,
                mp_context=context,
                initializer=initializer,
                initargs=initargs)
            self._pool_token = token
            self.counters["pool_starts"] += 1
            if METRICS.enabled:
                _OBS_POOL_STARTS.inc()
            if EVENTS.enabled:
                EVENTS.emit("engine.pool_start",
                            workers=self.config.workers,
                            start_method=context.get_start_method(),
                            staged=state is not None)
            return self._pool

    def _discard_pool(self, pool: ProcessPoolExecutor) -> None:
        """Forget ``pool`` unless another thread already replaced it."""
        with self._pool_lock:
            if self._pool is pool:
                self._pool = None
                self._pool_token = None

    def _warmup(self, featurizer: Optional[Any]) -> None:
        """Build expensive per-process state (e.g. the IR2vec encoder)
        before forking, so workers inherit it instead of rebuilding."""
        warmup = getattr(featurizer, "warmup", None)
        if callable(warmup):
            warmup()

    def _mp_context(self):
        method = self.config.start_method
        if method == "auto":
            # Prefer fork only on Linux: macOS lists it as available but
            # CPython made spawn the default there because forking a
            # thread-using parent (numpy/Accelerate, objc) is unsafe.
            if sys.platform.startswith("linux") \
                    and "fork" in multiprocessing.get_all_start_methods():
                method = "fork"
            else:
                method = multiprocessing.get_start_method()
        return multiprocessing.get_context(method)


# ---------------------------------------------------------------------------
# Process-wide default engine
# ---------------------------------------------------------------------------

_DEFAULT_ENGINE: Optional[ExecutionEngine] = None


def _env_workers(default: int = 0) -> int:
    """``REPRO_WORKERS``, tolerating malformed values rather than making
    every CLI/library call die deep inside the first corpus operation."""
    raw = os.environ.get("REPRO_WORKERS", "").strip()
    try:
        workers = int(raw) if raw else default
    except ValueError:
        warnings.warn(f"ignoring malformed REPRO_WORKERS={raw!r}",
                      RuntimeWarning, stacklevel=3)
        return default
    return workers if workers >= 0 else default


def default_engine() -> ExecutionEngine:
    """The process-wide engine every pipeline uses unless given its own.

    First use builds it from the ``REPRO_WORKERS`` / ``REPRO_CACHE_DIR``
    / ``REPRO_CAS_ADDR`` environment variables (serial, uncached when
    unset); ``REPRO_CAS_ADDR`` is how fleet replica subprocesses attach
    their engines to the shared network CAS.
    """
    global _DEFAULT_ENGINE
    if _DEFAULT_ENGINE is None:
        _DEFAULT_ENGINE = ExecutionEngine(EngineConfig(
            workers=_env_workers(),
            cache_dir=os.environ.get("REPRO_CACHE_DIR") or None,
            cas_addr=os.environ.get("REPRO_CAS_ADDR") or None))
    return _DEFAULT_ENGINE


def configure(workers: Optional[int] = None,
              cache_dir: Optional[str] = None,
              chunk_size: Optional[int] = None,
              min_samples_per_worker: Optional[int] = None,
              ) -> ExecutionEngine:
    """Replace the default engine; ``None`` keeps the current setting."""
    global _DEFAULT_ENGINE
    current = default_engine().config
    _DEFAULT_ENGINE = ExecutionEngine(EngineConfig(
        workers=current.workers if workers is None else workers,
        cache_dir=current.cache_dir if cache_dir is None else (cache_dir
                                                               or None),
        chunk_size=current.chunk_size if chunk_size is None else chunk_size,
        min_samples_per_worker=(current.min_samples_per_worker
                                if min_samples_per_worker is None
                                else min_samples_per_worker),
        start_method=current.start_method,
        shm_min_bytes=current.shm_min_bytes,
        cas_addr=current.cas_addr))
    return _DEFAULT_ENGINE


def set_default_engine(engine: Optional[ExecutionEngine]) -> None:
    """Install (or with ``None``, reset) the process-wide default."""
    global _DEFAULT_ENGINE
    _DEFAULT_ENGINE = engine
