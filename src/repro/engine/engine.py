"""Parallel corpus execution engine over the compile → featurize hot path.

The paper's detector pushes thousands of MBI / CorrBench / Hypre samples
through the same ``compile → embed/graph → classify`` pipeline, and the
per-sample work is pure: one source at one stage config always produces
the same IR module, embedding row, or program graph.  The engine exploits
both facts:

* **Fan-out** — samples are processed in deterministic, order-preserving
  chunks over a ``ProcessPoolExecutor`` (``fork`` start method where the
  platform offers it, so warm per-process memos like the IR2vec encoder
  are inherited instead of rebuilt).  ``workers=0`` is the serial
  fallback and the default: identical results, one process.
* **Never redo work** — every stage is backed by the persistent
  content-addressed :class:`~repro.engine.cache.ContentStore`.  A warm
  re-run of ``fit``, ``predict_batch``, an eval scenario, or a benchmark
  skips compilation and featurization entirely; cache keys mix in the
  stage config and the code version, so changing any input recomputes.

Parallel and serial runs are bit-identical by construction: per-sample
results are computed independently and reassembled in input order.

>>> engine = ExecutionEngine(workers=4, cache_dir="~/.cache/repro")
>>> X = engine.featurize_sources(frontend, featurizer, named_sources)
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import sys
import threading
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.engine.cache import CacheStats, ContentStore

#: Store subtrees, one per engine stage.
COMPILE_STAGE = "compile"
FEATURE_STAGE = "features"


def stage_identity(stage: Any) -> str:
    """Stable identity of a stage instance for cache keys.

    Covers the implementation (qualname + registered name) and the full
    config repr, so two differently-parameterized instances never share
    an entry.  Stages without a ``config`` attribute get ``id=None`` —
    the engine treats those as uncacheable (see ``_cacheable``).
    """
    config = getattr(stage, "config", None)
    return (f"{type(stage).__qualname__}"
            f":{getattr(stage, 'name', type(stage).__name__)}"
            f":{config!r}")


def _cacheable(stage: Any) -> bool:
    return getattr(stage, "config", None) is not None


def _compile_parts(frontend: Any, name: str, source: str) -> Tuple[str, ...]:
    return (stage_identity(frontend), name, source)


def _feature_parts(frontend: Any, featurizer: Any, name: str,
                   source: str) -> Tuple[str, ...]:
    return (stage_identity(frontend), stage_identity(featurizer), name, source)


def _split_batch(features: Any, n: int) -> List[Any]:
    """Per-sample rows of a batch featurizer output (matrix or list)."""
    if isinstance(features, np.ndarray):
        return [features[i] for i in range(n)]
    return list(features)


def _join_batch(featurizer: Any, rows: Sequence[Any]) -> Any:
    """Reassemble per-sample rows into the featurizer's batch shape."""
    kind = getattr(featurizer, "kind", None)
    if kind == "matrix" or (kind is None and rows
                            and all(isinstance(r, np.ndarray)
                                    and r.shape == rows[0].shape
                                    for r in rows)):
        if not rows:
            return featurizer.transform([])
        return np.stack(rows)
    if not rows and kind is None:
        return featurizer.transform([])
    return list(rows)


def _compile_one(store: Optional[ContentStore], frontend: Any,
                 name: str, source: str) -> Any:
    if store is not None and _cacheable(frontend):
        key = store.key(COMPILE_STAGE, _compile_parts(frontend, name, source))
        found, module = store.get(COMPILE_STAGE, key)
        if found:
            return module
        module = frontend.compile(source, name)
        store.put(COMPILE_STAGE, key, module)
        return module
    return frontend.compile(source, name)


def _process_chunk(store: Optional[ContentStore], frontend: Any,
                   featurizer: Optional[Any],
                   chunk: Sequence[Tuple[str, str]]) -> List[Any]:
    """Compile (and optionally featurize) one chunk, through the store."""
    modules = [_compile_one(store, frontend, name, source)
               for name, source in chunk]
    if featurizer is None:
        return modules
    rows = _split_batch(featurizer.transform(modules), len(modules))
    if store is not None and _cacheable(frontend) and _cacheable(featurizer):
        for (name, source), row in zip(chunk, rows):
            key = store.key(FEATURE_STAGE,
                            _feature_parts(frontend, featurizer, name, source))
            store.put(FEATURE_STAGE, key, row)
    return rows


def _chunk_worker(payload: bytes) -> List[Any]:
    """Top-level worker entry point (must be importable for pickling)."""
    frontend, featurizer, chunk, cache_dir, version = pickle.loads(payload)
    store = ContentStore(cache_dir, version) if cache_dir else None
    return _process_chunk(store, frontend, featurizer, chunk)


def _map_worker(payload: bytes) -> Any:
    """Worker entry point for :meth:`ExecutionEngine.map` tasks."""
    fn, item = pickle.loads(payload)
    return fn(item)


def _map_chunk_worker(payload: bytes) -> List[Any]:
    """Worker entry point for chunked :meth:`ExecutionEngine.map` runs."""
    fn, items = pickle.loads(payload)
    return [fn(item) for item in items]


@dataclass(frozen=True)
class EngineConfig:
    """Knobs of the execution engine.

    ``workers=0`` runs serially in-process; ``workers=N`` fans chunks out
    to N worker processes.  ``cache_dir=None`` disables the persistent
    store (in-process memos still apply).  ``chunk_size`` balances
    scheduling overhead against load balance.

    ``min_samples_per_worker`` is the cold-path guard: a parallel run
    only pays off once per-item work amortizes pool startup and payload
    pickling, so batches smaller than ``workers * min_samples_per_worker``
    stay serial even with ``workers > 0`` (set it to 1 to force fan-out,
    as the throughput benchmark does).
    """

    workers: int = 0
    cache_dir: Optional[str] = None
    chunk_size: int = 16
    min_samples_per_worker: int = 32
    start_method: str = "auto"      # 'auto' prefers fork where available

    def __post_init__(self):
        if self.workers < 0:
            raise ValueError("workers must be >= 0")
        if self.chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        if self.min_samples_per_worker < 1:
            raise ValueError("min_samples_per_worker must be >= 1")


class ExecutionEngine:
    """Chunked, cached executor for the frontend/featurizer stages."""

    def __init__(self, config: Optional[EngineConfig] = None, **overrides):
        self.config = config or EngineConfig(**overrides)
        self.store: Optional[ContentStore] = (
            ContentStore(self.config.cache_dir)
            if self.config.cache_dir else None)
        #: Parent-side work counters (worker-side compiles land in the
        #: shared store but are not mirrored here).
        self.counters: Dict[str, int] = {
            "compiled": 0, "featurized": 0, "chunks": 0, "parallel_chunks": 0,
            "pool_starts": 0, "mapped": 0,
        }
        # The worker pool is persistent: started lazily on the first
        # parallel run and reused across calls (long-lived callers like
        # the serving loop would otherwise pay pool startup per batch).
        # close() tears it down deterministically; the engine stays
        # usable afterwards — the next parallel run starts a fresh pool.
        # The lock only guards create/close (threads sharing the default
        # engine must not each fork a pool and orphan one).
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_lock = threading.Lock()

    # -- introspection ------------------------------------------------------
    @property
    def workers(self) -> int:
        return self.config.workers

    @property
    def cache_dir(self) -> Optional[str]:
        return self.config.cache_dir

    @property
    def pool_active(self) -> bool:
        """Whether a worker pool is currently alive."""
        return self._pool is not None

    @property
    def stats(self) -> Dict[str, CacheStats]:
        """Per-stage persistent-store counters seen by this process."""
        return self.store.stats if self.store is not None else {}

    def stats_dict(self) -> Dict[str, Any]:
        return {
            "workers": self.config.workers,
            "cache_dir": self.config.cache_dir,
            "pool_active": self.pool_active,
            "counters": dict(self.counters),
            "store": {stage: s.as_dict() for stage, s in self.stats.items()},
        }

    # -- lifecycle ----------------------------------------------------------
    def close(self) -> None:
        """Shut down the worker pool deterministically (idempotent).

        Serial engines are a no-op.  The engine remains usable: a later
        parallel run simply starts a fresh pool.
        """
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "ExecutionEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- public API ---------------------------------------------------------
    def compile_sources(self, frontend: Any,
                        named_sources: Iterable[Tuple[str, str]]) -> List[Any]:
        """IR modules for ``(name, source)`` pairs, in input order."""
        out = self._run(frontend, None, COMPILE_STAGE, named_sources)
        self.counters["compiled"] += len(out)
        return out

    def featurize_sources(self, frontend: Any, featurizer: Any,
                          named_sources: Iterable[Tuple[str, str]]) -> Any:
        """Feature batch for ``(name, source)`` pairs, in input order.

        The fused hot path: compile misses and featurize in one worker
        trip, so modules never cross a process boundary.

        Per-sample caching and chunked fan-out require ``transform`` to
        be per-sample decomposable, which a featurizer asserts by
        declaring ``per_sample = True`` (the built-ins do).  Anything
        else gets exactly one whole-batch ``transform`` call — the
        pre-engine behavior, safe for batch-relative featurizers —
        with compilation still engine-cached but features never
        chunked or persisted.
        """
        if not getattr(featurizer, "per_sample", False):
            modules = self.compile_sources(frontend, named_sources)
            self.counters["featurized"] += len(modules)
            return featurizer.transform(modules)
        rows = self._run(frontend, featurizer, FEATURE_STAGE, named_sources)
        self.counters["featurized"] += len(rows)
        return _join_batch(featurizer, rows)

    def featurize_samples(self, frontend: Any, featurizer: Any,
                          samples: Iterable[Any]) -> Any:
        """Feature batch for dataset :class:`~repro.datasets.loader.Sample`
        objects (or anything with ``.name`` / ``.source``)."""
        from repro.datasets.loader import iter_named_sources

        return self.featurize_sources(frontend, featurizer,
                                      iter_named_sources(samples))

    def map(self, fn: Any, items: Sequence[Any],
            chunk_size: Optional[int] = None) -> List[Any]:
        """Order-preserving parallel map over the persistent worker pool.

        The generic fan-out primitive for work that is not a compile or
        featurize stage — e.g. evaluation-matrix cells, each an
        independent (train, predict, score) job.  ``fn`` must be a
        module-level callable and each item picklable; anything that
        cannot cross a process boundary falls back to serial execution
        with a warning, exactly like the stage scheduler.  Serial and
        parallel runs return identical results in input order.

        ``chunk_size`` groups items per worker trip: one pickle + one
        future per *chunk* instead of per item, which is what makes
        fanning out thousands of cheap tasks (the fuzz campaign's
        per-program differential checks) pay off.  ``None`` keeps the
        one-future-per-item scheduling of heavyweight tasks like
        evaluation-matrix cells.
        """
        items = list(items)
        self.counters["mapped"] = self.counters.get("mapped", 0) + len(items)
        if chunk_size is not None and chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        if self._parallel_worthwhile(len(items)):
            if chunk_size is None:
                groups: List[List[Any]] = [[item] for item in items]
                worker = _map_worker
                wraps = [(fn, item) for item in items]
            else:
                groups = [list(items[i:i + chunk_size])
                          for i in range(0, len(items), chunk_size)]
                worker = _map_chunk_worker
                wraps = [(fn, group) for group in groups]
            try:
                payloads = [pickle.dumps(w) for w in wraps]
            except Exception as exc:
                warnings.warn(
                    f"engine: map task is not picklable ({exc!r}); "
                    "falling back to serial execution", RuntimeWarning,
                    stacklevel=2)
                payloads = None
            if payloads is not None:
                pool = self._ensure_pool()
                try:
                    futures = [pool.submit(worker, p) for p in payloads]
                except RuntimeError:
                    # close() raced us; retry once on a fresh pool.
                    self._discard_pool(pool)
                    pool = self._ensure_pool()
                    futures = [pool.submit(worker, p) for p in payloads]
                try:
                    if chunk_size is None:
                        return [future.result() for future in futures]
                    out: List[Any] = []
                    for future in futures:
                        out.extend(future.result())
                    return out
                except BrokenProcessPool:
                    self._discard_pool(pool)
                    pool.shutdown(wait=False)
                    raise
        return [fn(item) for item in items]

    # -- core scheduling ----------------------------------------------------
    def _parallel_worthwhile(self, n_items: int) -> bool:
        """Whether ``n_items`` tasks justify crossing a process boundary.

        Below ``workers * min_samples_per_worker`` items the fixed costs
        (pool startup, payload pickling, result transfer) dominate and a
        "parallel" run is slower than the serial path — the cold-path
        regression the throughput benchmark's small regime measures.
        """
        if self.config.workers <= 0 or n_items <= 1:
            return False
        return n_items >= self.config.workers \
            * self.config.min_samples_per_worker

    def _run(self, frontend: Any, featurizer: Optional[Any], stage: str,
             named_sources: Iterable[Tuple[str, str]]) -> List[Any]:
        results: List[Any] = []
        misses: List[Tuple[int, str, str]] = []
        cacheable = (self.store is not None and _cacheable(frontend)
                     and (featurizer is None or _cacheable(featurizer)))
        for index, (name, source) in enumerate(named_sources):
            results.append(None)
            if cacheable:
                parts = (_compile_parts(frontend, name, source)
                         if featurizer is None
                         else _feature_parts(frontend, featurizer, name,
                                             source))
                found, value = self.store.get(stage, self.store.key(stage,
                                                                    parts))
                if found:
                    results[index] = value
                    continue
            misses.append((index, name, source))
        if misses:
            # Miss scheduling uses the loader's generic order-preserving
            # chunker, so one chunk of modules is live at a time.
            from repro.datasets.loader import iter_sample_chunks

            chunks = list(iter_sample_chunks(misses,
                                             self.config.chunk_size))
            for chunk, values in self._map_chunks(frontend, featurizer,
                                                  chunks):
                for (index, _name, _source), value in zip(chunk, values):
                    results[index] = value
        return results

    def _map_chunks(self, frontend: Any, featurizer: Optional[Any],
                    chunks: List[List[Tuple[int, str, str]]],
                    ) -> Iterator[Tuple[List[Tuple[int, str, str]],
                                        List[Any]]]:
        """Yield ``(chunk, per-sample values)`` in submission order."""
        self.counters["chunks"] += len(chunks)
        n_samples = sum(len(chunk) for chunk in chunks)
        if len(chunks) > 1 and self._parallel_worthwhile(n_samples):
            payloads = self._parallel_payloads(frontend, featurizer, chunks)
            if payloads is not None:
                # Warm before every parallel run, not just pool creation:
                # the executor spawns workers lazily, so processes forked
                # by a *later* run (or after a featurizer change, e.g. a
                # serving hot reload) still inherit the warm state.
                self._warmup(featurizer)
                pool = self._ensure_pool()
                try:
                    futures = [pool.submit(_chunk_worker, p)
                               for p in payloads]
                except RuntimeError:
                    # close() raced us (another thread tore the pool
                    # down between _ensure_pool and submit); closing is
                    # reversible by design, so retry on a fresh pool.
                    self._discard_pool(pool)
                    pool = self._ensure_pool()
                    futures = [pool.submit(_chunk_worker, p)
                               for p in payloads]
                try:
                    self.counters["parallel_chunks"] += len(chunks)
                    for chunk, future in zip(chunks, futures):
                        yield chunk, future.result()
                except BrokenProcessPool:
                    # A dead worker poisons the whole executor; drop it
                    # so the next run starts a healthy pool.
                    self._discard_pool(pool)
                    pool.shutdown(wait=False)
                    raise
                return
        for chunk in chunks:
            named = [(name, source) for _i, name, source in chunk]
            yield chunk, _process_chunk(self.store, frontend, featurizer,
                                        named)

    def _parallel_payloads(self, frontend: Any, featurizer: Optional[Any],
                           chunks: List[List[Tuple[int, str, str]]],
                           ) -> Optional[List[bytes]]:
        """Pre-pickled worker payloads, or None if the stages can't cross
        a process boundary (custom closure-y stages fall back to serial)."""
        version = self.store.version if self.store is not None else None
        try:
            return [pickle.dumps((frontend, featurizer,
                                  [(name, source) for _i, name, source
                                   in chunk],
                                  self.config.cache_dir, version))
                    for chunk in chunks]
        except Exception as exc:     # pickling failure → serial fallback
            warnings.warn(
                f"engine: stages are not picklable ({exc!r}); "
                "falling back to serial execution", RuntimeWarning,
                stacklevel=3)
            return None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        """The persistent worker pool, started on first parallel use."""
        with self._pool_lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.config.workers,
                    mp_context=self._mp_context())
                self.counters["pool_starts"] += 1
            return self._pool

    def _discard_pool(self, pool: ProcessPoolExecutor) -> None:
        """Forget ``pool`` unless another thread already replaced it."""
        with self._pool_lock:
            if self._pool is pool:
                self._pool = None

    def _warmup(self, featurizer: Optional[Any]) -> None:
        """Build expensive per-process state (e.g. the IR2vec encoder)
        before forking, so workers inherit it instead of rebuilding."""
        warmup = getattr(featurizer, "warmup", None)
        if callable(warmup):
            warmup()

    def _mp_context(self):
        method = self.config.start_method
        if method == "auto":
            # Prefer fork only on Linux: macOS lists it as available but
            # CPython made spawn the default there because forking a
            # thread-using parent (numpy/Accelerate, objc) is unsafe.
            if sys.platform.startswith("linux") \
                    and "fork" in multiprocessing.get_all_start_methods():
                method = "fork"
            else:
                method = multiprocessing.get_start_method()
        return multiprocessing.get_context(method)


# ---------------------------------------------------------------------------
# Process-wide default engine
# ---------------------------------------------------------------------------

_DEFAULT_ENGINE: Optional[ExecutionEngine] = None


def _env_workers(default: int = 0) -> int:
    """``REPRO_WORKERS``, tolerating malformed values rather than making
    every CLI/library call die deep inside the first corpus operation."""
    raw = os.environ.get("REPRO_WORKERS", "").strip()
    try:
        workers = int(raw) if raw else default
    except ValueError:
        warnings.warn(f"ignoring malformed REPRO_WORKERS={raw!r}",
                      RuntimeWarning, stacklevel=3)
        return default
    return workers if workers >= 0 else default


def default_engine() -> ExecutionEngine:
    """The process-wide engine every pipeline uses unless given its own.

    First use builds it from the ``REPRO_WORKERS`` / ``REPRO_CACHE_DIR``
    environment variables (serial, uncached when unset).
    """
    global _DEFAULT_ENGINE
    if _DEFAULT_ENGINE is None:
        _DEFAULT_ENGINE = ExecutionEngine(EngineConfig(
            workers=_env_workers(),
            cache_dir=os.environ.get("REPRO_CACHE_DIR") or None))
    return _DEFAULT_ENGINE


def configure(workers: Optional[int] = None,
              cache_dir: Optional[str] = None,
              chunk_size: Optional[int] = None,
              min_samples_per_worker: Optional[int] = None,
              ) -> ExecutionEngine:
    """Replace the default engine; ``None`` keeps the current setting."""
    global _DEFAULT_ENGINE
    current = default_engine().config
    _DEFAULT_ENGINE = ExecutionEngine(EngineConfig(
        workers=current.workers if workers is None else workers,
        cache_dir=current.cache_dir if cache_dir is None else (cache_dir
                                                               or None),
        chunk_size=current.chunk_size if chunk_size is None else chunk_size,
        min_samples_per_worker=(current.min_samples_per_worker
                                if min_samples_per_worker is None
                                else min_samples_per_worker),
        start_method=current.start_method))
    return _DEFAULT_ENGINE


def set_default_engine(engine: Optional[ExecutionEngine]) -> None:
    """Install (or with ``None``, reset) the process-wide default."""
    global _DEFAULT_ENGINE
    _DEFAULT_ENGINE = engine
