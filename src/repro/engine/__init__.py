"""Parallel corpus execution engine with persistent content-addressed caching.

``repro.engine`` is the substrate every corpus-scale code path runs on:
:class:`ExecutionEngine` fans the frontend/featurizer stages out over a
worker pool (deterministic, order-preserving chunks; ``workers=0`` = the
serial fallback) and backs each stage with an on-disk
:class:`~repro.engine.cache.ContentStore` keyed on content digests of
(source, stage, stage config, code version) — so warm re-runs of ``fit``,
``predict_batch``, eval scenarios, and benchmarks never recompile or
re-featurize anything whose inputs haven't changed.

The process-wide :func:`default_engine` is what
:class:`~repro.pipeline.DetectionPipeline` and the feature caches use
unless handed an engine explicitly; :func:`configure` (or the
``REPRO_WORKERS`` / ``REPRO_CACHE_DIR`` environment variables, or the
CLI's ``--workers`` / ``--cache-dir`` flags) changes it for the process.
"""

from repro.engine.cache import (
    ENGINE_CACHE_VERSION,
    CacheStats,
    ContentStore,
    LRUCache,
    code_version,
    digest_parts,
)
from repro.engine.engine import (
    COMPILE_STAGE,
    FEATURE_STAGE,
    EngineConfig,
    ExecutionEngine,
    configure,
    default_engine,
    set_default_engine,
    stage_identity,
)

__all__ = [
    "ExecutionEngine", "EngineConfig",
    "default_engine", "configure", "set_default_engine",
    "ContentStore", "CacheStats", "LRUCache",
    "COMPILE_STAGE", "FEATURE_STAGE",
    "ENGINE_CACHE_VERSION", "code_version", "digest_parts",
    "stage_identity",
]
