"""Node-text vocabulary for program graphs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

import numpy as np

from repro.graphs.programl import ProgramGraph

UNK = "<unk>"


@dataclass
class GraphVocabulary:
    index: Dict[str, int]

    def __len__(self) -> int:
        return len(self.index)

    def encode(self, texts: Iterable[str]) -> np.ndarray:
        unk = self.index[UNK]
        return np.array([self.index.get(t, unk) for t in texts], dtype=np.int64)

    def encode_graph(self, graph: ProgramGraph) -> np.ndarray:
        return self.encode(graph.node_text)


def build_vocabulary(graphs: Iterable[ProgramGraph], min_count: int = 1) -> GraphVocabulary:
    counts: Dict[str, int] = {}
    for graph in graphs:
        for text in graph.node_text:
            counts[text] = counts.get(text, 0) + 1
    vocab = {UNK: 0}
    for text in sorted(counts):
        if counts[text] >= min_count:
            vocab[text] = len(vocab)
    return GraphVocabulary(vocab)
