"""ProGraML program graphs (Cummins et al., ICML'21), as used by the paper.

One unified graph per module with three node types and three edge types:

* nodes — ``control`` (instructions), ``variable`` (SSA values/arguments/
  globals), ``constant`` (literals);
* edges — ``control`` (instruction ordering + branch targets), ``data``
  (def→use and use→def through variable/constant nodes), ``call``
  (call site → callee entry, callee return → call site).

Node *text* follows ProGraML: instructions carry their opcode (calls to
external functions carry the callee identity, which is how MPI call
information reaches the GNN), variables/constants carry their type.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.embeddings.triplets import abstract_type
from repro.ir.instructions import CallInst, Instruction
from repro.ir.module import Function, Module
from repro.ir.values import (
    Argument,
    Constant,
    ConstantString,
    GlobalVariable,
    UndefValue,
    Value,
)

NODE_TYPES = ("control", "variable", "constant")
EDGE_TYPES = ("control", "data", "call")


@dataclass
class ProgramGraph:
    """Edge-list representation ready for batching into the GNN."""

    node_text: List[str] = field(default_factory=list)
    node_type: List[int] = field(default_factory=list)       # index in NODE_TYPES
    edges: Dict[str, List[Tuple[int, int]]] = field(
        default_factory=lambda: {t: [] for t in EDGE_TYPES})

    @property
    def num_nodes(self) -> int:
        return len(self.node_text)

    def add_node(self, text: str, ntype: str) -> int:
        self.node_text.append(text)
        self.node_type.append(NODE_TYPES.index(ntype))
        return len(self.node_text) - 1

    def add_edge(self, etype: str, src: int, dst: int) -> None:
        self.edges[etype].append((src, dst))

    def edge_array(self, etype: str) -> np.ndarray:
        pairs = self.edges[etype]
        if not pairs:
            return np.zeros((2, 0), dtype=np.int64)
        return np.asarray(pairs, dtype=np.int64).T


def _instruction_text(inst: Instruction) -> str:
    if isinstance(inst, CallInst):
        return f"call:{inst.callee_name}"
    return inst.opcode


def build_program_graph(module: Module) -> ProgramGraph:
    from repro.perf import PERF

    with PERF.stage("graph"):
        return _build_program_graph(module)


def _build_program_graph(module: Module) -> ProgramGraph:
    graph = ProgramGraph()
    inst_node: Dict[int, int] = {}
    value_node: Dict[int, int] = {}
    fn_entry_node: Dict[str, int] = {}
    fn_return_nodes: Dict[str, List[int]] = {}

    def data_node(value: Value) -> int:
        key = id(value)
        if key in value_node:
            return value_node[key]
        if isinstance(value, ConstantString):
            node = graph.add_node("const:string", "constant")
        elif isinstance(value, Constant):
            node = graph.add_node(f"const:{abstract_type(value.type)}", "constant")
        elif isinstance(value, UndefValue):
            node = graph.add_node("const:undef", "constant")
        elif isinstance(value, (Argument, GlobalVariable)):
            node = graph.add_node(f"var:{abstract_type(value.type)}", "variable")
        else:
            node = graph.add_node(f"var:{abstract_type(value.type)}", "variable")
        value_node[key] = node
        return node

    # Pass 1: instruction (control) nodes.
    for fn in module.defined_functions():
        returns: List[int] = []
        for bi, block in enumerate(fn.blocks):
            for pos, inst in enumerate(block.instructions):
                node = graph.add_node(_instruction_text(inst), "control")
                inst_node[id(inst)] = node
                if fn.name not in fn_entry_node and bi == 0 and pos == 0:
                    fn_entry_node[fn.name] = node
                if inst.opcode == "ret":
                    returns.append(node)
        fn_return_nodes[fn.name] = returns

    # Pass 2: edges.
    for fn in module.defined_functions():
        for block in fn.blocks:
            insts = block.instructions
            # Control edges: sequential + terminator → successor heads.
            for pos in range(len(insts) - 1):
                graph.add_edge("control", inst_node[id(insts[pos])],
                               inst_node[id(insts[pos + 1])])
            if insts and insts[-1].is_terminator:
                for succ in block.successors():
                    if succ.instructions:
                        graph.add_edge("control", inst_node[id(insts[-1])],
                                       inst_node[id(succ.instructions[0])])
            for inst in insts:
                dst = inst_node[id(inst)]
                # Data edges: operand value node → instruction.
                for op in inst.operands:
                    if isinstance(op, Instruction):
                        # def → var node → use
                        var = data_node(op)
                        graph.add_edge("data", inst_node[id(op)], var)
                        graph.add_edge("data", var, dst)
                    elif isinstance(op, Function):
                        continue  # handled as call edges
                    else:
                        graph.add_edge("data", data_node(op), dst)
                # Result variable node for instructions with uses.
                if inst.uses and not inst.type.is_void:
                    var = data_node(inst)
                    graph.add_edge("data", dst, var)
                # Call edges.
                if isinstance(inst, CallInst):
                    callee = inst.callee
                    if isinstance(callee, Function) and not callee.is_declaration:
                        graph.add_edge("call", dst, fn_entry_node[callee.name])
                        for ret in fn_return_nodes.get(callee.name, ()):
                            graph.add_edge("call", ret, dst)
                    else:
                        # External function: a dedicated control node so the
                        # callee's identity is a first-class graph entity.
                        key = ("extfn", callee.name)
                        if key not in value_node:
                            value_node[key] = graph.add_node(  # type: ignore[index]
                                f"fn:{callee.name}", "control")
                        graph.add_edge("call", dst, value_node[key])  # type: ignore[index]
    return graph
