"""ProGraML-style program graph construction over :mod:`repro.ir`."""

from repro.graphs.programl import ProgramGraph, build_program_graph
from repro.graphs.vocab import GraphVocabulary, build_vocabulary

__all__ = ["ProgramGraph", "build_program_graph", "GraphVocabulary",
           "build_vocabulary"]
