"""Rank-interleaving MPI runtime simulator.

Executes a compiled module on N virtual ranks (each a :class:`RankVM`
with private memory), intercepting every MPI call and applying message
matching, collective synchronization, request/epoch lifecycles, and a
battery of runtime correctness checks.  The dynamic-tool baselines
(ITAC / MUST analogues in :mod:`repro.verify`) are thin verdict layers
over the :class:`SimReport` this produces.

Semantics highlights:

* ``MPI_Send`` is *eager* up to ``eager_limit`` elements and rendezvous
  beyond (so buffering-dependent deadlocks manifest); ``MPI_Ssend`` always
  rendezvous.
* Collectives complete only when every rank of the communicator has
  entered a collective; mismatched operation names deadlock (call
  ordering), mismatched root/op/datatype raise parameter-matching events.
* Deadlock = global quiescence with blocked ranks; timeout = step budget
  exhausted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Set, Tuple

from repro.ir.module import Module
from repro.mpi.api import (
    CallClass,
    DATATYPE_INFO,
    MPI_CONSTANTS,
    MPI_FUNCTIONS,
)
from repro.mpi.interp import DONE, STEP, ExternCall, InterpError, RankVM

ANY_SOURCE = MPI_CONSTANTS["MPI_ANY_SOURCE"]
ANY_TAG = MPI_CONSTANTS["MPI_ANY_TAG"]
PROC_NULL = MPI_CONSTANTS["MPI_PROC_NULL"]
COMM_WORLD = MPI_CONSTANTS["MPI_COMM_WORLD"]
COMM_SELF = MPI_CONSTANTS["MPI_COMM_SELF"]
COMM_NULL = MPI_CONSTANTS["MPI_COMM_NULL"]
REQUEST_NULL = MPI_CONSTANTS["MPI_REQUEST_NULL"]
TAG_UB = MPI_CONSTANTS["MPI_TAG_UB"]
SUCCESS = MPI_CONSTANTS["MPI_SUCCESS"]

_VALID_OPS = {MPI_CONSTANTS[n] for n in (
    "MPI_MAX", "MPI_MIN", "MPI_SUM", "MPI_PROD", "MPI_LAND", "MPI_BAND",
    "MPI_LOR", "MPI_BOR", "MPI_LXOR", "MPI_BXOR", "MPI_MAXLOC", "MPI_MINLOC",
)}


class RunOutcome(Enum):
    OK = "ok"
    DEADLOCK = "deadlock"
    TIMEOUT = "timeout"
    FAULT = "fault"          # interpreter-level crash (null deref, ...)
    ABORT = "abort"          # MPI_Abort


@dataclass
class CheckEvent:
    kind: str
    rank: int
    call: str
    detail: str = ""

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return f"[{self.kind}] rank {self.rank} in {self.call}: {self.detail}"


@dataclass
class SimReport:
    outcome: RunOutcome
    events: List[CheckEvent] = field(default_factory=list)
    steps: int = 0

    def has(self, kind: str) -> bool:
        return any(e.kind == kind for e in self.events)

    @property
    def kinds(self) -> Set[str]:
        return {e.kind for e in self.events}

    @property
    def clean(self) -> bool:
        return self.outcome is RunOutcome.OK and not self.events


# ---------------------------------------------------------------------------
# Runtime objects
# ---------------------------------------------------------------------------

@dataclass
class SendEntry:
    seq: int
    source: int                 # world rank
    dest: int                   # world rank
    tag: int
    comm: int
    dtype: int
    count: int
    payload: List[object]
    mode: str                   # 'eager' | 'rendezvous' | 'request'
    owner_rank: int = -1
    request: Optional["Request"] = None
    matched: bool = False


@dataclass
class Request:
    handle: int
    rank: int
    kind: str                   # 'send' | 'recv' | 'coll'
    persistent: bool = False
    active: bool = False
    complete: bool = False
    freed: bool = False
    buf: int = 0
    count: int = 0
    dtype: int = 0
    peer: int = 0
    tag: int = 0
    comm: int = COMM_WORLD
    entry: Optional[SendEntry] = None
    source_seen: int = ANY_SOURCE
    tag_seen: int = ANY_TAG


@dataclass
class Window:
    handle: int
    comm: int
    bases: Dict[int, int] = field(default_factory=dict)     # rank -> base addr
    sizes: Dict[int, int] = field(default_factory=dict)
    epoch: Dict[int, str] = field(default_factory=dict)     # rank -> mode
    fence_round: int = 0
    accesses: List[Tuple[int, int, int, int, str, int]] = field(default_factory=list)
    # (origin, target, lo, hi, kind, round)
    local_writes: List[Tuple[int, int, int]] = field(default_factory=list)
    # (rank, addr, round)
    freed: bool = False


@dataclass
class Collective:
    op: str
    comm: int
    root: int
    dtype: int
    count: int
    args: List[object]
    call_inst: object
    opname_args: Tuple


class _RankStatus(Enum):
    RUNNABLE = 0
    BLOCKED = 1
    DONE = 2
    FAULT = 3


@dataclass
class _Pending:
    kind: str                   # 'recv' | 'send' | 'wait' | 'coll' | 'probe'
    data: dict


class _Rank:
    def __init__(self, vm: RankVM, rank: int):
        self.vm = vm
        self.rank = rank
        self.status = _RankStatus.RUNNABLE
        self.pending: Optional[_Pending] = None
        self.pending_inst = None
        self.initialized = False
        self.finalized = False
        self.requests: Dict[int, Request] = {}
        self.leak_handles: Dict[str, int] = {"comm": 0, "type": 0, "group": 0,
                                             "win": 0, "buffer": 0, "op": 0}
        self.committed_types: Set[int] = set()


class MPISimulator:
    """Run a module under N virtual MPI processes."""

    def __init__(self, module: Module, nprocs: int = 2, *, seed: int = 0,
                 max_steps: int = 400_000, eager_limit: int = 64,
                 slice_length: int = 64):
        self.module = module
        self.nprocs = nprocs
        self.seed = seed
        self.max_steps = max_steps
        self.eager_limit = eager_limit
        self.slice_length = slice_length

        self.events: List[CheckEvent] = []
        self._event_keys: Set[Tuple] = set()
        self.mailbox: List[SendEntry] = []
        self.collectives: Dict[int, List[Optional[Collective]]] = {}
        self.windows: Dict[int, Window] = {}
        self.comms: Dict[int, List[int]] = {COMM_WORLD: list(range(nprocs))}
        self._next_handle = 2000
        self._seq = 0
        self._total_steps = 0
        self._aborted = False

        self.ranks: List[_Rank] = []
        for r in range(nprocs):
            ctx_holder: List[_Rank] = []

            def make_hooks(holder):
                def on_load(addr: int) -> None:
                    if holder:
                        self._check_buffer_access(holder[0], addr, write=False)

                def on_store(addr: int) -> None:
                    if holder:
                        self._check_buffer_access(holder[0], addr, write=True)
                return on_load, on_store

            on_load, on_store = make_hooks(ctx_holder)
            vm = RankVM(module, r, on_load=on_load, on_store=on_store,
                        libc_rand_seed=seed * 1299709 + 12345)
            ctx = _Rank(vm, r)
            ctx_holder.append(ctx)
            self.ranks.append(ctx)

    # ------------------------------------------------------------------ events
    def _event(self, kind: str, rank: int, call: str, detail: str = "") -> None:
        key = (kind, rank, call, detail)
        if key in self._event_keys:
            return
        self._event_keys.add(key)
        self.events.append(CheckEvent(kind, rank, call, detail))

    # ------------------------------------------------------------------ driver
    def run(self) -> SimReport:
        order = list(range(self.nprocs))
        rotate = self.seed % max(1, self.nprocs)
        order = order[rotate:] + order[:rotate]

        while True:
            progress = False
            for r in order:
                ctx = self.ranks[r]
                if ctx.status is not _RankStatus.RUNNABLE:
                    continue
                progress |= self._run_slice(ctx)
                if self._aborted:
                    return self._finish(RunOutcome.ABORT)
            if self._match_all():
                progress = True
            statuses = [c.status for c in self.ranks]
            if all(s in (_RankStatus.DONE, _RankStatus.FAULT) for s in statuses):
                outcome = (RunOutcome.FAULT
                           if any(s is _RankStatus.FAULT for s in statuses)
                           else RunOutcome.OK)
                return self._finish(outcome)
            if self._total_steps > self.max_steps:
                return self._finish(RunOutcome.TIMEOUT)
            if not progress:
                blocked = [c for c in self.ranks if c.status is _RankStatus.BLOCKED]
                for ctx in blocked:
                    call = ctx.pending.data.get("call", "?") if ctx.pending else "?"
                    self._event("deadlock", ctx.rank, call, "no global progress")
                return self._finish(RunOutcome.DEADLOCK)

    def _finish(self, outcome: RunOutcome) -> SimReport:
        for ctx in self.ranks:
            if ctx.status is _RankStatus.DONE and ctx.initialized and not ctx.finalized:
                self._event("call_ordering", ctx.rank, "main", "missing MPI_Finalize")
                self._leak_scan(ctx, at_finalize=False)
        if outcome is RunOutcome.OK:
            # A message still in flight after every rank completed was sent
            # but never received — the "lost message" diagnostic dynamic
            # tools raise at MPI_Finalize (an eager send completes locally,
            # so only this end-of-run scan can see the mismatch).
            for entry in self.mailbox:
                if not entry.matched:
                    self._event("call_ordering", entry.source, "MPI_Send",
                                f"message to rank {entry.dest} (tag {entry.tag})"
                                " never received")
        return SimReport(outcome, list(self.events), self._total_steps)

    def _run_slice(self, ctx: _Rank) -> bool:
        progressed = False
        for _ in range(self.slice_length):
            try:
                result = ctx.vm.step()
            except InterpError as exc:
                ctx.status = _RankStatus.FAULT
                self._event("crash", ctx.rank, "?", str(exc))
                return True
            self._total_steps += 1
            if result is STEP:
                progressed = True
                continue
            if result is DONE:
                ctx.status = _RankStatus.DONE
                return True
            assert isinstance(result, ExternCall)
            progressed = True
            self._handle_mpi(ctx, result)
            if ctx.status is not _RankStatus.RUNNABLE or self._aborted:
                return True
        return progressed

    # ------------------------------------------------------------------ helpers
    def _comm_members(self, ctx: _Rank, comm: int) -> Optional[List[int]]:
        if comm == COMM_SELF:
            return [ctx.rank]
        return self.comms.get(comm)

    def _fresh_handle(self) -> int:
        self._next_handle += 1
        return self._next_handle

    def _read_buffer(self, ctx: _Rank, addr: int, count: int) -> List[object]:
        return [ctx.vm.memory.cells.get(addr + i, 0) for i in range(max(0, count))]

    def _write_buffer(self, ctx: _Rank, addr: int, payload: List[object]) -> None:
        for i, value in enumerate(payload):
            ctx.vm.memory.cells[addr + i] = value

    def _write_status(self, ctx: _Rank, status_addr: int, source: int, tag: int) -> None:
        if status_addr:
            ctx.vm.memory.cells[status_addr] = source
            ctx.vm.memory.cells[status_addr + 1] = tag
            ctx.vm.memory.cells[status_addr + 2] = SUCCESS

    def _complete(self, ctx: _Rank, value: object = SUCCESS) -> None:
        assert ctx.pending_inst is not None
        ctx.vm.set_result(ctx.pending_inst, value)
        ctx.pending = None
        ctx.pending_inst = None
        ctx.status = _RankStatus.RUNNABLE

    def _block(self, ctx: _Rank, call: ExternCall, kind: str, **data) -> None:
        data["call"] = call.name
        ctx.pending = _Pending(kind, data)
        ctx.pending_inst = call.inst
        ctx.status = _RankStatus.BLOCKED

    # ------------------------------------------------------------------ arg checks
    def _check_common_args(self, ctx: _Rank, call: ExternCall) -> bool:
        """Validate roles; returns False if the call should be skipped."""
        info = MPI_FUNCTIONS[call.name]
        ok = True

        def role(name):
            idx = info.role(name)
            return call.args[idx] if idx is not None and idx < len(call.args) else None

        comm = role("comm")
        members = None
        if comm is not None:
            members = self._comm_members(ctx, int(comm))
            if members is None:
                self._event("invalid_arg", ctx.rank, call.name,
                            f"invalid communicator {comm}")
                ok = False
        count = role("count")
        if count is not None and isinstance(count, (int, float)) and int(count) < 0:
            self._event("invalid_arg", ctx.rank, call.name, f"negative count {count}")
            ok = False
        for dt_role in ("datatype", "recvtype"):
            dtype = role(dt_role)
            if dtype is not None and int(dtype) not in DATATYPE_INFO \
                    and int(dtype) not in ctx.committed_types:
                self._event("invalid_arg", ctx.rank, call.name,
                            f"invalid datatype {dtype}")
                ok = False
        tag = role("tag")
        if tag is not None:
            t = int(tag)
            is_recv = info.call_class in (CallClass.P2P_RECV, CallClass.NB_RECV,
                                          CallClass.P2P_PROBE)
            if t > TAG_UB or (t < 0 and not (is_recv and t == ANY_TAG)):
                self._event("invalid_arg", ctx.rank, call.name, f"invalid tag {t}")
                ok = False
        size = len(members) if members else self.nprocs
        for peer_role in ("dest", "source", "root"):
            peer = role(peer_role)
            if peer is None:
                continue
            p = int(peer)
            wild_ok = peer_role == "source" and p == ANY_SOURCE
            if p == PROC_NULL and peer_role != "root":
                continue
            if not wild_ok and (p < 0 or p >= size):
                self._event("invalid_arg", ctx.rank, call.name,
                            f"invalid {peer_role} rank {p}")
                ok = False
        op = role("op")
        if op is not None and int(op) not in _VALID_OPS:
            self._event("invalid_arg", ctx.rank, call.name, f"invalid op {op}")
            ok = False
        buf = role("buf")
        if buf is not None and int(buf) == 0 and count is not None and int(count or 0) > 0:
            self._event("invalid_arg", ctx.rank, call.name, "null buffer")
            ok = False
        return ok

    # ------------------------------------------------------------------ dispatch
    def _handle_mpi(self, ctx: _Rank, call: ExternCall) -> None:
        name = call.name
        info = MPI_FUNCTIONS.get(name)
        if info is None:
            # Unknown external: treat as no-op returning 0.
            ctx.vm.set_result(call.inst, 0)
            return
        ctx.pending_inst = call.inst  # for _complete()

        if name in ("MPI_Init", "MPI_Init_thread"):
            if ctx.initialized:
                self._event("call_ordering", ctx.rank, name, "double MPI_Init")
            ctx.initialized = True
            if name == "MPI_Init_thread" and len(call.args) >= 4 and call.args[3]:
                ctx.vm.memory.cells[int(call.args[3])] = int(call.args[2])
            self._complete(ctx)
            return
        if not ctx.initialized and name not in ("MPI_Initialized", "MPI_Finalized",
                                                "MPI_Wtime"):
            self._event("call_ordering", ctx.rank, name, "MPI call before MPI_Init")
        if ctx.finalized and name != "MPI_Finalized":
            self._event("call_ordering", ctx.rank, name, "MPI call after MPI_Finalize")

        if name == "MPI_Finalize":
            self._leak_scan(ctx, at_finalize=True)
            ctx.finalized = True
            self._complete(ctx)
            return
        if name == "MPI_Initialized":
            ctx.vm.memory.cells[int(call.args[0])] = int(ctx.initialized)
            self._complete(ctx)
            return
        if name == "MPI_Finalized":
            ctx.vm.memory.cells[int(call.args[0])] = int(ctx.finalized)
            self._complete(ctx)
            return
        if name == "MPI_Wtime":
            self._complete(ctx, self._total_steps * 1e-6)
            return
        if name == "MPI_Abort":
            self._event("abort", ctx.rank, name, f"code {call.args[1] if len(call.args) > 1 else 0}")
            self._aborted = True
            self._complete(ctx)
            return
        if name == "MPI_Comm_rank":
            comm = int(call.args[0])
            members = self._comm_members(ctx, comm)
            if members is None:
                self._event("invalid_arg", ctx.rank, name, f"invalid communicator {comm}")
                self._complete(ctx, MPI_CONSTANTS["MPI_ERR_COMM"])
                return
            ctx.vm.memory.cells[int(call.args[1])] = members.index(ctx.rank) \
                if ctx.rank in members else 0
            self._complete(ctx)
            return
        if name == "MPI_Comm_size":
            comm = int(call.args[0])
            members = self._comm_members(ctx, comm)
            if members is None:
                self._event("invalid_arg", ctx.rank, name, f"invalid communicator {comm}")
                self._complete(ctx, MPI_CONSTANTS["MPI_ERR_COMM"])
                return
            ctx.vm.memory.cells[int(call.args[1])] = len(members)
            self._complete(ctx)
            return
        if name == "MPI_Get_processor_name":
            addr = int(call.args[0])
            for i, ch in enumerate("simnode"):
                ctx.vm.memory.cells[addr + i] = ord(ch)
            ctx.vm.memory.cells[addr + 7] = 0
            if len(call.args) > 1 and call.args[1]:
                ctx.vm.memory.cells[int(call.args[1])] = 7
            self._complete(ctx)
            return
        if name == "MPI_Error_string":
            if len(call.args) > 2 and call.args[2]:
                ctx.vm.memory.cells[int(call.args[2])] = 0
            self._complete(ctx)
            return

        args_ok = self._check_common_args(ctx, call)
        handler = {
            CallClass.P2P_SEND: self._do_send,
            CallClass.P2P_RECV: self._do_recv,
            CallClass.P2P_PROBE: self._do_probe,
            CallClass.NB_SEND: self._do_isend,
            CallClass.NB_RECV: self._do_irecv,
            CallClass.PERSISTENT_INIT: self._do_persistent_init,
            CallClass.START: self._do_start,
            CallClass.COMPLETION: self._do_completion,
            CallClass.REQUEST_FREE: self._do_request_free,
            CallClass.COLLECTIVE: self._do_collective,
            CallClass.NB_COLLECTIVE: self._do_collective,
            CallClass.COMM_MGMT: self._do_comm_mgmt,
            CallClass.RMA_WIN: self._do_rma_win,
            CallClass.RMA_EPOCH: self._do_rma_epoch,
            CallClass.RMA_OP: self._do_rma_op,
            CallClass.DATATYPE: self._do_datatype,
            CallClass.OP_MGMT: self._do_op_mgmt,
            CallClass.BUFFER: self._do_buffer,
        }.get(info.call_class)
        if handler is None:
            self._complete(ctx)
            return
        if not args_ok:
            self._complete(ctx, MPI_CONSTANTS["MPI_ERR_ARG"])
            return
        handler(ctx, call)

    # ------------------------------------------------------------------ p2p
    def _send_fields(self, ctx: _Rank, call: ExternCall):
        info = MPI_FUNCTIONS[call.name]
        buf = int(call.args[info.roles["buf"]])
        count = int(call.args[info.roles["count"]])
        dtype = int(call.args[info.roles["datatype"]])
        peer = int(call.args[info.roles.get("dest", info.roles.get("source", 3))])
        tag = int(call.args[info.roles["tag"]])
        comm = int(call.args[info.roles["comm"]])
        return buf, count, dtype, peer, tag, comm

    def _world_rank(self, ctx: _Rank, comm: int, local: int) -> int:
        members = self._comm_members(ctx, comm)
        if members is None or local < 0 or local >= len(members):
            return local
        return members[local]

    def _post_send(self, ctx: _Rank, call: ExternCall, mode: str,
                   request: Optional[Request] = None) -> Optional[SendEntry]:
        buf, count, dtype, dest, tag, comm = self._send_fields(ctx, call)
        if dest == PROC_NULL:
            return None
        self._seq += 1
        entry = SendEntry(
            seq=self._seq, source=ctx.rank,
            dest=self._world_rank(ctx, comm, dest), tag=tag, comm=comm,
            dtype=dtype, count=count,
            payload=self._read_buffer(ctx, buf, count),
            mode=mode, owner_rank=ctx.rank, request=request,
        )
        self.mailbox.append(entry)
        return entry

    def _do_send(self, ctx: _Rank, call: ExternCall) -> None:
        if call.name == "MPI_Sendrecv":
            self._do_sendrecv(ctx, call)
            return
        buf, count, dtype, dest, tag, comm = self._send_fields(ctx, call)
        rendezvous = call.name in ("MPI_Ssend", "MPI_Rsend") or count > self.eager_limit
        if call.name == "MPI_Bsend":
            rendezvous = False
        entry = self._post_send(ctx, call, "rendezvous" if rendezvous else "eager")
        if entry is None or not rendezvous:
            self._complete(ctx)
            return
        self._block(ctx, call, "send", entry=entry)

    def _do_sendrecv(self, ctx: _Rank, call: ExternCall) -> None:
        info = MPI_FUNCTIONS[call.name]
        a = call.args
        dest = int(a[info.roles["dest"]])
        if dest != PROC_NULL:
            self._seq += 1
            comm = int(a[info.roles["comm"]])
            self.mailbox.append(SendEntry(
                seq=self._seq, source=ctx.rank,
                dest=self._world_rank(ctx, comm, dest),
                tag=int(a[info.roles["tag"]]), comm=comm,
                dtype=int(a[info.roles["datatype"]]),
                count=int(a[info.roles["count"]]),
                payload=self._read_buffer(ctx, int(a[info.roles["buf"]]),
                                          int(a[info.roles["count"]])),
                mode="eager", owner_rank=ctx.rank,
            ))
        source = int(a[info.roles["source"]])
        if source == PROC_NULL:
            self._complete(ctx)
            return
        self._block(ctx, call, "recv",
                    buf=int(a[info.roles["recvbuf"]]),
                    count=int(a[info.roles["recvcount"]]),
                    dtype=int(a[info.roles["recvtype"]]),
                    source=source, tag=int(a[info.roles["recvtag"]]),
                    comm=int(a[info.roles["comm"]]),
                    status=int(a[info.roles["status"]]))

    def _do_recv(self, ctx: _Rank, call: ExternCall) -> None:
        info = MPI_FUNCTIONS[call.name]
        buf, count, dtype, source, tag, comm = self._send_fields(ctx, call)
        status = int(call.args[info.roles["status"]])
        if source == PROC_NULL:
            self._write_status(ctx, status, PROC_NULL, ANY_TAG)
            self._complete(ctx)
            return
        self._block(ctx, call, "recv", buf=buf, count=count, dtype=dtype,
                    source=source, tag=tag, comm=comm, status=status)

    def _do_probe(self, ctx: _Rank, call: ExternCall) -> None:
        info = MPI_FUNCTIONS[call.name]
        source = int(call.args[info.roles["source"]])
        tag = int(call.args[info.roles["tag"]])
        comm = int(call.args[info.roles["comm"]])
        entry = self._find_message(ctx.rank, source, tag, comm, ctx)
        if call.name == "MPI_Iprobe":
            flag_addr = int(call.args[3])
            ctx.vm.memory.cells[flag_addr] = int(entry is not None)
            if entry is not None:
                self._write_status(ctx, int(call.args[4]), entry.source, entry.tag)
            self._complete(ctx)
            return
        if entry is not None:
            self._write_status(ctx, int(call.args[3]), entry.source, entry.tag)
            self._complete(ctx)
            return
        self._block(ctx, call, "probe", source=source, tag=tag, comm=comm,
                    status=int(call.args[3]))

    def _new_request(self, ctx: _Rank, call: ExternCall, kind: str,
                     persistent: bool) -> Request:
        info = MPI_FUNCTIONS[call.name]
        buf, count, dtype, peer, tag, comm = self._send_fields(ctx, call)
        handle = self._fresh_handle()
        req = Request(handle=handle, rank=ctx.rank, kind=kind,
                      persistent=persistent, buf=buf, count=count, dtype=dtype,
                      peer=peer, tag=tag, comm=comm)
        ctx.requests[handle] = req
        req_addr = int(call.args[info.roles["request"]])
        if req_addr:
            ctx.vm.memory.cells[req_addr] = handle
        return req

    def _do_isend(self, ctx: _Rank, call: ExternCall) -> None:
        req = self._new_request(ctx, call, "send", persistent=False)
        req.active = True
        if req.peer == PROC_NULL:
            req.complete = True
        else:
            entry = self._post_send(ctx, call, "request", request=req)
            req.entry = entry
            # Eager completion for small messages (buffer copied already).
            if req.count <= self.eager_limit:
                req.complete = True
        self._complete(ctx)

    def _do_irecv(self, ctx: _Rank, call: ExternCall) -> None:
        req = self._new_request(ctx, call, "recv", persistent=False)
        req.active = True
        if req.peer == PROC_NULL:
            req.complete = True
        self._complete(ctx)

    def _do_persistent_init(self, ctx: _Rank, call: ExternCall) -> None:
        kind = "recv" if call.name == "MPI_Recv_init" else "send"
        req = self._new_request(ctx, call, kind, persistent=True)
        req.active = False
        self._complete(ctx)

    def _do_start(self, ctx: _Rank, call: ExternCall) -> None:
        handles: List[int] = []
        if call.name == "MPI_Start":
            handles.append(int(ctx.vm.memory.cells.get(int(call.args[0]), 0)))
        else:
            n = int(call.args[0])
            base = int(call.args[1])
            handles.extend(int(ctx.vm.memory.cells.get(base + i, 0)) for i in range(n))
        for handle in handles:
            req = ctx.requests.get(handle)
            if req is None or req.freed:
                self._event("request_lifecycle", ctx.rank, call.name,
                            "MPI_Start on invalid request")
                continue
            if not req.persistent:
                self._event("request_lifecycle", ctx.rank, call.name,
                            "MPI_Start on non-persistent request")
                continue
            if req.active and not req.complete:
                self._event("request_lifecycle", ctx.rank, call.name,
                            "MPI_Start on active request")
                continue
            req.active = True
            req.complete = False
            if req.peer == PROC_NULL:
                req.complete = True
            elif req.kind == "send":
                self._seq += 1
                entry = SendEntry(
                    seq=self._seq, source=ctx.rank,
                    dest=self._world_rank(ctx, req.comm, req.peer),
                    tag=req.tag, comm=req.comm, dtype=req.dtype, count=req.count,
                    payload=self._read_buffer(ctx, req.buf, req.count),
                    mode="request", owner_rank=ctx.rank, request=req,
                )
                self.mailbox.append(entry)
                req.entry = entry
                if req.count <= self.eager_limit:
                    req.complete = True
        self._complete(ctx)

    def _do_completion(self, ctx: _Rank, call: ExternCall) -> None:
        name = call.name
        if name in ("MPI_Wait", "MPI_Test"):
            req_addr = int(call.args[0])
            status = int(call.args[1]) if name == "MPI_Wait" else int(call.args[2])
            handles = [(req_addr, int(ctx.vm.memory.cells.get(req_addr, 0)))]
            flag_addr = int(call.args[1]) if name == "MPI_Test" else 0
        else:  # Waitall / Waitany / Testall
            n = int(call.args[0])
            base = int(call.args[1])
            handles = [(base + i, int(ctx.vm.memory.cells.get(base + i, 0)))
                       for i in range(n)]
            status = int(call.args[-1])
            flag_addr = int(call.args[2]) if name == "MPI_Testall" else 0

        valid: List[Tuple[int, Request]] = []
        for addr, handle in handles:
            if handle == REQUEST_NULL or handle == 0:
                self._event("request_lifecycle", ctx.rank, name,
                            "wait on null/inactive request")
                continue
            req = ctx.requests.get(handle)
            if req is None or req.freed:
                self._event("request_lifecycle", ctx.rank, name,
                            "wait on freed/invalid request")
                continue
            if req.persistent and not req.active:
                continue  # MPI: returns immediately with empty status
            valid.append((addr, req))

        if name in ("MPI_Test", "MPI_Testall"):
            self._try_complete_requests(ctx, [r for _, r in valid])
            done = all(r.complete for _, r in valid)
            if flag_addr:
                ctx.vm.memory.cells[flag_addr] = int(done)
            if done:
                self._retire_requests(ctx, valid, status)
            self._complete(ctx)
            return

        self._block(ctx, call, "wait", reqs=valid, status=status,
                    any_mode=(name == "MPI_Waitany"),
                    index_addr=int(call.args[2]) if name == "MPI_Waitany" else 0)

    def _retire_requests(self, ctx: _Rank, pairs: List[Tuple[int, Request]],
                         status_addr: int) -> None:
        for addr, req in pairs:
            if req.kind == "recv":
                self._write_status(ctx, status_addr, req.source_seen, req.tag_seen)
            if req.persistent:
                req.active = False
                req.complete = False
            else:
                req.freed = True
                if addr:
                    ctx.vm.memory.cells[addr] = REQUEST_NULL

    def _do_request_free(self, ctx: _Rank, call: ExternCall) -> None:
        req_addr = int(call.args[0])
        handle = int(ctx.vm.memory.cells.get(req_addr, 0))
        req = ctx.requests.get(handle)
        if req is None or req.freed:
            self._event("request_lifecycle", ctx.rank, call.name,
                        "free of invalid request")
            self._complete(ctx)
            return
        if call.name == "MPI_Cancel":
            # Cancellation marks the request complete-as-cancelled; the
            # handle stays valid and a later Wait/Test retires it (MPI-3
            # §3.8.4).  A buffered (locally complete) send is still
            # cancellable until it is matched; a matched transfer cannot
            # be withdrawn and Wait completes it normally.
            req.complete = True
            if req.entry is not None and not req.entry.matched:
                req.entry.matched = True          # withdraw from matching
            self._complete(ctx)
            return
        if call.name == "MPI_Request_free" and req.active and not req.complete:
            self._event("request_lifecycle", ctx.rank, call.name,
                        "free of active request")
        req.freed = True
        ctx.vm.memory.cells[req_addr] = REQUEST_NULL
        self._complete(ctx)

    # ------------------------------------------------------------------ collectives
    def _do_collective(self, ctx: _Rank, call: ExternCall) -> None:
        info = MPI_FUNCTIONS[call.name]
        comm = int(call.args[info.roles["comm"]])
        members = self._comm_members(ctx, comm)
        if members is None:
            self._complete(ctx, MPI_CONSTANTS["MPI_ERR_COMM"])
            return
        if len(members) == 1:
            # Single-member communicator: completes immediately.
            self._single_rank_collective(ctx, call)
            return
        root = call.args[info.roles["root"]] if "root" in info.roles else -1
        dtype = call.args[info.roles["datatype"]] if "datatype" in info.roles else 0
        count = call.args[info.roles["count"]] if "count" in info.roles else 0
        coll = Collective(
            op=call.name, comm=comm, root=int(root or 0), dtype=int(dtype or 0),
            count=int(count or 0), args=list(call.args), call_inst=call.inst,
            opname_args=(call.name,),
        )
        self._block(ctx, call, "coll", coll=coll, comm=comm)

    def _single_rank_collective(self, ctx: _Rank, call: ExternCall) -> None:
        info = MPI_FUNCTIONS[call.name]
        roles = info.roles
        if "recvbuf" in roles and "buf" in roles and "count" in roles:
            buf = int(call.args[roles["buf"]])
            recvbuf = int(call.args[roles["recvbuf"]])
            count = int(call.args[roles["count"]])
            if buf and recvbuf:
                self._write_buffer(ctx, recvbuf, self._read_buffer(ctx, buf, count))
        if info.call_class is CallClass.NB_COLLECTIVE and "request" in roles:
            req = Request(handle=self._fresh_handle(), rank=ctx.rank, kind="coll",
                          active=True, complete=True)
            ctx.requests[req.handle] = req
            addr = int(call.args[roles["request"]])
            if addr:
                ctx.vm.memory.cells[addr] = req.handle
        self._complete(ctx)

    # ------------------------------------------------------------------ comm mgmt
    def _do_comm_mgmt(self, ctx: _Rank, call: ExternCall) -> None:
        name = call.name
        if name == "MPI_Comm_split":
            # Treated as collective-free handle creation: all ranks calling
            # with any color share a communicator keyed by the color value.
            color = int(call.args[1])
            key = ("split", int(call.args[0]), color)
            handle = self._comm_cache.setdefault(key, self._fresh_handle()) \
                if hasattr(self, "_comm_cache") else None
            if handle is None:
                self._comm_cache: Dict[Tuple, int] = {}
                handle = self._comm_cache.setdefault(key, self._fresh_handle())
            self.comms.setdefault(handle, []).append(ctx.rank)
            self.comms[handle].sort()
            ctx.vm.memory.cells[int(call.args[3])] = handle
            ctx.leak_handles["comm"] += 1
            self._complete(ctx)
            return
        if name == "MPI_Comm_dup":
            parent = self._comm_members(ctx, int(call.args[0])) or [ctx.rank]
            key = ("dup", int(call.args[0]))
            if not hasattr(self, "_comm_cache"):
                self._comm_cache = {}
            handle = self._comm_cache.setdefault(key, self._fresh_handle())
            self.comms[handle] = list(parent)
            ctx.vm.memory.cells[int(call.args[1])] = handle
            ctx.leak_handles["comm"] += 1
            self._complete(ctx)
            return
        if name == "MPI_Comm_free":
            addr = int(call.args[0])
            ctx.vm.memory.cells[addr] = COMM_NULL
            ctx.leak_handles["comm"] = max(0, ctx.leak_handles["comm"] - 1)
            self._complete(ctx)
            return
        if name == "MPI_Comm_group":
            ctx.vm.memory.cells[int(call.args[1])] = self._fresh_handle()
            ctx.leak_handles["group"] += 1
            self._complete(ctx)
            return
        if name == "MPI_Group_free":
            ctx.vm.memory.cells[int(call.args[0])] = MPI_CONSTANTS["MPI_GROUP_NULL"]
            ctx.leak_handles["group"] = max(0, ctx.leak_handles["group"] - 1)
            self._complete(ctx)
            return
        if name == "MPI_Group_incl":
            ctx.vm.memory.cells[int(call.args[3])] = self._fresh_handle()
            ctx.leak_handles["group"] += 1
            self._complete(ctx)
            return
        self._complete(ctx)

    # ------------------------------------------------------------------ RMA
    def _do_rma_win(self, ctx: _Rank, call: ExternCall) -> None:
        name = call.name
        if name in ("MPI_Win_create", "MPI_Win_allocate"):
            if not hasattr(self, "_win_cache"):
                self._win_cache: Dict[Tuple, int] = {}
            key = ("win", ctx.leak_handles["win"])
            handle = self._win_cache.setdefault(key, self._fresh_handle())
            win = self.windows.setdefault(handle, Window(handle=handle, comm=COMM_WORLD))
            if name == "MPI_Win_create":
                base, size = int(call.args[0]), int(call.args[1])
                win_addr = int(call.args[5])
            else:
                size = int(call.args[0])
                base = ctx.vm.memory.allocate(max(1, size))
                base_ptr_addr = int(call.args[4])
                if base_ptr_addr:
                    ctx.vm.memory.cells[base_ptr_addr] = base
                win_addr = int(call.args[5])
            win.bases[ctx.rank] = base
            win.sizes[ctx.rank] = size
            win.epoch[ctx.rank] = "none"
            if win_addr:
                ctx.vm.memory.cells[win_addr] = handle
            ctx.leak_handles["win"] += 1
            self._complete(ctx)
            return
        if name == "MPI_Win_free":
            addr = int(call.args[0])
            handle = int(ctx.vm.memory.cells.get(addr, 0))
            win = self.windows.get(handle)
            if win is not None:
                # Freeing after a fence is the canonical correct pattern (a
                # fence both closes and may open an epoch); only lock/PSCW
                # epochs left open are lifecycle errors.
                if win.epoch.get(ctx.rank, "none") in ("lock", "pscw"):
                    self._event("epoch_lifecycle", ctx.rank, name,
                                "MPI_Win_free with open epoch")
                win.freed = True
            ctx.vm.memory.cells[addr] = MPI_CONSTANTS["MPI_WIN_NULL"]
            ctx.leak_handles["win"] = max(0, ctx.leak_handles["win"] - 1)
            self._complete(ctx)
            return
        self._complete(ctx)

    def _do_rma_epoch(self, ctx: _Rank, call: ExternCall) -> None:
        name = call.name
        info = MPI_FUNCTIONS[name]
        win_idx = info.roles.get("win")
        handle = int(call.args[win_idx]) if win_idx is not None else 0
        win = self.windows.get(handle)
        if win is None:
            self._event("invalid_arg", ctx.rank, name, f"invalid window {handle}")
            self._complete(ctx, MPI_CONSTANTS["MPI_ERR_ARG"])
            return
        mode = win.epoch.get(ctx.rank, "none")
        if name == "MPI_Win_fence":
            # Fence acts as a collective sync over the window's comm.
            self._block(ctx, call, "coll",
                        coll=Collective(op="MPI_Win_fence:" + str(handle),
                                        comm=win.comm, root=-1, dtype=0, count=0,
                                        args=list(call.args), call_inst=call.inst,
                                        opname_args=("MPI_Win_fence", handle)),
                        comm=win.comm, win=win)
            return
        if name in ("MPI_Win_lock", "MPI_Win_lock_all"):
            if mode != "none":
                self._event("epoch_lifecycle", ctx.rank, name, "nested lock epoch")
            win.epoch[ctx.rank] = "lock"
            self._complete(ctx)
            return
        if name in ("MPI_Win_unlock", "MPI_Win_unlock_all"):
            if mode != "lock":
                self._event("epoch_lifecycle", ctx.rank, name,
                            "unlock without matching lock")
            win.epoch[ctx.rank] = "none"
            self._check_rma_conflicts(win)
            self._complete(ctx)
            return
        if name in ("MPI_Win_post", "MPI_Win_start"):
            win.epoch[ctx.rank] = "pscw"
            self._complete(ctx)
            return
        if name in ("MPI_Win_complete", "MPI_Win_wait"):
            if mode != "pscw":
                self._event("epoch_lifecycle", ctx.rank, name,
                            "complete/wait without post/start")
            win.epoch[ctx.rank] = "none"
            self._check_rma_conflicts(win)
            self._complete(ctx)
            return
        self._complete(ctx)

    def _do_rma_op(self, ctx: _Rank, call: ExternCall) -> None:
        name = call.name
        info = MPI_FUNCTIONS[name]
        handle = int(call.args[info.roles["win"]])
        win = self.windows.get(handle)
        if win is None:
            self._event("invalid_arg", ctx.rank, name, f"invalid window {handle}")
            self._complete(ctx, MPI_CONSTANTS["MPI_ERR_ARG"])
            return
        if win.epoch.get(ctx.rank, "none") == "none":
            self._event("epoch_lifecycle", ctx.rank, name,
                        "RMA operation outside access epoch")
        target = int(call.args[info.roles.get("dest", info.roles.get("source", 3))])
        disp = int(call.args[4])
        count = int(call.args[info.roles["count"]])
        kind = "get" if name == "MPI_Get" else "put"
        win.accesses.append((ctx.rank, target, disp, disp + max(1, count),
                             kind, win.fence_round))
        # Apply the data movement immediately (single happens-now semantics).
        buf = int(call.args[info.roles["buf"]])
        if target in win.bases and 0 <= target < self.nprocs:
            target_ctx = self.ranks[target]
            base = win.bases[target]
            if kind == "put":
                payload = self._read_buffer(ctx, buf, count)
                for i, value in enumerate(payload):
                    target_ctx.vm.memory.cells[base + disp + i] = value
            else:
                payload = [target_ctx.vm.memory.cells.get(base + disp + i, 0)
                           for i in range(count)]
                self._write_buffer(ctx, buf, payload)
        self._complete(ctx)

    def _check_rma_conflicts(self, win: Window) -> None:
        current = [a for a in win.accesses if a[5] == win.fence_round]
        for i in range(len(current)):
            for j in range(i + 1, len(current)):
                o1, t1, lo1, hi1, k1, _ = current[i]
                o2, t2, lo2, hi2, k2, _ = current[j]
                if o1 == o2 or t1 != t2:
                    continue
                if lo1 < hi2 and lo2 < hi1 and ("put" in (k1, k2)):
                    self._event("global_concurrency", o1, "MPI_Put/MPI_Get",
                                f"conflicting RMA access to rank {t1} window")
        # Local stores into an exposed region concurrent with remote accesses.
        for rank, addr, rnd in win.local_writes:
            if rnd != win.fence_round:
                continue
            base = win.bases.get(rank)
            if base is None:
                continue
            off = addr - base
            for o, t, lo, hi, k, r in current:
                if r == rnd and t == rank and o != rank and lo <= off < hi:
                    self._event("global_concurrency", rank, "local store",
                                "local access to exposed window during epoch")

    # ------------------------------------------------------------------ datatype / op / buffer
    def _do_datatype(self, ctx: _Rank, call: ExternCall) -> None:
        name = call.name
        if name in ("MPI_Type_contiguous", "MPI_Type_vector"):
            handle = self._fresh_handle()
            ctx.vm.memory.cells[int(call.args[-1])] = handle
            ctx.leak_handles["type"] += 1
            self._complete(ctx)
            return
        if name == "MPI_Type_commit":
            handle = int(ctx.vm.memory.cells.get(int(call.args[0]), 0))
            ctx.committed_types.add(handle)
            self._complete(ctx)
            return
        if name == "MPI_Type_free":
            addr = int(call.args[0])
            ctx.committed_types.discard(int(ctx.vm.memory.cells.get(addr, 0)))
            ctx.vm.memory.cells[addr] = MPI_CONSTANTS["MPI_DATATYPE_NULL"]
            ctx.leak_handles["type"] = max(0, ctx.leak_handles["type"] - 1)
            self._complete(ctx)
            return
        self._complete(ctx)

    def _do_op_mgmt(self, ctx: _Rank, call: ExternCall) -> None:
        if call.name == "MPI_Op_create":
            handle = self._fresh_handle()
            _VALID_OPS.add(handle)
            ctx.vm.memory.cells[int(call.args[2])] = handle
            ctx.leak_handles["op"] += 1
        else:
            addr = int(call.args[0])
            ctx.vm.memory.cells[addr] = MPI_CONSTANTS["MPI_OP_NULL"]
            ctx.leak_handles["op"] = max(0, ctx.leak_handles["op"] - 1)
        self._complete(ctx)

    def _do_buffer(self, ctx: _Rank, call: ExternCall) -> None:
        if call.name == "MPI_Buffer_attach":
            ctx.leak_handles["buffer"] += 1
        else:
            ctx.leak_handles["buffer"] = max(0, ctx.leak_handles["buffer"] - 1)
        self._complete(ctx)

    # ------------------------------------------------------------------ matching
    def _find_message(self, dest: int, source: int, tag: int, comm: int,
                      ctx: _Rank) -> Optional[SendEntry]:
        world_source = None
        if source not in (ANY_SOURCE, PROC_NULL):
            world_source = self._world_rank(ctx, comm, source)
        for entry in sorted(self.mailbox, key=lambda e: e.seq):
            if entry.matched or entry.dest != dest or entry.comm != comm:
                continue
            if world_source is not None and entry.source != world_source:
                continue
            if tag != ANY_TAG and entry.tag != tag:
                continue
            return entry
        return None

    def _candidate_count(self, dest: int, tag: int, comm: int) -> int:
        sources = {e.source for e in self.mailbox
                   if not e.matched and e.dest == dest and e.comm == comm
                   and (tag == ANY_TAG or e.tag == tag)}
        return len(sources)

    def _deliver(self, ctx: _Rank, entry: SendEntry, buf: int, count: int,
                 dtype: int, call_name: str) -> None:
        entry.matched = True
        send_kind = DATATYPE_INFO.get(entry.dtype, ("derived", 0))[0]
        recv_kind = DATATYPE_INFO.get(dtype, ("derived", 0))[0]
        if send_kind != recv_kind or (
            send_kind == recv_kind == "derived" and entry.dtype != dtype
        ) or (send_kind != "derived"
              and DATATYPE_INFO.get(entry.dtype, (0, 0))[1]
              != DATATYPE_INFO.get(dtype, (0, 0))[1]):
            self._event("type_mismatch", ctx.rank, call_name,
                        f"send type {entry.dtype} vs recv type {dtype}")
        if count < entry.count:
            self._event("truncation", ctx.rank, call_name,
                        f"recv count {count} < send count {entry.count}")
        self._write_buffer(ctx, buf, entry.payload[:min(count, entry.count)])
        # Unblock / complete the sender side.
        if entry.mode == "rendezvous":
            sender = self.ranks[entry.owner_rank]
            if sender.status is _RankStatus.BLOCKED and sender.pending \
                    and sender.pending.kind == "send" \
                    and sender.pending.data.get("entry") is entry:
                self._complete(sender)
        elif entry.mode == "request" and entry.request is not None:
            entry.request.complete = True

    def _try_complete_requests(self, ctx: _Rank, reqs: List[Request]) -> None:
        for req in reqs:
            if req.complete or not req.active:
                continue
            if req.kind == "recv":
                entry = self._find_message(ctx.rank, req.peer, req.tag, req.comm, ctx)
                if entry is not None:
                    if req.peer == ANY_SOURCE and \
                            self._candidate_count(ctx.rank, req.tag, req.comm) > 1:
                        self._event("message_race", ctx.rank, "MPI_Irecv",
                                    "multiple racing senders for wildcard receive")
                    self._deliver(ctx, entry, req.buf, req.count, req.dtype, "MPI_Irecv")
                    req.source_seen = entry.source
                    req.tag_seen = entry.tag
                    req.complete = True

    def _match_all(self) -> bool:
        progress = False
        # Point-to-point receives and probes.
        for ctx in self.ranks:
            if ctx.status is not _RankStatus.BLOCKED or ctx.pending is None:
                continue
            pending = ctx.pending
            if pending.kind == "recv":
                d = pending.data
                entry = self._find_message(ctx.rank, d["source"], d["tag"],
                                           d["comm"], ctx)
                if entry is None:
                    continue
                if d["source"] == ANY_SOURCE and \
                        self._candidate_count(ctx.rank, d["tag"], d["comm"]) > 1:
                    self._event("message_race", ctx.rank, d["call"],
                                "multiple racing senders for wildcard receive")
                self._deliver(ctx, entry, d["buf"], d["count"], d["dtype"], d["call"])
                self._write_status(ctx, d["status"], entry.source, entry.tag)
                self._complete(ctx)
                progress = True
            elif pending.kind == "probe":
                d = pending.data
                entry = self._find_message(ctx.rank, d["source"], d["tag"],
                                           d["comm"], ctx)
                if entry is not None:
                    self._write_status(ctx, d["status"], entry.source, entry.tag)
                    self._complete(ctx)
                    progress = True
            elif pending.kind == "wait":
                d = pending.data
                self._try_complete_requests(ctx, [r for _, r in d["reqs"]])
                reqs = d["reqs"]
                if d.get("any_mode"):
                    done = [i for i, (_, r) in enumerate(reqs) if r.complete]
                    if done or not reqs:
                        if done and d.get("index_addr"):
                            ctx.vm.memory.cells[d["index_addr"]] = done[0]
                        chosen = [reqs[done[0]]] if done else []
                        self._retire_requests(ctx, chosen, d["status"])
                        self._complete(ctx)
                        progress = True
                elif all(r.complete for _, r in reqs):
                    self._retire_requests(ctx, reqs, d["status"])
                    self._complete(ctx)
                    progress = True

        # Collectives: gather blocked participants per communicator.
        arrivals: Dict[int, Dict[int, _Rank]] = {}
        for ctx in self.ranks:
            if ctx.status is _RankStatus.BLOCKED and ctx.pending \
                    and ctx.pending.kind == "coll":
                comm = ctx.pending.data["comm"]
                arrivals.setdefault(comm, {})[ctx.rank] = ctx
        for comm, waiting in arrivals.items():
            members = self.comms.get(comm)
            if members is None:
                members = sorted(waiting)
            if not all(m in waiting for m in members):
                continue
            ctxs = [waiting[m] for m in members]
            colls = [c.pending.data["coll"] for c in ctxs]
            names = {c.opname_args for c in colls}
            if len(names) > 1:
                for c in ctxs:
                    self._event("call_ordering", c.rank, colls[0].op,
                                "mismatched collective operations: "
                                + " vs ".join(sorted(str(n[0]) for n in names)))
                # Mismatched collectives deadlock: leave everyone blocked.
                continue
            self._run_collective(comm, members, ctxs, colls)
            progress = True
        return progress

    def _run_collective(self, comm: int, members: List[int], ctxs: List[_Rank],
                        colls: List[Collective]) -> None:
        first = colls[0]
        name = first.op
        if name.startswith("MPI_Win_fence"):
            handle = first.opname_args[1]
            win = self.windows.get(handle)
            if win is not None:
                self._check_rma_conflicts(win)
                win.fence_round += 1
                for ctx in ctxs:
                    win.epoch[ctx.rank] = "fence"
            for ctx in ctxs:
                self._complete(ctx)
            return

        info = MPI_FUNCTIONS.get(name)
        roots = {c.root for c in colls if info and "root" in info.roles}
        if len(roots) > 1:
            for ctx in ctxs:
                self._event("parameter_matching", ctx.rank, name,
                            f"mismatched root arguments {sorted(roots)}")
        dtypes = {c.dtype for c in colls if info and "datatype" in info.roles}
        if len(dtypes) > 1:
            kinds = {DATATYPE_INFO.get(d, ("derived", 0))[0] for d in dtypes}
            sizes = {DATATYPE_INFO.get(d, ("derived", 0))[1] for d in dtypes}
            if len(kinds) > 1 or len(sizes) > 1:
                for ctx in ctxs:
                    self._event("parameter_matching", ctx.rank, name,
                                f"mismatched datatypes {sorted(dtypes)}")
        if info and "op" in info.roles:
            ops = {int(c.args[info.roles["op"]]) for c in colls}
            if len(ops) > 1:
                for ctx in ctxs:
                    self._event("parameter_matching", ctx.rank, name,
                                f"mismatched reduce ops {sorted(ops)}")
        counts = {c.count for c in colls if info and "count" in info.roles}
        if len(counts) > 1:
            for ctx in ctxs:
                self._event("parameter_matching", ctx.rank, name,
                            f"mismatched counts {sorted(counts)}")

        self._apply_collective_data(name, members, ctxs, colls)
        for ctx, coll in zip(ctxs, colls):
            if info and info.call_class is CallClass.NB_COLLECTIVE \
                    and "request" in info.roles:
                req = Request(handle=self._fresh_handle(), rank=ctx.rank,
                              kind="coll", active=True, complete=True)
                ctx.requests[req.handle] = req
                addr = int(coll.args[info.roles["request"]])
                if addr:
                    ctx.vm.memory.cells[addr] = req.handle
            self._complete(ctx)

    def _apply_collective_data(self, name: str, members: List[int],
                               ctxs: List[_Rank], colls: List[Collective]) -> None:
        info = MPI_FUNCTIONS.get(name)
        if info is None:
            return
        roles = info.roles
        by_rank = {ctx.rank: (ctx, coll) for ctx, coll in zip(ctxs, colls)}
        base = name.replace("MPI_I", "MPI_")
        if base in ("MPI_Bcast", "MPI_Ibcast") or name in ("MPI_Bcast", "MPI_Ibcast"):
            root_world = members[colls[0].root] if 0 <= colls[0].root < len(members) \
                else members[0]
            if root_world in by_rank:
                rctx, rcoll = by_rank[root_world]
                payload = self._read_buffer(rctx, int(rcoll.args[roles["buf"]]),
                                            rcoll.count)
                for ctx, coll in zip(ctxs, colls):
                    if ctx.rank != root_world:
                        self._write_buffer(ctx, int(coll.args[roles["buf"]]), payload)
            return
        if base in ("MPI_Scatter", "MPI_Scatterv"):
            # Scatter distributes slices of the *root's* send buffer: every
            # rank receives exactly ``count`` elements.  (Found by the fuzz
            # harness: the generic gather-like path below used to write the
            # whole nprocs*count concatenation into the root's count-sized
            # receive buffer, overflowing into adjacent locals.)
            root_world = members[colls[0].root] \
                if 0 <= colls[0].root < len(members) else members[0]
            if root_world in by_rank and "recvbuf" in roles:
                rctx, rcoll = by_rank[root_world]
                payload = self._read_buffer(
                    rctx, int(rcoll.args[roles["buf"]]),
                    rcoll.count * len(members))
                for slot, member in enumerate(members):
                    if member not in by_rank:
                        continue
                    ctx, coll = by_rank[member]
                    slice_ = payload[slot * coll.count:
                                     (slot + 1) * coll.count]
                    self._write_buffer(ctx, int(coll.args[roles["recvbuf"]]),
                                       slice_)
            return
        if "recvbuf" in roles and "buf" in roles:
            reduce_like = "op" in roles
            gathers = [self._read_buffer(ctx, int(coll.args[roles["buf"]]), coll.count)
                       for ctx, coll in zip(ctxs, colls)]
            if reduce_like:
                length = max((len(g) for g in gathers), default=0)
                acc = [0] * length
                for g in gathers:
                    for i, v in enumerate(g):
                        try:
                            acc[i] += v
                        except TypeError:
                            acc[i] = v
                targets = ctxs
                if "root" in roles:
                    root_world = members[colls[0].root] \
                        if 0 <= colls[0].root < len(members) else members[0]
                    targets = [c for c in ctxs if c.rank == root_world]
                for ctx in targets:
                    coll = by_rank[ctx.rank][1]
                    self._write_buffer(ctx, int(coll.args[roles["recvbuf"]]), acc)
            else:
                flat: List[object] = []
                for g in gathers:
                    flat.extend(g)
                targets = ctxs
                if "root" in roles:
                    root_world = members[colls[0].root] \
                        if 0 <= colls[0].root < len(members) else members[0]
                    targets = [c for c in ctxs if c.rank == root_world]
                for ctx in targets:
                    coll = by_rank[ctx.rank][1]
                    self._write_buffer(ctx, int(coll.args[roles["recvbuf"]]), flat)

    # ------------------------------------------------------------------ checks
    def _check_buffer_access(self, ctx: _Rank, addr: int, write: bool) -> None:
        for req in ctx.requests.values():
            if not req.active or req.complete or req.freed:
                continue
            if req.buf <= addr < req.buf + max(1, req.count):
                if req.kind == "recv" or write:
                    self._event("local_concurrency", ctx.rank,
                                "load/store",
                                "access to buffer of pending nonblocking operation")
        # Window exposure tracking for RMA epochs.
        if write:
            for win in self.windows.values():
                base = win.bases.get(ctx.rank)
                if base is None or win.freed:
                    continue
                size = win.sizes.get(ctx.rank, 0)
                if base <= addr < base + max(1, size) \
                        and win.epoch.get(ctx.rank, "none") != "none":
                    win.local_writes.append((ctx.rank, addr, win.fence_round))

    def _leak_scan(self, ctx: _Rank, at_finalize: bool) -> None:
        for req in ctx.requests.values():
            if req.freed:
                continue
            if req.active:
                # Posted but never retired by Wait/Test — even if the data
                # transfer finished eagerly, the request was never completed.
                self._event("request_lifecycle", ctx.rank, "MPI_Finalize",
                            "request never completed (missing wait)")
            else:
                self._event("resource_leak", ctx.rank, "MPI_Finalize",
                            "request handle never freed")
        for kind, count in ctx.leak_handles.items():
            if count > 0:
                self._event("resource_leak", ctx.rank, "MPI_Finalize",
                            f"{count} {kind} handle(s) never freed")


def simulate(module: Module, nprocs: int = 2, **kwargs) -> SimReport:
    """Convenience wrapper: run one simulation and return its report."""
    return MPISimulator(module, nprocs, **kwargs).run()
