"""Model of the MPI C API.

Every function the benchmark generators emit is declared here with:

* its C signature (parameter type strings, parsed by the frontend's sema),
* a :class:`CallClass` describing its verification-relevant semantics,
* argument *roles* (``buf``, ``count``, ``datatype``, ``tag``, ``comm``,
  ``request``, ``root``, ``op``, ...) so the simulator and the static
  analyzers can interpret call sites without per-function special cases.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Optional, Tuple


class CallClass(Enum):
    ENV = "env"                       # Init / Finalize / rank / size ...
    P2P_SEND = "p2p_send"
    P2P_RECV = "p2p_recv"
    P2P_PROBE = "p2p_probe"
    NB_SEND = "nb_send"               # nonblocking sends
    NB_RECV = "nb_recv"
    PERSISTENT_INIT = "persistent_init"
    START = "start"
    COMPLETION = "completion"         # Wait / Test family
    REQUEST_FREE = "request_free"
    COLLECTIVE = "collective"
    NB_COLLECTIVE = "nb_collective"
    COMM_MGMT = "comm_mgmt"
    RMA_WIN = "rma_win"               # window create / free
    RMA_EPOCH = "rma_epoch"           # fence / lock / unlock / post / start...
    RMA_OP = "rma_op"                 # Put / Get / Accumulate
    DATATYPE = "datatype"
    OP_MGMT = "op_mgmt"
    BUFFER = "buffer"
    OTHER = "other"


@dataclass(frozen=True)
class MPIFunction:
    name: str
    params: Tuple[str, ...]                 # C type strings, e.g. "void*"
    call_class: CallClass
    roles: Dict[str, int] = field(default_factory=dict, hash=False)
    blocking: bool = True
    ret: str = "int"

    def role(self, name: str) -> Optional[int]:
        return self.roles.get(name)


def _f(name, params, call_class, blocking=True, ret="int", **roles):
    return MPIFunction(name, tuple(params), call_class, dict(roles), blocking, ret)


_P2P_SEND = ["void*", "int", "MPI_Datatype", "int", "int", "MPI_Comm"]
_P2P_SEND_ROLES = dict(buf=0, count=1, datatype=2, dest=3, tag=4, comm=5)
_P2P_ISEND = _P2P_SEND + ["MPI_Request*"]
_P2P_ISEND_ROLES = dict(buf=0, count=1, datatype=2, dest=3, tag=4, comm=5, request=6)
_P2P_RECV = ["void*", "int", "MPI_Datatype", "int", "int", "MPI_Comm", "MPI_Status*"]
_P2P_RECV_ROLES = dict(buf=0, count=1, datatype=2, source=3, tag=4, comm=5, status=6)
_P2P_IRECV = _P2P_SEND + ["MPI_Request*"]
_P2P_IRECV_ROLES = dict(buf=0, count=1, datatype=2, source=3, tag=4, comm=5, request=6)

_FUNCS = [
    # -- environment ---------------------------------------------------------
    _f("MPI_Init", ["int*", "char***"], CallClass.ENV),
    _f("MPI_Init_thread", ["int*", "char***", "int", "int*"], CallClass.ENV),
    _f("MPI_Finalize", [], CallClass.ENV),
    _f("MPI_Initialized", ["int*"], CallClass.ENV),
    _f("MPI_Finalized", ["int*"], CallClass.ENV),
    _f("MPI_Abort", ["MPI_Comm", "int"], CallClass.ENV, comm=0),
    _f("MPI_Comm_rank", ["MPI_Comm", "int*"], CallClass.ENV, comm=0),
    _f("MPI_Comm_size", ["MPI_Comm", "int*"], CallClass.ENV, comm=0),
    _f("MPI_Get_processor_name", ["char*", "int*"], CallClass.ENV),
    _f("MPI_Wtime", [], CallClass.OTHER, ret="double"),
    _f("MPI_Error_string", ["int", "char*", "int*"], CallClass.OTHER),

    # -- blocking point-to-point --------------------------------------------
    _f("MPI_Send", _P2P_SEND, CallClass.P2P_SEND, **_P2P_SEND_ROLES),
    _f("MPI_Ssend", _P2P_SEND, CallClass.P2P_SEND, **_P2P_SEND_ROLES),
    _f("MPI_Rsend", _P2P_SEND, CallClass.P2P_SEND, **_P2P_SEND_ROLES),
    _f("MPI_Bsend", _P2P_SEND, CallClass.P2P_SEND, **_P2P_SEND_ROLES),
    _f("MPI_Recv", _P2P_RECV, CallClass.P2P_RECV, **_P2P_RECV_ROLES),
    _f("MPI_Sendrecv",
       ["void*", "int", "MPI_Datatype", "int", "int",
        "void*", "int", "MPI_Datatype", "int", "int", "MPI_Comm", "MPI_Status*"],
       CallClass.P2P_SEND,
       buf=0, count=1, datatype=2, dest=3, tag=4,
       recvbuf=5, recvcount=6, recvtype=7, source=8, recvtag=9, comm=10, status=11),
    _f("MPI_Probe", ["int", "int", "MPI_Comm", "MPI_Status*"],
       CallClass.P2P_PROBE, source=0, tag=1, comm=2, status=3),
    _f("MPI_Iprobe", ["int", "int", "MPI_Comm", "int*", "MPI_Status*"],
       CallClass.P2P_PROBE, blocking=False, source=0, tag=1, comm=2, status=4),

    # -- nonblocking point-to-point -------------------------------------------
    _f("MPI_Isend", _P2P_ISEND, CallClass.NB_SEND, blocking=False, **_P2P_ISEND_ROLES),
    _f("MPI_Issend", _P2P_ISEND, CallClass.NB_SEND, blocking=False, **_P2P_ISEND_ROLES),
    _f("MPI_Irsend", _P2P_ISEND, CallClass.NB_SEND, blocking=False, **_P2P_ISEND_ROLES),
    _f("MPI_Ibsend", _P2P_ISEND, CallClass.NB_SEND, blocking=False, **_P2P_ISEND_ROLES),
    _f("MPI_Irecv", _P2P_IRECV, CallClass.NB_RECV, blocking=False, **_P2P_IRECV_ROLES),

    # -- persistent ------------------------------------------------------------
    _f("MPI_Send_init", _P2P_ISEND, CallClass.PERSISTENT_INIT, blocking=False,
       **_P2P_ISEND_ROLES),
    _f("MPI_Ssend_init", _P2P_ISEND, CallClass.PERSISTENT_INIT, blocking=False,
       **_P2P_ISEND_ROLES),
    _f("MPI_Recv_init", _P2P_IRECV, CallClass.PERSISTENT_INIT, blocking=False,
       **_P2P_IRECV_ROLES),
    _f("MPI_Start", ["MPI_Request*"], CallClass.START, request=0),
    _f("MPI_Startall", ["int", "MPI_Request*"], CallClass.START, count=0, request=1),

    # -- completion ------------------------------------------------------------
    _f("MPI_Wait", ["MPI_Request*", "MPI_Status*"], CallClass.COMPLETION,
       request=0, status=1),
    _f("MPI_Waitall", ["int", "MPI_Request*", "MPI_Status*"], CallClass.COMPLETION,
       count=0, request=1, status=2),
    _f("MPI_Waitany", ["int", "MPI_Request*", "int*", "MPI_Status*"],
       CallClass.COMPLETION, count=0, request=1, status=3),
    _f("MPI_Test", ["MPI_Request*", "int*", "MPI_Status*"], CallClass.COMPLETION,
       blocking=False, request=0, status=2),
    _f("MPI_Testall", ["int", "MPI_Request*", "int*", "MPI_Status*"],
       CallClass.COMPLETION, blocking=False, count=0, request=1, status=3),
    _f("MPI_Request_free", ["MPI_Request*"], CallClass.REQUEST_FREE, request=0),
    _f("MPI_Cancel", ["MPI_Request*"], CallClass.REQUEST_FREE, request=0),

    # -- collectives ------------------------------------------------------------
    _f("MPI_Barrier", ["MPI_Comm"], CallClass.COLLECTIVE, comm=0),
    _f("MPI_Bcast", ["void*", "int", "MPI_Datatype", "int", "MPI_Comm"],
       CallClass.COLLECTIVE, buf=0, count=1, datatype=2, root=3, comm=4),
    _f("MPI_Reduce",
       ["void*", "void*", "int", "MPI_Datatype", "MPI_Op", "int", "MPI_Comm"],
       CallClass.COLLECTIVE, buf=0, recvbuf=1, count=2, datatype=3, op=4, root=5, comm=6),
    _f("MPI_Allreduce", ["void*", "void*", "int", "MPI_Datatype", "MPI_Op", "MPI_Comm"],
       CallClass.COLLECTIVE, buf=0, recvbuf=1, count=2, datatype=3, op=4, comm=5),
    _f("MPI_Gather",
       ["void*", "int", "MPI_Datatype", "void*", "int", "MPI_Datatype", "int", "MPI_Comm"],
       CallClass.COLLECTIVE, buf=0, count=1, datatype=2, recvbuf=3, recvcount=4,
       recvtype=5, root=6, comm=7),
    _f("MPI_Allgather",
       ["void*", "int", "MPI_Datatype", "void*", "int", "MPI_Datatype", "MPI_Comm"],
       CallClass.COLLECTIVE, buf=0, count=1, datatype=2, recvbuf=3, recvcount=4,
       recvtype=5, comm=6),
    _f("MPI_Scatter",
       ["void*", "int", "MPI_Datatype", "void*", "int", "MPI_Datatype", "int", "MPI_Comm"],
       CallClass.COLLECTIVE, buf=0, count=1, datatype=2, recvbuf=3, recvcount=4,
       recvtype=5, root=6, comm=7),
    _f("MPI_Alltoall",
       ["void*", "int", "MPI_Datatype", "void*", "int", "MPI_Datatype", "MPI_Comm"],
       CallClass.COLLECTIVE, buf=0, count=1, datatype=2, recvbuf=3, recvcount=4,
       recvtype=5, comm=6),
    _f("MPI_Scan", ["void*", "void*", "int", "MPI_Datatype", "MPI_Op", "MPI_Comm"],
       CallClass.COLLECTIVE, buf=0, recvbuf=1, count=2, datatype=3, op=4, comm=5),
    _f("MPI_Exscan", ["void*", "void*", "int", "MPI_Datatype", "MPI_Op", "MPI_Comm"],
       CallClass.COLLECTIVE, buf=0, recvbuf=1, count=2, datatype=3, op=4, comm=5),
    _f("MPI_Reduce_scatter_block",
       ["void*", "void*", "int", "MPI_Datatype", "MPI_Op", "MPI_Comm"],
       CallClass.COLLECTIVE, buf=0, recvbuf=1, count=2, datatype=3, op=4, comm=5),
    _f("MPI_Gatherv",
       ["void*", "int", "MPI_Datatype", "void*", "int*", "int*", "MPI_Datatype",
        "int", "MPI_Comm"],
       CallClass.COLLECTIVE, buf=0, count=1, datatype=2, recvbuf=3, recvtype=6,
       root=7, comm=8),
    _f("MPI_Scatterv",
       ["void*", "int*", "int*", "MPI_Datatype", "void*", "int", "MPI_Datatype",
        "int", "MPI_Comm"],
       CallClass.COLLECTIVE, buf=0, datatype=3, recvbuf=4, recvcount=5, recvtype=6,
       root=7, comm=8),

    # -- nonblocking collectives -------------------------------------------------
    _f("MPI_Ibarrier", ["MPI_Comm", "MPI_Request*"], CallClass.NB_COLLECTIVE,
       blocking=False, comm=0, request=1),
    _f("MPI_Ibcast", ["void*", "int", "MPI_Datatype", "int", "MPI_Comm", "MPI_Request*"],
       CallClass.NB_COLLECTIVE, blocking=False, buf=0, count=1, datatype=2, root=3,
       comm=4, request=5),
    _f("MPI_Ireduce",
       ["void*", "void*", "int", "MPI_Datatype", "MPI_Op", "int", "MPI_Comm",
        "MPI_Request*"],
       CallClass.NB_COLLECTIVE, blocking=False, buf=0, recvbuf=1, count=2, datatype=3,
       op=4, root=5, comm=6, request=7),
    _f("MPI_Iallreduce",
       ["void*", "void*", "int", "MPI_Datatype", "MPI_Op", "MPI_Comm", "MPI_Request*"],
       CallClass.NB_COLLECTIVE, blocking=False, buf=0, recvbuf=1, count=2, datatype=3,
       op=4, comm=5, request=6),

    # -- communicator management ---------------------------------------------
    _f("MPI_Comm_split", ["MPI_Comm", "int", "int", "MPI_Comm*"],
       CallClass.COMM_MGMT, comm=0),
    _f("MPI_Comm_dup", ["MPI_Comm", "MPI_Comm*"], CallClass.COMM_MGMT, comm=0),
    _f("MPI_Comm_free", ["MPI_Comm*"], CallClass.COMM_MGMT),
    _f("MPI_Comm_group", ["MPI_Comm", "MPI_Group*"], CallClass.COMM_MGMT, comm=0),
    _f("MPI_Group_free", ["MPI_Group*"], CallClass.COMM_MGMT),
    _f("MPI_Group_incl", ["MPI_Group", "int", "int*", "MPI_Group*"],
       CallClass.COMM_MGMT),

    # -- one-sided ------------------------------------------------------------
    _f("MPI_Win_create",
       ["void*", "MPI_Aint", "int", "MPI_Info", "MPI_Comm", "MPI_Win*"],
       CallClass.RMA_WIN, buf=0, comm=4, win=5),
    _f("MPI_Win_allocate",
       ["MPI_Aint", "int", "MPI_Info", "MPI_Comm", "void*", "MPI_Win*"],
       CallClass.RMA_WIN, comm=3, win=5),
    _f("MPI_Win_free", ["MPI_Win*"], CallClass.RMA_WIN, win=0),
    _f("MPI_Win_fence", ["int", "MPI_Win"], CallClass.RMA_EPOCH, win=1),
    _f("MPI_Win_lock", ["int", "int", "int", "MPI_Win"], CallClass.RMA_EPOCH,
       lock_type=0, rank=1, win=3),
    _f("MPI_Win_unlock", ["int", "MPI_Win"], CallClass.RMA_EPOCH, rank=0, win=1),
    _f("MPI_Win_lock_all", ["int", "MPI_Win"], CallClass.RMA_EPOCH, win=1),
    _f("MPI_Win_unlock_all", ["MPI_Win"], CallClass.RMA_EPOCH, win=0),
    _f("MPI_Win_post", ["MPI_Group", "int", "MPI_Win"], CallClass.RMA_EPOCH, win=2),
    _f("MPI_Win_start", ["MPI_Group", "int", "MPI_Win"], CallClass.RMA_EPOCH, win=2),
    _f("MPI_Win_complete", ["MPI_Win"], CallClass.RMA_EPOCH, win=0),
    _f("MPI_Win_wait", ["MPI_Win"], CallClass.RMA_EPOCH, win=0),
    _f("MPI_Win_flush", ["int", "MPI_Win"], CallClass.RMA_EPOCH, rank=0, win=1),
    _f("MPI_Put",
       ["void*", "int", "MPI_Datatype", "int", "MPI_Aint", "int", "MPI_Datatype",
        "MPI_Win"],
       CallClass.RMA_OP, buf=0, count=1, datatype=2, dest=3, win=7),
    _f("MPI_Get",
       ["void*", "int", "MPI_Datatype", "int", "MPI_Aint", "int", "MPI_Datatype",
        "MPI_Win"],
       CallClass.RMA_OP, buf=0, count=1, datatype=2, source=3, win=7),
    _f("MPI_Accumulate",
       ["void*", "int", "MPI_Datatype", "int", "MPI_Aint", "int", "MPI_Datatype",
        "MPI_Op", "MPI_Win"],
       CallClass.RMA_OP, buf=0, count=1, datatype=2, dest=3, op=7, win=8),

    # -- datatypes / ops / buffers -------------------------------------------
    _f("MPI_Type_contiguous", ["int", "MPI_Datatype", "MPI_Datatype*"],
       CallClass.DATATYPE, count=0, datatype=1),
    _f("MPI_Type_vector", ["int", "int", "int", "MPI_Datatype", "MPI_Datatype*"],
       CallClass.DATATYPE, datatype=3),
    _f("MPI_Type_commit", ["MPI_Datatype*"], CallClass.DATATYPE, datatype=0),
    _f("MPI_Type_free", ["MPI_Datatype*"], CallClass.DATATYPE, datatype=0),
    _f("MPI_Op_create", ["void*", "int", "MPI_Op*"], CallClass.OP_MGMT, op=2),
    _f("MPI_Op_free", ["MPI_Op*"], CallClass.OP_MGMT, op=0),
    _f("MPI_Buffer_attach", ["void*", "int"], CallClass.BUFFER, buf=0, count=1),
    _f("MPI_Buffer_detach", ["void*", "int*"], CallClass.BUFFER, buf=0),
]

MPI_FUNCTIONS: Dict[str, MPIFunction] = {f.name: f for f in _FUNCS}


# ---------------------------------------------------------------------------
# Constants.  Handle-valued constants use disjoint ranges so the simulator
# can classify a raw integer: communicators 9xx, datatypes 10xx, ops 11xx,
# special sentinels negative.
# ---------------------------------------------------------------------------

MPI_CONSTANTS: Dict[str, int] = {
    "MPI_SUCCESS": 0,
    "MPI_ERR_ARG": 13,
    "MPI_ERR_COUNT": 2,
    "MPI_ERR_TYPE": 3,
    "MPI_ERR_TAG": 4,
    "MPI_ERR_COMM": 5,
    "MPI_ERR_RANK": 6,
    "MPI_ANY_SOURCE": -1,
    "MPI_ANY_TAG": -1,
    "MPI_PROC_NULL": -2,
    "MPI_ROOT": -3,
    "MPI_UNDEFINED": -32766,
    "MPI_COMM_WORLD": 900,
    "MPI_COMM_SELF": 901,
    "MPI_COMM_NULL": 902,
    "MPI_DATATYPE_NULL": 1000,
    "MPI_CHAR": 1001,
    "MPI_SIGNED_CHAR": 1002,
    "MPI_UNSIGNED_CHAR": 1003,
    "MPI_BYTE": 1004,
    "MPI_SHORT": 1005,
    "MPI_UNSIGNED_SHORT": 1006,
    "MPI_INT": 1007,
    "MPI_UNSIGNED": 1008,
    "MPI_LONG": 1009,
    "MPI_UNSIGNED_LONG": 1010,
    "MPI_LONG_LONG": 1011,
    "MPI_FLOAT": 1012,
    "MPI_DOUBLE": 1013,
    "MPI_LONG_DOUBLE": 1014,
    "MPI_C_BOOL": 1015,
    "MPI_INT8_T": 1016,
    "MPI_INT32_T": 1017,
    "MPI_INT64_T": 1018,
    "MPI_UINT64_T": 1019,
    "MPI_OP_NULL": 1100,
    "MPI_MAX": 1101,
    "MPI_MIN": 1102,
    "MPI_SUM": 1103,
    "MPI_PROD": 1104,
    "MPI_LAND": 1105,
    "MPI_BAND": 1106,
    "MPI_LOR": 1107,
    "MPI_BOR": 1108,
    "MPI_LXOR": 1109,
    "MPI_BXOR": 1110,
    "MPI_MAXLOC": 1111,
    "MPI_MINLOC": 1112,
    "MPI_REQUEST_NULL": 1200,
    "MPI_GROUP_NULL": 1300,
    "MPI_GROUP_EMPTY": 1301,
    "MPI_WIN_NULL": 1400,
    "MPI_INFO_NULL": 1500,
    "MPI_ERRHANDLER_NULL": 1600,
    "MPI_ERRORS_ARE_FATAL": 1601,
    "MPI_ERRORS_RETURN": 1602,
    "MPI_MAX_PROCESSOR_NAME": 256,
    "MPI_MAX_ERROR_STRING": 512,
    "MPI_LOCK_EXCLUSIVE": 234,
    "MPI_LOCK_SHARED": 235,
    "MPI_MODE_NOCHECK": 1024,
    "MPI_MODE_NOSTORE": 2048,
    "MPI_MODE_NOPUT": 4096,
    "MPI_MODE_NOPRECEDE": 8192,
    "MPI_MODE_NOSUCCEED": 16384,
    "MPI_TAG_UB": 32767,
    "MPI_THREAD_SINGLE": 0,
    "MPI_THREAD_FUNNELED": 1,
    "MPI_THREAD_SERIALIZED": 2,
    "MPI_THREAD_MULTIPLE": 3,
}

# Pointer-valued sentinels (modelled as null-like magic pointers).
MPI_POINTER_CONSTANTS: Dict[str, int] = {
    "MPI_STATUS_IGNORE": 0,
    "MPI_STATUSES_IGNORE": 0,
    "MPI_IN_PLACE": -101,
    "MPI_BOTTOM": 0,
}

# Datatype handle -> (C element kind, size in bytes); used for matching.
DATATYPE_INFO: Dict[int, Tuple[str, int]] = {
    MPI_CONSTANTS["MPI_CHAR"]: ("char", 1),
    MPI_CONSTANTS["MPI_SIGNED_CHAR"]: ("char", 1),
    MPI_CONSTANTS["MPI_UNSIGNED_CHAR"]: ("char", 1),
    MPI_CONSTANTS["MPI_BYTE"]: ("byte", 1),
    MPI_CONSTANTS["MPI_SHORT"]: ("int", 2),
    MPI_CONSTANTS["MPI_UNSIGNED_SHORT"]: ("int", 2),
    MPI_CONSTANTS["MPI_INT"]: ("int", 4),
    MPI_CONSTANTS["MPI_UNSIGNED"]: ("int", 4),
    MPI_CONSTANTS["MPI_LONG"]: ("int", 8),
    MPI_CONSTANTS["MPI_UNSIGNED_LONG"]: ("int", 8),
    MPI_CONSTANTS["MPI_LONG_LONG"]: ("int", 8),
    MPI_CONSTANTS["MPI_FLOAT"]: ("float", 4),
    MPI_CONSTANTS["MPI_DOUBLE"]: ("float", 8),
    MPI_CONSTANTS["MPI_LONG_DOUBLE"]: ("float", 16),
    MPI_CONSTANTS["MPI_INT8_T"]: ("int", 1),
    MPI_CONSTANTS["MPI_INT32_T"]: ("int", 4),
    MPI_CONSTANTS["MPI_INT64_T"]: ("int", 8),
    MPI_CONSTANTS["MPI_UINT64_T"]: ("int", 8),
}

COLLECTIVE_NAMES = frozenset(
    f.name for f in _FUNCS if f.call_class in (CallClass.COLLECTIVE, CallClass.NB_COLLECTIVE)
)


def is_mpi_call(name: str) -> bool:
    return name in MPI_FUNCTIONS


def function_info(name: str) -> Optional[MPIFunction]:
    return MPI_FUNCTIONS.get(name)
