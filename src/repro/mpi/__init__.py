"""MPI substrate: API model, virtual datatypes, and the runtime simulator.

``api`` declares every MPI entry point the benchmark suites exercise with
role metadata (which argument is the count, tag, communicator, ...), used
by the frontend (builtin declarations), by the static analyzers, and by
the runtime simulator that powers the dynamic-tool baselines.
"""

from repro.mpi.api import (
    MPI_CONSTANTS,
    MPI_FUNCTIONS,
    CallClass,
    MPIFunction,
    function_info,
    is_mpi_call,
)
from repro.mpi.simulator import MPISimulator, RunOutcome, SimReport

__all__ = [
    "MPI_FUNCTIONS", "MPI_CONSTANTS", "MPIFunction", "CallClass",
    "function_info", "is_mpi_call",
    "MPISimulator", "SimReport", "RunOutcome",
]
