"""IR interpreter: executes one MPI rank's view of a compiled module.

Each rank owns a private memory (MPI's distributed-memory model).  The VM
steps one instruction at a time so the scheduler in
:mod:`repro.mpi.simulator` can interleave ranks deterministically, block
ranks on MPI operations, and observe every load/store (for the
concurrency checkers).

Memory model: cell-granular — every scalar/pointer occupies one cell and
addresses are plain integers, with getelementptr scaling in cells.  This
keeps the interpreter fast while preserving aliasing behaviour.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.ir.instructions import (
    AllocaInst,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    CondBranchInst,
    FCmpInst,
    GEPInst,
    ICmpInst,
    Instruction,
    LoadInst,
    PhiInst,
    ReturnInst,
    SelectInst,
    StoreInst,
    UnreachableInst,
)
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.types import ArrayType, FloatType, IntType, PointerType, StructType, Type
from repro.ir.values import Argument, Constant, ConstantString, GlobalVariable, UndefValue, Value


class InterpError(Exception):
    """Raised on a runtime fault (null deref, missing function, ...)."""


def cells_of(t: Type) -> int:
    if isinstance(t, ArrayType):
        return max(1, t.count) * cells_of(t.element)
    if isinstance(t, StructType):
        return sum(cells_of(f) for f in t.fields) or 1
    return 1


@dataclass
class Frame:
    fn: Function
    block: BasicBlock
    index: int
    values: Dict[int, object] = field(default_factory=dict)
    prev_block: Optional[BasicBlock] = None
    call_site: Optional[CallInst] = None


class Memory:
    """Per-rank linear memory with a bump allocator."""

    def __init__(self):
        self.cells: Dict[int, object] = {}
        self.next_addr = 0x1000
        self.strings: Dict[str, int] = {}

    def allocate(self, count: int) -> int:
        addr = self.next_addr
        self.next_addr += max(1, count) + 1  # +1 red-zone cell
        return addr

    def load(self, addr: int) -> object:
        if addr == 0:
            raise InterpError("null pointer dereference (load)")
        return self.cells.get(addr, 0)

    def store(self, addr: int, value: object) -> None:
        if addr == 0:
            raise InterpError("null pointer dereference (store)")
        self.cells[addr] = value

    def intern_string(self, text: str) -> int:
        if text not in self.strings:
            addr = self.allocate(len(text) + 1)
            for i, ch in enumerate(text):
                self.cells[addr + i] = ord(ch)
            self.cells[addr + len(text)] = 0
            self.strings[text] = addr
        return self.strings[text]


# Signals the VM returns to the scheduler.
@dataclass
class ExternCall:
    """The VM hit a call to an external (MPI) function."""
    name: str
    args: List[object]
    inst: CallInst


DONE = "done"
STEP = "step"


def _wrap(value: int, bits: int) -> int:
    mask = (1 << bits) - 1
    wrapped = int(value) & mask
    if bits > 1 and wrapped >= (1 << (bits - 1)):
        wrapped -= 1 << bits
    return wrapped


class RankVM:
    """Executes the module's ``main`` for one rank."""

    def __init__(self, module: Module, rank: int, *,
                 on_load: Optional[Callable[[int], None]] = None,
                 on_store: Optional[Callable[[int], None]] = None,
                 libc_rand_seed: int = 12345):
        self.module = module
        self.rank = rank
        self.memory = Memory()
        self.stack: List[Frame] = []
        self.on_load = on_load
        self.on_store = on_store
        self.exit_code: Optional[int] = None
        self.steps = 0
        self._rand_state = (libc_rand_seed * 6364136223846793005 + rank) & 0xFFFFFFFF
        self._globals: Dict[str, int] = {}
        self._init_globals()
        self._start()

    # ------------------------------------------------------------------ setup
    def _init_globals(self) -> None:
        for gv in self.module.globals.values():
            count = cells_of(gv.value_type)
            addr = self.memory.allocate(count)
            self._globals[gv.name] = addr
            if gv.initializer is not None:
                if isinstance(gv.initializer, ConstantString):
                    saddr = self.memory.intern_string(gv.initializer.text)
                    self.memory.cells[addr] = saddr
                else:
                    self.memory.cells[addr] = gv.initializer.value or 0
            else:
                for i in range(count):
                    self.memory.cells[addr + i] = 0

    def _start(self) -> None:
        main = self.module.get_function("main")
        if main is None or main.is_declaration:
            raise InterpError("module has no main function")
        frame = Frame(main, main.entry, 0)
        # argc = 1, argv = pointer to {program-name, NULL}
        args: List[object] = []
        if len(main.arguments) >= 1:
            args.append(1)
        if len(main.arguments) >= 2:
            argv = self.memory.allocate(2)
            self.memory.cells[argv] = self.memory.intern_string("a.out")
            self.memory.cells[argv + 1] = 0
            args.append(argv)
        for arg, value in zip(main.arguments, args):
            frame.values[id(arg)] = value
        self.stack.append(frame)

    @property
    def finished(self) -> bool:
        return not self.stack

    # ------------------------------------------------------------------ values
    def value_of(self, v: Value, frame: Frame) -> object:
        if isinstance(v, Constant):
            if isinstance(v, ConstantString):
                return self.memory.intern_string(v.text)
            if v.value is None:
                return 0
            return v.value
        if isinstance(v, UndefValue):
            return 0
        if isinstance(v, GlobalVariable):
            return self._globals[v.name]
        if isinstance(v, Function):
            return ("fn", v.name)
        if isinstance(v, (Instruction, Argument)):
            return frame.values.get(id(v), 0)
        raise InterpError(f"cannot evaluate {v!r}")

    def set_result(self, inst: CallInst, value: object) -> None:
        """Scheduler callback: deliver an external call's return value."""
        frame = self.stack[-1]
        if not inst.type.is_void:
            frame.values[id(inst)] = value
        frame.index += 1

    # ------------------------------------------------------------------ stepping
    def step(self):
        """Execute one instruction.

        Returns STEP, DONE, or an :class:`ExternCall` the scheduler must
        service (the VM stays paused on the call until ``set_result``).
        """
        if not self.stack:
            return DONE
        self.steps += 1
        frame = self.stack[-1]
        inst = frame.block.instructions[frame.index]

        if isinstance(inst, CallInst):
            callee = inst.callee
            if isinstance(callee, Function) and not callee.is_declaration:
                new_frame = Frame(callee, callee.entry, 0, call_site=inst)
                for formal, actual in zip(callee.arguments, inst.args):
                    new_frame.values[id(formal)] = self.value_of(actual, frame)
                self.stack.append(new_frame)
                return STEP
            name = callee.name
            args = [self.value_of(a, frame) for a in inst.args]
            handled = self._libc(name, args)
            if handled is not NotImplemented:
                if not self.stack:
                    return DONE        # exit()/abort() cleared the stack
                self.set_result(inst, handled)
                return STEP
            return ExternCall(name, args, inst)

        if isinstance(inst, ReturnInst):
            value = (self.value_of(inst.return_value, frame)
                     if inst.return_value is not None else None)
            self.stack.pop()
            if not self.stack:
                self.exit_code = int(value) if isinstance(value, (int, float)) else 0
                return DONE
            caller = self.stack[-1]
            site = frame.call_site
            assert site is not None
            if not site.type.is_void:
                caller.values[id(site)] = value
            caller.index += 1
            return STEP

        self._execute(inst, frame)
        return STEP

    # ------------------------------------------------------------------ core ops
    def _execute(self, inst: Instruction, frame: Frame) -> None:
        if isinstance(inst, AllocaInst):
            n = cells_of(inst.allocated_type)
            if inst.array_size is not None:
                n *= int(self.value_of(inst.array_size, frame))
            frame.values[id(inst)] = self.memory.allocate(n)
            frame.index += 1
        elif isinstance(inst, LoadInst):
            addr = int(self.value_of(inst.pointer, frame))
            if self.on_load:
                self.on_load(addr)
            frame.values[id(inst)] = self.memory.load(addr)
            frame.index += 1
        elif isinstance(inst, StoreInst):
            addr = int(self.value_of(inst.pointer, frame))
            if self.on_store:
                self.on_store(addr)
            self.memory.store(addr, self.value_of(inst.value, frame))
            frame.index += 1
        elif isinstance(inst, BinaryInst):
            frame.values[id(inst)] = self._binop(inst, frame)
            frame.index += 1
        elif isinstance(inst, (ICmpInst, FCmpInst)):
            frame.values[id(inst)] = self._compare(inst, frame)
            frame.index += 1
        elif isinstance(inst, CastInst):
            frame.values[id(inst)] = self._cast(inst, frame)
            frame.index += 1
        elif isinstance(inst, SelectInst):
            cond, tv, fv = inst.operands
            chosen = tv if self.value_of(cond, frame) else fv
            frame.values[id(inst)] = self.value_of(chosen, frame)
            frame.index += 1
        elif isinstance(inst, GEPInst):
            frame.values[id(inst)] = self._gep(inst, frame)
            frame.index += 1
        elif isinstance(inst, BranchInst):
            self._jump(frame, inst.target)
        elif isinstance(inst, CondBranchInst):
            cond = self.value_of(inst.cond, frame)
            self._jump(frame, inst.true_block if cond else inst.false_block)
        elif isinstance(inst, PhiInst):
            # Phis are resolved in _jump (parallel copy); stepping onto one
            # directly means it was already resolved.
            frame.index += 1
        elif isinstance(inst, UnreachableInst):
            raise InterpError("reached 'unreachable'")
        else:
            raise InterpError(f"cannot interpret {inst.opcode}")

    def _jump(self, frame: Frame, target: BasicBlock) -> None:
        source = frame.block
        # Parallel phi resolution using values from the source block.
        updates: List[Tuple[int, object]] = []
        for phi in target.phis():
            for value, pred in phi.incoming:
                if pred is source:
                    updates.append((id(phi), self.value_of(value, frame)))
                    break
        for key, value in updates:
            frame.values[key] = value
        frame.prev_block = source
        frame.block = target
        frame.index = len(target.phis())

    def _binop(self, inst: BinaryInst, frame: Frame) -> object:
        a = self.value_of(inst.lhs, frame)
        b = self.value_of(inst.rhs, frame)
        op = inst.opcode
        if op.startswith("f"):
            fa, fb = float(a), float(b)
            if op == "fadd":
                return fa + fb
            if op == "fsub":
                return fa - fb
            if op == "fmul":
                return fa * fb
            if op == "fdiv":
                return fa / fb if fb != 0.0 else math.inf
            if op == "frem":
                return math.fmod(fa, fb) if fb != 0.0 else math.nan
        ia, ib = int(a), int(b)
        bits = inst.type.bits if isinstance(inst.type, IntType) else 64
        if op == "add":
            return _wrap(ia + ib, bits)
        if op == "sub":
            return _wrap(ia - ib, bits)
        if op == "mul":
            return _wrap(ia * ib, bits)
        if op == "sdiv":
            if ib == 0:
                raise InterpError("integer division by zero")
            return _wrap(int(ia / ib), bits)
        if op == "udiv":
            if ib == 0:
                raise InterpError("integer division by zero")
            return _wrap((ia & (1 << bits) - 1) // (ib & (1 << bits) - 1), bits)
        if op == "srem":
            if ib == 0:
                raise InterpError("integer remainder by zero")
            return _wrap(ia - int(ia / ib) * ib, bits)
        if op == "urem":
            if ib == 0:
                raise InterpError("integer remainder by zero")
            return _wrap((ia & (1 << bits) - 1) % (ib & (1 << bits) - 1), bits)
        if op == "and":
            return _wrap(ia & ib, bits)
        if op == "or":
            return _wrap(ia | ib, bits)
        if op == "xor":
            return _wrap(ia ^ ib, bits)
        if op == "shl":
            return _wrap(ia << (ib & (bits - 1)), bits)
        if op == "lshr":
            return _wrap((ia & (1 << bits) - 1) >> (ib & (bits - 1)), bits)
        if op == "ashr":
            return _wrap(ia >> (ib & (bits - 1)), bits)
        raise InterpError(f"unknown binop {op}")

    def _compare(self, inst, frame: Frame) -> int:
        a = self.value_of(inst.operands[0], frame)
        b = self.value_of(inst.operands[1], frame)
        p = inst.predicate
        if isinstance(inst, FCmpInst):
            fa, fb = float(a), float(b)
            return int({
                "oeq": fa == fb, "one": fa != fb, "ogt": fa > fb,
                "oge": fa >= fb, "olt": fa < fb, "ole": fa <= fb,
            }[p])
        # Tuples (function pointers) compare by identity.
        if isinstance(a, tuple) or isinstance(b, tuple):
            eq = a == b
            return int(eq if p == "eq" else not eq)
        ia, ib = int(a), int(b)
        if p.startswith("u"):
            ia &= 0xFFFFFFFFFFFFFFFF
            ib &= 0xFFFFFFFFFFFFFFFF
            p = "s" + p[1:]
        return int({
            "eq": ia == ib, "ne": ia != ib, "sgt": ia > ib,
            "sge": ia >= ib, "slt": ia < ib, "sle": ia <= ib,
        }[p])

    def _cast(self, inst: CastInst, frame: Frame) -> object:
        v = self.value_of(inst.operands[0], frame)
        op = inst.opcode
        if op in ("bitcast", "inttoptr", "ptrtoint"):
            return v
        if op in ("trunc", "zext", "sext"):
            bits = inst.type.bits  # type: ignore[union-attr]
            iv = int(v)
            if op == "zext":
                src_bits = inst.operands[0].type.bits  # type: ignore[union-attr]
                iv &= (1 << src_bits) - 1
            return _wrap(iv, bits)
        if op in ("fptrunc", "fpext", "sitofp"):
            return float(v)
        if op == "fptosi":
            return int(v)
        raise InterpError(f"unknown cast {op}")

    def _gep(self, inst: GEPInst, frame: Frame) -> int:
        addr = int(self.value_of(inst.pointer, frame))
        ptype = inst.pointer.type
        assert isinstance(ptype, PointerType)
        t: Type = ptype.pointee
        indices = [int(self.value_of(i, frame)) for i in inst.indices]
        addr += indices[0] * cells_of(t)
        for idx in indices[1:]:
            if isinstance(t, ArrayType):
                t = t.element
                addr += idx * cells_of(t)
            elif isinstance(t, StructType):
                addr += sum(cells_of(f) for f in t.fields[:idx])
                t = t.fields[idx] if idx < len(t.fields) else t
            else:
                addr += idx
        return addr

    # ------------------------------------------------------------------ libc
    def _libc(self, name: str, args: List[object]):
        """Handle libc calls locally; NotImplemented means 'not libc'."""
        if name in ("printf", "fprintf", "puts", "fflush", "sprintf", "snprintf"):
            return 0
        if name == "malloc":
            return self.memory.allocate(int(args[0]))
        if name == "calloc":
            n = int(args[0]) * int(args[1])
            addr = self.memory.allocate(n)
            for i in range(n):
                self.memory.cells[addr + i] = 0
            return addr
        if name == "realloc":
            return self.memory.allocate(int(args[1]))
        if name == "free":
            return None
        if name == "memset":
            addr, value, n = int(args[0]), int(args[1]), int(args[2])
            for i in range(n):
                self.memory.cells[addr + i] = value
            return addr
        if name == "memcpy":
            dst, src, n = int(args[0]), int(args[1]), int(args[2])
            for i in range(n):
                self.memory.cells[dst + i] = self.memory.cells.get(src + i, 0)
            return dst
        if name == "strlen":
            addr = int(args[0])
            n = 0
            while self.memory.cells.get(addr + n, 0) != 0:
                n += 1
                if n > 1 << 20:
                    raise InterpError("unterminated string")
            return n
        if name in ("strcmp", "strncmp"):
            a, b = int(args[0]), int(args[1])
            limit = int(args[2]) if name == "strncmp" else 1 << 20
            i = 0
            while i < limit:
                ca = int(self.memory.cells.get(a + i, 0))
                cb = int(self.memory.cells.get(b + i, 0))
                if ca != cb:
                    return (ca > cb) - (ca < cb)
                if ca == 0:
                    return 0
                i += 1
            return 0
        if name == "strcpy":
            dst, src = int(args[0]), int(args[1])
            i = 0
            while True:
                ch = int(self.memory.cells.get(src + i, 0))
                self.memory.cells[dst + i] = ch
                if ch == 0:
                    return dst
                i += 1
        if name in ("exit", "abort"):
            self.exit_code = int(args[0]) if args else 134
            self.stack.clear()
            return None
        if name == "assert":
            if not args[0]:
                raise InterpError("assertion failure")
            return None
        if name == "atoi" or name == "atol":
            return 0
        if name == "rand":
            self._rand_state = (self._rand_state * 1103515245 + 12345) & 0x7FFFFFFF
            return self._rand_state
        if name == "srand":
            self._rand_state = int(args[0]) & 0x7FFFFFFF
            return None
        if name in ("sleep", "usleep"):
            return 0
        if name == "sqrt":
            return math.sqrt(max(0.0, float(args[0])))
        if name == "fabs":
            return abs(float(args[0]))
        if name == "pow":
            return float(args[0]) ** float(args[1])
        if name == "floor":
            return math.floor(float(args[0]))
        if name == "ceil":
            return math.ceil(float(args[0]))
        if name == "exp":
            return math.exp(min(700.0, float(args[0])))
        if name == "log":
            return math.log(float(args[0])) if float(args[0]) > 0 else -math.inf
        if name in ("sin", "cos"):
            return getattr(math, name)(float(args[0]))
        return NotImplemented
