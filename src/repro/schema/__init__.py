"""One versioned, schema-checked envelope for every persisted artifact.

Public API:

* :class:`SchemaError` / :func:`validate` — the stdlib JSON-Schema-
  subset validator every artifact kind shares.
* :func:`validate_envelope` — validate any artifact document (envelope
  or legacy flat form) and get the flat document back.
* :func:`validate_kind` — the same, pinned to one registered kind.
* :func:`make_envelope` / :func:`payload_digest` / :func:`is_envelope`
  — envelope construction and content-digest integrity.
* :func:`save_envelope` / :func:`load_envelope` — validated file I/O.
* :class:`KindSpec` / :func:`register_kind` — the extensible kind
  registry (built-ins in :mod:`repro.schema.kinds`; the fleet CAS
  registers its own stats kind).
"""

from repro.schema.envelope import (
    ENVELOPE_SCHEMA,
    KindSpec,
    is_envelope,
    load_envelope,
    make_envelope,
    payload_digest,
    register_kind,
    registered_kinds,
    save_envelope,
    validate_envelope,
    validate_kind,
)
from repro.schema.validator import SchemaError, validate

__all__ = [
    "ENVELOPE_SCHEMA",
    "KindSpec",
    "SchemaError",
    "is_envelope",
    "load_envelope",
    "make_envelope",
    "payload_digest",
    "register_kind",
    "registered_kinds",
    "save_envelope",
    "validate",
    "validate_envelope",
    "validate_kind",
]
