"""Stdlib JSON-Schema-subset validator shared by every artifact kind.

Grew up in :mod:`repro.eval.schema` guarding ``EVAL_matrix.json``; now
that pipeline manifests, fuzz reports, perf profiles, and the fleet CAS
all validate through one envelope (:mod:`repro.schema.envelope`), the
validator lives here and the old location re-exports it.  It implements
exactly the JSON-Schema subset the artifacts need (types, required
keys, nested properties, items, enums, nullable unions) — no external
dependency, stable error paths.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence, Union


class SchemaError(ValueError):
    """A document does not match the schema; ``path`` locates the issue."""

    def __init__(self, path: str, message: str):
        self.path = path
        super().__init__(f"{path}: {message}")


_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, Mapping),
    "array": lambda v: isinstance(v, (list, tuple)),
    "string": lambda v: isinstance(v, str),
    # bool is an int subclass in Python; keep the JSON types disjoint.
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: (isinstance(v, (int, float))
                         and not isinstance(v, bool)),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def validate(doc: Any, schema: Mapping[str, Any], path: str = "$") -> None:
    """Recursively check ``doc`` against ``schema``; raise SchemaError.

    Supported keywords: ``type`` (name or list of names), ``enum``,
    ``const``, ``required``, ``properties``,
    ``additionalProperties: {schema}`` (applied to keys not named in
    ``properties``), ``items``, and ``minItems``.
    """
    types: Union[str, Sequence[str], None] = schema.get("type")
    if types is not None:
        names = (types,) if isinstance(types, str) else tuple(types)
        unknown = [n for n in names if n not in _TYPE_CHECKS]
        if unknown:
            raise SchemaError(path, f"schema names unknown types {unknown}")
        if not any(_TYPE_CHECKS[name](doc) for name in names):
            raise SchemaError(
                path, f"expected {' or '.join(names)}, "
                      f"got {type(doc).__name__} ({doc!r:.80})")
    if "const" in schema and doc != schema["const"]:
        raise SchemaError(path, f"expected {schema['const']!r}, got {doc!r}")
    if "enum" in schema and doc not in schema["enum"]:
        raise SchemaError(path, f"{doc!r} not in {schema['enum']!r}")

    if isinstance(doc, Mapping):
        for key in schema.get("required", ()):
            if key not in doc:
                raise SchemaError(path, f"missing required key {key!r}")
        properties: Mapping[str, Any] = schema.get("properties", {})
        for key, sub in properties.items():
            if key in doc:
                validate(doc[key], sub, f"{path}.{key}")
        extra = schema.get("additionalProperties")
        if isinstance(extra, Mapping):
            for key, value in doc.items():
                if key not in properties:
                    validate(value, extra, f"{path}.{key}")
    if isinstance(doc, (list, tuple)):
        if len(doc) < schema.get("minItems", 0):
            raise SchemaError(path, f"expected at least "
                                    f"{schema['minItems']} items, "
                                    f"got {len(doc)}")
        items = schema.get("items")
        if isinstance(items, Mapping):
            for i, value in enumerate(doc):
                validate(value, items, f"{path}[{i}]")
