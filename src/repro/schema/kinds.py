"""Built-in artifact kinds.

One :class:`~repro.schema.envelope.KindSpec` per persisted artifact the
project ships: the evaluation matrix (``EVAL_matrix.json``), the fuzz
campaign report (``FUZZ_report.json``), the perf profile
(``PERF_profile.json``), and the pipeline-artifact manifest
(``manifest.json``).  Importing this module registers them all; the
legacy modules (:mod:`repro.eval.schema`, :mod:`repro.fuzz.report`,
:mod:`repro.perf`, :mod:`repro.pipeline.artifact`) re-export their old
names as thin shims over this registry.
"""

from __future__ import annotations

from typing import Any, List, Mapping

from repro.schema.envelope import KindSpec, register_kind
from repro.schema.validator import SchemaError

# ---------------------------------------------------------------------------
# repro-eval-matrix
# ---------------------------------------------------------------------------

_NULLABLE_NUMBER = {"type": ["number", "null"]}

#: Overall and per-class metric blocks share this shape.
_METRIC_BLOCK = {
    "type": "object",
    "required": ["precision", "recall", "f1", "support"],
    "properties": {
        "TP": {"type": "integer"}, "TN": {"type": "integer"},
        "FP": {"type": "integer"}, "FN": {"type": "integer"},
        "precision": _NULLABLE_NUMBER,
        "recall": _NULLABLE_NUMBER,
        "f1": _NULLABLE_NUMBER,
        "accuracy": _NULLABLE_NUMBER,
        "support": {"type": "integer"},
    },
}

_CELL_SCHEMA = {
    "type": "object",
    "required": ["id", "train_dataset", "test_dataset", "method",
                 "mutation_level", "scenario", "n_train", "n_test",
                 "overall", "per_class", "provenance"],
    "properties": {
        "id": {"type": "string"},
        "train_dataset": {"type": "string"},
        "test_dataset": {"type": "string"},
        "method": {"type": "string"},
        "mutation_level": {"type": "integer"},
        "scenario": {"enum": ["split", "cross"]},
        "n_train": {"type": "integer"},
        "n_test": {"type": "integer"},
        "overall": _METRIC_BLOCK,
        "per_class": {"type": "object",
                      "additionalProperties": _METRIC_BLOCK},
        "provenance": {
            "type": "object",
            "required": ["train_digest", "test_digest", "config_hash",
                         "seed"],
            "properties": {
                "train_digest": {"type": "string"},
                "test_digest": {"type": "string"},
                "config_hash": {"type": "string"},
                "seed": {"type": "integer"},
            },
        },
    },
}

MATRIX_SCHEMA = {
    "type": "object",
    "required": ["kind", "schema_version", "repro_version", "profile",
                 "seed", "spec", "datasets", "cells", "generalization"],
    "properties": {
        "kind": {"const": "repro-eval-matrix"},
        "schema_version": {"type": "integer"},
        "repro_version": {"type": "string"},
        "profile": {"type": "string"},
        "seed": {"type": "integer"},
        "spec": {
            "type": "object",
            "required": ["train_datasets", "test_datasets", "methods",
                         "mutation_levels", "test_frac", "split_seed"],
            "properties": {
                "train_datasets": {"type": "array", "minItems": 1,
                                   "items": {"type": "string"}},
                "test_datasets": {"type": "array", "minItems": 1,
                                  "items": {"type": "string"}},
                "methods": {"type": "array", "minItems": 1,
                            "items": {"type": "string"}},
                "mutation_levels": {"type": "array", "minItems": 1,
                                    "items": {"type": "integer"}},
                "test_frac": {"type": "number"},
                "split_seed": {"type": "integer"},
            },
        },
        "datasets": {
            "type": "object",
            "additionalProperties": {
                "type": "object",
                "required": ["digest", "n_samples"],
                "properties": {"digest": {"type": "string"},
                               "n_samples": {"type": "integer"}},
            },
        },
        "cells": {"type": "array", "minItems": 1, "items": _CELL_SCHEMA},
        "generalization": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["method", "mutation_level", "train_dataset",
                             "test_dataset", "intra_f1", "cross_f1",
                             "delta"],
                "properties": {
                    "method": {"type": "string"},
                    "mutation_level": {"type": "integer"},
                    "train_dataset": {"type": "string"},
                    "test_dataset": {"type": "string"},
                    "intra_f1": _NULLABLE_NUMBER,
                    "cross_f1": _NULLABLE_NUMBER,
                    "delta": _NULLABLE_NUMBER,
                },
            },
        },
    },
}


def _check_matrix(doc: Mapping[str, Any]) -> None:
    version = doc["schema_version"]
    if version != 1:
        raise SchemaError("$.schema_version",
                          f"unsupported schema version {version} "
                          f"(this build understands 1)")
    cell_ids: List[str] = [cell["id"] for cell in doc["cells"]]
    if len(set(cell_ids)) != len(cell_ids):
        dupes = sorted({c for c in cell_ids if cell_ids.count(c) > 1})
        raise SchemaError("$.cells", f"duplicate cell ids {dupes}")


EVAL_MATRIX = register_kind(KindSpec(
    name="repro-eval-matrix", schema_version=1,
    flat_schema=MATRIX_SCHEMA, check=_check_matrix))


# ---------------------------------------------------------------------------
# repro-fuzz-report
# ---------------------------------------------------------------------------

_SIGNATURE = {
    "type": "object",
    "required": ["status", "kind", "oracle"],
    "properties": {
        "status": {"type": "string"},
        "kind": {"type": "string"},
        "oracle": {"type": "string"},
    },
}

_NULLABLE_STRING = {"type": ["string", "null"]}

FUZZ_SCHEMA = {
    "type": "object",
    "required": ["kind", "schema_version", "repro_version", "config",
                 "oracles", "counts", "detection", "replay", "findings",
                 "model"],
    "properties": {
        "kind": {"const": "repro-fuzz-report"},
        "schema_version": {"type": "integer"},
        "repro_version": {"type": "string"},
        "config": {
            "type": "object",
            "required": ["seed", "budget", "nprocs", "max_steps",
                         "max_stmts", "bug_ratio", "corpus_dir",
                         "include_known_bugs", "chunk_size"],
            "properties": {
                "seed": {"type": "integer"},
                "budget": {"type": "integer"},
                "nprocs": {"type": "integer"},
                "max_steps": {"type": "integer"},
                "max_stmts": {"type": "integer"},
                "bug_ratio": {"type": "number"},
                "corpus_dir": _NULLABLE_STRING,
                "include_known_bugs": {"type": "boolean"},
                "chunk_size": {"type": "integer"},
            },
        },
        "oracles": {"type": "array", "minItems": 1,
                    "items": {"type": "string"}},
        "counts": {
            "type": "object",
            "required": ["programs", "generated", "seeded", "agree",
                         "rejected", "disagreements",
                         "static_disagreements", "hard_failures",
                         "generator_rejects", "replayed",
                         "replay_mismatches", "minimized",
                         "new_corpus_cases", "corpus_cases"],
            "additionalProperties": {"type": "integer"},
        },
        "detection": {
            "type": "object",
            "additionalProperties": {
                "type": "object",
                "required": ["detected", "missed", "skipped"],
                "additionalProperties": {"type": "integer"},
            },
        },
        "replay": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["digest", "name", "ok", "recorded",
                             "observed"],
                "properties": {
                    "digest": {"type": "string"},
                    "name": {"type": "string"},
                    "ok": {"type": "boolean"},
                    "recorded": _SIGNATURE,
                    "observed": _SIGNATURE,
                },
            },
        },
        "findings": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["name", "status", "kind", "oracle",
                             "expected", "origin", "source",
                             "minimized_source", "digest", "in_corpus"],
                "properties": {
                    "name": {"type": "string"},
                    "status": {"enum": ["rejected", "disagreement",
                                        "static_disagreement",
                                        "hard_failure"]},
                    "kind": {"type": "string"},
                    "oracle": {"type": "string"},
                    "detail": {"type": "string"},
                    "expected": {"enum": ["correct", "incorrect"]},
                    "origin": {"type": "string"},
                    "source": {"type": "string"},
                    "minimized_source": _NULLABLE_STRING,
                    "digest": _NULLABLE_STRING,
                    "in_corpus": {"type": "boolean"},
                },
            },
        },
        "model": {
            "type": ["object", "null"],
            "required": ["method", "checked", "agreements",
                         "disagreements"],
            "properties": {
                "method": {"type": "string"},
                "checked": {"type": "integer"},
                "agreements": {"type": "integer"},
                "disagreements": {"type": "integer"},
            },
        },
    },
}


def _check_fuzz(doc: Mapping[str, Any]) -> None:
    version = doc["schema_version"]
    if version != 1:
        raise SchemaError("$.schema_version",
                          f"unsupported fuzz report schema {version} "
                          f"(this build understands 1)")


FUZZ_REPORT = register_kind(KindSpec(
    name="repro-fuzz-report", schema_version=1,
    flat_schema=FUZZ_SCHEMA, check=_check_fuzz))


# ---------------------------------------------------------------------------
# repro-perf-profile
# ---------------------------------------------------------------------------

PROFILE_SCHEMA = {
    "type": "object",
    "required": ["kind", "schema_version", "dataset", "samples", "method",
                 "opt_level", "workers", "wall_sec", "samples_per_sec",
                 "stage_sec", "stage_counts", "stage_total_sec", "coverage"],
    "properties": {
        "kind": {"const": "repro-perf-profile"},
        "schema_version": {"type": "integer"},
        "dataset": {"type": "string"},
        "samples": {"type": "integer"},
        "method": {"type": "string"},
        "opt_level": {"type": "string"},
        "workers": {"type": "integer"},
        "wall_sec": {"type": "number"},
        "samples_per_sec": {"type": "number"},
        "stage_sec": {"type": "object",
                      "additionalProperties": {"type": "number"}},
        "stage_counts": {"type": "object",
                         "additionalProperties": {"type": "integer"}},
        "stage_total_sec": {"type": "number"},
        "coverage": {"type": "number"},
        "engine_counters": {"type": "object"},
        "notes": {"type": "string"},
    },
}


def _check_profile(doc: Mapping[str, Any]) -> None:
    from repro.perf import SCHEMA_VERSION, STAGES

    if doc["schema_version"] != SCHEMA_VERSION:
        raise SchemaError("$.schema_version",
                          f"unsupported schema version "
                          f"{doc['schema_version']} (this build "
                          f"understands {SCHEMA_VERSION})")
    unknown = sorted(set(doc["stage_sec"]) - set(STAGES))
    if unknown:
        raise SchemaError("$.stage_sec", f"unknown stages {unknown}")


PERF_PROFILE = register_kind(KindSpec(
    name="repro-perf-profile", schema_version=1,
    flat_schema=PROFILE_SCHEMA, check=_check_profile))


# ---------------------------------------------------------------------------
# repro.detection-pipeline (the pipeline-artifact manifest)
# ---------------------------------------------------------------------------

#: The manifest predates the ``kind`` convention: its flat form carries
#: the kind name under ``format``.  The envelope form uses ``kind`` like
#: everyone else; flattening restores ``format`` for old consumers.
MANIFEST_SCHEMA = {
    "type": "object",
    "required": ["format", "schema_version", "stages", "label_mode"],
    "properties": {
        "format": {"const": "repro.detection-pipeline"},
        "schema_version": {"type": "integer"},
        "repro_version": {"type": "string"},
        "method": _NULLABLE_STRING,
        "fitted": {"type": "boolean"},
        "stages": {"type": "object"},
        "label_mode": {"type": "string"},
    },
}


def _check_manifest(doc: Mapping[str, Any]) -> None:
    version = doc.get("schema_version")
    if not isinstance(version, bool) and isinstance(version, int):
        if version < 1:
            raise SchemaError("$.schema_version",
                              f"bad schema_version {version!r}")
        if version > 1:
            raise SchemaError(
                "$.schema_version",
                f"artifact schema v{version} is newer than this build "
                f"(supports up to v1); upgrade repro to load it")
    else:
        raise SchemaError("$.schema_version",
                          f"bad schema_version {version!r}")
    stages = doc.get("stages")
    if not isinstance(stages, Mapping):
        raise SchemaError("$.stages",
                          "manifest is missing its 'stages' table")
    for role in ("frontend", "featurizer", "classifier"):
        entry = stages.get(role)
        if not isinstance(entry, Mapping) or "name" not in entry:
            raise SchemaError(f"$.stages.{role}",
                              f"manifest stage {role!r} is missing or "
                              "has no 'name'")
    if doc.get("label_mode") not in ("binary", "type"):
        raise SchemaError("$.label_mode",
                          f"bad label_mode {doc.get('label_mode')!r}")


PIPELINE_MANIFEST = register_kind(KindSpec(
    name="repro.detection-pipeline", schema_version=1,
    flat_schema=MANIFEST_SCHEMA, check=_check_manifest,
    kind_key="format"))
