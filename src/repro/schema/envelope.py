"""The unified artifact envelope.

Every persisted artifact the project ships — pipeline-manifest, eval
matrix, fuzz report, perf profile, and anything a fleet node wants to
hand a peer — used to carry its own ad-hoc framing.  This module makes
the framing one shape::

    {
        "kind":           "repro-eval-matrix",      # registered kind name
        "schema_version": 1,                        # of the kind's payload
        "repro_version":  "0.9.0",                  # writer's build
        "digest":         "<sha256 of canonical payload JSON>",
        "payload":        { ... the kind-specific document ... }
    }

and validation one call: :func:`validate_envelope` checks the framing,
verifies the content digest, then applies the kind's registered payload
schema and semantic checks.  It returns the *flat* document (payload
merged with the framing keys) because that is what every in-memory
consumer already speaks — and for the same reason it transparently
accepts legacy flat documents (pre-envelope artifacts such as committed
baselines), so old files keep loading while new files are written as
envelopes.

Kinds self-register via :func:`register_kind`; the built-ins live in
:mod:`repro.schema.kinds` and the fleet CAS registers its stats kind in
:mod:`repro.fleet.cas`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional

from repro.schema.validator import SchemaError, validate

#: The framing keys an envelope owns; everything else is payload.
FRAMING_KEYS = ("kind", "schema_version", "repro_version", "digest",
                "payload")

ENVELOPE_SCHEMA = {
    "type": "object",
    "required": list(FRAMING_KEYS),
    "properties": {
        "kind": {"type": "string"},
        "schema_version": {"type": "integer"},
        "repro_version": {"type": "string"},
        "digest": {"type": "string"},
        "payload": {"type": "object"},
    },
}


@dataclass(frozen=True)
class KindSpec:
    """One registered artifact kind.

    ``flat_schema`` validates the *flat* (merged) document — the shape
    all in-memory consumers use and legacy files are stored in.
    ``check`` runs semantic invariants the schema language can't express
    (supported version, duplicate ids, ...) and raises SchemaError.
    ``kind_key`` is the flat key carrying the kind name ("kind" for
    every modern artifact; "format" for pipeline manifests, whose flat
    form predates the convention).
    """

    name: str
    schema_version: int
    flat_schema: Mapping[str, Any] = field(default_factory=dict)
    check: Optional[Callable[[Mapping[str, Any]], None]] = None
    kind_key: str = "kind"


_KINDS: Dict[str, KindSpec] = {}


def register_kind(spec: KindSpec) -> KindSpec:
    """Register (or replace) an artifact kind; returns ``spec``."""
    _KINDS[spec.name] = spec
    return spec


def registered_kinds() -> Dict[str, KindSpec]:
    _ensure_builtin_kinds()
    return dict(_KINDS)


def _ensure_builtin_kinds() -> None:
    # The built-in kinds register on first use, not at package import,
    # so repro.schema stays import-light (kinds.py reaches into perf
    # and pipeline constants).
    if "repro-eval-matrix" not in _KINDS:
        import repro.schema.kinds  # noqa: F401  (registers on import)


def _kind_of(doc: Mapping[str, Any]) -> KindSpec:
    name = doc.get("kind") or doc.get("format")
    if not isinstance(name, str):
        raise SchemaError("$.kind", "document declares no artifact kind")
    spec = _KINDS.get(name)
    if spec is None:
        raise SchemaError("$.kind",
                          f"unknown artifact kind {name!r} (registered: "
                          f"{sorted(_KINDS)})")
    return spec


def payload_digest(payload: Mapping[str, Any]) -> str:
    """sha256 over the canonical JSON form of ``payload``."""
    canonical = json.dumps(payload, sort_keys=True,
                           separators=(",", ":"), ensure_ascii=False)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def is_envelope(doc: Any) -> bool:
    """Structural test: envelope form vs legacy flat form."""
    return (isinstance(doc, Mapping)
            and isinstance(doc.get("payload"), Mapping)
            and "digest" in doc and "kind" in doc)


def make_envelope(flat_doc: Mapping[str, Any]) -> Dict[str, Any]:
    """Wrap a flat artifact document into its envelope.

    The kind is read from the document's own ``kind``/``format`` key;
    framing keys are lifted out, everything else becomes the payload,
    and the content digest is computed over the payload.
    """
    _ensure_builtin_kinds()
    spec = _kind_of(flat_doc)
    framing = (spec.kind_key, "schema_version", "repro_version")
    payload = {k: v for k, v in flat_doc.items() if k not in framing}
    version = flat_doc.get("schema_version", spec.schema_version)
    repro_version = flat_doc.get("repro_version")
    if repro_version is None:
        from repro import __version__ as repro_version
    return {
        "kind": spec.name,
        "schema_version": version,
        "repro_version": repro_version,
        "digest": payload_digest(payload),
        "payload": payload,
    }


def _flatten(envelope: Mapping[str, Any], spec: KindSpec) -> Dict[str, Any]:
    flat = dict(envelope["payload"])
    flat[spec.kind_key] = spec.name
    flat["schema_version"] = envelope["schema_version"]
    # Only kinds whose flat shape carries repro_version get it merged
    # back — perf profiles, for one, never did, and flat → envelope →
    # flat must round-trip exactly.
    properties = (spec.flat_schema or {}).get("properties", {})
    if "repro_version" in properties:
        flat.setdefault("repro_version", envelope["repro_version"])
    return flat


def validate_envelope(doc: Any) -> Dict[str, Any]:
    """Validate an artifact document in either form; return it flat.

    Envelope form: framing schema, content-digest integrity, then the
    kind's flat schema + semantic checks over the merged document.
    Legacy flat form: the kind's flat schema + checks directly.
    Raises :class:`SchemaError` on any violation.
    """
    _ensure_builtin_kinds()
    if not isinstance(doc, Mapping):
        raise SchemaError("$", f"expected object, got {type(doc).__name__}")
    if is_envelope(doc):
        validate(doc, ENVELOPE_SCHEMA)
        spec = _kind_of(doc)
        expected = payload_digest(doc["payload"])
        if doc["digest"] != expected:
            raise SchemaError(
                "$.digest",
                f"content digest mismatch: envelope says "
                f"{doc['digest'][:16]}…, payload hashes to "
                f"{expected[:16]}… (corrupt or hand-edited artifact)")
        flat = _flatten(doc, spec)
    else:
        spec = _kind_of(doc)
        flat = dict(doc)
    if spec.flat_schema:
        validate(flat, spec.flat_schema)
    if spec.check is not None:
        spec.check(flat)
    return flat


def validate_kind(name: str, doc: Any) -> Dict[str, Any]:
    """Like :func:`validate_envelope`, pinned to one kind.

    The per-kind shims (``validate_matrix_artifact``, ...) use this so a
    structurally valid document of the *wrong* kind is still rejected.
    """
    _ensure_builtin_kinds()
    spec = _KINDS.get(name)
    if spec is None:
        raise SchemaError("$.kind", f"unknown artifact kind {name!r}")
    if is_envelope(doc):
        if doc.get("kind") != name:
            raise SchemaError("$.kind", f"expected {name!r}, "
                                        f"got {doc.get('kind')!r}")
        return validate_envelope(doc)
    if not isinstance(doc, Mapping):
        raise SchemaError("$", f"expected object, got {type(doc).__name__}")
    if spec.flat_schema:
        validate(doc, spec.flat_schema)
    if spec.check is not None:
        spec.check(doc)
    return dict(doc)


def save_envelope(flat_doc: Mapping[str, Any], path: str,
                  kind: Optional[str] = None) -> None:
    """Validate ``flat_doc`` and write it to ``path`` in envelope form
    (sorted keys, trailing newline → byte-stable)."""
    if kind is not None:
        validate_kind(kind, flat_doc)      # flat-path error messages
    else:
        validate_envelope(flat_doc)
    envelope = make_envelope(flat_doc)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(envelope, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_envelope(path: str) -> Dict[str, Any]:
    """Read an artifact written by :func:`save_envelope` — or a legacy
    flat file — validate it, and return the flat document."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    return validate_envelope(doc)
