"""Repair orchestration: one case, a corpus, or a generated batch.

``repair_source`` is the pure per-case primitive — gate the input,
propose candidates (hint- and finding-localized), gate candidates until
one is accepted or the attempt budget runs out.  Pure means it fans out
through ``ExecutionEngine.map`` exactly like the fuzz harness: same
tasks ⇒ same report, independent of worker count.

Outcomes:

* ``already_clean`` — the unpatched program passes the full gate; the
  repair is a validated no-op and **no patch is emitted** (this is the
  "zero false repairs on correct programs" guarantee);
* ``repaired`` — a candidate passed every trusted oracle and compiled
  byte-deterministically; the entry carries the unified diff, the
  repaired source and its digest, and both gate verdicts;
* ``unrepaired`` — no candidate within the attempt budget convinced
  the gate; the before-verdict documents what still fails.
"""

from __future__ import annotations

import difflib
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.datasets.mutation import source_digest
from repro.obs.metrics import METRICS
from repro.obs.trace import TRACER
from repro.repair.gate import run_gate
from repro.repair.operators import propose
from repro.repair.report import validate_repair_report

_REPAIR_CASES = METRICS.counter(
    "repro_repair_cases_total",
    "Repair cases processed, by outcome.", labelnames=("outcome",))
_REPAIR_ATTEMPTS = METRICS.counter(
    "repro_repair_attempts_total",
    "Candidate patches pushed through the validation gate.")
_REPAIR_VALIDATED = METRICS.counter(
    "repro_repair_validated_total",
    "Candidate patches accepted by the gate (all trusted oracles clean, "
    "byte-deterministic compile).")

#: ``origin`` marker the fuzz grammar appends when it injects a bug.
_MUTATED_TAG = "|mutated:"


@dataclass(frozen=True)
class RepairConfig:
    """Everything a repair run depends on (no clocks, no environment)."""

    nprocs: int = 3
    max_steps: int = 120_000
    max_attempts: int = 12
    chunk_size: int = 4

    def __post_init__(self):
        if not 2 <= self.nprocs <= 8:
            raise ValueError("nprocs must be in [2, 8]")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")


@dataclass(frozen=True)
class RepairTask:
    """One program to repair, with optional ground-truth provenance."""

    name: str
    source: str
    hint: Optional[str] = None       # injected mutation operator, if known
    origin: str = ""


def hint_from_origin(origin: str) -> Optional[str]:
    """The injected operator name from a fuzz origin, if recorded."""
    if _MUTATED_TAG in origin:
        return origin.rsplit(_MUTATED_TAG, 1)[1]
    return None


def _unified_patch(name: str, before: str, after: str) -> str:
    return "".join(difflib.unified_diff(
        before.splitlines(keepends=True), after.splitlines(keepends=True),
        fromfile=f"a/{name}", tofile=f"b/{name}"))


def repair_source(name: str, source: str, *, nprocs: int = 3,
                  max_steps: int = 120_000, max_attempts: int = 12,
                  hint: Optional[str] = None, origin: str = "",
                  ) -> Dict[str, Any]:
    """Gate, localize, propose, validate: one case end to end."""
    started_at = time.perf_counter()
    before = run_gate(name, source, nprocs=nprocs, max_steps=max_steps)
    entry: Dict[str, Any] = {
        "name": name,
        "case_digest": source_digest(source),
        "origin": origin,
        "operator_hint": hint,
        "detected": not before.clean,
        "outcome": "already_clean",
        "repaired": False,
        "attempts": 0,
        "operator": "",
        "note": "",
        "patch": "",
        "repaired_source": None,
        "repaired_digest": "",
        "before": before.as_dict(),
        "after": None,
    }
    if not before.clean:
        findings: Sequence = ()
        try:
            from repro.verify.static import analyze_source

            _verdict, findings = analyze_source(source, name=name,
                                                nprocs=nprocs)
        except Exception:
            findings = ()
        candidates = propose(source, nprocs=nprocs, hint=hint,
                             findings=findings)
        entry["outcome"] = "unrepaired"
        for candidate in candidates[:max_attempts]:
            entry["attempts"] += 1
            if METRICS.enabled:
                _REPAIR_ATTEMPTS.inc()
            after = run_gate(name, candidate.source, nprocs=nprocs,
                             max_steps=max_steps)
            if not after.clean:
                continue
            if METRICS.enabled:
                _REPAIR_VALIDATED.inc()
            entry.update(outcome="repaired", repaired=True,
                         operator=candidate.operator, note=candidate.note,
                         patch=_unified_patch(name, source,
                                              candidate.source),
                         repaired_source=candidate.source,
                         repaired_digest=source_digest(candidate.source),
                         after=after.as_dict())
            break
    if METRICS.enabled:
        _REPAIR_CASES.labels(entry["outcome"]).inc()
    TRACER.record("repair.case", kind="repair", start_s=started_at,
                  elapsed_s=time.perf_counter() - started_at,
                  attrs={"name": name, "outcome": entry["outcome"],
                         "attempts": entry["attempts"]})
    return entry


def _repair_worker(payload: Tuple[str, str, Optional[str], str, int, int,
                                  int]) -> Dict[str, Any]:
    name, source, hint, origin, nprocs, max_steps, max_attempts = payload
    return repair_source(name, source, nprocs=nprocs, max_steps=max_steps,
                         max_attempts=max_attempts, hint=hint,
                         origin=origin)


def repair_tasks(tasks: Sequence[RepairTask], config: RepairConfig,
                 engine: Any = None) -> List[Dict[str, Any]]:
    """Repair every task through the engine; results in input order."""
    from repro.engine import default_engine
    from repro.fuzz.harness import _warm_stages

    engine = engine or default_engine()
    if tasks and engine.workers > 0:
        _warm_stages()
    payloads = [(t.name, t.source, t.hint, t.origin, config.nprocs,
                 config.max_steps, config.max_attempts) for t in tasks]
    return engine.map(_repair_worker, payloads,
                      chunk_size=config.chunk_size)


def corpus_tasks(corpus_dir: str) -> List[RepairTask]:
    """Every stored corpus case as a repair task (digest order)."""
    from repro.fuzz.corpus import CorpusStore

    return [RepairTask(name=c.name, source=c.source,
                       hint=hint_from_origin(c.origin), origin=c.origin)
            for c in CorpusStore(corpus_dir).cases()]


def generated_tasks(seed: int, budget: int, nprocs: int = 3,
                    max_stmts: int = 5, bug_ratio: float = 0.4,
                    include_correct: bool = False) -> List[RepairTask]:
    """Seed-deterministic mutants from the fuzz grammar, as tasks.

    The committed ``ci/fuzz-corpus`` cases are minimized findings
    without mutation metadata; the grammar's mutants are where
    ground-truth ``|mutated:<op>`` provenance (the repair-rate
    denominator) comes from.  ``include_correct`` adds the generated
    *correct* programs too — the no-false-repair control group.
    """
    from repro.fuzz.grammar import FuzzGrammarConfig, generate_programs

    grammar = FuzzGrammarConfig(seed=seed, nprocs=nprocs,
                                max_stmts=max_stmts, bug_ratio=bug_ratio)
    tasks: List[RepairTask] = []
    for program in generate_programs(grammar, budget):
        hint = hint_from_origin(program.origin)
        if hint is None and not include_correct:
            continue
        tasks.append(RepairTask(name=program.name, source=program.source,
                                hint=hint, origin=program.origin))
    return tasks


def build_report(entries: Sequence[Dict[str, Any]], config: RepairConfig,
                 corpus_dir: Optional[str] = None,
                 seed: Optional[int] = None,
                 budget: Optional[int] = None) -> Dict[str, Any]:
    """Assemble and validate the ``repro-repair-report`` document."""
    from repro import __version__

    counts = {"cases": len(entries), "with_ground_truth": 0,
              "detected": 0, "repaired": 0, "already_clean": 0,
              "unrepaired": 0, "clean_after": 0, "attempts": 0}
    by_operator: Dict[str, Dict[str, int]] = {}
    gt_clean = 0
    for entry in entries:
        counts[entry["outcome"]] += 1
        counts["attempts"] += entry["attempts"]
        if entry["detected"]:
            counts["detected"] += 1
        clean_after = entry["outcome"] in ("repaired", "already_clean")
        if clean_after:
            counts["clean_after"] += 1
        hint = entry["operator_hint"]
        if hint is not None:
            counts["with_ground_truth"] += 1
            if clean_after:
                gt_clean += 1
            row = by_operator.setdefault(
                hint, {"total": 0, "repaired": 0, "already_clean": 0,
                       "unrepaired": 0})
            row["total"] += 1
            row[entry["outcome"]] += 1
    rate = (gt_clean / counts["with_ground_truth"]
            if counts["with_ground_truth"] else None)
    doc: Dict[str, Any] = {
        "kind": "repro-repair-report",
        "schema_version": 1,
        "repro_version": __version__,
        "config": {"nprocs": config.nprocs,
                   "max_steps": config.max_steps,
                   "max_attempts": config.max_attempts,
                   "corpus_dir": corpus_dir, "seed": seed,
                   "budget": budget},
        "counts": counts,
        "by_operator": by_operator,
        "repair_rate": rate,
        "cases": list(entries),
    }
    validate_repair_report(doc)        # never emit an invalid report
    return doc
