"""``repro.repair`` — rule-based automated repair closing the loop.

Detection without repair leaves every campaign finding as a report; this
package turns findings into candidate patches.  Three layers:

* :mod:`.operators` — **inverse mutation operators**: for each bug
  injector in :mod:`repro.datasets.mutation` (call removal, tag / count /
  rank / root perturbation, datatype swap, detached ``MPI_Isend``), a
  rule that proposes candidate patches from the program text, localized
  by the mutation's own syntactic signature (the ``/* call removed by
  mutation */`` marker, a ``-1`` count, a ``9999`` peer, a literal
  ``rank`` root, an uncompleted ``&mut_req``) and ranked by any
  :class:`~repro.verify.static.StaticFinding` witnesses available.
* :mod:`.gate` — the **validation gate**: every candidate re-runs the
  full differential harness (compile O0+O2 with IR verification →
  program graph → embedding → simulation → verify-tool analogues +
  static analyzer) and is accepted only if every trusted oracle goes
  clean *and* compilation is byte-deterministic.
* :mod:`.runner` / :mod:`.report` — corpus-scale orchestration through
  the execution engine and the schema-checked ``REPAIR_report.json``
  envelope artifact (kind ``repro-repair-report``).

Served online as ``POST /v1/repair`` (:mod:`repro.serve`, routed by the
fleet front door) and offline as ``repro repair <file|--corpus>``.
"""

from repro.repair.gate import GateVerdict, deterministic_compile, run_gate
from repro.repair.operators import INVERSE_RULES, CandidatePatch, propose
from repro.repair.report import (
    REPAIR_KIND,
    load_repair_report,
    render_repair_report,
    save_repair_report,
    validate_repair_report,
)
from repro.repair.runner import (
    RepairConfig,
    RepairTask,
    build_report,
    corpus_tasks,
    generated_tasks,
    hint_from_origin,
    repair_source,
    repair_tasks,
)

__all__ = [
    "CandidatePatch", "INVERSE_RULES", "propose",
    "GateVerdict", "run_gate", "deterministic_compile",
    "REPAIR_KIND", "validate_repair_report", "save_repair_report",
    "load_repair_report", "render_repair_report",
    "RepairConfig", "RepairTask", "repair_source", "repair_tasks",
    "corpus_tasks", "generated_tasks", "build_report",
    "hint_from_origin",
]
