"""The ``repro-repair-report`` artifact kind (``REPAIR_report.json``).

Like every persisted artifact, the repair report is a digest-verified
schema envelope (:mod:`repro.schema`): the runner refuses to emit an
invalid document and the CI gate refuses to consume one.  Per-case
provenance is the point — each entry records the case digest, the
operator hint and the inverse rule that landed, full trusted-oracle
verdicts before and after, the attempt count, and the unified diff.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Mapping

from repro.schema import SchemaError, validate  # noqa: F401  (re-export)
from repro.schema.envelope import KindSpec, register_kind

REPAIR_KIND = "repro-repair-report"

_NULLABLE_STRING = {"type": ["string", "null"]}

#: A gate verdict (see :class:`repro.repair.gate.GateVerdict`).
_GATE_BLOCK = {
    "type": "object",
    "required": ["clean", "status", "kind", "oracle", "deterministic",
                 "oracles"],
    "properties": {
        "clean": {"type": "boolean"},
        "status": {"type": "string"},
        "kind": {"type": "string"},
        "oracle": {"type": "string"},
        "detail": {"type": "string"},
        "deterministic": {"type": "boolean"},
        "oracles": {"type": "object",
                    "additionalProperties": {"type": "string"}},
    },
}

_CASE_SCHEMA = {
    "type": "object",
    "required": ["name", "case_digest", "origin", "operator_hint",
                 "detected", "outcome", "repaired", "attempts",
                 "operator", "patch", "before", "after"],
    "properties": {
        "name": {"type": "string"},
        "case_digest": {"type": "string"},
        "origin": {"type": "string"},
        "operator_hint": _NULLABLE_STRING,
        "detected": {"type": "boolean"},
        "outcome": {"enum": ["repaired", "already_clean", "unrepaired"]},
        "repaired": {"type": "boolean"},
        "attempts": {"type": "integer"},
        "operator": {"type": "string"},
        "note": {"type": "string"},
        "patch": {"type": "string"},
        "repaired_source": _NULLABLE_STRING,
        "repaired_digest": {"type": "string"},
        "before": _GATE_BLOCK,
        "after": {"type": ["object", "null"],
                  "required": _GATE_BLOCK["required"],
                  "properties": _GATE_BLOCK["properties"]},
    },
}

REPAIR_SCHEMA = {
    "type": "object",
    "required": ["kind", "schema_version", "repro_version", "config",
                 "counts", "by_operator", "repair_rate", "cases"],
    "properties": {
        "kind": {"const": REPAIR_KIND},
        "schema_version": {"type": "integer"},
        "repro_version": {"type": "string"},
        "config": {
            "type": "object",
            "required": ["nprocs", "max_steps", "max_attempts"],
            "properties": {
                "nprocs": {"type": "integer"},
                "max_steps": {"type": "integer"},
                "max_attempts": {"type": "integer"},
                "corpus_dir": _NULLABLE_STRING,
                "seed": {"type": ["integer", "null"]},
                "budget": {"type": ["integer", "null"]},
            },
        },
        "counts": {
            "type": "object",
            "required": ["cases", "with_ground_truth", "detected",
                         "repaired", "already_clean", "unrepaired",
                         "clean_after", "attempts"],
            "additionalProperties": {"type": "integer"},
        },
        "by_operator": {
            "type": "object",
            "additionalProperties": {
                "type": "object",
                "additionalProperties": {"type": "integer"},
            },
        },
        #: clean-after / with-ground-truth; null when no case carries
        #: mutation metadata (nothing to measure against).
        "repair_rate": {"type": ["number", "null"]},
        "cases": {"type": "array", "items": _CASE_SCHEMA},
    },
}


def _check_repair(doc: Mapping[str, Any]) -> None:
    version = doc["schema_version"]
    if version != 1:
        raise SchemaError("$.schema_version",
                          f"unsupported repair report schema {version} "
                          f"(this build understands 1)")
    for i, case in enumerate(doc["cases"]):
        if case["repaired"] and case["after"] is None:
            raise SchemaError(f"$.cases[{i}].after",
                              "repaired case without an after-verdict")
        if case["repaired"] and case["outcome"] != "repaired":
            raise SchemaError(f"$.cases[{i}].outcome",
                              "repaired flag disagrees with outcome")


REPAIR_REPORT = register_kind(KindSpec(
    name=REPAIR_KIND, schema_version=1,
    flat_schema=REPAIR_SCHEMA, check=_check_repair))


def validate_repair_report(doc: Any) -> None:
    """Raise :class:`~repro.schema.SchemaError` unless ``doc`` is a
    repair report (envelope or flat form) this build understands."""
    from repro.schema import validate_kind

    validate_kind(REPAIR_KIND, doc)


def save_repair_report(doc: Dict[str, Any], path: str) -> None:
    """Validate and write in envelope form (sorted keys → byte-stable)."""
    from repro.schema import save_envelope

    save_envelope(doc, path, kind=REPAIR_KIND)


def load_repair_report(path: str) -> Dict[str, Any]:
    """Read a saved report (or a legacy flat file); return the flat doc."""
    from repro.schema import validate_kind

    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    return validate_kind(REPAIR_KIND, doc)


def render_repair_report(doc: Dict[str, Any]) -> str:
    """Human-readable summary for the CLI."""
    c = doc["counts"]
    rate = doc["repair_rate"]
    lines = [
        f"repair run ({c['cases']} cases, "
        f"{c['with_ground_truth']} with ground-truth mutation metadata)",
        f"  repaired        {c['repaired']:>6}",
        f"  already clean   {c['already_clean']:>6}",
        f"  unrepaired      {c['unrepaired']:>6}",
        f"  gate attempts   {c['attempts']:>6}",
        f"  repair rate     {'n/a' if rate is None else f'{rate:.2f}'}"
        "  (clean-after / ground-truth)",
    ]
    by_op = doc.get("by_operator") or {}
    if by_op:
        lines.append("  by injected operator:")
        for op, row in sorted(by_op.items()):
            total = row.get("total", 0)
            clean = row.get("repaired", 0) + row.get("already_clean", 0)
            lines.append(f"    {op:<20} {clean:>3}/{total:<3} clean")
    for case in doc["cases"]:
        if case["outcome"] == "unrepaired":
            lines.append(f"  [unrepaired] {case['name']}: "
                         f"{case['before']['kind']} "
                         f"({case['before']['oracle']}) after "
                         f"{case['attempts']} attempt(s)")
    return "\n".join(lines)
