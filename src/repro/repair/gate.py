"""The repair validation gate — the differential harness as judge.

A candidate patch is *accepted* only when the full detection chain that
found the bug can no longer find anything: compile at O0 and O2 with IR
verification, program graph, embedding, runtime simulation, and every
trusted verify-tool analogue plus the static dataflow analyzer — all
clean (:func:`repro.fuzz.harness.check_source` returning ``agree``), and
the compile must be **byte-deterministic**: two independent compilations
at each opt level print identical IR, so an accepted patch can never
smuggle nondeterminism past the fleet's content-addressed cache (routing
and caching both key on byte identity).

The same gate runs on the *unpatched* input first: a program the gate
already accepts needs no repair, and the runner turns that into a
validated no-op instead of a patch — the "zero false repairs" half of
the acceptance bar.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

#: Trusted-oracle verdicts that count as "the bug is still there".
FAILING_VERDICTS = ("incorrect", "timeout", "runtime_error")


@dataclass(frozen=True)
class GateVerdict:
    """Outcome of one gate run over one source."""

    clean: bool                  # every trusted oracle clean + det. compile
    status: str                  # harness status (agree/rejected/...)
    kind: str
    oracle: str                  # first complaining oracle, if any
    detail: str
    deterministic: bool          # double-compile printed identical IR
    oracles: Dict[str, str] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {"clean": self.clean, "status": self.status,
                "kind": self.kind, "oracle": self.oracle,
                "detail": self.detail,
                "deterministic": self.deterministic,
                "oracles": dict(self.oracles)}


def deterministic_compile(name: str, source: str) -> bool:
    """True iff two compilations at each opt level print identical IR."""
    from repro.frontend import compile_c
    from repro.ir.printer import print_module

    for opt_level in ("O0", "O2"):
        first = print_module(compile_c(source, name, opt_level,
                                       verify=True))
        second = print_module(compile_c(source, name, opt_level,
                                        verify=True))
        if first != second:
            return False
    return True


def run_gate(name: str, source: str, nprocs: int = 3,
             max_steps: int = 120_000) -> GateVerdict:
    """Push one source through the whole harness; judge it."""
    from repro.fuzz.harness import check_source

    record = check_source(name, source, expected="correct",
                          nprocs=nprocs, max_steps=max_steps)
    agreed = record["status"] == "agree"
    deterministic = False
    if agreed:
        try:
            deterministic = deterministic_compile(name, source)
        except Exception:                      # a flaky compile is a veto
            deterministic = False
    return GateVerdict(clean=agreed and deterministic,
                       status=record["status"], kind=record["kind"],
                       oracle=record["oracle"],
                       detail=record["detail"],
                       deterministic=deterministic,
                       oracles=dict(record["oracles"]))
