"""Inverse mutation operators — candidate patches from program text.

Each bug injector in :mod:`repro.datasets.mutation` leaves a syntactic
signature behind: ``drop_call`` a ``/* call removed by mutation */``
marker (whose single-line rank guard survives the deletion),
``invalid_count`` a ``-1`` count, ``invalid_rank`` a ``9999`` peer,
``root_divergence`` a literal ``rank`` root, ``detach_wait`` an
``MPI_Isend`` completed by nobody with a telltale ``&mut_req`` last
argument, and the matching perturbations (``tag_mismatch``,
``datatype_mismatch``) a send/recv pair whose envelopes disagree.  The
rules here invert those signatures: every rule scans the source with the
same single-statement-per-line parser the mutators use
(:func:`repro.datasets.mutation.find_mpi_calls`) and proposes candidate
sources, each a single textual edit of the input.

Proposals are *candidates*, not repairs: nothing here runs an oracle.
The validation gate (:mod:`repro.repair.gate`) decides.  Rules are
therefore free to over-propose — e.g. aligning a mismatched tag in both
directions — as long as candidate lists stay small and deterministic:
same source (and hint) ⇒ same candidates in the same order, so corpus
repairs are reproducible across worker counts.

Localization hooks: the originating mutation operator's name (recovered
from a fuzz ``origin`` of the form ``...|mutated:<op>``) moves that
operator's rules to the front, and
:class:`~repro.verify.static.StaticFinding` rows (whose ``call`` names
the flagged callee) stably rank candidates editing a flagged call first.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.datasets.mutation import (
    _ARG_SLOTS,
    _DATATYPES,
    MPICall,
    _ArgSlots,
    _replace_span,
    find_mpi_calls,
)

#: Comment the ``drop_call`` mutator leaves where a statement used to be.
DROP_MARKER = "/* call removed by mutation */"
#: Comment our orphan-deletion rule leaves, so a repaired source still
#: tells its own story (and never re-matches :data:`DROP_MARKER`).
REPAIR_MARKER = "/* call removed by repair */"

_GUARD_RE = re.compile(r"if\s*\(\s*rank\s*==\s*(\d+)\s*\)")
#: A drop-site line: same prefix/suffix shape as the mutators'
#: ``_CALL_RE``, with the marker comment where the call was.
_MARKER_RE = re.compile(
    r"^([ \t]*(?:if[ \t]*\([^)\n]*\)[ \t]*\{[ \t]*)?)"
    + re.escape(DROP_MARKER)
    + r"([ \t]*\}?[ \t]*)$",
    re.MULTILINE)
_STATUS_DECL_RE = re.compile(r"\bMPI_Status\s+([A-Za-z_]\w*)\s*;")
_ARRAY_DECL_RE = re.compile(
    r"\b(int|float|double|long|char)\s+([A-Za-z_]\w*)\s*\[\s*(\d+)\s*\]")

_CTYPE_TO_MPI = {"int": "MPI_INT", "float": "MPI_FLOAT",
                 "double": "MPI_DOUBLE", "long": "MPI_LONG",
                 "char": "MPI_CHAR"}
_MPI_TO_CTYPE = {v: k for k, v in _CTYPE_TO_MPI.items()}

_SEND_NAMES = ("MPI_Send", "MPI_Ssend", "MPI_Rsend", "MPI_Bsend",
               "MPI_Isend", "MPI_Issend")
_RECV_NAMES = ("MPI_Recv", "MPI_Irecv")


@dataclass(frozen=True)
class CandidatePatch:
    """One proposed repair: a whole replacement source plus provenance."""

    operator: str        # inverse-rule name, e.g. "restore_dropped_call"
    note: str            # human-readable one-liner of the edit
    source: str          # full candidate program text
    call: str = ""       # MPI callee the edit touches (finding ranking)


@dataclass
class _Site:
    """One parsed MPI call with its argument slots and rank guard."""

    call: MPICall
    slots: _ArgSlots
    guard: Optional[int]     # ``if (rank == N)`` single-line guard, if any

    def arg(self, field: str) -> Optional[str]:
        idx = getattr(self.slots, field)
        if 0 <= idx < len(self.call.args):
            return self.call.args[idx]
        return None


def _sites(source: str) -> List[_Site]:
    out: List[_Site] = []
    for call in find_mpi_calls(source):
        m = _GUARD_RE.search(call.indent)
        out.append(_Site(call, _ARG_SLOTS.get(call.name, _ArgSlots()),
                         int(m.group(1)) if m else None))
    return out


def _int_or_none(text: Optional[str]) -> Optional[int]:
    if text is not None and text.lstrip("-").isdigit():
        return int(text)
    return None


def _with_arg(source: str, site: _Site, slot: int, value: str,
              rule: str, note: str) -> CandidatePatch:
    """Candidate = ``source`` with one argument of one call rewritten."""
    call = site.call
    args = list(call.args)
    args[slot] = value
    new = MPICall(name=call.name, indent=call.indent, args=args,
                  start=call.start, end=call.end, suffix=call.suffix)
    return CandidatePatch(rule, note, _replace_span(source, call,
                                                    new.render()),
                          call=call.name)


def _pair_p2p(sites: Sequence[_Site], *, require_tag: bool = True,
              ) -> Tuple[List[Tuple[_Site, _Site]], List[_Site]]:
    """Greedy send↔recv pairing on complementary guard/peer envelopes.

    A send under ``if (rank == A)`` with peer ``B`` pairs with a recv
    under ``if (rank == B)`` with peer ``A`` (tags equal too unless
    ``require_tag`` is off — the tag-repair rule pairs *despite* the
    mismatch it is trying to fix).  Returns (pairs, unmatched p2p sites).
    """
    sends = [s for s in sites if s.call.name in _SEND_NAMES
             and s.slots.peer >= 0]
    recvs = [s for s in sites if s.call.name in _RECV_NAMES
             and s.slots.peer >= 0]
    used: set = set()
    pairs: List[Tuple[_Site, _Site]] = []
    unmatched: List[_Site] = []
    for send in sends:
        peer = _int_or_none(send.arg("peer"))
        hit = None
        for j, recv in enumerate(recvs):
            if j in used:
                continue
            if recv.guard is None or send.guard is None:
                continue
            if peer != recv.guard:
                continue
            if _int_or_none(recv.arg("peer")) != send.guard:
                continue
            if require_tag and send.arg("tag") != recv.arg("tag"):
                continue
            hit = j
            break
        if hit is None:
            unmatched.append(send)
        else:
            used.add(hit)
            pairs.append((send, recvs[hit]))
    unmatched.extend(r for j, r in enumerate(recvs) if j not in used)
    return pairs, unmatched


def _buffer_decls(source: str) -> List[Tuple[str, str, int]]:
    """``(ctype, name, extent)`` for every array declaration."""
    return [(c, n, int(e)) for c, n, e in _ARRAY_DECL_RE.findall(source)]


def _buffer_of(site: _Site) -> str:
    args = site.call.args
    return args[0].lstrip("&") if args else ""


# ---------------------------------------------------------------------------
# Inverse rules.  Each: (source, nprocs) -> [CandidatePatch].
# ---------------------------------------------------------------------------

def inv_detach_wait(source: str, nprocs: int) -> List[CandidatePatch]:
    """Complete (or re-block) an ``MPI_Isend`` detached by mutation."""
    out: List[CandidatePatch] = []
    status = _STATUS_DECL_RE.search(source)
    for site in _sites(source):
        call = site.call
        if call.name not in ("MPI_Isend", "MPI_Issend") or not call.args:
            continue
        if call.args[-1] != "&mut_req":
            continue
        blocking = "MPI_Send" if call.name == "MPI_Isend" else "MPI_Ssend"
        restored = MPICall(name=blocking, indent=call.indent,
                           args=call.args[:-1], start=call.start,
                           end=call.end, suffix=call.suffix)
        src = _replace_span(source, call, restored.render())
        # The mutator declared the request next to MPI_Init; retire it.
        src = src.replace("  MPI_Request mut_req;\n", "", 1)
        out.append(CandidatePatch(
            "restore_blocking_send",
            f"{call.name} -> {blocking}, request declaration removed",
            src, call=call.name))
        if status is not None:
            text = (f"{call.indent}{call.name}({', '.join(call.args)}); "
                    f"MPI_Wait(&mut_req, &{status.group(1)});{call.suffix}")
            out.append(CandidatePatch(
                "complete_request",
                f"MPI_Wait(&mut_req, ...) appended after {call.name}",
                _replace_span(source, call, text), call=call.name))
    return out


def inv_drop_call(source: str, nprocs: int) -> List[CandidatePatch]:
    """Rebuild a dropped call at its marker, or delete its orphan.

    The drop marker keeps the victim's single-line rank guard, so the
    executing rank of the lost call is known; the surviving half of the
    pair supplies the envelope (count, datatype, tag) to mirror back.
    Failing that, deleting the orphaned counterpart restores matching.
    """
    out: List[CandidatePatch] = []
    sites = _sites(source)
    _pairs, orphans = _pair_p2p(sites)
    decls = _buffer_decls(source)
    status = _STATUS_DECL_RE.search(source)
    for marker in _MARKER_RE.finditer(source):
        prefix, suffix = marker.group(1), marker.group(2)
        gm = _GUARD_RE.search(prefix)
        guard = int(gm.group(1)) if gm else None
        for orphan in orphans:
            if orphan.guard is None:
                continue
            peer = _int_or_none(orphan.arg("peer"))
            if peer is None or (guard is not None and peer != guard):
                continue
            mirrored = _mirror_statement(orphan, decls, status)
            if mirrored is None:
                continue
            name = mirrored.split("(", 1)[0]
            src = source[:marker.start()] + prefix + mirrored + suffix \
                + source[marker.end():]
            out.append(CandidatePatch(
                "restore_dropped_call",
                f"rebuilt {name} at the drop site to match "
                f"{orphan.call.name}", src, call=name))
    for orphan in orphans:
        call = orphan.call
        src = _replace_span(source, call,
                            f"{call.indent}{REPAIR_MARKER}{call.suffix}")
        out.append(CandidatePatch(
            "remove_orphan", f"removed unmatched {call.name}", src,
            call=call.name))
    return out


def _mirror_statement(orphan: _Site, decls: Sequence[Tuple[str, str, int]],
                      status: Optional[re.Match]) -> Optional[str]:
    """The statement that would complete ``orphan``'s rendezvous."""
    count = orphan.arg("count")
    dtype = orphan.arg("datatype")
    tag = orphan.arg("tag")
    if None in (count, dtype, tag) or orphan.guard is None:
        return None
    # Prefer a distinct same-shape buffer (the dropped call's own buffer
    # usually still sits among the declarations); fall back to sharing
    # the orphan's — distinct ranks, so no aliasing at runtime.
    own = _buffer_of(orphan)
    want_ctype = _MPI_TO_CTYPE.get(dtype)
    extent = _int_or_none(count)
    buf = own
    for ctype, bname, ext in decls:
        if bname != own and ctype == want_ctype and ext == extent:
            buf = bname
            break
    if orphan.call.name in _RECV_NAMES:
        return (f"MPI_Send({buf}, {count}, {dtype}, {orphan.guard}, "
                f"{tag}, MPI_COMM_WORLD);")
    if status is None:
        return None
    return (f"MPI_Recv({buf}, {count}, {dtype}, {orphan.guard}, {tag}, "
            f"MPI_COMM_WORLD, &{status.group(1)});")


def inv_tag_mismatch(source: str, nprocs: int) -> List[CandidatePatch]:
    """Undo a +100 tag bump; align tags across a matched pair."""
    out: List[CandidatePatch] = []
    sites = [s for s in _sites(source)
             if s.slots.tag >= 0 and _int_or_none(s.arg("tag")) is not None]
    for site in sites:
        tag = _int_or_none(site.arg("tag"))
        if tag is not None and tag >= 100:    # generated tags live in [0,100)
            out.append(_with_arg(source, site, site.slots.tag,
                                 str(tag - 100), "restore_tag",
                                 f"tag {tag} -> {tag - 100} on "
                                 f"{site.call.name}"))
    pairs, _ = _pair_p2p(sites, require_tag=False)
    for send, recv in pairs:
        stag, rtag = send.arg("tag"), recv.arg("tag")
        if stag == rtag:
            continue
        out.append(_with_arg(source, send, send.slots.tag, rtag,
                             "align_tag",
                             f"{send.call.name} tag {stag} -> {rtag}"))
        out.append(_with_arg(source, recv, recv.slots.tag, stag,
                             "align_tag",
                             f"{recv.call.name} tag {rtag} -> {stag}"))
    return out


def inv_datatype_mismatch(source: str, nprocs: int) -> List[CandidatePatch]:
    """Re-type a call from its buffer declaration or its counterpart."""
    out: List[CandidatePatch] = []
    decls = {name: ctype for ctype, name, _e in _buffer_decls(source)}
    sites = [s for s in _sites(source)
             if s.slots.datatype >= 0 and s.arg("datatype") in _DATATYPES]
    for site in sites:
        # (a) the buffer's declared C type is ground truth the mutator
        # could not touch.
        have = site.arg("datatype")
        want = _CTYPE_TO_MPI.get(decls.get(_buffer_of(site), ""))
        if want and want != have:
            out.append(_with_arg(source, site, site.slots.datatype, want,
                                 "retype_from_decl",
                                 f"{site.call.name} {have} -> {want} "
                                 f"(buffer declaration)"))
        # (b) sendtype/recvtype of one collective must agree.
        dt_slots = [i for i, a in enumerate(site.call.args)
                    if a in _DATATYPES]
        if len(dt_slots) == 2:
            a, b = dt_slots
            va, vb = site.call.args[a], site.call.args[b]
            if va != vb:
                out.append(_with_arg(source, site, a, vb, "align_datatype",
                                     f"{site.call.name} {va} -> {vb}"))
                out.append(_with_arg(source, site, b, va, "align_datatype",
                                     f"{site.call.name} {vb} -> {va}"))
    # (c) both halves of a matched transfer must agree.
    pairs, _ = _pair_p2p(sites)
    for send, recv in pairs:
        sdt, rdt = send.arg("datatype"), recv.arg("datatype")
        if sdt == rdt:
            continue
        out.append(_with_arg(source, send, send.slots.datatype, rdt,
                             "align_datatype",
                             f"{send.call.name} {sdt} -> {rdt}"))
        out.append(_with_arg(source, recv, recv.slots.datatype, sdt,
                             "align_datatype",
                             f"{recv.call.name} {rdt} -> {sdt}"))
    return out


def inv_invalid_count(source: str, nprocs: int) -> List[CandidatePatch]:
    """Replace a negative count from the evidence the program carries."""
    out: List[CandidatePatch] = []
    sites = _sites(source)
    decls = _buffer_decls(source)
    pairs, _ = _pair_p2p(sites)
    partner = {id(s.call): r for s, r in pairs}
    partner.update({id(r.call): s for s, r in pairs})
    for site in sites:
        cur = _int_or_none(site.arg("count"))
        if site.slots.count < 0 or cur is None or cur >= 0:
            continue
        values: List[str] = []
        for ctype, bname, extent in decls:       # the buffer's own extent
            if bname == _buffer_of(site):
                values.append(str(extent))
        other = partner.get(id(site.call))       # the counterpart's count
        if other is not None:
            mate = _int_or_none(other.arg("count"))
            if mate is not None and mate > 0:
                values.append(str(mate))
        for i, arg in enumerate(site.call.args):  # paired count in-call
            n = _int_or_none(arg)
            if i != site.slots.count and i != site.slots.root \
                    and i != site.slots.peer and i != site.slots.tag \
                    and n is not None and n > 0:
                values.append(str(n))
        values.append("1")                        # always-legal fallback
        seen: set = set()
        for value in values:
            if value in seen:
                continue
            seen.add(value)
            out.append(_with_arg(source, site, site.slots.count, value,
                                 "restore_count",
                                 f"{site.call.name} count {cur} -> "
                                 f"{value}"))
    return out


def inv_invalid_rank(source: str, nprocs: int) -> List[CandidatePatch]:
    """Re-aim a peer rank that points outside the communicator."""
    out: List[CandidatePatch] = []
    sites = _sites(source)
    guards = sorted({s.guard for s in sites if s.guard is not None})
    for site in sites:
        peer = _int_or_none(site.arg("peer"))
        if site.slots.peer < 0 or peer is None:
            continue
        if 0 <= peer < nprocs:
            continue
        ranks: List[int] = []
        # The counterpart still aims at this call's own rank; its guard
        # is where our peer should point.
        for other in sites:
            if other is site or other.slots.peer < 0:
                continue
            if _int_or_none(other.arg("peer")) == site.guard \
                    and other.arg("tag") == site.arg("tag") \
                    and other.guard is not None:
                ranks.append(other.guard)
        ranks.extend(g for g in guards if g != site.guard)
        ranks.extend(r for r in range(nprocs) if r != site.guard)
        seen: set = set()
        for rank in ranks:
            if rank in seen or not 0 <= rank < nprocs:
                continue
            seen.add(rank)
            out.append(_with_arg(source, site, site.slots.peer, str(rank),
                                 "restore_peer",
                                 f"{site.call.name} peer {peer} -> "
                                 f"{rank}"))
    return out


def inv_root_divergence(source: str, nprocs: int) -> List[CandidatePatch]:
    """Pin a rank-dependent collective root back to a constant."""
    out: List[CandidatePatch] = []
    sites = _sites(source)
    sibling_roots = sorted({r for r in
                            (_int_or_none(s.arg("root")) for s in sites)
                            if r is not None and 0 <= r < nprocs})
    for site in sites:
        root = site.arg("root")
        if site.slots.root < 0 or root is None:
            continue
        if _int_or_none(root) is not None:
            continue                       # already constant
        roots = sibling_roots + [r for r in range(nprocs)
                                 if r not in sibling_roots]
        for value in roots:
            out.append(_with_arg(source, site, site.slots.root, str(value),
                                 "restore_root",
                                 f"{site.call.name} root {root!r} -> "
                                 f"{value}"))
    return out


#: Inverse rules keyed by the mutation operator they undo — same keys as
#: :data:`repro.datasets.mutation.OPERATORS`, same stable order.
INVERSE_RULES: Dict[str, Tuple] = {
    "drop_call": (inv_drop_call,),
    "tag_mismatch": (inv_tag_mismatch,),
    "datatype_mismatch": (inv_datatype_mismatch,),
    "invalid_count": (inv_invalid_count,),
    "invalid_rank": (inv_invalid_rank,),
    "root_divergence": (inv_root_divergence,),
    "detach_wait": (inv_detach_wait,),
}


def propose(source: str, nprocs: int = 3, hint: Optional[str] = None,
            findings: Iterable = ()) -> List[CandidatePatch]:
    """All candidate patches for ``source``, deduplicated, in gate order.

    ``hint`` (a mutation operator name, e.g. recovered from a fuzz
    origin) moves that operator's inverse rules to the front;
    ``findings`` (:class:`~repro.verify.static.StaticFinding` rows)
    stably rank candidates that edit a flagged call ahead of the rest.
    """
    order = list(INVERSE_RULES)
    if hint in INVERSE_RULES:
        order.remove(hint)
        order.insert(0, hint)
    seen = {source}
    out: List[CandidatePatch] = []
    for op in order:
        for rule in INVERSE_RULES[op]:
            for cand in rule(source, nprocs):
                if cand.source in seen:
                    continue
                seen.add(cand.source)
                out.append(cand)
    flagged = {getattr(f, "call", "") for f in findings} - {""}
    if flagged:
        out.sort(key=lambda c: 0 if c.call in flagged else 1)
    return out
