"""CFG and call-graph analyses for the mini LLVM IR.

CFG side: reachability, DFS orderings, dominators and post-dominators
(Cooper–Harvey–Kennedy over the forward / reverse graph), dominance
frontiers, and the Ferrante–Ottenstein–Warren control-dependence
relation.  Dominators power mem2reg's phi placement; post-dominators and
control dependence power the static MPI checkers in
:mod:`repro.verify.static`.

Call-graph side: a name-level call graph over defined functions plus
bottom-up interprocedural *may-call-MPI* summaries, so interprocedural
clients can ask "can a call to ``f`` reach any MPI operation?" without
re-walking callee bodies.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set

from repro.ir.instructions import CallInst
from repro.ir.module import BasicBlock, Function, Module


def reachable_blocks(fn: Function) -> List[BasicBlock]:
    """Blocks reachable from the entry, in discovery (DFS preorder) order."""
    if not fn.blocks:
        return []
    seen: Set[int] = set()
    order: List[BasicBlock] = []
    stack = [fn.entry]
    while stack:
        block = stack.pop()
        if id(block) in seen:
            continue
        seen.add(id(block))
        order.append(block)
        stack.extend(reversed(block.successors()))
    return order


def predecessor_map(fn: Function) -> Dict[BasicBlock, List[BasicBlock]]:
    """Predecessors of every block, computed in one pass over the CFG.

    ``BasicBlock.predecessors()`` scans the whole function per call —
    fine for one-off diagnostics, quadratic when dominators or liveness
    ask for every block's predecessors.  Analyses on the hot compile
    path take this precomputed map instead.  Matches the method's
    semantics: unique predecessors, in function block order.
    """
    preds: Dict[BasicBlock, List[BasicBlock]] = {b: [] for b in fn.blocks}
    for block in fn.blocks:
        for succ in block.successors():
            lst = preds.get(succ)
            if lst is not None and block not in lst:
                lst.append(block)
    return preds


def postorder(fn: Function) -> List[BasicBlock]:
    """DFS postorder from the entry (iterative: the fuzz corpus holds
    deep-nesting seeds whose CFGs overflow a recursive walk)."""
    if not fn.blocks:
        return []
    result: List[BasicBlock] = []
    seen: Set[int] = {id(fn.entry)}
    stack = [(fn.entry, iter(fn.entry.successors()))]
    while stack:
        block, succs = stack[-1]
        advanced = False
        for succ in succs:
            if id(succ) not in seen:
                seen.add(id(succ))
                stack.append((succ, iter(succ.successors())))
                advanced = True
                break
        if not advanced:
            result.append(block)
            stack.pop()
    return result


def reverse_postorder(fn: Function) -> List[BasicBlock]:
    return list(reversed(postorder(fn)))


def compute_dominators(
        fn: Function,
        preds: Optional[Dict[BasicBlock, List[BasicBlock]]] = None,
) -> Dict[BasicBlock, Optional[BasicBlock]]:
    """Immediate dominator of each reachable block (entry maps to None)."""
    rpo = reverse_postorder(fn)
    if not rpo:
        return {}
    if preds is None:
        preds = predecessor_map(fn)
    index = {id(b): i for i, b in enumerate(rpo)}
    idom: Dict[int, BasicBlock] = {id(rpo[0]): rpo[0]}

    def intersect(a: BasicBlock, b: BasicBlock) -> BasicBlock:
        while a is not b:
            while index[id(a)] > index[id(b)]:
                a = idom[id(a)]
            while index[id(b)] > index[id(a)]:
                b = idom[id(b)]
        return a

    changed = True
    while changed:
        changed = False
        for block in rpo[1:]:
            known = [p for p in preds.get(block, ()) if id(p) in idom]
            if not known:
                continue
            new_idom = known[0]
            for p in known[1:]:
                new_idom = intersect(p, new_idom)
            if idom.get(id(block)) is not new_idom:
                idom[id(block)] = new_idom
                changed = True

    result: Dict[BasicBlock, Optional[BasicBlock]] = {}
    for block in rpo:
        result[block] = None if block is rpo[0] else idom.get(id(block))
    return result


def dominance_frontiers(
        fn: Function,
        preds: Optional[Dict[BasicBlock, List[BasicBlock]]] = None,
) -> Dict[BasicBlock, Set[BasicBlock]]:
    if preds is None:
        preds = predecessor_map(fn)
    idom = compute_dominators(fn, preds)
    frontiers: Dict[BasicBlock, Set[BasicBlock]] = {b: set() for b in idom}
    for block in idom:
        known = [p for p in preds.get(block, ()) if p in idom]
        if len(known) < 2:
            continue
        for pred in known:
            runner: Optional[BasicBlock] = pred
            while runner is not None and runner is not idom[block]:
                frontiers[runner].add(block)
                runner = idom[runner]
    return frontiers


def dominates(idom: Dict[BasicBlock, Optional[BasicBlock]],
              a: BasicBlock, b: BasicBlock) -> bool:
    """True if ``a`` dominates ``b`` under the given idom tree."""
    node: Optional[BasicBlock] = b
    while node is not None:
        if node is a:
            return True
        node = idom.get(node)
    return False


def dominator_tree_children(
        idom: Dict[BasicBlock, Optional[BasicBlock]],
) -> Dict[BasicBlock, List[BasicBlock]]:
    """Children lists of a (post-)dominator tree given its idom map."""
    children: Dict[BasicBlock, List[BasicBlock]] = {b: [] for b in idom}
    for block, parent in idom.items():
        if parent is not None:
            children.setdefault(parent, []).append(block)
    return children


def compute_postdominators(
        fn: Function) -> Dict[BasicBlock, Optional[BasicBlock]]:
    """Immediate post-dominator of each reachable block.

    Runs Cooper–Harvey–Kennedy on the reverse CFG rooted at a virtual
    exit that collects every exit block (no-successor terminators, i.e.
    ``ret`` / ``unreachable``).  Blocks that cannot reach any exit
    (infinite loops) and exit blocks themselves map to ``None``; callers
    must treat ``None`` as "no known post-dominator", not "entry".
    """
    blocks = reachable_blocks(fn)
    result: Dict[BasicBlock, Optional[BasicBlock]] = {b: None for b in blocks}
    if not blocks:
        return result
    reach = {id(b) for b in blocks}
    exits = [b for b in blocks if not b.successors()]
    if not exits:
        return result

    virtual = object()          # virtual exit node of the reverse CFG
    pred_map = predecessor_map(fn)

    def rev_succ(node):         # reverse-CFG successors = CFG predecessors
        if node is virtual:
            return exits
        return [p for p in pred_map.get(node, ()) if id(p) in reach]

    def rev_pred(node):         # reverse-CFG predecessors = CFG successors
        if node is virtual:
            return []
        succs = [s for s in node.successors() if id(s) in reach]
        return succs if succs else [virtual]

    # Iterative postorder over the reverse CFG, rooted at the virtual exit.
    po: List[object] = []
    seen: Set[int] = {id(virtual)}
    stack = [(virtual, iter(rev_succ(virtual)))]
    while stack:
        node, succs = stack[-1]
        advanced = False
        for nxt in succs:
            if id(nxt) not in seen:
                seen.add(id(nxt))
                stack.append((nxt, iter(rev_succ(nxt))))
                advanced = True
                break
        if not advanced:
            po.append(node)
            stack.pop()
    rpo = list(reversed(po))    # virtual exit first

    index = {id(n): i for i, n in enumerate(rpo)}
    ipdom: Dict[int, object] = {id(virtual): virtual}

    def intersect(a, b):
        while a is not b:
            while index[id(a)] > index[id(b)]:
                a = ipdom[id(a)]
            while index[id(b)] > index[id(a)]:
                b = ipdom[id(b)]
        return a

    changed = True
    while changed:
        changed = False
        for node in rpo[1:]:
            preds = [p for p in rev_pred(node) if id(p) in ipdom]
            if not preds:
                continue
            new_ipdom = preds[0]
            for p in preds[1:]:
                new_ipdom = intersect(p, new_ipdom)
            if ipdom.get(id(node)) is not new_ipdom:
                ipdom[id(node)] = new_ipdom
                changed = True

    for block in blocks:
        parent = ipdom.get(id(block))
        if parent is None or parent is virtual or parent is block:
            result[block] = None
        else:
            result[block] = parent      # type: ignore[assignment]
    return result


def control_dependence(fn: Function) -> Dict[BasicBlock, Set[BasicBlock]]:
    """Block → set of branch blocks it is control-dependent on.

    Ferrante–Ottenstein–Warren over the post-dominator tree: for every
    CFG edge ``u → v`` where ``v`` does not post-dominate ``u``, every
    block on the post-dominator-tree path from ``v`` up to (excluding)
    ``ipdom(u)`` is control-dependent on ``u``.  Walks through regions
    with unknown post-dominators stop conservatively.
    """
    ipdom = compute_postdominators(fn)
    deps: Dict[BasicBlock, Set[BasicBlock]] = {b: set() for b in ipdom}
    for branch in ipdom:
        succs = branch.successors()
        if len(succs) < 2:
            continue
        stop = ipdom[branch]
        for succ in succs:
            runner: Optional[BasicBlock] = succ
            guard = len(ipdom) + 1
            while runner is not None and runner is not stop and guard:
                guard -= 1
                deps[runner].add(branch)
                runner = ipdom.get(runner)
    return deps


# ---------------------------------------------------------------------------
# Call graph and interprocedural MPI summaries
# ---------------------------------------------------------------------------

def call_graph(module: Module) -> Dict[str, Set[str]]:
    """Name-level call graph: defined function → set of callee names
    (including declarations and unknown externals)."""
    graph: Dict[str, Set[str]] = {}
    for fn in module.defined_functions():
        callees: Set[str] = set()
        for inst in fn.instructions():
            if isinstance(inst, CallInst):
                callees.add(inst.callee_name)
        graph[fn.name] = callees
    return graph


def mpi_summaries(module: Module) -> Dict[str, FrozenSet[str]]:
    """Bottom-up may-call-MPI summary per defined function.

    ``summary[f]`` is the set of MPI function names a call to ``f`` may
    transitively reach.  Computed as a fixpoint over the call graph, so
    mutual recursion converges instead of looping.
    """
    from repro.mpi.api import is_mpi_call

    graph = call_graph(module)
    summary: Dict[str, Set[str]] = {name: set() for name in graph}
    changed = True
    while changed:
        changed = False
        for name, callees in graph.items():
            current = summary[name]
            before = len(current)
            for callee in callees:
                if is_mpi_call(callee):
                    current.add(callee)
                elif callee in summary:
                    current |= summary[callee]
            if len(current) != before:
                changed = True
    return {name: frozenset(values) for name, values in summary.items()}
