"""CFG analyses: reachability, orderings, dominators, dominance frontiers.

Dominators use the Cooper–Harvey–Kennedy iterative algorithm; frontiers use
the standard two-predecessor walk.  These power mem2reg's phi placement.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.ir.module import BasicBlock, Function


def reachable_blocks(fn: Function) -> List[BasicBlock]:
    """Blocks reachable from the entry, in discovery (DFS preorder) order."""
    if not fn.blocks:
        return []
    seen: Set[int] = set()
    order: List[BasicBlock] = []
    stack = [fn.entry]
    while stack:
        block = stack.pop()
        if id(block) in seen:
            continue
        seen.add(id(block))
        order.append(block)
        stack.extend(reversed(block.successors()))
    return order


def postorder(fn: Function) -> List[BasicBlock]:
    result: List[BasicBlock] = []
    seen: Set[int] = set()

    def visit(block: BasicBlock) -> None:
        if id(block) in seen:
            return
        seen.add(id(block))
        for succ in block.successors():
            visit(succ)
        result.append(block)

    if fn.blocks:
        visit(fn.entry)
    return result


def reverse_postorder(fn: Function) -> List[BasicBlock]:
    return list(reversed(postorder(fn)))


def compute_dominators(fn: Function) -> Dict[BasicBlock, Optional[BasicBlock]]:
    """Immediate dominator of each reachable block (entry maps to None)."""
    rpo = reverse_postorder(fn)
    if not rpo:
        return {}
    index = {id(b): i for i, b in enumerate(rpo)}
    idom: Dict[int, BasicBlock] = {id(rpo[0]): rpo[0]}

    def intersect(a: BasicBlock, b: BasicBlock) -> BasicBlock:
        while a is not b:
            while index[id(a)] > index[id(b)]:
                a = idom[id(a)]
            while index[id(b)] > index[id(a)]:
                b = idom[id(b)]
        return a

    changed = True
    while changed:
        changed = False
        for block in rpo[1:]:
            preds = [p for p in block.predecessors() if id(p) in idom]
            if not preds:
                continue
            new_idom = preds[0]
            for p in preds[1:]:
                new_idom = intersect(p, new_idom)
            if idom.get(id(block)) is not new_idom:
                idom[id(block)] = new_idom
                changed = True

    result: Dict[BasicBlock, Optional[BasicBlock]] = {}
    for block in rpo:
        result[block] = None if block is rpo[0] else idom.get(id(block))
    return result


def dominance_frontiers(fn: Function) -> Dict[BasicBlock, Set[BasicBlock]]:
    idom = compute_dominators(fn)
    frontiers: Dict[BasicBlock, Set[BasicBlock]] = {b: set() for b in idom}
    for block in idom:
        preds = [p for p in block.predecessors() if p in idom]
        if len(preds) < 2:
            continue
        for pred in preds:
            runner: Optional[BasicBlock] = pred
            while runner is not None and runner is not idom[block]:
                frontiers[runner].add(block)
                runner = idom[runner]
    return frontiers


def dominates(idom: Dict[BasicBlock, Optional[BasicBlock]],
              a: BasicBlock, b: BasicBlock) -> bool:
    """True if ``a`` dominates ``b`` under the given idom tree."""
    node: Optional[BasicBlock] = b
    while node is not None:
        if node is a:
            return True
        node = idom.get(node)
    return False
