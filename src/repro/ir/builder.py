"""IRBuilder: convenience layer for emitting instructions.

Mirrors ``llvm::IRBuilder`` — the frontend's codegen positions a builder at
a block and appends instructions through typed helper methods.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.ir.instructions import (
    AllocaInst,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    CondBranchInst,
    FCmpInst,
    GEPInst,
    ICmpInst,
    LoadInst,
    PhiInst,
    ReturnInst,
    SelectInst,
    StoreInst,
    UnreachableInst,
)
from repro.ir.module import BasicBlock, Function
from repro.ir.types import PointerType, Type
from repro.ir.values import Constant, Value


class IRBuilder:
    def __init__(self, block: Optional[BasicBlock] = None):
        self.block = block

    def position_at_end(self, block: BasicBlock) -> None:
        self.block = block

    @property
    def function(self) -> Function:
        assert self.block is not None and self.block.parent is not None
        return self.block.parent

    def _emit(self, inst):
        assert self.block is not None, "builder has no insertion block"
        return self.block.append(inst)

    def _name(self, hint: str) -> str:
        return self.function.unique_name(hint)

    # -- memory --------------------------------------------------------------
    def alloca(self, type_: Type, name: str = "", array_size: Optional[Value] = None) -> AllocaInst:
        return self._emit(AllocaInst(type_, name or self._name("a"), array_size))

    def load(self, pointer: Value, name: str = "") -> LoadInst:
        return self._emit(LoadInst(pointer, name or self._name("l")))

    def store(self, value: Value, pointer: Value) -> StoreInst:
        return self._emit(StoreInst(value, pointer))

    def gep(self, pointer: Value, indices: Sequence[Value], result_type: Type,
            name: str = "") -> GEPInst:
        return self._emit(GEPInst(pointer, indices, result_type, name or self._name("g")))

    # -- arithmetic ------------------------------------------------------------
    def binop(self, opcode: str, lhs: Value, rhs: Value, name: str = "") -> BinaryInst:
        return self._emit(BinaryInst(opcode, lhs, rhs, name or self._name("b")))

    def add(self, l, r, name=""):
        return self.binop("add", l, r, name)

    def sub(self, l, r, name=""):
        return self.binop("sub", l, r, name)

    def mul(self, l, r, name=""):
        return self.binop("mul", l, r, name)

    def sdiv(self, l, r, name=""):
        return self.binop("sdiv", l, r, name)

    def srem(self, l, r, name=""):
        return self.binop("srem", l, r, name)

    def icmp(self, predicate: str, lhs: Value, rhs: Value, name: str = "") -> ICmpInst:
        return self._emit(ICmpInst(predicate, lhs, rhs, name or self._name("c")))

    def fcmp(self, predicate: str, lhs: Value, rhs: Value, name: str = "") -> FCmpInst:
        return self._emit(FCmpInst(predicate, lhs, rhs, name or self._name("c")))

    def cast(self, opcode: str, value: Value, to_type: Type, name: str = "") -> CastInst:
        return self._emit(CastInst(opcode, value, to_type, name or self._name("x")))

    def select(self, cond: Value, tv: Value, fv: Value, name: str = "") -> SelectInst:
        return self._emit(SelectInst(cond, tv, fv, name or self._name("s")))

    # -- control flow ------------------------------------------------------------
    def br(self, target: BasicBlock) -> BranchInst:
        return self._emit(BranchInst(target))

    def cond_br(self, cond: Value, true_block: BasicBlock, false_block: BasicBlock) -> CondBranchInst:
        return self._emit(CondBranchInst(cond, true_block, false_block))

    def ret(self, value: Optional[Value] = None) -> ReturnInst:
        return self._emit(ReturnInst(value))

    def unreachable(self) -> UnreachableInst:
        return self._emit(UnreachableInst())

    def phi(self, type_: Type, name: str = "") -> PhiInst:
        phi = PhiInst(type_, name or self._name("p"))
        assert self.block is not None
        return self.block.insert_front(phi)

    # -- calls ------------------------------------------------------------
    def call(self, callee, args: Sequence[Value], name: str = "") -> CallInst:
        inst = CallInst(callee, args, "")
        if not inst.type.is_void:
            inst.name = name or self._name("r")
        return self._emit(inst)
