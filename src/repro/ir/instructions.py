"""Instruction set of the mini LLVM IR.

The opcode taxonomy deliberately mirrors LLVM's: the embedding layers
(IR2vec seed triples, ProGraML node text) key off ``Instruction.opcode``
exactly as the paper's pipeline keys off LLVM opcodes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro.ir.types import FunctionType, PointerType, Type, VOID, I1
from repro.ir.values import Value

if TYPE_CHECKING:  # pragma: no cover
    from repro.ir.module import BasicBlock, Function

BINARY_OPCODES = (
    "add", "sub", "mul", "sdiv", "udiv", "srem", "urem",
    "fadd", "fsub", "fmul", "fdiv", "frem",
    "and", "or", "xor", "shl", "lshr", "ashr",
)

CAST_OPCODES = (
    "trunc", "zext", "sext", "fptrunc", "fpext", "fptosi", "sitofp",
    "ptrtoint", "inttoptr", "bitcast",
)

ICMP_PREDICATES = ("eq", "ne", "sgt", "sge", "slt", "sle", "ugt", "uge", "ult", "ule")
FCMP_PREDICATES = ("oeq", "one", "ogt", "oge", "olt", "ole")


class Instruction(Value):
    """Base instruction: a Value with operands and a parent basic block."""

    opcode: str = "?"

    def __init__(self, type_: Type, operands: Sequence[Value], name: str = ""):
        super().__init__(type_, name)
        self.operands: List[Value] = []
        self.parent: Optional["BasicBlock"] = None
        for op in operands:
            self._add_operand(op)

    # -- operand bookkeeping ----------------------------------------------
    def _add_operand(self, op: Value) -> None:
        if not isinstance(op, Value):
            raise TypeError(f"operand of {self.opcode} must be a Value, got {op!r}")
        self.operands.append(op)
        op.add_use(self)

    def replace_operand(self, old: Value, new: Value) -> None:
        for i, op in enumerate(self.operands):
            if op is old:
                self.operands[i] = new
                old.remove_use(self)
                new.add_use(self)

    def set_operand(self, index: int, new: Value) -> None:
        old = self.operands[index]
        self.operands[index] = new
        old.remove_use(self)
        new.add_use(self)

    def drop_operands(self) -> None:
        for op in self.operands:
            op.remove_use(self)
        self.operands = []

    # -- classification -----------------------------------------------------
    # Class attributes, not properties: these are checked for every
    # instruction on every CFG walk (terminator checks alone run ~200k
    # times over one MBI smoke corpus) and an isinstance chain per call
    # was measurable in the cold-path profile.  Terminator / side-effect
    # subclasses shadow them with ``True``.
    is_terminator: bool = False
    has_side_effects: bool = False

    def successors(self) -> Tuple["BasicBlock", ...]:
        return ()

    def erase(self) -> None:
        """Unlink from parent block and drop operand uses."""
        if self.parent is not None:
            self.parent.instructions.remove(self)
            self.parent = None
        self.drop_operands()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{self.opcode} {self.ref}>"


class AllocaInst(Instruction):
    opcode = "alloca"

    def __init__(self, allocated_type: Type, name: str = "", array_size: Optional[Value] = None):
        ops = [array_size] if array_size is not None else []
        super().__init__(PointerType(allocated_type), ops, name)
        self.allocated_type = allocated_type

    @property
    def array_size(self) -> Optional[Value]:
        return self.operands[0] if self.operands else None


class LoadInst(Instruction):
    opcode = "load"

    def __init__(self, pointer: Value, name: str = ""):
        if not isinstance(pointer.type, PointerType):
            raise TypeError(f"load requires pointer operand, got {pointer.type}")
        super().__init__(pointer.type.pointee, [pointer], name)

    @property
    def pointer(self) -> Value:
        return self.operands[0]


class StoreInst(Instruction):
    opcode = "store"
    has_side_effects = True

    def __init__(self, value: Value, pointer: Value):
        if not isinstance(pointer.type, PointerType):
            raise TypeError(f"store requires pointer destination, got {pointer.type}")
        super().__init__(VOID, [value, pointer])

    @property
    def value(self) -> Value:
        return self.operands[0]

    @property
    def pointer(self) -> Value:
        return self.operands[1]


class BinaryInst(Instruction):
    def __init__(self, opcode: str, lhs: Value, rhs: Value, name: str = ""):
        if opcode not in BINARY_OPCODES:
            raise ValueError(f"unknown binary opcode {opcode!r}")
        super().__init__(lhs.type, [lhs, rhs], name)
        self.opcode = opcode

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]


class ICmpInst(Instruction):
    opcode = "icmp"

    def __init__(self, predicate: str, lhs: Value, rhs: Value, name: str = ""):
        if predicate not in ICMP_PREDICATES:
            raise ValueError(f"unknown icmp predicate {predicate!r}")
        super().__init__(I1, [lhs, rhs], name)
        self.predicate = predicate


class FCmpInst(Instruction):
    opcode = "fcmp"

    def __init__(self, predicate: str, lhs: Value, rhs: Value, name: str = ""):
        if predicate not in FCMP_PREDICATES:
            raise ValueError(f"unknown fcmp predicate {predicate!r}")
        super().__init__(I1, [lhs, rhs], name)
        self.predicate = predicate


class CastInst(Instruction):
    def __init__(self, opcode: str, value: Value, to_type: Type, name: str = ""):
        if opcode not in CAST_OPCODES:
            raise ValueError(f"unknown cast opcode {opcode!r}")
        super().__init__(to_type, [value], name)
        self.opcode = opcode


class SelectInst(Instruction):
    opcode = "select"

    def __init__(self, cond: Value, true_value: Value, false_value: Value, name: str = ""):
        super().__init__(true_value.type, [cond, true_value, false_value], name)


class GEPInst(Instruction):
    """getelementptr — pointer arithmetic over arrays/structs."""

    opcode = "getelementptr"

    def __init__(self, pointer: Value, indices: Sequence[Value], result_type: Type, name: str = ""):
        super().__init__(result_type, [pointer, *indices], name)

    @property
    def pointer(self) -> Value:
        return self.operands[0]

    @property
    def indices(self) -> List[Value]:
        return self.operands[1:]


class CallInst(Instruction):
    opcode = "call"
    has_side_effects = True

    def __init__(self, callee: "Function | Value", args: Sequence[Value], name: str = ""):
        # ``callee`` may be a Function or an external declaration value whose
        # type is a FunctionType (direct calls only in this IR).
        ftype = callee.type
        if isinstance(ftype, PointerType):
            ftype = ftype.pointee
        if not isinstance(ftype, FunctionType):
            raise TypeError(f"call target {callee!r} is not a function")
        super().__init__(ftype.ret, [callee, *args], name)

    @property
    def callee(self):
        return self.operands[0]

    @property
    def args(self) -> List[Value]:
        return self.operands[1:]

    @property
    def callee_name(self) -> str:
        return self.callee.name


class BranchInst(Instruction):
    opcode = "br"
    is_terminator = True
    has_side_effects = True

    def __init__(self, target: "BasicBlock"):
        super().__init__(VOID, [])
        self.target = target

    def successors(self):
        return (self.target,)


class CondBranchInst(Instruction):
    opcode = "br"
    is_terminator = True
    has_side_effects = True

    def __init__(self, cond: Value, true_block: "BasicBlock", false_block: "BasicBlock"):
        super().__init__(VOID, [cond])
        self.true_block = true_block
        self.false_block = false_block

    @property
    def cond(self) -> Value:
        return self.operands[0]

    def successors(self):
        return (self.true_block, self.false_block)


class ReturnInst(Instruction):
    opcode = "ret"
    is_terminator = True
    has_side_effects = True

    def __init__(self, value: Optional[Value] = None):
        super().__init__(VOID, [value] if value is not None else [])

    @property
    def return_value(self) -> Optional[Value]:
        return self.operands[0] if self.operands else None


class UnreachableInst(Instruction):
    opcode = "unreachable"
    is_terminator = True
    has_side_effects = True

    def __init__(self):
        super().__init__(VOID, [])


class PhiInst(Instruction):
    """SSA phi node; incoming pairs of (value, predecessor block)."""

    opcode = "phi"

    def __init__(self, type_: Type, name: str = ""):
        super().__init__(type_, [], name)
        self.incoming_blocks: List["BasicBlock"] = []

    def add_incoming(self, value: Value, block: "BasicBlock") -> None:
        self._add_operand(value)
        self.incoming_blocks.append(block)

    @property
    def incoming(self) -> List[Tuple[Value, "BasicBlock"]]:
        return list(zip(self.operands, self.incoming_blocks))

    def remove_incoming_for(self, block: "BasicBlock") -> None:
        keep_ops, keep_blocks = [], []
        for value, pred in zip(self.operands, self.incoming_blocks):
            if pred is block:
                value.remove_use(self)
            else:
                keep_ops.append(value)
                keep_blocks.append(pred)
        self.operands = keep_ops
        self.incoming_blocks = keep_blocks
