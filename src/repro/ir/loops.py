"""Natural-loop detection over the dominator tree.

A back edge is an edge ``latch → header`` where the header dominates the
latch; the natural loop of that edge is the header plus every block that
reaches the latch without passing through the header.  Loops sharing a
header are merged (LLVM's LoopInfo does the same).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.ir.analysis import compute_dominators, dominates, reachable_blocks
from repro.ir.module import BasicBlock, Function


@dataclass
class Loop:
    """One natural loop: header, members, and the latch blocks."""

    header: BasicBlock
    blocks: Set[int] = field(default_factory=set)     # ids of member blocks
    members: List[BasicBlock] = field(default_factory=list)
    latches: List[BasicBlock] = field(default_factory=list)

    def contains(self, block: BasicBlock) -> bool:
        return id(block) in self.blocks

    def _add(self, block: BasicBlock) -> None:
        if id(block) not in self.blocks:
            self.blocks.add(id(block))
            self.members.append(block)

    def outside_predecessors(self) -> List[BasicBlock]:
        """Predecessors of the header that are not loop members."""
        return [p for p in self.header.predecessors() if not self.contains(p)]

    def preheader(self) -> Optional[BasicBlock]:
        """The unique out-of-loop predecessor of the header, if any.

        The mini-C frontend emits exactly this shape for ``for``/``while``
        loops, so hoisting passes can require it instead of restructuring
        the CFG.
        """
        outside = self.outside_predecessors()
        if len(outside) == 1:
            return outside[0]
        return None


def find_loops(fn: Function) -> List[Loop]:
    """All natural loops of ``fn`` (loops with a shared header merged)."""
    idom = compute_dominators(fn)
    if not idom:
        return []
    loops: Dict[int, Loop] = {}
    for block in reachable_blocks(fn):
        for succ in block.successors():
            if succ not in idom:
                continue
            if not dominates(idom, succ, block):
                continue
            # block → succ is a back edge; succ is the header.
            loop = loops.setdefault(id(succ), Loop(header=succ))
            loop._add(succ)
            loop.latches.append(block)
            # Collect the body: walk predecessors backwards from the latch.
            stack = [block]
            while stack:
                current = stack.pop()
                if loop.contains(current):
                    continue
                loop._add(current)
                stack.extend(current.predecessors())
    return list(loops.values())
