"""Type system for the mini LLVM IR.

Types are interned value objects: two structurally identical types compare
equal and hash equal, so they can key dictionaries (e.g. vocabulary tables
in the embedding layers).
"""

from __future__ import annotations

from typing import Tuple


class Type:
    """Base class of all IR types."""

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self._key() == other._key()

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def _key(self) -> tuple:
        return ()

    # -- convenience predicates -------------------------------------------
    @property
    def is_void(self) -> bool:
        return isinstance(self, VoidType)

    @property
    def is_int(self) -> bool:
        return isinstance(self, IntType)

    @property
    def is_float(self) -> bool:
        return isinstance(self, FloatType)

    @property
    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    @property
    def is_aggregate(self) -> bool:
        return isinstance(self, (ArrayType, StructType))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self}>"


class VoidType(Type):
    def __str__(self) -> str:
        return "void"


class IntType(Type):
    """Arbitrary-width integer type (i1, i8, i32, i64...)."""

    def __init__(self, bits: int):
        if bits <= 0:
            raise ValueError("integer width must be positive")
        self.bits = bits

    def _key(self) -> tuple:
        return (self.bits,)

    def __str__(self) -> str:
        return f"i{self.bits}"


class FloatType(Type):
    """IEEE floating point type ('float' = 32 bits, 'double' = 64 bits)."""

    def __init__(self, bits: int):
        if bits not in (32, 64):
            raise ValueError("float width must be 32 or 64")
        self.bits = bits

    def _key(self) -> tuple:
        return (self.bits,)

    def __str__(self) -> str:
        return "float" if self.bits == 32 else "double"


class PointerType(Type):
    def __init__(self, pointee: Type):
        self.pointee = pointee

    def _key(self) -> tuple:
        return (self.pointee,)

    def __str__(self) -> str:
        return f"{self.pointee}*"


class ArrayType(Type):
    def __init__(self, element: Type, count: int):
        if count < 0:
            raise ValueError("array count must be non-negative")
        self.element = element
        self.count = count

    def _key(self) -> tuple:
        return (self.element, self.count)

    def __str__(self) -> str:
        return f"[{self.count} x {self.element}]"


class StructType(Type):
    def __init__(self, name: str, fields: Tuple[Type, ...] = ()):
        self.name = name
        self.fields = tuple(fields)

    def _key(self) -> tuple:
        # Named structs are nominal, like LLVM identified structs.
        return (self.name,)

    def __str__(self) -> str:
        return f"%struct.{self.name}"


class FunctionType(Type):
    def __init__(self, ret: Type, params: Tuple[Type, ...], vararg: bool = False):
        self.ret = ret
        self.params = tuple(params)
        self.vararg = vararg

    def _key(self) -> tuple:
        return (self.ret, self.params, self.vararg)

    def __str__(self) -> str:
        parts = [str(p) for p in self.params]
        if self.vararg:
            parts.append("...")
        return f"{self.ret} ({', '.join(parts)})"


VOID = VoidType()
I1 = IntType(1)
I8 = IntType(8)
I32 = IntType(32)
I64 = IntType(64)
FLOAT = FloatType(32)
DOUBLE = FloatType(64)


def ptr(t: Type) -> PointerType:
    """Shorthand for :class:`PointerType`."""
    return PointerType(t)


def type_size_bits(t: Type) -> int:
    """Approximate bit size used by the simulator's memory model."""
    if isinstance(t, IntType):
        return t.bits
    if isinstance(t, FloatType):
        return t.bits
    if isinstance(t, PointerType):
        return 64
    if isinstance(t, ArrayType):
        return t.count * type_size_bits(t.element)
    if isinstance(t, StructType):
        return sum(type_size_bits(f) for f in t.fields) or 64
    raise ValueError(f"type {t} has no size")
