"""A compact LLVM-IR-like intermediate representation.

This package implements the substrate the paper's models consume: a typed,
SSA-capable IR with functions, basic blocks, and an instruction taxonomy
mirroring LLVM (alloca/load/store, arithmetic, icmp, branches, calls, phi,
getelementptr, casts).  It supports textual printing and parsing
(round-trip), CFG and dominator analyses, and structural verification.
"""

from repro.ir.types import (
    ArrayType,
    FloatType,
    FunctionType,
    IntType,
    PointerType,
    StructType,
    Type,
    VoidType,
    DOUBLE,
    FLOAT,
    I1,
    I8,
    I32,
    I64,
    VOID,
    ptr,
)
from repro.ir.values import Argument, Constant, GlobalVariable, Value, ConstantString
from repro.ir.instructions import (
    AllocaInst,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    CondBranchInst,
    GEPInst,
    ICmpInst,
    Instruction,
    LoadInst,
    PhiInst,
    ReturnInst,
    SelectInst,
    StoreInst,
    UnreachableInst,
)
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.builder import IRBuilder
from repro.ir.printer import print_module
from repro.ir.parser import parse_module
from repro.ir.analysis import (
    compute_dominators,
    dominance_frontiers,
    postorder,
    reachable_blocks,
    reverse_postorder,
)
from repro.ir.verifier import VerificationError, verify_module

__all__ = [
    "Type", "VoidType", "IntType", "FloatType", "PointerType", "ArrayType",
    "StructType", "FunctionType", "VOID", "I1", "I8", "I32", "I64", "FLOAT",
    "DOUBLE", "ptr",
    "Value", "Constant", "ConstantString", "Argument", "GlobalVariable",
    "Instruction", "AllocaInst", "LoadInst", "StoreInst", "BinaryInst",
    "ICmpInst", "BranchInst", "CondBranchInst", "ReturnInst", "CallInst",
    "GEPInst", "PhiInst", "CastInst", "SelectInst", "UnreachableInst",
    "Module", "Function", "BasicBlock", "IRBuilder",
    "print_module", "parse_module",
    "compute_dominators", "dominance_frontiers", "postorder",
    "reverse_postorder", "reachable_blocks",
    "verify_module", "VerificationError",
]
