"""Parser for the textual mini LLVM IR emitted by :mod:`repro.ir.printer`.

Two passes: first collect function signatures (so calls can reference
functions defined later in the module), then parse bodies.  Forward
references to locals (phi operands) are resolved through placeholder
values patched once the whole function has been read.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.ir.instructions import (
    AllocaInst,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    CondBranchInst,
    FCmpInst,
    GEPInst,
    ICmpInst,
    LoadInst,
    PhiInst,
    ReturnInst,
    SelectInst,
    StoreInst,
    UnreachableInst,
    BINARY_OPCODES,
    CAST_OPCODES,
)
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.types import (
    ArrayType,
    FloatType,
    FunctionType,
    IntType,
    PointerType,
    StructType,
    Type,
    VOID,
)
from repro.ir.values import Constant, ConstantString, GlobalVariable, UndefValue, Value


class ParseError(ValueError):
    pass


def _unescape_cstring(ref: str) -> str:
    """Decode a ``c"..."`` literal with LLVM-style \\XX hex escapes."""
    body = ref[2:]
    if body.endswith('"'):
        body = body[:-1]
    out: List[str] = []
    i = 0
    while i < len(body):
        ch = body[i]
        if ch == "\\" and i + 2 < len(body) + 1:
            out.append(chr(int(body[i + 1:i + 3], 16)))
            i += 3
        else:
            out.append(ch)
            i += 1
    # Strip the trailing NUL the printer appends.
    text = "".join(out)
    return text[:-1] if text.endswith("\x00") else text


class _Cursor:
    """Character cursor with small helpers over one line of IR text."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos] in " \t":
            self.pos += 1

    def eof(self) -> bool:
        self.skip_ws()
        return self.pos >= len(self.text)

    def peek(self) -> str:
        self.skip_ws()
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def expect(self, literal: str) -> None:
        self.skip_ws()
        if not self.text.startswith(literal, self.pos):
            raise ParseError(f"expected {literal!r} at ...{self.text[self.pos:self.pos + 30]!r}")
        self.pos += len(literal)

    def accept(self, literal: str) -> bool:
        self.skip_ws()
        if self.text.startswith(literal, self.pos):
            self.pos += len(literal)
            return True
        return False

    def word(self) -> str:
        self.skip_ws()
        m = re.match(r"[A-Za-z0-9_.$-]+", self.text[self.pos:])
        if not m:
            raise ParseError(f"expected word at ...{self.text[self.pos:self.pos + 30]!r}")
        self.pos += m.end()
        return m.group(0)

    def rest(self) -> str:
        return self.text[self.pos:]


def _parse_type(cur: _Cursor) -> Type:
    cur.skip_ws()
    if cur.accept("void"):
        base: Type = VOID
    elif cur.accept("double"):
        base = FloatType(64)
    elif cur.accept("float"):
        base = FloatType(32)
    elif cur.peek() == "i" and re.match(r"i\d+", cur.rest()):
        m = re.match(r"i(\d+)", cur.rest())
        assert m is not None
        cur.pos += m.end()
        base = IntType(int(m.group(1)))
    elif cur.accept("["):
        count = int(cur.word())
        cur.expect("x")
        element = _parse_type(cur)
        cur.expect("]")
        base = ArrayType(element, count)
    elif cur.accept("%struct."):
        base = StructType(cur.word())
    else:
        raise ParseError(f"cannot parse type at ...{cur.rest()[:30]!r}")
    while cur.accept("*"):
        base = PointerType(base)
    return base


class _FunctionParser:
    def __init__(self, module: Module, fn: Function):
        self.module = module
        self.fn = fn
        self.locals: Dict[str, Value] = {a.name: a for a in fn.arguments}
        self.blocks: Dict[str, BasicBlock] = {}
        self.placeholders: Dict[str, Value] = {}

    # -- value resolution -------------------------------------------------
    def block(self, name: str) -> BasicBlock:
        if name not in self.blocks:
            bb = BasicBlock(name, self.fn)
            self.blocks[name] = bb
        return self.blocks[name]

    def value(self, type_: Type, ref: str) -> Value:
        if ref == "null":
            return Constant(type_, None)
        if ref == "undef":
            return UndefValue(type_)
        if ref.startswith('c"'):
            return ConstantString(_unescape_cstring(ref))
        if ref.startswith("@"):
            name = ref[1:]
            if name in self.module.functions:
                return self.module.functions[name]
            if name in self.module.globals:
                return self.module.globals[name]
            raise ParseError(f"unknown global {ref}")
        if ref.startswith("%"):
            name = ref[1:]
            if name in self.locals:
                return self.locals[name]
            if name not in self.placeholders:
                self.placeholders[name] = Value(type_, name)
            return self.placeholders[name]
        if type_.is_float:
            return Constant(type_, float(ref))
        return Constant(type_, int(ref))

    def define_local(self, name: str, value: Value) -> None:
        self.locals[name] = value
        if name in self.placeholders:
            self.placeholders.pop(name).replace_all_uses_with(value)

    def finish(self) -> None:
        if self.placeholders:
            missing = ", ".join(sorted(self.placeholders))
            raise ParseError(f"unresolved locals in @{self.fn.name}: {missing}")

    # -- operand helpers ----------------------------------------------------
    def operand(self, cur: _Cursor) -> Value:
        type_ = _parse_type(cur)
        return self.value(type_, self._ref(cur))

    def _ref(self, cur: _Cursor) -> str:
        cur.skip_ws()
        if cur.rest().startswith('c"'):
            m = re.match(r'c"(?:[^"\\]|\\.)*"(?:\\00)?', cur.rest())
            if not m:
                raise ParseError("bad string constant")
            cur.pos += m.end()
            return m.group(0)
        m = re.match(r"[@%]?[A-Za-z0-9_.$-]+", cur.rest())
        if not m:
            raise ParseError(f"expected value ref at ...{cur.rest()[:30]!r}")
        cur.pos += m.end()
        return m.group(0)

    # -- instruction parsing -----------------------------------------------
    def parse_instruction(self, line: str, block: BasicBlock) -> None:
        cur = _Cursor(line.strip())
        name = ""
        if cur.peek() == "%":
            save = cur.pos
            ref = self._ref(cur)
            if cur.accept("="):
                name = ref[1:]
            else:
                cur.pos = save
        op = cur.word()

        inst: Optional[Value] = None
        if op == "alloca":
            allocated = _parse_type(cur)
            size = self.operand(cur) if cur.accept(",") else None
            inst = AllocaInst(allocated, name, size)
        elif op == "load":
            _parse_type(cur)  # result type, redundant with pointer pointee
            cur.expect(",")
            inst = LoadInst(self.operand(cur), name)
        elif op == "store":
            value = self.operand(cur)
            cur.expect(",")
            StoreInst_ = StoreInst(value, self.operand(cur))
            block.append(StoreInst_)
            return
        elif op in BINARY_OPCODES:
            type_ = _parse_type(cur)
            lhs = self.value(type_, self._ref(cur))
            cur.expect(",")
            rhs = self.value(type_, self._ref(cur))
            inst = BinaryInst(op, lhs, rhs, name)
        elif op in ("icmp", "fcmp"):
            predicate = cur.word()
            type_ = _parse_type(cur)
            lhs = self.value(type_, self._ref(cur))
            cur.expect(",")
            rhs = self.value(type_, self._ref(cur))
            cls = ICmpInst if op == "icmp" else FCmpInst
            inst = cls(predicate, lhs, rhs, name)
        elif op in CAST_OPCODES:
            value = self.operand(cur)
            cur.expect("to")
            inst = CastInst(op, value, _parse_type(cur), name)
        elif op == "select":
            cond = self.operand(cur)
            cur.expect(",")
            tv = self.operand(cur)
            cur.expect(",")
            fv = self.operand(cur)
            inst = SelectInst(cond, tv, fv, name)
        elif op == "getelementptr":
            pointer = self.operand(cur)
            indices: List[Value] = []
            while cur.accept(","):
                indices.append(self.operand(cur))
            cur.expect("to")
            inst = GEPInst(pointer, indices, _parse_type(cur), name)
        elif op == "call":
            _parse_type(cur)  # return type, implied by callee
            callee_ref = self._ref(cur)
            callee = self.value(VOID, callee_ref)
            cur.expect("(")
            args: List[Value] = []
            if not cur.accept(")"):
                while True:
                    args.append(self.operand(cur))
                    if cur.accept(")"):
                        break
                    cur.expect(",")
            inst = CallInst(callee, args, name)
        elif op == "br":
            if cur.accept("label"):
                block.append(BranchInst(self.block(self._ref(cur)[1:])))
                return
            cond = self.operand(cur)
            cur.expect(",")
            cur.expect("label")
            t = self.block(self._ref(cur)[1:])
            cur.expect(",")
            cur.expect("label")
            f = self.block(self._ref(cur)[1:])
            block.append(CondBranchInst(cond, t, f))
            return
        elif op == "ret":
            if cur.accept("void"):
                block.append(ReturnInst())
            else:
                block.append(ReturnInst(self.operand(cur)))
            return
        elif op == "unreachable":
            block.append(UnreachableInst())
            return
        elif op == "phi":
            type_ = _parse_type(cur)
            phi = PhiInst(type_, name)
            while cur.accept("["):
                value = self.value(type_, self._ref(cur))
                cur.expect(",")
                pred = self.block(self._ref(cur)[1:])
                cur.expect("]")
                phi.add_incoming(value, pred)
                if not cur.accept(","):
                    break
            block.append(phi)
            if name:
                self.define_local(name, phi)
            return
        else:
            raise ParseError(f"unknown opcode {op!r} in line: {line!r}")

        assert inst is not None
        block.append(inst)
        if name:
            self.define_local(name, inst)


_DEFINE_RE = re.compile(r"^(define|declare)\s+(.*?)\s*@([A-Za-z0-9_.$-]+)\((.*?)\)\s*({)?\s*$")
_GLOBAL_RE = re.compile(r"^@([A-Za-z0-9_.$-]+)\s*=\s*(global|constant)\s+(.*)$")
_LABEL_RE = re.compile(r"^([A-Za-z0-9_.$-]+):\s*$")


def _parse_params(text: str) -> Tuple[List[Type], List[str], bool]:
    params: List[Type] = []
    names: List[str] = []
    vararg = False
    text = text.strip()
    if not text:
        return params, names, vararg
    depth = 0
    parts, buf = [], []
    for ch in text:
        if ch == "," and depth == 0:
            parts.append("".join(buf))
            buf = []
            continue
        if ch in "[(":
            depth += 1
        elif ch in "])":
            depth -= 1
        buf.append(ch)
    parts.append("".join(buf))
    for i, part in enumerate(parts):
        part = part.strip()
        if part == "...":
            vararg = True
            continue
        cur = _Cursor(part)
        params.append(_parse_type(cur))
        cur.skip_ws()
        rest = cur.rest().strip()
        names.append(rest[1:] if rest.startswith("%") else f"arg{i}")
    return params, names, vararg


def parse_module(text: str, name: str = "module") -> Module:
    module = Module(name)
    lines = [ln.rstrip() for ln in text.splitlines()]

    # Pass 1: module-level entities (globals + all function signatures).
    i = 0
    pending_bodies: List[Tuple[Function, List[str]]] = []
    while i < len(lines):
        line = lines[i].strip()
        i += 1
        if not line or line.startswith(";"):
            m = re.match(r"; ModuleID = '(.*)'", line)
            if m:
                module.name = m.group(1)
            continue
        gm = _GLOBAL_RE.match(line)
        if gm:
            gname, kind, rest = gm.groups()
            cur = _Cursor(rest)
            vtype = _parse_type(cur)
            init_text = cur.rest().strip()
            initializer: Optional[Constant] = None
            if init_text and init_text != "zeroinitializer":
                if init_text.startswith('c"'):
                    initializer = ConstantString(_unescape_cstring(init_text))
                elif vtype.is_float:
                    initializer = Constant(vtype, float(init_text))
                else:
                    initializer = Constant(vtype, int(init_text))
            module.add_global(GlobalVariable(vtype, gname, initializer, kind == "constant"))
            continue
        dm = _DEFINE_RE.match(line)
        if dm:
            kind, ret_text, fname, params_text, brace = dm.groups()
            ret = _parse_type(_Cursor(ret_text))
            params, arg_names, vararg = _parse_params(params_text)
            fn = module.add_function(fname, FunctionType(ret, tuple(params), vararg), arg_names)
            if kind == "define":
                body: List[str] = []
                while i < len(lines):
                    body_line = lines[i]
                    i += 1
                    if body_line.strip() == "}":
                        break
                    body.append(body_line)
                pending_bodies.append((fn, body))
            continue
        raise ParseError(f"cannot parse module-level line: {line!r}")

    # Pass 2: function bodies.
    for fn, body in pending_bodies:
        parser = _FunctionParser(module, fn)
        current: Optional[BasicBlock] = None
        for raw in body:
            line = raw.strip()
            if not line or line.startswith(";"):
                continue
            lm = _LABEL_RE.match(line)
            if lm:
                current = parser.block(lm.group(1))
                if current not in fn.blocks:
                    fn.blocks.append(current)
                continue
            if current is None:
                current = parser.block("entry")
                fn.blocks.append(current)
            parser.parse_instruction(line, current)
        parser.finish()
    return module
