"""Value hierarchy for the mini LLVM IR.

Every operand in the IR is a :class:`Value`: constants, function arguments,
global variables, and instructions (defined in ``instructions.py``).
Use-def edges are tracked explicitly so passes can rewrite operands and the
ProGraML builder can emit data-flow edges without re-deriving them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.ir.types import PointerType, Type

if TYPE_CHECKING:  # pragma: no cover
    from repro.ir.instructions import Instruction


class Value:
    """Base class for everything that can be used as an operand."""

    def __init__(self, type_: Type, name: str = ""):
        self.type = type_
        self.name = name
        self.uses: List["Instruction"] = []

    def add_use(self, user: "Instruction") -> None:
        self.uses.append(user)

    def remove_use(self, user: "Instruction") -> None:
        # A user may reference the same value several times; remove one
        # bookkeeping entry per removed operand slot.
        try:
            self.uses.remove(user)
        except ValueError:
            pass

    def replace_all_uses_with(self, new: "Value") -> None:
        """Rewrite every user's operand list, moving uses to ``new``."""
        for user in list(self.uses):
            user.replace_operand(self, new)

    @property
    def ref(self) -> str:
        """Textual reference (e.g. ``%x``, ``@f``, ``42``)."""
        return f"%{self.name}"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.ref}: {self.type}>"


class Constant(Value):
    """Integer / float / null constant."""

    def __init__(self, type_: Type, value):
        super().__init__(type_, name="")
        self.value = value

    @property
    def ref(self) -> str:
        if isinstance(self.type, PointerType) and self.value is None:
            return "null"
        return str(self.value)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Constant)
            and not isinstance(other, ConstantString)
            and self.type == other.type
            and self.value == other.value
        )

    def __hash__(self) -> int:
        return hash((self.type, self.value))


class ConstantString(Constant):
    """A string literal.

    Real LLVM materializes these as global arrays and decays them to
    ``i8*`` at use sites; we give them ``i8*`` type directly so they can
    appear inline as call operands.
    """

    def __init__(self, text: str):
        from repro.ir.types import I8

        super().__init__(PointerType(I8), text)
        self.text = text

    @property
    def ref(self) -> str:
        # LLVM-style escaping: printable ASCII except '"' and '\' verbatim,
        # everything else as two-digit hex (\0A etc.).
        out = []
        for ch in self.text:
            code = ord(ch)
            if 32 <= code < 127 and ch not in ('"', "\\"):
                out.append(ch)
            else:
                out.append(f"\\{code:02X}")
        return 'c"' + "".join(out) + '\\00"'

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ConstantString) and self.text == other.text

    def __hash__(self) -> int:
        return hash(("cstr", self.text))


class Argument(Value):
    """Formal parameter of a function."""

    def __init__(self, type_: Type, name: str, index: int):
        super().__init__(type_, name)
        self.index = index


class GlobalVariable(Value):
    """Module-level variable; its type is a pointer to the value type."""

    def __init__(self, value_type: Type, name: str, initializer: Optional[Constant] = None,
                 is_constant: bool = False):
        super().__init__(PointerType(value_type), name)
        self.value_type = value_type
        self.initializer = initializer
        self.is_constant = is_constant

    @property
    def ref(self) -> str:
        return f"@{self.name}"


class UndefValue(Value):
    """LLVM 'undef' — produced by mem2reg for reads of uninitialized slots."""

    @property
    def ref(self) -> str:
        return "undef"
