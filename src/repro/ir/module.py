"""Module / Function / BasicBlock containers for the mini LLVM IR."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.ir.instructions import Instruction, PhiInst
from repro.ir.types import FunctionType, Type
from repro.ir.values import Argument, GlobalVariable, Value


class BasicBlock(Value):
    """A straight-line sequence of instructions ending in a terminator."""

    def __init__(self, name: str, parent: Optional["Function"] = None):
        # Blocks are label values; their "type" is irrelevant, use VOID.
        from repro.ir.types import VOID

        super().__init__(VOID, name)
        self.parent = parent
        self.instructions: List[Instruction] = []

    # -- structure ----------------------------------------------------------
    def append(self, inst: Instruction) -> Instruction:
        if self.is_terminated:
            raise ValueError(f"block {self.name} already has a terminator")
        inst.parent = self
        self.instructions.append(inst)
        return inst

    def insert_before_terminator(self, inst: Instruction) -> Instruction:
        pos = len(self.instructions)
        if self.is_terminated:
            pos -= 1
        inst.parent = self
        self.instructions.insert(pos, inst)
        return inst

    def insert_front(self, inst: Instruction) -> Instruction:
        inst.parent = self
        # Phis stay clustered at the top of the block like in LLVM.
        pos = 0
        if not isinstance(inst, PhiInst):
            while pos < len(self.instructions) and isinstance(self.instructions[pos], PhiInst):
                pos += 1
        self.instructions.insert(pos, inst)
        return inst

    @property
    def terminator(self) -> Optional[Instruction]:
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    @property
    def is_terminated(self) -> bool:
        return self.terminator is not None

    def successors(self) -> Tuple["BasicBlock", ...]:
        term = self.terminator
        return term.successors() if term is not None else ()

    def predecessors(self) -> List["BasicBlock"]:
        if self.parent is None:
            return []
        return [b for b in self.parent.blocks if self in b.successors()]

    def phis(self) -> List[PhiInst]:
        return [i for i in self.instructions if isinstance(i, PhiInst)]

    @property
    def ref(self) -> str:
        return f"%{self.name}"

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<BasicBlock {self.name} ({len(self.instructions)} insts)>"


class Function(Value):
    """A function definition (with blocks) or declaration (without)."""

    def __init__(self, name: str, ftype: FunctionType, module: Optional["Module"] = None,
                 arg_names: Optional[Sequence[str]] = None):
        super().__init__(ftype, name)
        self.ftype = ftype
        self.module = module
        names = list(arg_names) if arg_names else [f"arg{i}" for i in range(len(ftype.params))]
        self.arguments: List[Argument] = [
            Argument(t, n, i) for i, (t, n) in enumerate(zip(ftype.params, names))
        ]
        self.blocks: List[BasicBlock] = []
        self._name_counter = 0

    @property
    def is_declaration(self) -> bool:
        return not self.blocks

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise ValueError(f"function {self.name} has no body")
        return self.blocks[0]

    def add_block(self, name: str = "") -> BasicBlock:
        name = name or self.unique_name("bb")
        existing = {b.name for b in self.blocks}
        if name in existing:
            base = name
            while name in existing:
                name = f"{base}{self._name_counter}"
                self._name_counter += 1
        block = BasicBlock(name, self)
        self.blocks.append(block)
        return block

    def remove_block(self, block: BasicBlock) -> None:
        self.blocks.remove(block)
        block.parent = None

    def unique_name(self, hint: str = "t") -> str:
        self._name_counter += 1
        return f"{hint}{self._name_counter}"

    def instructions(self) -> Iterator[Instruction]:
        for block in self.blocks:
            yield from block.instructions

    @property
    def ref(self) -> str:
        return f"@{self.name}"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "decl" if self.is_declaration else f"{len(self.blocks)} blocks"
        return f"<Function {self.name} ({kind})>"


class Module:
    """Compilation unit: globals + functions, in declaration order."""

    def __init__(self, name: str = "module"):
        self.name = name
        self.functions: Dict[str, Function] = {}
        self.globals: Dict[str, GlobalVariable] = {}
        self.struct_types: Dict[str, Type] = {}

    def add_function(self, name: str, ftype: FunctionType,
                     arg_names: Optional[Sequence[str]] = None) -> Function:
        if name in self.functions:
            existing = self.functions[name]
            if existing.ftype != ftype and not existing.is_declaration:
                raise ValueError(f"function {name} redefined with different type")
            return existing
        fn = Function(name, ftype, self, arg_names)
        self.functions[name] = fn
        return fn

    def get_function(self, name: str) -> Optional[Function]:
        return self.functions.get(name)

    def add_global(self, gv: GlobalVariable) -> GlobalVariable:
        self.globals[gv.name] = gv
        return gv

    def defined_functions(self) -> List[Function]:
        return [f for f in self.functions.values() if not f.is_declaration]

    def instruction_count(self) -> int:
        return sum(len(b.instructions) for f in self.defined_functions() for b in f.blocks)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Module {self.name}: {len(self.functions)} functions>"
