"""Structural verifier for the mini LLVM IR.

Checks the invariants every pass must preserve; the property-based test
suite runs the verifier after each pass pipeline.
"""

from __future__ import annotations

from typing import List

from repro.ir.instructions import Instruction, PhiInst
from repro.ir.module import Function, Module
from repro.ir.analysis import reachable_blocks


class VerificationError(Exception):
    def __init__(self, problems: List[str]):
        super().__init__("; ".join(problems))
        self.problems = problems


def verify_function(fn: Function) -> List[str]:
    problems: List[str] = []
    if fn.is_declaration:
        return problems

    names: dict = {}
    for block in fn.blocks:
        if block.parent is not fn:
            problems.append(f"{fn.name}/{block.name}: wrong parent")
        if not block.instructions:
            problems.append(f"{fn.name}/{block.name}: empty block")
            continue
        if block.terminator is None:
            problems.append(f"{fn.name}/{block.name}: missing terminator")
        for pos, inst in enumerate(block.instructions):
            if inst.parent is not block:
                problems.append(f"{fn.name}/{block.name}: instruction with stale parent")
            if inst.is_terminator and pos != len(block.instructions) - 1:
                problems.append(f"{fn.name}/{block.name}: terminator not last")
            if isinstance(inst, PhiInst) and pos > 0 and not isinstance(
                block.instructions[pos - 1], PhiInst
            ):
                problems.append(f"{fn.name}/{block.name}: phi not grouped at block head")
            if inst.name:
                if inst.name in names:
                    problems.append(f"{fn.name}: duplicate SSA name %{inst.name}")
                names[inst.name] = inst

    reachable = set(id(b) for b in reachable_blocks(fn))
    for block in fn.blocks:
        if id(block) not in reachable:
            continue
        for succ in block.successors():
            if succ not in fn.blocks:
                problems.append(f"{fn.name}/{block.name}: successor {succ.name} not in function")
        for phi in block.phis():
            preds = {id(p) for p in block.predecessors() if id(p) in reachable}
            incoming = {id(b) for b in phi.incoming_blocks}
            if incoming != preds:
                problems.append(
                    f"{fn.name}/{block.name}: phi %{phi.name} incoming blocks "
                    f"do not match predecessors"
                )

    # Use-def consistency: every operand that is an instruction must record
    # this user in its use list.
    for block in fn.blocks:
        for inst in block.instructions:
            for op in inst.operands:
                if isinstance(op, Instruction) and inst not in op.uses:
                    problems.append(
                        f"{fn.name}: {inst.opcode} uses %{op.name} without a use edge"
                    )
    return problems


def verify_module(module: Module) -> None:
    """Raise :class:`VerificationError` if any invariant is broken."""
    problems: List[str] = []
    for fn in module.functions.values():
        problems.extend(verify_function(fn))
    if problems:
        raise VerificationError(problems)
