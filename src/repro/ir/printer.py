"""Textual printer for the mini LLVM IR.

The emitted syntax is LLVM-flavoured and round-trips through
:mod:`repro.ir.parser`.  Property-based tests assert
``parse(print(m))`` is structurally identical to ``m``.
"""

from __future__ import annotations

from typing import List

from repro.ir.instructions import (
    AllocaInst,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    CondBranchInst,
    FCmpInst,
    GEPInst,
    ICmpInst,
    Instruction,
    LoadInst,
    PhiInst,
    ReturnInst,
    SelectInst,
    StoreInst,
    UnreachableInst,
)
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.values import Constant, ConstantString, UndefValue, Value


def _operand(v: Value) -> str:
    """Render an operand as ``type ref``."""
    return f"{v.type} {v.ref}"


def print_instruction(inst: Instruction) -> str:
    if isinstance(inst, AllocaInst):
        suffix = f", {_operand(inst.array_size)}" if inst.array_size is not None else ""
        return f"{inst.ref} = alloca {inst.allocated_type}{suffix}"
    if isinstance(inst, LoadInst):
        return f"{inst.ref} = load {inst.type}, {_operand(inst.pointer)}"
    if isinstance(inst, StoreInst):
        return f"store {_operand(inst.value)}, {_operand(inst.pointer)}"
    if isinstance(inst, BinaryInst):
        return f"{inst.ref} = {inst.opcode} {inst.type} {inst.lhs.ref}, {inst.rhs.ref}"
    if isinstance(inst, ICmpInst):
        l, r = inst.operands
        return f"{inst.ref} = icmp {inst.predicate} {l.type} {l.ref}, {r.ref}"
    if isinstance(inst, FCmpInst):
        l, r = inst.operands
        return f"{inst.ref} = fcmp {inst.predicate} {l.type} {l.ref}, {r.ref}"
    if isinstance(inst, CastInst):
        v = inst.operands[0]
        return f"{inst.ref} = {inst.opcode} {_operand(v)} to {inst.type}"
    if isinstance(inst, SelectInst):
        c, t, f = inst.operands
        return f"{inst.ref} = select {_operand(c)}, {_operand(t)}, {_operand(f)}"
    if isinstance(inst, GEPInst):
        idx = ", ".join(_operand(i) for i in inst.indices)
        return f"{inst.ref} = getelementptr {_operand(inst.pointer)}, {idx} to {inst.type}"
    if isinstance(inst, CallInst):
        args = ", ".join(_operand(a) for a in inst.args)
        callee = inst.callee
        head = f"call {inst.type} {callee.ref}({args})"
        return head if inst.type.is_void else f"{inst.ref} = {head}"
    if isinstance(inst, CondBranchInst):
        return (f"br i1 {inst.cond.ref}, label %{inst.true_block.name}, "
                f"label %{inst.false_block.name}")
    if isinstance(inst, BranchInst):
        return f"br label %{inst.target.name}"
    if isinstance(inst, ReturnInst):
        if inst.return_value is None:
            return "ret void"
        return f"ret {_operand(inst.return_value)}"
    if isinstance(inst, UnreachableInst):
        return "unreachable"
    if isinstance(inst, PhiInst):
        pairs = ", ".join(f"[ {v.ref}, %{b.name} ]" for v, b in inst.incoming)
        return f"{inst.ref} = phi {inst.type} {pairs}"
    raise ValueError(f"cannot print instruction {inst!r}")


def print_block(block: BasicBlock) -> str:
    lines = [f"{block.name}:"]
    lines.extend(f"  {print_instruction(i)}" for i in block.instructions)
    return "\n".join(lines)


def print_function(fn: Function) -> str:
    params = ", ".join(f"{a.type} {a.ref}" for a in fn.arguments)
    if fn.ftype.vararg:
        params = f"{params}, ..." if params else "..."
    if fn.is_declaration:
        return f"declare {fn.ftype.ret} @{fn.name}({params})"
    head = f"define {fn.ftype.ret} @{fn.name}({params}) {{"
    body = "\n".join(print_block(b) for b in fn.blocks)
    return f"{head}\n{body}\n}}"


def print_module(module: Module) -> str:
    parts: List[str] = [f"; ModuleID = '{module.name}'"]
    for gv in module.globals.values():
        kind = "constant" if gv.is_constant else "global"
        init = gv.initializer.ref if gv.initializer is not None else "zeroinitializer"
        parts.append(f"@{gv.name} = {kind} {gv.value_type} {init}")
    for fn in module.functions.values():
        parts.append(print_function(fn))
    return "\n\n".join(parts) + "\n"
