"""Recursive-descent parser for the mini-C subset.

Covers the constructs present in the MBI / MPI-CorrBench style benchmark
programs: scalar and pointer declarations, arrays, all control flow except
``switch``/``goto``, the full C expression grammar with precedence, and
function definitions/prototypes.  Typedef names (including every ``MPI_*``
handle type) are tracked so declarations can be distinguished from
expressions.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.frontend import cast as A
from repro.frontend.lexer import Token, tokenize

BUILTIN_TYPE_NAMES = {
    "void", "char", "short", "int", "long", "float", "double",
    "signed", "unsigned", "size_t", "int64_t", "int32_t", "uint64_t",
    "MPI_Comm", "MPI_Datatype", "MPI_Op", "MPI_Request", "MPI_Status",
    "MPI_Win", "MPI_Group", "MPI_Info", "MPI_Aint", "MPI_Errhandler",
    "MPI_Message", "MPI_File", "MPI_Fint", "MPI_Count",
}

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}

# Binary operator precedence (higher binds tighter).
_BINOP_PREC = {
    "||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6,
    "<": 7, ">": 7, "<=": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}


class CParseError(ValueError):
    pass


class Parser:
    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.pos = 0
        self.typedefs: Set[str] = set(BUILTIN_TYPE_NAMES)
        # User typedef name -> underlying CType (resolved at use sites).
        self.typedef_map: dict = {}

    # -- token helpers ------------------------------------------------------
    @property
    def tok(self) -> Token:
        return self.tokens[self.pos]

    def peek(self, offset: int = 1) -> Token:
        i = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[i]

    def advance(self) -> Token:
        tok = self.tok
        self.pos += 1
        return tok

    def accept(self, text: str) -> bool:
        if self.tok.text == text and self.tok.kind in ("punct", "kw"):
            self.pos += 1
            return True
        return False

    def expect(self, text: str) -> Token:
        if self.tok.text != text:
            raise CParseError(
                f"line {self.tok.line}: expected {text!r}, got {self.tok.text!r}"
            )
        return self.advance()

    def error(self, message: str) -> CParseError:
        return CParseError(f"line {self.tok.line}: {message} (at {self.tok.text!r})")

    # -- type parsing ------------------------------------------------------
    def at_type(self) -> bool:
        tok = self.tok
        if tok.kind == "kw" and tok.text in (
            "void", "char", "short", "int", "long", "float", "double",
            "signed", "unsigned", "const", "static", "extern", "struct",
        ):
            return True
        return tok.kind == "ident" and tok.text in self.typedefs

    def parse_type_specifier(self) -> A.CType:
        is_const = False
        while self.tok.text in ("const", "static", "extern"):
            is_const = is_const or self.tok.text == "const"
            self.advance()
        parts: List[str] = []
        if self.accept("struct"):
            name = self.advance().text
            base = f"struct {name}"
        else:
            while self.tok.text in ("void", "char", "short", "int", "long",
                                    "float", "double", "signed", "unsigned"):
                parts.append(self.advance().text)
            if parts:
                base = " ".join(parts)
            elif self.tok.kind == "ident" and self.tok.text in self.typedefs:
                base = self.advance().text
            else:
                raise self.error("expected type specifier")
        while self.tok.text == "const":
            is_const = True
            self.advance()
        if base in self.typedef_map:
            underlying = self.typedef_map[base]
            ctype = A.CType(underlying.base, underlying.pointers,
                            underlying.array_dims, is_const)
        else:
            ctype = A.CType(_normalize_base(base), is_const=is_const)
        while self.accept("*"):
            ctype = ctype.pointer_to()
            while self.tok.text == "const":
                self.advance()
        return ctype

    # -- top level ------------------------------------------------------------
    def parse_translation_unit(self) -> A.TranslationUnit:
        unit = A.TranslationUnit()
        while self.tok.kind != "eof":
            if self.accept(";"):
                continue
            if self.tok.text == "typedef":
                self._parse_typedef()
                continue
            item = self._parse_external_declaration()
            if item is not None:
                if isinstance(item, list):
                    unit.items.extend(item)
                else:
                    unit.items.append(item)
        return unit

    def _parse_typedef(self) -> None:
        self.expect("typedef")
        underlying = self.parse_type_specifier()
        name = self.advance().text
        self.typedefs.add(name)
        self.typedef_map[name] = underlying
        self.expect(";")

    def _parse_external_declaration(self):
        base = self.parse_type_specifier()
        # declarator
        ctype = base
        while self.accept("*"):
            ctype = ctype.pointer_to()
        if self.tok.kind != "ident":
            raise self.error("expected declarator name")
        name = self.advance().text
        if self.tok.text == "(":
            return self._parse_function(ctype, name)
        # global variable(s)
        decls: List[A.GlobalDecl] = []
        while True:
            dims: List[Optional[int]] = []
            while self.accept("["):
                if self.tok.text == "]":
                    dims.append(None)
                else:
                    dims.append(self._parse_const_int())
                self.expect("]")
            vtype = A.CType(ctype.base, ctype.pointers, tuple(dims), ctype.is_const)
            init = None
            init_list = None
            if self.accept("="):
                if self.tok.text == "{":
                    init_list = self._parse_brace_init()
                else:
                    init = self.parse_assignment()
            decls.append(A.GlobalDecl(A.Declaration(vtype, name, init, init_list)))
            if not self.accept(","):
                break
            ctype2 = base
            while self.accept("*"):
                ctype2 = ctype2.pointer_to()
            ctype = ctype2
            name = self.advance().text
        self.expect(";")
        return decls

    def _parse_function(self, ret: A.CType, name: str) -> A.FunctionDef:
        self.expect("(")
        params: List[A.Param] = []
        vararg = False
        if not self.accept(")"):
            if self.tok.text == "void" and self.peek().text == ")":
                self.advance()
            else:
                while True:
                    if self.accept("..."):
                        vararg = True
                        break
                    ptype = self.parse_type_specifier()
                    pname = ""
                    if self.tok.kind == "ident":
                        pname = self.advance().text
                    dims: List[Optional[int]] = []
                    while self.accept("["):
                        if self.tok.text != "]":
                            self._parse_const_int()
                        self.expect("]")
                        dims.append(None)
                    if dims:
                        # Array parameters decay to pointers.
                        ptype = ptype.pointer_to()
                    params.append(A.Param(ptype, pname or f"arg{len(params)}"))
                    if not self.accept(","):
                        break
            if self.tokens[self.pos - 1].text != ")":
                self.expect(")")
        if self.accept(";"):
            return A.FunctionDef(ret, name, params, None, vararg)
        body = self.parse_compound()
        return A.FunctionDef(ret, name, params, body, vararg)

    def _parse_const_int(self) -> int:
        expr = self.parse_conditional()
        value = _eval_const(expr)
        if value is None:
            raise self.error("expected integer constant expression")
        return value

    def _parse_brace_init(self) -> List[A.Expr]:
        self.expect("{")
        items: List[A.Expr] = []
        if not self.accept("}"):
            while True:
                items.append(self.parse_assignment())
                if not self.accept(","):
                    break
                if self.tok.text == "}":
                    break
            self.expect("}")
        return items

    # -- statements ------------------------------------------------------------
    def parse_compound(self) -> A.Compound:
        self.expect("{")
        body: List[A.Stmt] = []
        while not self.accept("}"):
            body.extend(self.parse_statement())
        return A.Compound(body)

    def parse_statement(self) -> List[A.Stmt]:
        tok = self.tok
        if tok.text == "{":
            return [self.parse_compound()]
        if tok.text == ";":
            self.advance()
            return [A.ExprStmt(None)]
        if tok.text == "if":
            self.advance()
            self.expect("(")
            cond = self.parse_expression()
            self.expect(")")
            then = _single(self.parse_statement())
            otherwise = None
            if self.accept("else"):
                otherwise = _single(self.parse_statement())
            return [A.If(cond, then, otherwise)]
        if tok.text == "while":
            self.advance()
            self.expect("(")
            cond = self.parse_expression()
            self.expect(")")
            return [A.While(cond, _single(self.parse_statement()))]
        if tok.text == "do":
            self.advance()
            body = _single(self.parse_statement())
            self.expect("while")
            self.expect("(")
            cond = self.parse_expression()
            self.expect(")")
            self.expect(";")
            return [A.DoWhile(body, cond)]
        if tok.text == "for":
            self.advance()
            self.expect("(")
            init: Optional[A.Stmt] = None
            if not self.accept(";"):
                if self.at_type():
                    init = A.Compound(self.parse_declaration())
                else:
                    init = A.ExprStmt(self.parse_expression())
                    self.expect(";")
            cond = None
            if not self.accept(";"):
                cond = self.parse_expression()
                self.expect(";")
            step = None
            if self.tok.text != ")":
                step = self.parse_expression()
            self.expect(")")
            return [A.For(init, cond, step, _single(self.parse_statement()))]
        if tok.text == "return":
            self.advance()
            value = None
            if self.tok.text != ";":
                value = self.parse_expression()
            self.expect(";")
            return [A.Return(value)]
        if tok.text == "break":
            self.advance()
            self.expect(";")
            return [A.Break()]
        if tok.text == "continue":
            self.advance()
            self.expect(";")
            return [A.Continue()]
        if self.at_type():
            return self.parse_declaration()
        expr = self.parse_expression()
        self.expect(";")
        return [A.ExprStmt(expr)]

    def parse_declaration(self) -> List[A.Stmt]:
        base = self.parse_type_specifier()
        decls: List[A.Stmt] = []
        while True:
            ctype = base
            while self.accept("*"):
                ctype = ctype.pointer_to()
            name = self.advance().text
            dims: List[Optional[int]] = []
            while self.accept("["):
                if self.tok.text == "]":
                    dims.append(None)
                else:
                    dims.append(self._parse_const_int())
                self.expect("]")
            vtype = A.CType(ctype.base, ctype.pointers, tuple(dims), ctype.is_const)
            init = None
            init_list = None
            if self.accept("="):
                if self.tok.text == "{":
                    init_list = self._parse_brace_init()
                else:
                    init = self.parse_assignment()
            decls.append(A.Declaration(vtype, name, init, init_list))
            if not self.accept(","):
                break
        self.expect(";")
        return decls

    # -- expressions ------------------------------------------------------------
    def parse_expression(self) -> A.Expr:
        expr = self.parse_assignment()
        if self.tok.text != ",":
            return expr
        parts = [expr]
        while self.accept(","):
            parts.append(self.parse_assignment())
        return A.Comma(parts)

    def parse_assignment(self) -> A.Expr:
        lhs = self.parse_conditional()
        if self.tok.text in _ASSIGN_OPS and self.tok.kind == "punct":
            op = self.advance().text
            rhs = self.parse_assignment()
            return A.Assign(op, lhs, rhs)
        return lhs

    def parse_conditional(self) -> A.Expr:
        cond = self.parse_binary(1)
        if self.accept("?"):
            then = self.parse_expression()
            self.expect(":")
            otherwise = self.parse_conditional()
            return A.Ternary(cond, then, otherwise)
        return cond

    def parse_binary(self, min_prec: int) -> A.Expr:
        lhs = self.parse_unary()
        while True:
            op = self.tok.text
            prec = _BINOP_PREC.get(op)
            if prec is None or prec < min_prec or self.tok.kind != "punct":
                return lhs
            self.advance()
            rhs = self.parse_binary(prec + 1)
            lhs = A.Binary(op, lhs, rhs)

    def parse_unary(self) -> A.Expr:
        tok = self.tok
        if tok.text in ("-", "!", "~", "+"):
            self.advance()
            operand = self.parse_unary()
            if tok.text == "+":
                return operand
            return A.Unary(tok.text, operand)
        if tok.text == "&":
            self.advance()
            return A.Unary("&", self.parse_unary())
        if tok.text == "*":
            self.advance()
            return A.Unary("*", self.parse_unary())
        if tok.text in ("++", "--"):
            self.advance()
            return A.Unary(tok.text, self.parse_unary())
        if tok.text == "sizeof":
            self.advance()
            if self.tok.text == "(" and self._is_type_after_paren():
                self.expect("(")
                target = self.parse_type_specifier()
                self.expect(")")
                return A.SizeOf(target)
            operand = self.parse_unary()
            return A.SizeOf(A.CType("int"))  # sizeof expr: treated as int-sized
        if tok.text == "(" and self._is_type_after_paren():
            self.expect("(")
            to = self.parse_type_specifier()
            self.expect(")")
            return A.CastExpr(to, self.parse_unary())
        return self.parse_postfix()

    def _is_type_after_paren(self) -> bool:
        nxt = self.peek()
        if nxt.kind == "kw" and nxt.text in (
            "void", "char", "short", "int", "long", "float", "double",
            "signed", "unsigned", "const", "struct",
        ):
            return True
        return nxt.kind == "ident" and nxt.text in self.typedefs

    def parse_postfix(self) -> A.Expr:
        expr = self.parse_primary()
        while True:
            if self.accept("["):
                index = self.parse_expression()
                self.expect("]")
                expr = A.Index(expr, index)
            elif self.tok.text == "(" and isinstance(expr, A.Ident):
                self.advance()
                args: List[A.Expr] = []
                if not self.accept(")"):
                    while True:
                        args.append(self.parse_assignment())
                        if not self.accept(","):
                            break
                    self.expect(")")
                expr = A.Call(expr.name, args)
            elif self.accept("."):
                expr = A.Member(expr, self.advance().text, arrow=False)
            elif self.accept("->"):
                expr = A.Member(expr, self.advance().text, arrow=True)
            elif self.tok.text in ("++", "--"):
                op = "p" + self.advance().text
                expr = A.Unary(op, expr)
            else:
                return expr

    def parse_primary(self) -> A.Expr:
        tok = self.tok
        if tok.kind == "int":
            self.advance()
            return A.IntLit(int(tok.text, 0))
        if tok.kind == "float":
            self.advance()
            return A.FloatLit(float(tok.text.rstrip("fF")))
        if tok.kind == "string":
            self.advance()
            text = _unescape(tok.text[1:-1])
            # Adjacent string literal concatenation.
            while self.tok.kind == "string":
                text += _unescape(self.advance().text[1:-1])
            return A.StrLit(text)
        if tok.kind == "char":
            self.advance()
            return A.CharLit(ord(_unescape(tok.text[1:-1])))
        if tok.kind == "ident":
            self.advance()
            return A.Ident(tok.text)
        if self.accept("("):
            expr = self.parse_expression()
            self.expect(")")
            return expr
        raise self.error("expected expression")


def _normalize_base(base: str) -> str:
    words = base.split()
    if "double" in words:
        return "double"
    if "float" in words:
        return "float"
    if "char" in words:
        return "char"
    if "short" in words:
        return "short"
    if "long" in words:
        return "long"
    if words == ["unsigned"] or "int" in words or words == ["signed"]:
        if "unsigned" in words and "int" in words:
            return "unsigned"
        if words == ["unsigned"]:
            return "unsigned"
        return "int"
    return base


def _unescape(text: str) -> str:
    return (
        text.replace("\\n", "\n").replace("\\t", "\t").replace("\\0", "\0")
        .replace('\\"', '"').replace("\\'", "'").replace("\\\\", "\\")
    )


def _single(stmts: List[A.Stmt]) -> A.Stmt:
    return stmts[0] if len(stmts) == 1 else A.Compound(stmts)


def _eval_const(expr: A.Expr) -> Optional[int]:
    if isinstance(expr, A.IntLit):
        return expr.value
    if isinstance(expr, A.CharLit):
        return expr.value
    if isinstance(expr, A.Unary) and expr.op == "-":
        inner = _eval_const(expr.operand)
        return None if inner is None else -inner
    if isinstance(expr, A.Binary):
        lhs, rhs = _eval_const(expr.lhs), _eval_const(expr.rhs)
        if lhs is None or rhs is None:
            return None
        ops = {"+": lambda a, b: a + b, "-": lambda a, b: a - b,
               "*": lambda a, b: a * b, "/": lambda a, b: a // b if b else 0,
               "%": lambda a, b: a % b if b else 0,
               "<<": lambda a, b: a << b, ">>": lambda a, b: a >> b}
        fn = ops.get(expr.op)
        return fn(lhs, rhs) if fn else None
    return None


def parse_c(source: str) -> A.TranslationUnit:
    """Parse preprocessed C source into a translation unit."""
    return Parser(source).parse_translation_unit()
