"""Compiler driver: C source → preprocessed → AST → IR → optimized IR."""

from __future__ import annotations

from typing import Dict, Optional

from repro.frontend.codegen import CodegenError, generate_module
from repro.frontend.lexer import LexError
from repro.frontend.parser import CParseError, parse_c
from repro.frontend.preprocessor import PreprocessError, count_loc, preprocess
from repro.frontend.sema import SemaError
from repro.ir.module import Module
from repro.ir.verifier import verify_module
from repro.passes import run_pipeline
from repro.perf import PERF


class CompileError(ValueError):
    """Any front-end failure (lex/parse/sema/codegen/preprocess)."""


def compile_c(source: str, name: str = "module", opt_level: str = "O0",
              extra_headers: Optional[Dict[str, str]] = None,
              verify: bool = True) -> Module:
    """Compile a C translation unit to (optionally optimized) IR.

    ``opt_level`` is one of ``O0``/``O1``/``O2``/``Os`` (a leading dash is
    accepted).  Raises :class:`CompileError` on any front-end failure.
    """
    try:
        with PERF.stage("compile"):
            text = preprocess(source, extra_headers)
            unit = parse_c(text)
            module = generate_module(unit, name)
    except (PreprocessError, LexError, CParseError, SemaError, CodegenError) as exc:
        raise CompileError(str(exc)) from exc
    except RecursionError:
        # Pathologically nested input (found by the fuzz harness: a few
        # thousand nested parens or blocks blows the recursive-descent
        # parser's stack).  By the time we get here the stack has
        # unwound, so raising a typed rejection is safe.
        raise CompileError(
            f"{name}: program nesting exceeds the compiler's limits") \
            from None
    if verify:
        with PERF.stage("verify"):
            verify_module(module)
    try:
        with PERF.stage("passes"):
            run_pipeline(module, opt_level)
    except RecursionError:
        raise CompileError(
            f"{name}: optimizing {opt_level} exceeded the compiler's "
            "recursion limits") from None
    if verify:
        with PERF.stage("verify"):
            verify_module(module)
    return module


def preprocess_and_count_loc(source: str,
                             extra_headers: Optional[Dict[str, str]] = None) -> int:
    """LoC after preprocessing — the paper's Fig. 2 size metric."""
    try:
        return count_loc(preprocess(source, extra_headers))
    except PreprocessError as exc:
        raise CompileError(str(exc)) from exc
