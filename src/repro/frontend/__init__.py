"""Mini-C frontend: preprocessor, lexer, parser, sema, and IR codegen.

Compiles the C subset used by the MBI / MPI-CorrBench benchmark programs
(and the Hypre-like case study) down to :mod:`repro.ir`, replacing the
clang step of the paper's pipeline.
"""

from repro.frontend.compiler import CompileError, compile_c, preprocess_and_count_loc

__all__ = ["compile_c", "CompileError", "preprocess_and_count_loc"]
