"""AST → IR lowering for the mini-C frontend.

Produces clang-at-``-O0``-style IR: every local lives in an entry-block
alloca, reads are loads, writes are stores.  The optimization pipelines in
:mod:`repro.passes` then promote to SSA exactly like LLVM's mem2reg.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.frontend import cast as A
from repro.frontend.sema import (
    Environment,
    MPI_STATUS_FIELDS,
    MPI_STATUS_TYPE,
    SemaError,
    lower_ctype,
)
from repro.ir.builder import IRBuilder
from repro.ir.instructions import AllocaInst
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.types import (
    ArrayType,
    DOUBLE,
    FLOAT,
    FloatType,
    FunctionType,
    I1,
    I32,
    I64,
    I8,
    IntType,
    PointerType,
    StructType,
    Type,
    VOID,
    ptr,
    type_size_bits,
)
from repro.ir.values import Constant, ConstantString, GlobalVariable, Value


class CodegenError(ValueError):
    pass


class CodeGenerator:
    def __init__(self, unit: A.TranslationUnit, module_name: str = "module"):
        self.unit = unit
        self.module = Module(module_name)
        self.env = Environment(self.module)
        self.globals: Dict[str, GlobalVariable] = {}
        # per-function state
        self.builder = IRBuilder()
        self.fn: Optional[Function] = None
        self.scopes: List[Dict[str, Value]] = []
        self.loop_stack: List[Tuple[BasicBlock, BasicBlock]] = []  # (break, continue)
        self._alloca_idx = 0

    # ------------------------------------------------------------------ API
    def generate(self) -> Module:
        # Pass 1: declare globals and all function signatures.
        for item in self.unit.items:
            if isinstance(item, A.GlobalDecl):
                self._emit_global(item.decl)
            elif isinstance(item, A.FunctionDef):
                ftype = FunctionType(
                    lower_ctype(item.ret),
                    tuple(lower_ctype(p.ctype) for p in item.params),
                    item.vararg,
                )
                self.module.add_function(item.name, ftype, [p.name for p in item.params])
        # Pass 2: bodies.
        for item in self.unit.items:
            if isinstance(item, A.FunctionDef) and item.body is not None:
                self._emit_function(item)
        return self.module

    # -------------------------------------------------------------- globals
    def _emit_global(self, decl: A.Declaration) -> None:
        vtype = lower_ctype(decl.ctype)
        initializer: Optional[Constant] = None
        if decl.init is not None:
            folded = self._fold_constant(decl.init, vtype)
            if folded is None:
                raise CodegenError(f"global {decl.name}: non-constant initializer")
            initializer = folded
        gv = GlobalVariable(vtype, decl.name, initializer)
        self.module.add_global(gv)
        self.globals[decl.name] = gv

    def _fold_constant(self, expr: A.Expr, vtype: Type) -> Optional[Constant]:
        if isinstance(expr, A.IntLit):
            if isinstance(vtype, FloatType):
                return Constant(vtype, float(expr.value))
            return Constant(vtype, expr.value)
        if isinstance(expr, A.FloatLit):
            return Constant(vtype, expr.value)
        if isinstance(expr, A.StrLit):
            return ConstantString(expr.value)
        if isinstance(expr, A.Unary) and expr.op == "-":
            inner = self._fold_constant(expr.operand, vtype)
            if inner is not None and not isinstance(inner, ConstantString):
                return Constant(vtype, -inner.value)
        if isinstance(expr, A.Ident):
            value = self.env.constant_value(expr.name)
            if value is not None:
                if isinstance(vtype, PointerType):
                    return Constant(vtype, None)
                return Constant(vtype, value)
        return None

    # -------------------------------------------------------------- functions
    def _emit_function(self, node: A.FunctionDef) -> None:
        fn = self.module.functions[node.name]
        self.fn = fn
        entry = fn.add_block("entry")
        self.builder.position_at_end(entry)
        self.scopes = [{}]
        self.loop_stack = []
        self._alloca_idx = 0

        # Spill arguments into allocas (clang -O0 style).
        for arg in fn.arguments:
            slot = self._create_alloca(arg.type, f"{arg.name}.addr")
            self.builder.store(arg, slot)
            self.scopes[-1][arg.name] = slot

        self._emit_stmt(node.body)

        # Implicit return on fall-through.
        block = self.builder.block
        assert block is not None
        if not block.is_terminated:
            ret = fn.ftype.ret
            if ret.is_void:
                self.builder.ret()
            elif isinstance(ret, FloatType):
                self.builder.ret(Constant(ret, 0.0))
            elif isinstance(ret, PointerType):
                self.builder.ret(Constant(ret, None))
            else:
                self.builder.ret(Constant(ret, 0))
        # Terminate any dangling unreachable blocks created after returns.
        for b in fn.blocks:
            if not b.is_terminated:
                saved = self.builder.block
                self.builder.position_at_end(b)
                self.builder.unreachable()
                self.builder.position_at_end(saved)
        self.fn = None

    def _create_alloca(self, type_: Type, name: str) -> AllocaInst:
        assert self.fn is not None
        inst = AllocaInst(type_, self.fn.unique_name(name.replace(" ", "_")))
        entry = self.fn.entry
        entry.instructions.insert(self._alloca_idx, inst)
        inst.parent = entry
        self._alloca_idx += 1
        return inst

    # -------------------------------------------------------------- scopes
    def _lookup(self, name: str) -> Optional[Value]:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        return self.globals.get(name)

    # -------------------------------------------------------------- statements
    def _emit_stmt(self, stmt: A.Stmt) -> None:
        block = self.builder.block
        assert block is not None
        if block.is_terminated:
            # Dead code after return/break: keep compiling into a fresh
            # (unreachable) block, like clang does.
            assert self.fn is not None
            self.builder.position_at_end(self.fn.add_block("dead"))

        if isinstance(stmt, A.Compound):
            self.scopes.append({})
            for s in stmt.body:
                self._emit_stmt(s)
            self.scopes.pop()
        elif isinstance(stmt, A.Declaration):
            self._emit_local_decl(stmt)
        elif isinstance(stmt, A.ExprStmt):
            if stmt.expr is not None:
                self._emit_expr(stmt.expr)
        elif isinstance(stmt, A.If):
            self._emit_if(stmt)
        elif isinstance(stmt, A.While):
            self._emit_while(stmt)
        elif isinstance(stmt, A.DoWhile):
            self._emit_do_while(stmt)
        elif isinstance(stmt, A.For):
            self._emit_for(stmt)
        elif isinstance(stmt, A.Return):
            self._emit_return(stmt)
        elif isinstance(stmt, A.Break):
            if not self.loop_stack:
                raise CodegenError("break outside loop")
            self.builder.br(self.loop_stack[-1][0])
        elif isinstance(stmt, A.Continue):
            if not self.loop_stack:
                raise CodegenError("continue outside loop")
            self.builder.br(self.loop_stack[-1][1])
        else:
            raise CodegenError(f"unsupported statement {type(stmt).__name__}")

    def _emit_local_decl(self, decl: A.Declaration) -> None:
        vtype = lower_ctype(decl.ctype)
        if isinstance(vtype, ArrayType) and vtype.count == 0 and decl.init_list:
            vtype = ArrayType(vtype.element, len(decl.init_list))
        slot = self._create_alloca(vtype, decl.name)
        self.scopes[-1][decl.name] = slot
        if decl.init is not None:
            value = self._convert(self._emit_expr(decl.init), vtype)
            self.builder.store(value, slot)
        elif decl.init_list is not None:
            if not isinstance(vtype, ArrayType):
                raise CodegenError(f"brace initializer on non-array {decl.name}")
            for i, item in enumerate(decl.init_list):
                element_ptr = self.builder.gep(
                    slot, [Constant(I32, 0), Constant(I32, i)], ptr(vtype.element)
                )
                self.builder.store(
                    self._convert(self._emit_expr(item), vtype.element), element_ptr
                )

    def _emit_if(self, stmt: A.If) -> None:
        assert self.fn is not None
        cond = self._to_bool(self._emit_expr(stmt.cond))
        then_block = self.fn.add_block("if.then")
        merge_block = self.fn.add_block("if.end")
        else_block = self.fn.add_block("if.else") if stmt.otherwise else merge_block
        self.builder.cond_br(cond, then_block, else_block)

        self.builder.position_at_end(then_block)
        self._emit_stmt(stmt.then)
        if not self.builder.block.is_terminated:
            self.builder.br(merge_block)
        if stmt.otherwise is not None:
            self.builder.position_at_end(else_block)
            self._emit_stmt(stmt.otherwise)
            if not self.builder.block.is_terminated:
                self.builder.br(merge_block)
        self.builder.position_at_end(merge_block)

    def _emit_while(self, stmt: A.While) -> None:
        assert self.fn is not None
        cond_block = self.fn.add_block("while.cond")
        body_block = self.fn.add_block("while.body")
        end_block = self.fn.add_block("while.end")
        self.builder.br(cond_block)
        self.builder.position_at_end(cond_block)
        self.builder.cond_br(self._to_bool(self._emit_expr(stmt.cond)), body_block, end_block)
        self.builder.position_at_end(body_block)
        self.loop_stack.append((end_block, cond_block))
        self._emit_stmt(stmt.body)
        self.loop_stack.pop()
        if not self.builder.block.is_terminated:
            self.builder.br(cond_block)
        self.builder.position_at_end(end_block)

    def _emit_do_while(self, stmt: A.DoWhile) -> None:
        assert self.fn is not None
        body_block = self.fn.add_block("do.body")
        cond_block = self.fn.add_block("do.cond")
        end_block = self.fn.add_block("do.end")
        self.builder.br(body_block)
        self.builder.position_at_end(body_block)
        self.loop_stack.append((end_block, cond_block))
        self._emit_stmt(stmt.body)
        self.loop_stack.pop()
        if not self.builder.block.is_terminated:
            self.builder.br(cond_block)
        self.builder.position_at_end(cond_block)
        self.builder.cond_br(self._to_bool(self._emit_expr(stmt.cond)), body_block, end_block)
        self.builder.position_at_end(end_block)

    def _emit_for(self, stmt: A.For) -> None:
        assert self.fn is not None
        self.scopes.append({})
        if stmt.init is not None:
            # `for (int i = ...)` parses as a Compound of declarations; emit
            # them directly so `i` lives in the for-statement's scope.
            if isinstance(stmt.init, A.Compound):
                for s in stmt.init.body:
                    self._emit_stmt(s)
            else:
                self._emit_stmt(stmt.init)
        cond_block = self.fn.add_block("for.cond")
        body_block = self.fn.add_block("for.body")
        step_block = self.fn.add_block("for.inc")
        end_block = self.fn.add_block("for.end")
        self.builder.br(cond_block)
        self.builder.position_at_end(cond_block)
        if stmt.cond is not None:
            self.builder.cond_br(self._to_bool(self._emit_expr(stmt.cond)),
                                 body_block, end_block)
        else:
            self.builder.br(body_block)
        self.builder.position_at_end(body_block)
        self.loop_stack.append((end_block, step_block))
        self._emit_stmt(stmt.body)
        self.loop_stack.pop()
        if not self.builder.block.is_terminated:
            self.builder.br(step_block)
        self.builder.position_at_end(step_block)
        if stmt.step is not None:
            self._emit_expr(stmt.step)
        self.builder.br(cond_block)
        self.builder.position_at_end(end_block)
        self.scopes.pop()

    def _emit_return(self, stmt: A.Return) -> None:
        assert self.fn is not None
        ret = self.fn.ftype.ret
        if stmt.value is None or ret.is_void:
            if stmt.value is not None:
                self._emit_expr(stmt.value)
            self.builder.ret()
        else:
            self.builder.ret(self._convert(self._emit_expr(stmt.value), ret))

    # -------------------------------------------------------------- expressions
    def _emit_expr(self, expr: A.Expr) -> Value:
        if isinstance(expr, A.IntLit):
            return Constant(I32, expr.value)
        if isinstance(expr, A.FloatLit):
            return Constant(DOUBLE, expr.value)
        if isinstance(expr, A.CharLit):
            return Constant(I8, expr.value)
        if isinstance(expr, A.StrLit):
            return ConstantString(expr.value)
        if isinstance(expr, A.Ident):
            return self._emit_ident(expr)
        if isinstance(expr, A.Unary):
            return self._emit_unary(expr)
        if isinstance(expr, A.Binary):
            return self._emit_binary(expr)
        if isinstance(expr, A.Assign):
            return self._emit_assign(expr)
        if isinstance(expr, A.Ternary):
            return self._emit_ternary(expr)
        if isinstance(expr, A.Call):
            return self._emit_call(expr)
        if isinstance(expr, A.Index):
            return self._load_lvalue(self._emit_lvalue(expr))
        if isinstance(expr, A.Member):
            return self._load_lvalue(self._emit_lvalue(expr))
        if isinstance(expr, A.CastExpr):
            return self._convert(self._emit_expr(expr.operand), lower_ctype(expr.to))
        if isinstance(expr, A.SizeOf):
            bits = type_size_bits(lower_ctype(expr.target))
            return Constant(I64, max(1, bits // 8))
        if isinstance(expr, A.Comma):
            value: Optional[Value] = None
            for part in expr.parts:
                value = self._emit_expr(part)
            assert value is not None
            return value
        raise CodegenError(f"unsupported expression {type(expr).__name__}")

    def _emit_ident(self, expr: A.Ident) -> Value:
        slot = self._lookup(expr.name)
        if slot is not None:
            pointee = slot.type.pointee  # type: ignore[union-attr]
            if isinstance(pointee, ArrayType):
                # Array-to-pointer decay.
                return self.builder.gep(
                    slot, [Constant(I32, 0), Constant(I32, 0)], ptr(pointee.element)
                )
            return self.builder.load(slot)
        const = self.env.constant_value(expr.name)
        if const is not None:
            return Constant(I32, const)
        if self.env.is_pointer_constant(expr.name):
            return Constant(ptr(I8), None)
        fn = self.module.get_function(expr.name)
        if fn is not None:
            return fn
        if self.env.is_builtin(expr.name):
            return self.env.declare_builtin(expr.name)
        raise CodegenError(f"use of undeclared identifier {expr.name!r}")

    def _emit_lvalue(self, expr: A.Expr) -> Value:
        if isinstance(expr, A.Ident):
            slot = self._lookup(expr.name)
            if slot is None:
                raise CodegenError(f"cannot take address of {expr.name!r}")
            return slot
        if isinstance(expr, A.Unary) and expr.op == "*":
            return self._emit_expr(expr.operand)
        if isinstance(expr, A.Index):
            base = self._emit_expr(expr.base)
            if not isinstance(base.type, PointerType):
                raise CodegenError("subscript of non-pointer value")
            index = self._convert(self._emit_expr(expr.index), I64)
            return self.builder.gep(base, [index], base.type)
        if isinstance(expr, A.Member):
            if expr.arrow:
                base = self._emit_expr(expr.base)
            else:
                base = self._emit_lvalue(expr.base)
            if not isinstance(base.type, PointerType):
                raise CodegenError("member access on non-pointer value")
            struct = base.type.pointee
            if not (isinstance(struct, StructType) and struct.name == "MPI_Status"):
                raise SemaError(f"unknown struct for member .{expr.field}")
            if expr.field not in MPI_STATUS_FIELDS:
                raise SemaError(f"MPI_Status has no field {expr.field!r}")
            idx = MPI_STATUS_FIELDS[expr.field]
            return self.builder.gep(
                base, [Constant(I32, 0), Constant(I32, idx)], ptr(I32)
            )
        raise CodegenError(f"expression is not an lvalue: {type(expr).__name__}")

    def _load_lvalue(self, pointer: Value) -> Value:
        pointee = pointer.type.pointee  # type: ignore[union-attr]
        if isinstance(pointee, ArrayType):
            return self.builder.gep(
                pointer, [Constant(I32, 0), Constant(I32, 0)], ptr(pointee.element)
            )
        return self.builder.load(pointer)

    def _emit_unary(self, expr: A.Unary) -> Value:
        op = expr.op
        if op == "&":
            if isinstance(expr.operand, A.Ident):
                name = expr.operand.name
                if self._lookup(name) is None and (
                    self.module.get_function(name) or self.env.is_builtin(name)
                ):
                    return self._emit_ident(expr.operand)
            return self._emit_lvalue(expr.operand)
        if op == "*":
            value = self._emit_expr(expr.operand)
            if not isinstance(value.type, PointerType):
                raise CodegenError("dereference of non-pointer")
            return self.builder.load(value)
        if op == "-":
            value = self._emit_expr(expr.operand)
            if isinstance(value.type, FloatType):
                return self.builder.binop("fsub", Constant(value.type, 0.0), value)
            value = self._promote_int(value)
            return self.builder.sub(Constant(value.type, 0), value)
        if op == "!":
            cond = self._to_bool(self._emit_expr(expr.operand))
            flipped = self.builder.icmp("eq", cond, Constant(I1, 0))
            return self.builder.cast("zext", flipped, I32)
        if op == "~":
            value = self._promote_int(self._emit_expr(expr.operand))
            return self.builder.binop("xor", value, Constant(value.type, -1))
        if op in ("++", "--", "p++", "p--"):
            slot = self._emit_lvalue(expr.operand)
            old = self.builder.load(slot)
            if isinstance(old.type, PointerType):
                delta = Constant(I64, 1 if "+" in op else -1)
                new = self.builder.gep(old, [delta], old.type)
            elif isinstance(old.type, FloatType):
                opcode = "fadd" if "+" in op else "fsub"
                new = self.builder.binop(opcode, old, Constant(old.type, 1.0))
            else:
                opcode = "add" if "+" in op else "sub"
                new = self.builder.binop(opcode, old, Constant(old.type, 1))
            self.builder.store(new, slot)
            return old if op.startswith("p") else new
        raise CodegenError(f"unsupported unary operator {op!r}")

    def _emit_binary(self, expr: A.Binary) -> Value:
        op = expr.op
        if op in ("&&", "||"):
            return self._emit_logical(expr)
        lhs = self._emit_expr(expr.lhs)
        rhs = self._emit_expr(expr.rhs)

        if op in ("==", "!=", "<", ">", "<=", ">="):
            return self._emit_comparison(op, lhs, rhs)

        # Pointer arithmetic.
        if isinstance(lhs.type, PointerType) and op in ("+", "-") and lhs.type.pointee != VOID:
            index = self._convert(rhs, I64)
            if op == "-":
                index = self.builder.sub(Constant(I64, 0), index)
            return self.builder.gep(lhs, [index], lhs.type)
        if isinstance(rhs.type, PointerType) and op == "+":
            index = self._convert(lhs, I64)
            return self.builder.gep(rhs, [index], rhs.type)

        lhs, rhs = self._usual_conversions(lhs, rhs)
        if isinstance(lhs.type, FloatType):
            opcode = {"+": "fadd", "-": "fsub", "*": "fmul", "/": "fdiv", "%": "frem"}.get(op)
            if opcode is None:
                raise CodegenError(f"operator {op!r} on floating operands")
            return self.builder.binop(opcode, lhs, rhs)
        opcode = {
            "+": "add", "-": "sub", "*": "mul", "/": "sdiv", "%": "srem",
            "&": "and", "|": "or", "^": "xor", "<<": "shl", ">>": "ashr",
        }.get(op)
        if opcode is None:
            raise CodegenError(f"unsupported binary operator {op!r}")
        return self.builder.binop(opcode, lhs, rhs)

    def _emit_comparison(self, op: str, lhs: Value, rhs: Value) -> Value:
        if isinstance(lhs.type, PointerType) or isinstance(rhs.type, PointerType):
            target = lhs.type if isinstance(lhs.type, PointerType) else rhs.type
            lhs = self._convert(lhs, target)
            rhs = self._convert(rhs, target)
            pred = {"==": "eq", "!=": "ne", "<": "ult", ">": "ugt",
                    "<=": "ule", ">=": "uge"}[op]
            result = self.builder.icmp(pred, lhs, rhs)
        else:
            lhs, rhs = self._usual_conversions(lhs, rhs)
            if isinstance(lhs.type, FloatType):
                pred = {"==": "oeq", "!=": "one", "<": "olt", ">": "ogt",
                        "<=": "ole", ">=": "oge"}[op]
                result = self.builder.fcmp(pred, lhs, rhs)
            else:
                pred = {"==": "eq", "!=": "ne", "<": "slt", ">": "sgt",
                        "<=": "sle", ">=": "sge"}[op]
                result = self.builder.icmp(pred, lhs, rhs)
        return self.builder.cast("zext", result, I32)

    def _emit_logical(self, expr: A.Binary) -> Value:
        assert self.fn is not None
        rhs_block = self.fn.add_block("land.rhs" if expr.op == "&&" else "lor.rhs")
        merge_block = self.fn.add_block("land.end" if expr.op == "&&" else "lor.end")
        lhs = self._to_bool(self._emit_expr(expr.lhs))
        lhs_exit = self.builder.block
        assert lhs_exit is not None
        if expr.op == "&&":
            self.builder.cond_br(lhs, rhs_block, merge_block)
            short_value = Constant(I1, 0)
        else:
            self.builder.cond_br(lhs, merge_block, rhs_block)
            short_value = Constant(I1, 1)
        self.builder.position_at_end(rhs_block)
        rhs = self._to_bool(self._emit_expr(expr.rhs))
        rhs_exit = self.builder.block
        assert rhs_exit is not None
        self.builder.br(merge_block)
        self.builder.position_at_end(merge_block)
        phi = self.builder.phi(I1)
        phi.add_incoming(short_value, lhs_exit)
        phi.add_incoming(rhs, rhs_exit)
        return self.builder.cast("zext", phi, I32)

    def _emit_ternary(self, expr: A.Ternary) -> Value:
        assert self.fn is not None
        cond = self._to_bool(self._emit_expr(expr.cond))
        then_block = self.fn.add_block("cond.true")
        else_block = self.fn.add_block("cond.false")
        merge_block = self.fn.add_block("cond.end")
        self.builder.cond_br(cond, then_block, else_block)
        self.builder.position_at_end(then_block)
        then_value = self._emit_expr(expr.then)
        then_exit = self.builder.block
        self.builder.br(merge_block)
        self.builder.position_at_end(else_block)
        else_value = self._emit_expr(expr.otherwise)
        else_exit = self.builder.block
        self.builder.br(merge_block)
        # Unify types toward the "larger" side.
        target = self._common_type(then_value.type, else_value.type)
        self.builder.position_at_end(then_exit)
        # Conversions must happen in the corresponding predecessor blocks;
        # insert before the branch we just emitted.
        else_exit_term = else_exit.terminator
        then_exit_term = then_exit.terminator
        if then_exit_term is not None:
            then_exit.instructions.remove(then_exit_term)
        then_value = self._convert(then_value, target)
        if then_exit_term is not None:
            then_exit.instructions.append(then_exit_term)
        self.builder.position_at_end(else_exit)
        if else_exit_term is not None:
            else_exit.instructions.remove(else_exit_term)
        else_value = self._convert(else_value, target)
        if else_exit_term is not None:
            else_exit.instructions.append(else_exit_term)
        self.builder.position_at_end(merge_block)
        phi = self.builder.phi(target)
        phi.add_incoming(then_value, then_exit)
        phi.add_incoming(else_value, else_exit)
        return phi

    def _emit_assign(self, expr: A.Assign) -> Value:
        slot = self._emit_lvalue(expr.target)
        target_type = slot.type.pointee  # type: ignore[union-attr]
        if expr.op == "=":
            value = self._convert(self._emit_expr(expr.value), target_type)
        else:
            binop = expr.op[:-1]
            value = self._convert(
                self._emit_binary(A.Binary(binop, expr.target, expr.value)), target_type
            )
        self.builder.store(value, slot)
        return value

    def _emit_call(self, expr: A.Call) -> Value:
        name = expr.name
        callee = self.module.get_function(name)
        if callee is None:
            callee = self.env.declare_builtin(name)
        if callee is None:
            raise CodegenError(f"call to undeclared function {name!r}")
        ftype = callee.ftype
        args: List[Value] = []
        for i, arg_expr in enumerate(expr.args):
            value = self._emit_expr(arg_expr)
            if i < len(ftype.params):
                value = self._convert(value, ftype.params[i])
            else:
                # Default argument promotions for varargs.
                if value.type == FLOAT:
                    value = self.builder.cast("fpext", value, DOUBLE)
                elif isinstance(value.type, IntType) and value.type.bits < 32:
                    value = self._convert(value, I32)
            args.append(value)
        return self.builder.call(callee, args)

    # -------------------------------------------------------------- conversions
    def _promote_int(self, value: Value) -> Value:
        if isinstance(value.type, IntType) and value.type.bits < 32:
            return self._convert(value, I32)
        return value

    def _usual_conversions(self, lhs: Value, rhs: Value) -> Tuple[Value, Value]:
        if isinstance(lhs.type, FloatType) or isinstance(rhs.type, FloatType):
            target = self._common_type(lhs.type, rhs.type)
            return self._convert(lhs, target), self._convert(rhs, target)
        lhs, rhs = self._promote_int(lhs), self._promote_int(rhs)
        if isinstance(lhs.type, IntType) and isinstance(rhs.type, IntType):
            if lhs.type.bits != rhs.type.bits:
                target = lhs.type if lhs.type.bits > rhs.type.bits else rhs.type
                return self._convert(lhs, target), self._convert(rhs, target)
        return lhs, rhs

    def _common_type(self, a: Type, b: Type) -> Type:
        if a == b:
            return a
        if isinstance(a, PointerType):
            return a
        if isinstance(b, PointerType):
            return b
        if isinstance(a, FloatType) or isinstance(b, FloatType):
            bits = max(
                a.bits if isinstance(a, (FloatType, IntType)) else 64,
                b.bits if isinstance(b, (FloatType, IntType)) else 64,
            )
            return DOUBLE if bits > 32 else FLOAT
        if isinstance(a, IntType) and isinstance(b, IntType):
            return a if a.bits >= b.bits else b
        return a

    def _to_bool(self, value: Value) -> Value:
        if value.type == I1:
            return value
        if isinstance(value.type, FloatType):
            return self.builder.fcmp("one", value, Constant(value.type, 0.0))
        if isinstance(value.type, PointerType):
            return self.builder.icmp("ne", value, Constant(value.type, None))
        return self.builder.icmp("ne", value, Constant(value.type, 0))

    def _convert(self, value: Value, target: Type) -> Value:
        source = value.type
        if source == target:
            return value
        # Constant shortcuts keep -O0 IR free of trivial cast chains.
        if isinstance(value, Constant) and not isinstance(value, ConstantString):
            if isinstance(target, IntType) and isinstance(source, IntType):
                return Constant(target, _wrap_int(value.value, target.bits))
            if isinstance(target, FloatType) and isinstance(source, (IntType, FloatType)):
                return Constant(target, float(value.value))
            if isinstance(target, IntType) and isinstance(source, FloatType):
                return Constant(target, int(value.value))
            if isinstance(target, PointerType) and (
                value.value in (0, None)
            ):
                return Constant(target, None)
        if isinstance(source, IntType) and isinstance(target, IntType):
            if source.bits < target.bits:
                opcode = "zext" if source.bits == 1 else "sext"
                return self.builder.cast(opcode, value, target)
            return self.builder.cast("trunc", value, target)
        if isinstance(source, IntType) and isinstance(target, FloatType):
            return self.builder.cast("sitofp", value, target)
        if isinstance(source, FloatType) and isinstance(target, IntType):
            return self.builder.cast("fptosi", value, target)
        if isinstance(source, FloatType) and isinstance(target, FloatType):
            opcode = "fpext" if source.bits < target.bits else "fptrunc"
            return self.builder.cast(opcode, value, target)
        if isinstance(source, PointerType) and isinstance(target, PointerType):
            return self.builder.cast("bitcast", value, target)
        if isinstance(source, IntType) and isinstance(target, PointerType):
            return self.builder.cast("inttoptr", value, target)
        if isinstance(source, PointerType) and isinstance(target, IntType):
            return self.builder.cast("ptrtoint", value, target)
        if isinstance(source, FunctionType) and isinstance(target, PointerType):
            return self.builder.cast("bitcast", value, target)
        raise CodegenError(f"cannot convert {source} to {target}")


def _wrap_int(value: int, bits: int) -> int:
    mask = (1 << bits) - 1
    wrapped = value & mask
    if wrapped >= (1 << (bits - 1)) and bits > 1:
        wrapped -= 1 << bits
    return wrapped


def generate_module(unit: A.TranslationUnit, name: str = "module") -> Module:
    return CodeGenerator(unit, name).generate()
