"""Tokenizer for the mini-C frontend."""

from __future__ import annotations

import re
import sys
from dataclasses import dataclass
from typing import Iterator, List


KEYWORDS = frozenset({
    "void", "char", "short", "int", "long", "float", "double", "signed",
    "unsigned", "const", "static", "extern", "struct", "union", "enum",
    "typedef", "if", "else", "while", "for", "do", "return", "break",
    "continue", "sizeof", "switch", "case", "default", "goto",
})

# Ordered longest-first so maximal munch falls out of the regex alternation.
_PUNCT = [
    "<<=", ">>=", "...",
    "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^", "~",
    "?", ":", ",", ";", "(", ")", "[", "]", "{", "}", ".",
]

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>//[^\n]*|/\*.*?\*/)
  | (?P<float>(?:\d+\.\d*|\.\d+)(?:[eE][+-]?\d+)?[fF]?|\d+[eE][+-]?\d+[fF]?)
  | (?P<int>0[xX][0-9a-fA-F]+|\d+)[uUlL]*
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<string>"(?:[^"\\\n]|\\.)*")
  | (?P<char>'(?:[^'\\\n]|\\.)')
  | (?P<punct>""" + "|".join(re.escape(p) for p in _PUNCT) + r""")
    """,
    re.VERBOSE | re.DOTALL,
)


@dataclass(slots=True)
class Token:
    kind: str          # 'kw', 'ident', 'int', 'float', 'string', 'char', 'punct', 'eof'
    text: str
    line: int

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.kind}, {self.text!r}, line {self.line})"


class LexError(ValueError):
    pass


def tokenize(source: str) -> List[Token]:
    tokens: List[Token] = []
    pos = 0
    line = 1
    n = len(source)
    # finditer with a contiguity check beats a match-per-token loop: the
    # scan stays inside the regex engine, and any gap between matches is
    # exactly the "cannot tokenize" case the old loop detected.
    for m in _TOKEN_RE.finditer(source):
        if m.start() != pos:
            snippet = source[pos:pos + 20]
            raise LexError(f"line {line}: cannot tokenize at {snippet!r}")
        pos = m.end()
        kind = m.lastgroup
        text = m.group(0)
        if kind == "ws" or kind == "comment":
            line += text.count("\n")
            continue
        if kind == "ident":
            if text in KEYWORDS:
                kind = "kw"
            text = sys.intern(text)
        elif kind == "int":
            text = m.group("int")  # strip u/l suffixes
        elif kind == "punct":
            # Identifiers and punctuation recur heavily across a corpus
            # (MPI_COMM_WORLD, loop variables, operators); interning
            # makes downstream dict probes pointer comparisons.
            text = sys.intern(text)
        assert kind is not None
        tokens.append(Token(kind, text, line))
        # No token class other than ws/comment can span a newline (the
        # string/char patterns exclude raw newlines), so `line` only
        # advances in the whitespace branch above.
    if pos != n:
        snippet = source[pos:pos + 20]
        raise LexError(f"line {line}: cannot tokenize at {snippet!r}")
    tokens.append(Token("eof", "", line))
    return tokens
