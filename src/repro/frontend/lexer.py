"""Tokenizer for the mini-C frontend."""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List


KEYWORDS = frozenset({
    "void", "char", "short", "int", "long", "float", "double", "signed",
    "unsigned", "const", "static", "extern", "struct", "union", "enum",
    "typedef", "if", "else", "while", "for", "do", "return", "break",
    "continue", "sizeof", "switch", "case", "default", "goto",
})

# Ordered longest-first so maximal munch falls out of the regex alternation.
_PUNCT = [
    "<<=", ">>=", "...",
    "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^", "~",
    "?", ":", ",", ";", "(", ")", "[", "]", "{", "}", ".",
]

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>//[^\n]*|/\*.*?\*/)
  | (?P<float>(?:\d+\.\d*|\.\d+)(?:[eE][+-]?\d+)?[fF]?|\d+[eE][+-]?\d+[fF]?)
  | (?P<int>0[xX][0-9a-fA-F]+|\d+)[uUlL]*
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<string>"(?:[^"\\\n]|\\.)*")
  | (?P<char>'(?:[^'\\\n]|\\.)')
  | (?P<punct>""" + "|".join(re.escape(p) for p in _PUNCT) + r""")
    """,
    re.VERBOSE | re.DOTALL,
)


@dataclass
class Token:
    kind: str          # 'kw', 'ident', 'int', 'float', 'string', 'char', 'punct', 'eof'
    text: str
    line: int

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.kind}, {self.text!r}, line {self.line})"


class LexError(ValueError):
    pass


def tokenize(source: str) -> List[Token]:
    tokens: List[Token] = []
    pos = 0
    line = 1
    n = len(source)
    while pos < n:
        m = _TOKEN_RE.match(source, pos)
        if m is None:
            snippet = source[pos:pos + 20]
            raise LexError(f"line {line}: cannot tokenize at {snippet!r}")
        text = m.group(0)
        if m.lastgroup in ("ws", "comment"):
            line += text.count("\n")
            pos = m.end()
            continue
        kind = m.lastgroup
        if kind == "ident" and text in KEYWORDS:
            kind = "kw"
        elif kind == "int":
            text = m.group("int")  # strip u/l suffixes
        assert kind is not None
        tokens.append(Token(kind, text, line))
        line += text.count("\n")
        pos = m.end()
    tokens.append(Token("eof", "", line))
    return tokens
