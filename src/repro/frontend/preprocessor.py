"""A small C preprocessor.

Supports ``#include`` of the known system/benchmark headers, object-like
``#define`` macros, and ``#ifdef``/``#ifndef``/``#else``/``#endif``.

The crucial reproduction detail is ``mpitest.h``: in MPI-CorrBench only the
*correct* codes include it, and its expansion adds ~100 lines of helper
code — this is the code-size bias the paper identifies (correct codes have
at least 103 LoC) and removes.  :func:`preprocess` therefore really expands
it, and the dataset debiasing step (see ``repro.datasets``) strips the
include before compilation, exactly like the paper.
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple


class PreprocessError(ValueError):
    pass


def _mpitest_header() -> str:
    """Synthetic stand-in for MPI-CorrBench's ``mpitest.h`` helper header.

    Generates ~100 lines of real, compilable helper functions so that both
    the line count *and* the IR of including codes are inflated, mirroring
    the bias analyzed in the paper (Section III / Fig. 2).
    """
    lines: List[str] = [
        "int mpitest_verbosity = 0;",
        "int mpitest_world_rank = 0;",
        "int mpitest_world_size = 1;",
        "int mpitest_error_count = 0;",
        "void mpitest_init(int* argc, char*** argv) {",
        "  MPI_Comm_rank(MPI_COMM_WORLD, &mpitest_world_rank);",
        "  MPI_Comm_size(MPI_COMM_WORLD, &mpitest_world_size);",
        "}",
        "int mpitest_check_error(int code) {",
        "  if (code != MPI_SUCCESS) {",
        "    mpitest_error_count = mpitest_error_count + 1;",
        "    return 1;",
        "  }",
        "  return 0;",
        "}",
        "void mpitest_report(char* name) {",
        "  if (mpitest_world_rank == 0) {",
        "    if (mpitest_error_count == 0) {",
        '      printf("%s passed\\n", name);',
        "    } else {",
        '      printf("%s failed with %d errors\\n", name, mpitest_error_count);',
        "    }",
        "  }",
        "}",
    ]
    # Per-datatype fill/verify helper pairs pad the header to CorrBench-like
    # length while exercising distinct IR (loops, compares, float ops).
    for ctype, suffix in (("int", "int"), ("double", "double"),
                          ("float", "float"), ("long", "long"), ("char", "char")):
        lines.extend([
            f"void mpitest_fill_{suffix}({ctype}* buffer, int count, int seed) {{",
            "  int i;",
            "  for (i = 0; i < count; i++) {",
            f"    buffer[i] = ({ctype})(seed + i);",
            "  }",
            "}",
            f"int mpitest_verify_{suffix}({ctype}* buffer, int count, int seed) {{",
            "  int i;",
            "  int bad = 0;",
            "  for (i = 0; i < count; i++) {",
            f"    if (buffer[i] != ({ctype})(seed + i)) {{",
            "      bad = bad + 1;",
            "    }",
            "  }",
            "  return bad;",
            "}",
        ])
    return "\n".join(lines) + "\n"


# Headers whose declarations are builtin to sema: expand to nothing.
_EMPTY_HEADERS = {
    "mpi.h", "stdio.h", "stdlib.h", "string.h", "math.h", "unistd.h",
    "assert.h", "time.h", "limits.h", "stddef.h", "stdint.h", "stdarg.h",
    "errno.h", "float.h",
}

KNOWN_HEADERS: Dict[str, str] = {name: "" for name in _EMPTY_HEADERS}
KNOWN_HEADERS["mpitest.h"] = _mpitest_header()

_INCLUDE_RE = re.compile(r'^\s*#\s*include\s*[<"]([^>"]+)[>"]')
_DEFINE_RE = re.compile(r"^\s*#\s*define\s+(\w+)(?:\s+(.*))?$")
_DEFINE_FN_RE = re.compile(r"^\s*#\s*define\s+(\w+)\(")
_IFDEF_RE = re.compile(r"^\s*#\s*(ifdef|ifndef)\s+(\w+)")
_UNDEF_RE = re.compile(r"^\s*#\s*undef\s+(\w+)")


def preprocess(source: str, extra_headers: Dict[str, str] | None = None) -> str:
    """Expand includes/macros; returns the preprocessed source."""
    headers = dict(KNOWN_HEADERS)
    if extra_headers:
        headers.update(extra_headers)
    macros: Dict[str, str] = {}
    output: List[str] = []
    # condition stack: True = emitting
    emit_stack: List[bool] = []

    def emitting() -> bool:
        return all(emit_stack)

    for raw_line in source.splitlines():
        line = raw_line
        stripped = line.strip()
        if stripped.startswith("#"):
            m = _IFDEF_RE.match(stripped)
            if m:
                kind, name = m.groups()
                defined = name in macros
                emit_stack.append(defined if kind == "ifdef" else not defined)
                continue
            if re.match(r"^\s*#\s*else\b", stripped):
                if not emit_stack:
                    raise PreprocessError("#else without #if")
                emit_stack[-1] = not emit_stack[-1]
                continue
            if re.match(r"^\s*#\s*endif\b", stripped):
                if not emit_stack:
                    raise PreprocessError("#endif without #if")
                emit_stack.pop()
                continue
            if not emitting():
                continue
            m = _INCLUDE_RE.match(stripped)
            if m:
                header = m.group(1)
                if header not in headers:
                    raise PreprocessError(f"unknown header {header!r}")
                expansion = headers[header]
                if expansion:
                    output.extend(expansion.splitlines())
                continue
            if _DEFINE_FN_RE.match(stripped):
                raise PreprocessError("function-like macros are not supported")
            m = _DEFINE_RE.match(stripped)
            if m:
                name, body = m.groups()
                macros[name] = (body or "").strip()
                continue
            m = _UNDEF_RE.match(stripped)
            if m:
                macros.pop(m.group(1), None)
                continue
            if re.match(r"^\s*#\s*(pragma|if\b|elif)", stripped):
                # #pragma: ignored; #if expressions: unsupported, treated
                # as always-true to keep benchmark headers permissive.
                if re.match(r"^\s*#\s*if\b", stripped):
                    emit_stack.append(True)
                continue
            raise PreprocessError(f"unsupported preprocessor directive: {stripped!r}")
        if not emitting():
            continue
        if macros:
            line = _substitute(line, macros)
        output.append(line)
    if emit_stack:
        raise PreprocessError("unterminated #if block")
    return "\n".join(output) + "\n"


def _substitute(line: str, macros: Dict[str, str]) -> str:
    # Token-boundary substitution, repeated until fixpoint (macros may
    # reference other macros); bounded to avoid pathological recursion.
    for _ in range(8):
        changed = False
        for name, body in macros.items():
            pattern = r"\b" + re.escape(name) + r"\b"
            new_line, n = re.subn(pattern, body, line)
            if n:
                line = new_line
                changed = True
        if not changed:
            break
    return line


def count_loc(preprocessed: str) -> int:
    """Non-blank source lines after preprocessing (paper Fig. 2 metric)."""
    return sum(1 for line in preprocessed.splitlines() if line.strip())
