"""AST node definitions for the mini-C frontend.

Named ``cast`` (C AST) to avoid shadowing Python's :mod:`ast` module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


# ---------------------------------------------------------------------------
# C types (frontend-level; lowered to repro.ir types in sema/codegen)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CType:
    """A C type: base name + pointer depth + optional array dims."""

    base: str                      # 'int', 'double', 'void', 'MPI_Comm', 'struct X', ...
    pointers: int = 0
    array_dims: Tuple[Optional[int], ...] = ()
    is_const: bool = False

    def pointer_to(self) -> "CType":
        return CType(self.base, self.pointers + 1, self.array_dims, self.is_const)

    def deref(self) -> "CType":
        if self.array_dims:
            return CType(self.base, self.pointers, self.array_dims[1:], self.is_const)
        if self.pointers == 0:
            raise ValueError(f"cannot dereference non-pointer type {self}")
        return CType(self.base, self.pointers - 1, (), self.is_const)

    def decay(self) -> "CType":
        """Array-to-pointer decay."""
        if self.array_dims:
            return CType(self.base, self.pointers + 1, self.array_dims[1:], self.is_const)
        return self

    @property
    def is_pointerish(self) -> bool:
        return self.pointers > 0 or bool(self.array_dims)

    def __str__(self) -> str:
        s = self.base + "*" * self.pointers
        for d in self.array_dims:
            s += f"[{d if d is not None else ''}]"
        return s


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

@dataclass
class Expr:
    pass


@dataclass
class IntLit(Expr):
    value: int


@dataclass
class FloatLit(Expr):
    value: float


@dataclass
class StrLit(Expr):
    value: str


@dataclass
class CharLit(Expr):
    value: int


@dataclass
class Ident(Expr):
    name: str


@dataclass
class Unary(Expr):
    op: str                # '-', '!', '~', '&', '*', '++', '--', 'p++', 'p--'
    operand: Expr


@dataclass
class Binary(Expr):
    op: str
    lhs: Expr
    rhs: Expr


@dataclass
class Assign(Expr):
    op: str                # '=', '+=', ...
    target: Expr
    value: Expr


@dataclass
class Ternary(Expr):
    cond: Expr
    then: Expr
    otherwise: Expr


@dataclass
class Call(Expr):
    name: str
    args: List[Expr]


@dataclass
class Index(Expr):
    base: Expr
    index: Expr


@dataclass
class Member(Expr):
    base: Expr
    field: str
    arrow: bool            # True for '->'


@dataclass
class CastExpr(Expr):
    to: CType
    operand: Expr


@dataclass
class SizeOf(Expr):
    target: CType


@dataclass
class Comma(Expr):
    parts: List[Expr]


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

@dataclass
class Stmt:
    pass


@dataclass
class Declaration(Stmt):
    ctype: CType
    name: str
    init: Optional[Expr] = None
    init_list: Optional[List[Expr]] = None   # brace initializer for arrays


@dataclass
class ExprStmt(Stmt):
    expr: Optional[Expr]


@dataclass
class Compound(Stmt):
    body: List[Stmt] = field(default_factory=list)


@dataclass
class If(Stmt):
    cond: Expr
    then: Stmt
    otherwise: Optional[Stmt] = None


@dataclass
class While(Stmt):
    cond: Expr
    body: Stmt


@dataclass
class DoWhile(Stmt):
    body: Stmt
    cond: Expr


@dataclass
class For(Stmt):
    init: Optional[Stmt]
    cond: Optional[Expr]
    step: Optional[Expr]
    body: Stmt


@dataclass
class Return(Stmt):
    value: Optional[Expr]


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


# ---------------------------------------------------------------------------
# Top level
# ---------------------------------------------------------------------------

@dataclass
class Param:
    ctype: CType
    name: str


@dataclass
class FunctionDef:
    ret: CType
    name: str
    params: List[Param]
    body: Optional[Compound]       # None for prototypes
    vararg: bool = False


@dataclass
class GlobalDecl:
    decl: Declaration


@dataclass
class TranslationUnit:
    items: List[object] = field(default_factory=list)   # FunctionDef | GlobalDecl
