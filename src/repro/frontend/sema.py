"""Semantic layer of the mini-C frontend.

Maps C types to IR types, declares the builtin environment (libc subset +
the full MPI API from :mod:`repro.mpi.api`), and resolves named constants
(``MPI_COMM_WORLD``, ``NULL``, ...).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.frontend import cast as A
from repro.ir.module import Module
from repro.ir.types import (
    DOUBLE,
    FLOAT,
    FunctionType,
    I8,
    I32,
    I64,
    IntType,
    PointerType,
    StructType,
    Type,
    VOID,
    ArrayType,
    ptr,
)
from repro.mpi.api import MPI_CONSTANTS, MPI_FUNCTIONS, MPI_POINTER_CONSTANTS


class SemaError(ValueError):
    pass


MPI_STATUS_TYPE = StructType("MPI_Status", (I32, I32, I32))
MPI_STATUS_FIELDS = {"MPI_SOURCE": 0, "MPI_TAG": 1, "MPI_ERROR": 2}

_HANDLE_TYPES = {
    "MPI_Comm", "MPI_Datatype", "MPI_Op", "MPI_Request", "MPI_Win",
    "MPI_Group", "MPI_Info", "MPI_Errhandler", "MPI_Message", "MPI_File",
    "MPI_Fint",
}

_BASE_TO_IR: Dict[str, Type] = {
    "void": VOID,
    "char": I8,
    "short": IntType(16),
    "int": I32,
    "unsigned": I32,
    "long": I64,
    "float": FLOAT,
    "double": DOUBLE,
    "size_t": I64,
    "int32_t": I32,
    "int64_t": I64,
    "uint64_t": I64,
    "MPI_Aint": I64,
    "MPI_Count": I64,
    "MPI_Status": MPI_STATUS_TYPE,
}


def lower_ctype(ctype: A.CType) -> Type:
    """Lower a frontend C type to an IR type."""
    if ctype.base in _HANDLE_TYPES:
        base: Type = I32
    elif ctype.base in _BASE_TO_IR:
        base = _BASE_TO_IR[ctype.base]
    elif ctype.base.startswith("struct "):
        base = StructType(ctype.base.split(" ", 1)[1])
    else:
        raise SemaError(f"unknown C type {ctype.base!r}")
    for dim in reversed(ctype.array_dims):
        if dim is not None and dim < 0:
            # Found by the fuzz harness: a negative extent used to escape
            # as the IR type constructor's bare ValueError.
            raise SemaError(f"array declared with negative extent {dim}")
        base = ArrayType(base, dim if dim is not None else 0)
    for _ in range(ctype.pointers):
        # `void*` is modelled as `i8*`, like LLVM before opaque pointers.
        if base.is_void:
            base = I8
        base = PointerType(base)
    return base


def _sig(ret: str, params: Tuple[str, ...], vararg: bool = False) -> FunctionType:
    def conv(text: str) -> Type:
        stars = text.count("*")
        base = text.replace("*", "").strip()
        return lower_ctype(A.CType(base, stars))

    return FunctionType(conv(ret), tuple(conv(p) for p in params), vararg)


# libc / libm subset available to benchmark codes.
_LIBC_SIGNATURES: Dict[str, FunctionType] = {
    "printf": _sig("int", ("char*",), vararg=True),
    "fprintf": _sig("int", ("void*", "char*"), vararg=True),
    "sprintf": _sig("int", ("char*", "char*"), vararg=True),
    "snprintf": _sig("int", ("char*", "long", "char*"), vararg=True),
    "puts": _sig("int", ("char*",)),
    "fflush": _sig("int", ("void*",)),
    "malloc": _sig("void*", ("long",)),
    "calloc": _sig("void*", ("long", "long")),
    "realloc": _sig("void*", ("void*", "long")),
    "free": _sig("void", ("void*",)),
    "memset": _sig("void*", ("void*", "int", "long")),
    "memcpy": _sig("void*", ("void*", "void*", "long")),
    "strlen": _sig("long", ("char*",)),
    "strcmp": _sig("int", ("char*", "char*")),
    "strncmp": _sig("int", ("char*", "char*", "long")),
    "strcpy": _sig("char*", ("char*", "char*")),
    "exit": _sig("void", ("int",)),
    "abort": _sig("void", ()),
    "assert": _sig("void", ("int",)),
    "atoi": _sig("int", ("char*",)),
    "atol": _sig("long", ("char*",)),
    "rand": _sig("int", ()),
    "srand": _sig("void", ("unsigned",)),
    "sleep": _sig("unsigned", ("unsigned",)),
    "usleep": _sig("int", ("unsigned",)),
    "sqrt": _sig("double", ("double",)),
    "fabs": _sig("double", ("double",)),
    "pow": _sig("double", ("double", "double")),
    "floor": _sig("double", ("double",)),
    "ceil": _sig("double", ("double",)),
    "exp": _sig("double", ("double",)),
    "log": _sig("double", ("double",)),
    "sin": _sig("double", ("double",)),
    "cos": _sig("double", ("double",)),
}


_BUILTIN_SIGNATURES: Optional[Dict[str, FunctionType]] = None


def builtin_signatures() -> Dict[str, FunctionType]:
    """All builtin function signatures: libc subset + full MPI API.

    Built once per process: lowering the ~300-function MPI API dominated
    ``Environment.__init__`` (≈20% of a cold compile) when rebuilt per
    compilation.  Callers get a fresh shallow copy; the signature values
    themselves are immutable ``FunctionType`` objects.
    """
    global _BUILTIN_SIGNATURES
    if _BUILTIN_SIGNATURES is None:
        signatures = dict(_LIBC_SIGNATURES)
        for fn in MPI_FUNCTIONS.values():
            signatures[fn.name] = _sig(fn.ret, fn.params)
        _BUILTIN_SIGNATURES = signatures
    return dict(_BUILTIN_SIGNATURES)


class Environment:
    """Named-constant and builtin-declaration environment for codegen."""

    def __init__(self, module: Module):
        self.module = module
        self.int_constants: Dict[str, int] = dict(MPI_CONSTANTS)
        self.int_constants.update({
            "NULL": 0, "EXIT_SUCCESS": 0, "EXIT_FAILURE": 1,
            "RAND_MAX": 2147483647, "INT_MAX": 2147483647,
            "INT_MIN": -2147483648,
        })
        self.pointer_constants: Dict[str, int] = dict(MPI_POINTER_CONSTANTS)
        self.declared: Dict[str, FunctionType] = {}
        self._signatures = builtin_signatures()

    def declare_builtin(self, name: str):
        """Declare builtin ``name`` in the module on first use."""
        if name in self.declared:
            return self.module.functions[name]
        sig = self._signatures.get(name)
        if sig is None:
            return None
        self.declared[name] = sig
        return self.module.add_function(name, sig)

    def is_builtin(self, name: str) -> bool:
        return name in self._signatures

    def constant_value(self, name: str) -> Optional[int]:
        if name in self.int_constants:
            return self.int_constants[name]
        return None

    def is_pointer_constant(self, name: str) -> bool:
        return name in self.pointer_constants
