"""Trace spans across the serve → batcher → engine → worker chain.

A *trace* is one originating request (or one campaign step); a *span*
is one timed region attributed to it.  The context that ties them
together is deliberately tiny — a tuple of ``(trace_id, span_id)``
pairs — because one unit of work can serve **several** traces at once:
a micro-batch coalesces samples from many requests, so the batch span
and every pipeline stage span under it must attach to *all* of the
originating traces.  Propagation is explicit at every boundary that
drops ``contextvars``:

* event loop → worker thread: :meth:`Tracer.activate` re-installs the
  captured context inside the executor callable
  (``loop.run_in_executor`` does **not** propagate contextvars);
* parent → pool worker: the engine ships the captured context inside
  each chunk payload, the worker records spans into a collect buffer
  (:meth:`Tracer.worker_scope`) and returns them with the chunk result,
  and the parent folds them into the still-open traces — the same
  snapshot/merge shape perf registries use.

Completed traces land in a bounded in-memory ring served by
``GET /v1/trace/<trace_id>``.  ``repro.perf`` stage frames become child
spans through the ``span_sink`` hook, so with tracing enabled every
``compile``/``embed``/``classify`` timing joins back to its request —
and with telemetry disabled the stage sites stay at one attribute check
(see :meth:`repro.perf.PerfRegistry.stage`).
"""

from __future__ import annotations

import contextvars
import os
import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from time import perf_counter
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.obs.metrics import METRICS

#: One context entry per trace this work is serving.
TraceContext = Tuple[Tuple[str, str], ...]

_CTX: "contextvars.ContextVar[Optional[TraceContext]]" = \
    contextvars.ContextVar("repro_obs_ctx", default=None)

#: Stage latency by stage name, fed by the perf span sink so /metrics
#: carries the same per-stage seconds `repro profile` reports.
_STAGE_SEC = METRICS.histogram(
    "repro_stage_seconds", "Pipeline stage latency by stage.",
    labelnames=("stage",))


def new_id() -> str:
    """A 64-bit hex id (trace and span ids share the format)."""
    return os.urandom(8).hex()


class _NoopSpan:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False

    def set(self, **attrs) -> None:
        pass


_NOOP_SPAN = _NoopSpan()


class _Activation:
    """Re-install a captured context in another thread (or no-op)."""

    __slots__ = ("_ctx", "_token")

    def __init__(self, ctx: Optional[TraceContext]):
        self._ctx = ctx

    def __enter__(self):
        self._token = _CTX.set(self._ctx) if self._ctx else None
        return self

    def __exit__(self, *exc_info):
        if self._token is not None:
            _CTX.reset(self._token)
        return False


class _Span:
    """A live span context manager, fanned out over every open trace
    in the current context."""

    __slots__ = ("_tracer", "name", "kind", "_attrs", "_entries", "_ids",
                 "_token", "_wall", "_start")

    def __init__(self, tracer: "Tracer", name: str, kind: str,
                 attrs: Dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.kind = kind
        self._attrs = attrs

    def set(self, **attrs) -> None:
        self._attrs.update(attrs)

    def __enter__(self):
        self._entries = _CTX.get() or ()
        self._ids = tuple(new_id() for _ in self._entries)
        if self._entries:
            self._token = _CTX.set(tuple(
                (trace_id, span_id)
                for (trace_id, _parent), span_id
                in zip(self._entries, self._ids)))
        else:
            self._token = None
        self._wall = time.time()
        self._start = perf_counter()
        return self

    def __exit__(self, *exc_info):
        elapsed = perf_counter() - self._start
        if self._token is not None:
            _CTX.reset(self._token)
        for (trace_id, parent_id), span_id in zip(self._entries, self._ids):
            self._tracer.record_span(trace_id, span_id, parent_id,
                                     self.name, self.kind, self._wall,
                                     elapsed, self._attrs or None)
        return False


class _RootSpan:
    """The span that opens (and on exit completes) a whole trace."""

    __slots__ = ("_tracer", "trace_id", "span_id", "parent_id", "name",
                 "_attrs", "_token", "_wall", "_start")

    def __init__(self, tracer: "Tracer", name: str, trace_id: str,
                 attrs: Dict[str, Any],
                 parent_id: Optional[str] = None):
        self._tracer = tracer
        self.trace_id = trace_id
        self.span_id = new_id()
        # A remote parent (the fleet front door's root span) makes this
        # whole trace a subtree of a cross-process trace: the merged
        # span set renders front door → replica → worker as one tree.
        self.parent_id = parent_id
        self.name = name
        self._attrs = attrs

    def set(self, **attrs) -> None:
        self._attrs.update(attrs)

    def __enter__(self):
        self._tracer._register(self.trace_id)
        self._token = _CTX.set(((self.trace_id, self.span_id),))
        self._wall = time.time()
        self._start = perf_counter()
        return self

    def __exit__(self, *exc_info):
        elapsed = perf_counter() - self._start
        _CTX.reset(self._token)
        root = {"trace_id": self.trace_id, "span_id": self.span_id,
                "parent_id": self.parent_id, "name": self.name,
                "kind": "server",
                "start_s": round(self._wall, 6),
                "elapsed_s": round(elapsed, 6), "process": os.getpid()}
        if self._attrs:
            root["attrs"] = self._attrs
        self._tracer._finish(self.trace_id, root)
        return False


class Tracer:
    """Process-wide span recorder with a bounded completed-trace ring."""

    #: Per-trace span cap: stage frames are fine-grained (one span per
    #: compile/verify/pass frame per sample), so a huge bulk request
    #: could otherwise make a single trace unbounded.  Overflow is
    #: counted in ``dropped``, never silently lost.
    max_spans_per_trace = 4096

    def __init__(self, ring_size: int = 256):
        self.enabled = False
        self.ring_size = ring_size
        self._lock = threading.Lock()
        self._open: Dict[str, List[Dict[str, Any]]] = {}
        self._ring: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        #: Worker collect buffer (pool workers only, single-threaded).
        self._collect: Optional[List[Dict[str, Any]]] = None
        self.dropped = 0
        self.recorded_traces = 0

    # -- lifecycle ----------------------------------------------------------
    def enable(self, ring_size: Optional[int] = None) -> None:
        from repro.perf import PERF

        if ring_size is not None:
            self.ring_size = max(1, int(ring_size))
        self.enabled = True
        PERF.set_span_sink(self._stage_sink)

    def disable(self) -> None:
        from repro.perf import PERF

        self.enabled = False
        PERF.set_span_sink(None)
        with self._lock:
            self._open.clear()

    # -- context ------------------------------------------------------------
    def current(self) -> Optional[TraceContext]:
        """The active context, tracing enabled or not (cheap)."""
        return _CTX.get()

    def capture(self) -> Optional[TraceContext]:
        """The context to propagate across a boundary; ``None`` while
        tracing is disabled so payloads stay minimal."""
        return _CTX.get() if self.enabled else None

    def activate(self, ctx: Optional[TraceContext]) -> _Activation:
        """Context manager installing ``ctx`` (no-op for ``None``) —
        required inside ``run_in_executor`` callables."""
        return _Activation(ctx)

    # -- spans --------------------------------------------------------------
    def start_trace(self, name: str, trace_id: Optional[str] = None,
                    parent_id: Optional[str] = None, **attrs) -> Any:
        """Open a new trace; the returned context manager is its root
        span and on exit moves the completed trace into the ring.
        ``parent_id`` links the root under a span of an upstream
        process (cross-hop propagation via ``X-Repro-Parent``)."""
        if not self.enabled:
            return _NOOP_SPAN
        return _RootSpan(self, name, trace_id or new_id(), attrs,
                         parent_id=parent_id)

    def span(self, name: str, kind: str = "internal", **attrs) -> Any:
        """A child span under every trace in the current context."""
        if not self.enabled or _CTX.get() is None:
            return _NOOP_SPAN
        return _Span(self, name, kind, attrs)

    def record(self, name: str, kind: str = "internal",
               start_s: float = 0.0, elapsed_s: float = 0.0,
               attrs: Optional[Dict[str, Any]] = None,
               ctx: Optional[TraceContext] = None) -> None:
        """Record an already-timed leaf span under ``ctx`` (or the
        current context) without touching the active context — safe
        from generators, where a context-manager span would leak its
        context to the caller between yields."""
        if not self.enabled:
            return
        entries = ctx if ctx is not None else _CTX.get()
        if not entries:
            return
        for trace_id, parent_id in entries:
            self.record_span(trace_id, new_id(), parent_id, name, kind,
                             start_s, elapsed_s, attrs)

    def record_span(self, trace_id: str, span_id: str,
                    parent_id: Optional[str], name: str, kind: str,
                    start_s: float, elapsed_s: float,
                    attrs: Optional[Dict[str, Any]] = None) -> None:
        """Low-level append of one completed span to one open trace."""
        span = {"trace_id": trace_id, "span_id": span_id,
                "parent_id": parent_id, "name": name, "kind": kind,
                "start_s": round(start_s, 6),
                "elapsed_s": round(elapsed_s, 6),
                "process": os.getpid()}
        if attrs:
            span["attrs"] = attrs
        if self._collect is not None:
            self._collect.append(span)
            return
        with self._lock:
            spans = self._open.get(trace_id)
            if spans is None or len(spans) >= self.max_spans_per_trace:
                self.dropped += 1       # completed/evicted trace, or full
                return
            spans.append(span)

    # -- perf bridge --------------------------------------------------------
    def _stage_sink(self, name: str, start_s: float,
                    elapsed_s: float) -> None:
        """Installed as ``PERF.span_sink``: every stage frame becomes a
        ``stage.<name>`` span under the current context and feeds the
        per-stage latency histogram."""
        _STAGE_SEC.labels(name).observe(elapsed_s)
        entries = _CTX.get()
        if not entries:
            return
        for trace_id, parent_id in entries:
            self.record_span(trace_id, new_id(), parent_id,
                             f"stage.{name}", "stage", start_s, elapsed_s)

    # -- worker transport ---------------------------------------------------
    @contextmanager
    def worker_scope(self, ctx: Optional[TraceContext]):
        """Pool-worker recording scope.

        With a context: spans (including perf stage frames) accumulate
        in a buffer that the worker ships home with its chunk result.
        Without one — including forked workers that inherited an
        enabled tracer whose ring is a useless copy-on-write copy —
        recording is neutralized.  Yields the buffer.
        """
        from repro.perf import PERF

        if not ctx:
            self.enabled = False
            PERF.set_span_sink(None)
            yield []
            return
        buffer: List[Dict[str, Any]] = []
        self._collect = buffer
        self.enabled = True
        PERF.set_span_sink(self._stage_sink)
        token = _CTX.set(tuple(ctx))
        try:
            yield buffer
        finally:
            _CTX.reset(token)
            self._collect = None

    def merge_spans(self, spans: Iterable[Dict[str, Any]]) -> None:
        """Fold worker-recorded spans into their (still open) traces."""
        for span in spans:
            with self._lock:
                open_spans = self._open.get(span["trace_id"])
                if open_spans is None \
                        or len(open_spans) >= self.max_spans_per_trace:
                    self.dropped += 1
                    continue
                open_spans.append(span)

    # -- ring ---------------------------------------------------------------
    def _register(self, trace_id: str) -> None:
        with self._lock:
            self._open[trace_id] = []

    def _finish(self, trace_id: str, root: Dict[str, Any]) -> None:
        """Complete ``trace_id``: append its root span (exempt from the
        span cap — a trace without a root is unreadable) and move the
        trace into the ring."""
        with self._lock:
            spans = self._open.pop(trace_id, None)
            if spans is None:
                return
            spans.append(root)
            self.recorded_traces += 1
            self._ring[trace_id] = {
                "trace_id": trace_id,
                "name": root["name"],
                "started_at": root["start_s"],
                "duration_s": root["elapsed_s"],
                "spans": spans,
            }
            while len(self._ring) > self.ring_size:
                self._ring.popitem(last=False)

    def get_trace(self, trace_id: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            return self._ring.get(trace_id)

    def recent(self, limit: int = 50) -> List[Dict[str, Any]]:
        """Newest-first summaries of completed traces in the ring."""
        with self._lock:
            docs = list(self._ring.values())
        return [{"trace_id": d["trace_id"], "name": d["name"],
                 "started_at": d["started_at"],
                 "duration_s": d["duration_s"],
                 "n_spans": len(d["spans"])}
                for d in reversed(docs[-limit:])]

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {"enabled": self.enabled,
                    "ring_size": self.ring_size,
                    "ring_traces": len(self._ring),
                    "open_traces": len(self._open),
                    "recorded_traces": self.recorded_traces,
                    "dropped_spans": self.dropped}


#: The process-wide tracer.
TRACER = Tracer()
