"""`repro.obs` — the unified telemetry spine.

Three process-wide singletons, all disabled by default so library use
pays one attribute check per instrumentation site:

* :data:`TRACER` — trace spans with explicit context propagation
  through worker threads and pool workers, plus the bounded ring behind
  ``GET /v1/trace/<id>`` (:mod:`repro.obs.trace`);
* :data:`METRICS` — counters / gauges / fixed-bucket histograms with
  worker snapshot merging and Prometheus text exposition
  (:mod:`repro.obs.metrics`);
* :data:`EVENTS` — rate-limited structured JSON-lines event log with
  severity and trace context (:mod:`repro.obs.log`).

``enable_all()`` is what the serve layer calls at startup; ``repro obs
dump`` and ``repro trace <id>`` are the CLI faces.
"""

from repro.obs.log import EVENTS, EventLog
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import TRACER, TraceContext, Tracer, new_id

__all__ = [
    "EVENTS", "EventLog",
    "METRICS", "MetricsRegistry", "Counter", "Gauge", "Histogram",
    "DEFAULT_BUCKETS",
    "TRACER", "Tracer", "TraceContext", "new_id",
    "enable_all", "disable_all",
]


def enable_all(ring_size=None, log_path=None):
    """Turn the whole telemetry layer on (serve startup, campaigns)."""
    TRACER.enable(ring_size=ring_size)
    METRICS.enabled = True
    if log_path:
        EVENTS.configure(path=log_path)
    else:
        EVENTS.configure_from_env()


def disable_all():
    """Back to the library default: everything off."""
    TRACER.disable()
    METRICS.enabled = False
    EVENTS.close()
