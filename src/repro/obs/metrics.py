"""Metric primitives: counters, gauges, fixed-bucket histograms.

One process-wide :data:`METRICS` registry mirrors how :data:`repro.perf.PERF`
works: instruments are registered at import time (cheap — a dict entry),
but *observations* are dropped until the registry is enabled, so library
code paths pay one attribute check when telemetry is off.  The serve
layer enables the registry at startup; ``repro profile`` and the fuzz
campaign can do the same.

Design points, all in service of the serve→engine→worker pipeline:

* **Fixed buckets** — histograms pre-declare their bucket bounds, which
  is what makes worker-side snapshots mergeable parent-side by plain
  elementwise addition (exactly like perf registries) and lets p50/p90/
  p99 be derived by linear interpolation inside the winning bucket.
* **Snapshot/merge is commutative and associative** — counters and
  histogram bucket counts add, so ``merge(a, b) == merge(b, a)`` and
  fold order across worker chunks never changes the totals.  Gauges add
  too; use a per-process label when you need distinct last-values.
* **Prometheus text exposition** — :meth:`MetricsRegistry.render_prometheus`
  emits the ``text/plain; version=0.0.4`` format (``# HELP`` / ``# TYPE``
  comments, cumulative ``_bucket{le=...}`` series, ``_sum`` / ``_count``);
  ``ci/check_metrics.py`` validates the grammar in CI.

Naming convention (see docs/observability.md): ``repro_<subsystem>_
<what>_<unit>``, e.g. ``repro_serve_request_seconds``.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Default latency buckets (seconds): micro-batch windows live around
#: 10 ms, cold compiles around 100 ms – 1 s, so the range covers both.
DEFAULT_BUCKETS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
                   0.25, 0.5, 1.0, 2.5, 5.0, 10.0)

_NAME_OK = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:"


def _check_name(name: str) -> str:
    if not name or name[0].isdigit() or any(c not in _NAME_OK for c in name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _escape_label(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _fmt(value: float) -> str:
    """Prometheus sample values: integers render without the '.0'."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class _Child:
    """One labeled series of a counter/gauge family."""

    __slots__ = ("_registry", "value")

    def __init__(self, registry: "MetricsRegistry"):
        self._registry = registry
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if not self._registry.enabled:
            return
        with self._registry._lock:
            self.value += amount

    def set(self, value: float) -> None:
        if not self._registry.enabled:
            return
        with self._registry._lock:
            self.value = float(value)


class _HistChild:
    """One labeled series of a histogram family.

    ``counts`` has one slot per declared bucket plus a final overflow
    slot (the implicit ``le="+Inf"`` bucket).
    """

    __slots__ = ("_registry", "buckets", "counts", "sum", "count")

    def __init__(self, registry: "MetricsRegistry",
                 buckets: Tuple[float, ...]):
        self._registry = registry
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        if not self._registry.enabled:
            return
        index = bisect_left(self.buckets, value)
        with self._registry._lock:
            self.counts[index] += 1
            self.sum += value
            self.count += 1

    def quantile(self, q: float) -> Optional[float]:
        """Derive the q-quantile by linear interpolation inside the
        winning bucket.  ``None`` for an empty histogram; observations
        beyond the top declared bucket clamp to the top finite bound
        (the overflow bucket has no upper edge to interpolate against).
        """
        if self.count == 0:
            return None
        target = q * self.count
        cumulative = 0
        for index, bound in enumerate(self.buckets):
            previous = cumulative
            cumulative += self.counts[index]
            if cumulative >= target and self.counts[index]:
                low = self.buckets[index - 1] if index else 0.0
                fraction = (target - previous) / self.counts[index]
                return low + (bound - low) * max(0.0, min(1.0, fraction))
        return self.buckets[-1]


class _Family:
    """A named metric family holding one child per label-value tuple."""

    kind = "untyped"

    def __init__(self, registry: "MetricsRegistry", name: str, help: str,
                 labelnames: Tuple[str, ...]):
        self._registry = registry
        self.name = _check_name(name)
        self.help = help
        self.labelnames = labelnames
        self._children: "OrderedDict[Tuple[str, ...], Any]" = OrderedDict()
        if not labelnames:
            self._children[()] = self._new_child()

    def _new_child(self) -> Any:
        return _Child(self._registry)

    def labels(self, *values: Any) -> Any:
        values = tuple(str(v) for v in values)
        if len(values) != len(self.labelnames):
            raise ValueError(
                f"{self.name} takes labels {self.labelnames}, "
                f"got {len(values)} values")
        child = self._children.get(values)
        if child is None:
            with self._registry._lock:
                child = self._children.setdefault(values, self._new_child())
        return child

    def children(self) -> List[Tuple[Tuple[str, ...], Any]]:
        return list(self._children.items())


class Counter(_Family):
    """Monotonically increasing total."""

    kind = "counter"

    def inc(self, amount: float = 1.0) -> None:
        self._children[()].inc(amount)


class Gauge(_Family):
    """A value that goes up and down (queue depth, utilization)."""

    kind = "gauge"

    def set(self, value: float) -> None:
        self._children[()].set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._children[()].inc(amount)


class Histogram(_Family):
    """Fixed-bucket distribution; p50/p90/p99 derivable per series."""

    kind = "histogram"

    def __init__(self, registry: "MetricsRegistry", name: str, help: str,
                 labelnames: Tuple[str, ...],
                 buckets: Optional[Sequence[float]] = None):
        self.buckets = tuple(sorted(float(b) for b in
                                    (buckets or DEFAULT_BUCKETS)))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket")
        super().__init__(registry, name, help, labelnames)

    def _new_child(self) -> Any:
        return _HistChild(self._registry, self.buckets)

    def observe(self, value: float) -> None:
        self._children[()].observe(value)

    def quantile(self, q: float) -> Optional[float]:
        return self._children[()].quantile(q)


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Process-wide instrument registry with worker snapshot merging."""

    def __init__(self):
        self.enabled = False
        self._lock = threading.Lock()
        self._families: "OrderedDict[str, _Family]" = OrderedDict()

    # -- registration -------------------------------------------------------
    def _register(self, cls, name: str, help: str,
                  labelnames: Sequence[str] = (), **kwargs) -> Any:
        labelnames = tuple(str(n) for n in labelnames)
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if (type(family) is not cls
                        or family.labelnames != labelnames):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{family.kind}{family.labelnames}")
                return family
            family = cls(self, name, help, labelnames, **kwargs)
            self._families[name] = family
            return family

    def counter(self, name: str, help: str,
                labelnames: Sequence[str] = ()) -> Counter:
        return self._register(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str,
              labelnames: Sequence[str] = ()) -> Gauge:
        return self._register(Gauge, name, help, labelnames)

    def histogram(self, name: str, help: str,
                  labelnames: Sequence[str] = (),
                  buckets: Optional[Sequence[float]] = None) -> Histogram:
        return self._register(Histogram, name, help, labelnames,
                              buckets=buckets)

    def reset(self) -> None:
        """Zero every series (registration survives — tests only)."""
        with self._lock:
            for family in self._families.values():
                for _values, child in family.children():
                    if isinstance(child, _HistChild):
                        child.counts = [0] * len(child.counts)
                        child.sum = 0.0
                        child.count = 0
                    else:
                        child.value = 0.0

    # -- worker transport ---------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """A picklable copy of every series (worker → parent), same
        contract as :meth:`repro.perf.PerfRegistry.snapshot`."""
        out: Dict[str, Any] = {}
        with self._lock:
            for name, family in self._families.items():
                children = []
                for values, child in family.children():
                    if isinstance(child, _HistChild):
                        if not child.count:
                            continue
                        payload: Any = {"buckets": list(child.buckets),
                                        "counts": list(child.counts),
                                        "sum": child.sum,
                                        "count": child.count}
                    else:
                        if not child.value:
                            continue
                        payload = child.value
                    children.append([list(values), payload])
                if children:
                    out[name] = {"kind": family.kind,
                                 "help": family.help,
                                 "labelnames": list(family.labelnames),
                                 "children": children}
        return out

    def merge(self, snapshot: Dict[str, Any]) -> None:
        """Fold a :meth:`snapshot` into this registry (additive for every
        kind, hence commutative and associative across workers)."""
        for name, entry in snapshot.items():
            cls = _KINDS[entry["kind"]]
            kwargs = {}
            if cls is Histogram and entry["children"]:
                kwargs["buckets"] = entry["children"][0][1]["buckets"]
            family = self._register(cls, name, entry["help"],
                                    entry["labelnames"], **kwargs)
            for values, payload in entry["children"]:
                child = family.labels(*values)
                if isinstance(child, _HistChild):
                    if list(child.buckets) != payload["buckets"]:
                        raise ValueError(
                            f"histogram {name!r} bucket mismatch on merge")
                    with self._lock:
                        for i, c in enumerate(payload["counts"]):
                            child.counts[i] += int(c)
                        child.sum += float(payload["sum"])
                        child.count += int(payload["count"])
                else:
                    with self._lock:
                        child.value += float(payload)

    # -- exposition ---------------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        """JSON-friendly view (the default ``/metrics`` body)."""
        out: Dict[str, Any] = {}
        with self._lock:
            for name, family in self._families.items():
                series = []
                for values, child in family.children():
                    labels = dict(zip(family.labelnames, values))
                    if isinstance(child, _HistChild):
                        series.append({
                            "labels": labels,
                            "count": child.count,
                            "sum": round(child.sum, 6),
                            "p50": child.quantile(0.50),
                            "p90": child.quantile(0.90),
                            "p99": child.quantile(0.99),
                        })
                    else:
                        series.append({"labels": labels,
                                       "value": round(child.value, 6)})
                out[name] = {"kind": family.kind, "series": series}
        return out

    def render_prometheus(self) -> str:
        """The ``text/plain; version=0.0.4`` exposition body."""
        lines: List[str] = []
        with self._lock:
            for name in sorted(self._families):
                family = self._families[name]
                lines.append(f"# HELP {name} {family.help}")
                lines.append(f"# TYPE {name} {family.kind}")
                for values, child in sorted(family.children()):
                    base = list(zip(family.labelnames, values))
                    if isinstance(child, _HistChild):
                        cumulative = 0
                        for bound, count in zip(
                                list(child.buckets) + ["+Inf"],
                                child.counts):
                            cumulative += count
                            le = (bound if isinstance(bound, str)
                                  else _fmt(bound))
                            lines.append(
                                f"{name}_bucket"
                                f"{_labelstr(base + [('le', le)])} "
                                f"{cumulative}")
                        lines.append(
                            f"{name}_sum{_labelstr(base)} "
                            f"{_fmt(child.sum)}")
                        lines.append(
                            f"{name}_count{_labelstr(base)} {child.count}")
                    else:
                        lines.append(f"{name}{_labelstr(base)} "
                                     f"{_fmt(child.value)}")
        return "\n".join(lines) + "\n" if lines else ""


def _labelstr(pairs: List[Tuple[str, str]]) -> str:
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape_label(str(v))}"' for k, v in pairs)
    return "{" + inner + "}"


#: The process-wide registry every instrument reports to.
METRICS = MetricsRegistry()
