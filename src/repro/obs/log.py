"""Structured JSON-lines event log with severity and trace context.

One :data:`EVENTS` log per process, disabled by default (a single
attribute check per ``emit`` site).  Enable it explicitly
(:meth:`EventLog.configure`) or via ``REPRO_OBS_LOG`` — a file path, or
``-``/``stderr`` for standard error (:meth:`configure_from_env`; the
serve layer and the fuzz campaign both call it at startup).

Every record is one JSON object per line::

    {"ts": 1754650000.1, "severity": "info", "event": "engine.pool_start",
     "trace_id": "9f…", "span_id": "3c…", "workers": 4, ...}

``trace_id``/``span_id`` are attached automatically from the current
trace context when one is active, which is what lets a grep of the log
join an event back to the request in ``/v1/trace/<id>``.

Rate-limited sampling: at most ``max_per_window`` records per
``(event, severity)`` key per ``window_s`` window.  Overflow is counted
— not silently dropped — and surfaced as one ``obs.suppressed`` meta
record when the window rolls, so a log reader can tell "quiet" from
"throttled".
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from typing import Any, Dict, Optional, TextIO, Tuple

from repro.obs.trace import TRACER

SEVERITIES = ("debug", "info", "warning", "error")


class EventLog:
    """Process-wide rate-limited JSON-lines emitter."""

    def __init__(self):
        self.enabled = False
        self._lock = threading.Lock()
        self._stream: Optional[TextIO] = None
        self._owns_stream = False
        self.max_per_window = 200
        self.window_s = 10.0
        self._window_start = 0.0
        self._window_counts: Dict[Tuple[str, str], int] = {}
        self._suppressed: Dict[Tuple[str, str], int] = {}
        self.emitted = 0
        self.dropped = 0

    # -- lifecycle ----------------------------------------------------------
    def configure(self, path: Optional[str] = None,
                  stream: Optional[TextIO] = None,
                  max_per_window: Optional[int] = None,
                  window_s: Optional[float] = None) -> None:
        """Open the sink and enable emission.  ``path`` opens (appends
        to) a file; ``stream`` uses an existing file object; neither
        defaults to stderr."""
        self.close()
        if max_per_window is not None:
            self.max_per_window = max(1, int(max_per_window))
        if window_s is not None:
            self.window_s = max(0.1, float(window_s))
        if path and path not in ("-", "stderr"):
            self._stream = open(path, "a", encoding="utf-8")
            self._owns_stream = True
        else:
            self._stream = stream or sys.stderr
            self._owns_stream = False
        self._window_start = time.time()
        self._window_counts = {}
        self._suppressed = {}
        self.enabled = True

    def configure_from_env(self) -> bool:
        """Enable from ``REPRO_OBS_LOG`` if set; returns whether it was.
        Already-enabled logs are left alone (explicit wins over env)."""
        if self.enabled:
            return True
        target = os.environ.get("REPRO_OBS_LOG", "").strip()
        if not target:
            return False
        self.configure(path=target)
        return True

    def close(self) -> None:
        self.enabled = False
        stream, self._stream = self._stream, None
        if stream is not None and self._owns_stream:
            try:
                stream.close()
            except OSError:
                pass
        self._owns_stream = False

    # -- emission -----------------------------------------------------------
    def emit(self, event: str, severity: str = "info", **fields) -> None:
        """Write one record (or count it as suppressed)."""
        if not self.enabled:
            return
        if severity not in SEVERITIES:
            severity = "info"
        now = time.time()
        key = (event, severity)
        flush_suppressed: Dict[Tuple[str, str], int] = {}
        with self._lock:
            if now - self._window_start >= self.window_s:
                flush_suppressed, self._suppressed = self._suppressed, {}
                self._window_counts = {}
                self._window_start = now
            count = self._window_counts.get(key, 0) + 1
            self._window_counts[key] = count
            if count > self.max_per_window:
                self._suppressed[key] = self._suppressed.get(key, 0) + 1
                self.dropped += 1
                suppressed_now = True
            else:
                suppressed_now = False
        for (s_event, s_sev), n in sorted(flush_suppressed.items()):
            self._write({"ts": round(now, 6), "severity": "warning",
                         "event": "obs.suppressed",
                         "suppressed_event": s_event,
                         "suppressed_severity": s_sev, "count": n})
        if suppressed_now:
            return
        record: Dict[str, Any] = {"ts": round(now, 6),
                                  "severity": severity, "event": event}
        ctx = TRACER.current()
        if ctx:
            record["trace_id"], record["span_id"] = ctx[0]
        for name, value in fields.items():
            if name not in record:
                record[name] = value
        self._write(record)

    def _write(self, record: Dict[str, Any]) -> None:
        stream = self._stream
        if stream is None:
            return
        line = json.dumps(record, sort_keys=True, default=str)
        with self._lock:
            try:
                stream.write(line + "\n")
                stream.flush()
            except (OSError, ValueError):
                # A closed/broken sink must never take down the caller.
                self.enabled = False
        self.emitted += 1


#: The process-wide event log.
EVENTS = EventLog()
