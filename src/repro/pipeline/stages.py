"""Pipeline stage protocols and the built-in implementations.

The paper's detector decomposes into three stages, each behind a small
structural protocol so alternatives plug in without touching core code:

``Frontend``
    C source → IR module.  The built-in ``mini-c`` frontend memoizes on a
    content hash of the source, so re-checking unchanged files (or the
    same file at the same opt level in a batch) never recompiles.
``Featurizer``
    IR modules → a feature batch.  ``ir2vec`` yields a dense
    ``(n, 512)`` matrix; ``programl`` yields a list of program graphs.
``Classifier``
    feature batch → label array.  ``decision-tree`` wraps the paper's
    GA + DT model, ``gnn`` the GATv2 network (vocabulary built at fit
    time from the training graphs).

All stages carry a frozen config dataclass (JSON-serializable via
``dataclasses.asdict``) and are registered by name in
:mod:`repro.pipeline.registry`.  Stateful stages expose
``get_state()``/``set_state()`` byte blobs for the artifact format.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from dataclasses import dataclass
from typing import (
    Any,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    Union,
    runtime_checkable,
)

import numpy as np

from repro.engine.cache import CacheStats, LRUCache
from repro.ir.module import Module
from repro.ml.genetic import GAConfig

#: A feature batch is either a dense matrix or a list of graphs.
FeatureBatch = Union[np.ndarray, List[Any]]


# ---------------------------------------------------------------------------
# Protocols
# ---------------------------------------------------------------------------

@runtime_checkable
class Frontend(Protocol):
    name: str

    def compile(self, source: str, name: str = "input.c") -> Module: ...


@runtime_checkable
class Featurizer(Protocol):
    """IR modules → feature batch.

    A featurizer whose ``transform`` is *per-sample decomposable* — row
    ``i`` depends only on ``modules[i]`` — should declare a class
    attribute ``per_sample = True`` (the built-ins do): the execution
    engine may then chunk batches, fan them out to workers, and cache
    rows individually.  Without the declaration the engine makes exactly
    one whole-batch ``transform`` call, which is always safe (e.g. for
    batch-level normalization) but forgoes feature caching and fan-out.
    """

    name: str

    @property
    def opt_level(self) -> str: ...

    def transform(self, modules: Sequence[Module]) -> FeatureBatch: ...


@runtime_checkable
class Classifier(Protocol):
    name: str

    def fit(self, features: FeatureBatch, y: Sequence[str]) -> "Classifier": ...

    def predict(self, features: FeatureBatch) -> np.ndarray: ...


def take(features: FeatureBatch, indices: Sequence[int]) -> FeatureBatch:
    """Row-select from a feature batch (works for matrices and graph lists)."""
    if isinstance(features, np.ndarray):
        return features[np.asarray(indices)]
    return [features[int(i)] for i in indices]


def source_digest(source: str) -> str:
    """Stable content hash used as the compile/feature cache key."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Frontend: mini-C → IR, content-hash cached
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CFrontendConfig:
    opt_level: str = "O0"
    verify: bool = False


def _compile_cache_size(default: int = 2048) -> int:
    """``REPRO_COMPILE_CACHE_SIZE``: 0 disables the memo; malformed or
    negative values fall back to the default rather than breaking import."""
    raw = os.environ.get("REPRO_COMPILE_CACHE_SIZE")
    try:
        size = int(raw) if raw else default
    except ValueError:
        return default
    return size if size >= 0 else default


#: LRU-bounded per-process compile memo.  Long-lived processes (servers,
#: paper-scale sweeps over several opt levels) previously grew an
#: unbounded dict for their whole lifetime; the bound keeps the working
#: set of the largest suite resident while evicting cold entries.
COMPILE_CACHE_SIZE = _compile_cache_size()

_COMPILE_CACHE: LRUCache = LRUCache(maxsize=COMPILE_CACHE_SIZE)
_COMPILE_MISS = object()


class CFrontend:
    """The repo's mini-C compiler behind the ``Frontend`` protocol."""

    name = "mini-c"

    def __init__(self, config: Optional[CFrontendConfig] = None, **overrides):
        self.config = config or CFrontendConfig(**overrides)

    @property
    def opt_level(self) -> str:
        return self.config.opt_level

    def compile(self, source: str, name: str = "input.c") -> Module:
        # name participates in the key: identical content under two file
        # names must not alias one Module (its .name feeds diagnostics).
        key = (source_digest(source), name, self.config.opt_level,
               self.config.verify)
        module = _COMPILE_CACHE.get(key, _COMPILE_MISS)
        if module is _COMPILE_MISS:
            from repro.frontend import compile_c

            module = compile_c(source, name, self.config.opt_level,
                               verify=self.config.verify)
            _COMPILE_CACHE.put(key, module)
        return module


def clear_compile_cache() -> None:
    _COMPILE_CACHE.clear()
    _COMPILE_CACHE.stats.clear()


def compile_cache_stats() -> CacheStats:
    """Hit/miss/eviction counters of the in-process compile memo."""
    return _COMPILE_CACHE.stats


# ---------------------------------------------------------------------------
# Featurizers
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class IR2VecFeaturizerConfig:
    opt_level: str = "Os"          # paper default for the embedding pipeline
    seed: int = 42


class IR2VecFeaturizer:
    """IR modules → stacked (n, 512) symbolic‖flow-aware embedding matrix."""

    name = "ir2vec"
    kind = "matrix"
    per_sample = True              # rows are independent → engine-cacheable

    def __init__(self, config: Optional[IR2VecFeaturizerConfig] = None,
                 **overrides):
        self.config = config or IR2VecFeaturizerConfig(**overrides)

    @property
    def opt_level(self) -> str:
        return self.config.opt_level

    @property
    def seed(self) -> int:
        return self.config.seed

    def warmup(self) -> None:
        """Build the per-process encoder (seed-embedding training) now.

        The execution engine calls this before forking workers so they
        inherit the trained encoder instead of each rebuilding it.
        """
        from repro.embeddings.ir2vec import default_encoder

        default_encoder(self.config.seed)

    def transform(self, modules: Sequence[Module]) -> np.ndarray:
        from repro.embeddings.ir2vec import default_encoder

        encoder = default_encoder(self.config.seed)
        if not modules:
            return np.zeros((0, 2 * encoder.dim))
        return encoder.encode_batch(list(modules))


@dataclass(frozen=True)
class ProGraMLFeaturizerConfig:
    opt_level: str = "O0"          # paper default for the GNN pipeline


class ProGraMLFeaturizer:
    """IR modules → list of ProGraML program graphs."""

    name = "programl"
    kind = "graphs"
    per_sample = True              # graphs are independent → engine-cacheable

    def __init__(self, config: Optional[ProGraMLFeaturizerConfig] = None,
                 **overrides):
        self.config = config or ProGraMLFeaturizerConfig(**overrides)

    @property
    def opt_level(self) -> str:
        return self.config.opt_level

    def transform(self, modules: Sequence[Module]) -> List[Any]:
        from repro.graphs.programl import build_program_graph

        return [build_program_graph(m) for m in modules]


# ---------------------------------------------------------------------------
# Classifiers
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class DecisionTreeStageConfig:
    normalization: str = "vector"
    use_ga: bool = True
    ga: Optional[GAConfig] = None
    fixed_features: Optional[Tuple[int, ...]] = None


class DecisionTreeStage:
    """GA feature selection + decision tree over embedding matrices."""

    name = "decision-tree"
    expects = "matrix"

    def __init__(self, config: Optional[DecisionTreeStageConfig] = None,
                 **overrides):
        from repro.models.ir2vec_model import IR2vecModel

        self.config = config or DecisionTreeStageConfig(**overrides)
        self.model = IR2vecModel(
            normalization=self.config.normalization,
            use_ga=self.config.use_ga,
            ga_config=self.config.ga,
            fixed_features=self.config.fixed_features,
        )

    def fit(self, features: np.ndarray, y: Sequence[str]) -> "DecisionTreeStage":
        from repro.perf import PERF

        with PERF.stage("classify"):
            self.model.fit(np.asarray(features), np.asarray(y))
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        from repro.perf import PERF

        with PERF.stage("classify"):
            return self.model.predict(np.asarray(features))

    @property
    def selected(self) -> Optional[Tuple[int, ...]]:
        return self.model.selected

    # -- artifact state ------------------------------------------------------
    def get_state(self) -> bytes:
        return pickle.dumps(self.model)

    def set_state(self, blob: bytes) -> None:
        self.model = pickle.loads(blob)


@dataclass(frozen=True)
class GNNStageConfig:
    epochs: int = 10
    lr: float = 4e-4
    batch_size: int = 32
    emb_dim: int = 64
    hidden: Tuple[int, ...] = (128, 64, 32)
    seed: int = 0
    pooling: str = "max"
    attention: bool = True
    hetero: bool = True


class GNNStage:
    """GATv2 GNN over program-graph batches (vocab built at fit time)."""

    name = "gnn"
    expects = "graphs"

    def __init__(self, config: Optional[GNNStageConfig] = None, **overrides):
        from repro.models.gnn_model import GNNModel

        self.config = config or GNNStageConfig(**overrides)
        c = self.config
        self.model = GNNModel(epochs=c.epochs, lr=c.lr,
                              batch_size=c.batch_size, emb_dim=c.emb_dim,
                              hidden=c.hidden, seed=c.seed, pooling=c.pooling,
                              attention=c.attention, hetero=c.hetero)

    def fit(self, features: Sequence[Any], y: Sequence[str],
            vocab: Optional[Any] = None) -> "GNNStage":
        from repro.graphs.vocab import build_vocabulary
        from repro.perf import PERF

        graphs = list(features)
        with PERF.stage("classify"):
            self.model.fit(graphs, np.asarray(y),
                           vocab or build_vocabulary(graphs))
        return self

    def predict(self, features: Sequence[Any]) -> np.ndarray:
        from repro.perf import PERF

        with PERF.stage("classify"):
            return self.model.predict(list(features))

    def predict_proba(self, features: Sequence[Any]) -> np.ndarray:
        return self.model.predict_proba(list(features))

    # -- artifact state ------------------------------------------------------
    def get_state(self) -> bytes:
        return pickle.dumps(self.model)

    def set_state(self, blob: bytes) -> None:
        self.model = pickle.loads(blob)


# ---------------------------------------------------------------------------
# Built-in registration
# ---------------------------------------------------------------------------

from repro.pipeline.registry import (  # noqa: E402  (registration footer)
    register_classifier,
    register_featurizer,
    register_frontend,
)

register_frontend(CFrontend.name, CFrontend, CFrontendConfig)
register_featurizer(IR2VecFeaturizer.name, IR2VecFeaturizer,
                    IR2VecFeaturizerConfig)
register_featurizer(ProGraMLFeaturizer.name, ProGraMLFeaturizer,
                    ProGraMLFeaturizerConfig)
register_classifier(DecisionTreeStage.name, DecisionTreeStage,
                    DecisionTreeStageConfig)
register_classifier(GNNStage.name, GNNStage, GNNStageConfig)
