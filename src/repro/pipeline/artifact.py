"""Versioned on-disk pipeline artifacts.

An artifact is a directory (or ``.zip``) holding a JSON manifest plus one
opaque blob per stateful stage::

    model.rpd/
        manifest.json       # schema version, stage names + configs, ...
        classifier.bin      # e.g. the fitted decision tree / GNN weights

The manifest records everything needed to rebuild the pipeline from the
stage registries — no code objects are pickled wholesale, so artifacts
survive refactors of the facade classes and unknown/corrupt inputs fail
with a diagnosable :class:`ArtifactError` instead of an unpickling crash.

Legacy raw-pickle detectors (the pre-pipeline ``pickle.dump(detector)``
format) are detected by magic bytes and rejected with a
``DeprecationWarning`` and a retraining hint.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import warnings
import zipfile
from typing import Any, Callable, Dict, Tuple

from repro.pipeline.registry import CLASSIFIERS, FEATURIZERS, FRONTENDS
from repro.pipeline.pipeline import DetectionPipeline
from repro.schema import SchemaError, is_envelope, make_envelope, validate_kind

SCHEMA_VERSION = 1
FORMAT_NAME = "repro.detection-pipeline"
MANIFEST_NAME = "manifest.json"

_STAGE_REGISTRIES = {
    "frontend": FRONTENDS,
    "featurizer": FEATURIZERS,
    "classifier": CLASSIFIERS,
}

#: Pickle protocol-2+ streams start with \x80; protocol 0/1 streams start
#: with an opcode from this small printable set.
_PICKLE_MAGIC = (b"\x80", b"(", b"c", b"]", b"}")

_LEGACY_MESSAGE = (
    "%s holds a legacy raw-pickle detector, which the versioned artifact "
    "format replaced; retrain and save it again (e.g. "
    "`python -m repro train -o <path>`) to produce a manifest-based artifact"
)


class ArtifactError(ValueError):
    """Raised when an artifact is missing, malformed, or unsupported."""


# ---------------------------------------------------------------------------
# Save
# ---------------------------------------------------------------------------

def _stage_manifest(stage: Any) -> Dict[str, Any]:
    config = getattr(stage, "config", None)
    if dataclasses.is_dataclass(config):
        config = dataclasses.asdict(config)
    elif config is None:
        config = {}
    return {"name": stage.name, "config": config}


def build_manifest(pipeline: DetectionPipeline) -> Dict[str, Any]:
    from repro import __version__

    return {
        "format": FORMAT_NAME,
        "schema_version": SCHEMA_VERSION,
        "repro_version": __version__,
        "method": pipeline.method,
        "label_mode": pipeline.label_mode,
        "fitted": pipeline.fitted,
        "stages": {
            "frontend": _stage_manifest(pipeline.frontend),
            "featurizer": _stage_manifest(pipeline.featurizer),
            "classifier": _stage_manifest(pipeline.classifier),
        },
    }


def save_pipeline(pipeline: DetectionPipeline, path: str) -> None:
    """Write ``pipeline`` to ``path`` (directory, or zip if it ends .zip)."""
    manifest = build_manifest(pipeline)
    blobs: Dict[str, bytes] = {}
    for role, stage in (("frontend", pipeline.frontend),
                        ("featurizer", pipeline.featurizer),
                        ("classifier", pipeline.classifier)):
        get_state = getattr(stage, "get_state", None)
        if get_state is None:
            continue
        state = get_state()
        if state is None:
            continue
        blob_name = f"{role}.bin"
        blobs[blob_name] = state
        manifest["stages"][role]["state"] = blob_name

    # The manifest is persisted in the unified envelope form (kind +
    # schema/repro versions + content digest over the payload); loaders
    # unwrap it — and still accept pre-envelope flat manifests.
    envelope = make_envelope(manifest)
    payload = json.dumps(envelope, indent=2, sort_keys=True) + "\n"
    if str(path).endswith(".zip"):
        with zipfile.ZipFile(path, "w", zipfile.ZIP_DEFLATED) as zf:
            zf.writestr(MANIFEST_NAME, payload)
            for name, blob in blobs.items():
                zf.writestr(name, blob)
    else:
        os.makedirs(path, exist_ok=True)
        with open(os.path.join(path, MANIFEST_NAME), "w",
                  encoding="utf-8") as fh:
            fh.write(payload)
        for name, blob in blobs.items():
            with open(os.path.join(path, name), "wb") as fh:
                fh.write(blob)


# ---------------------------------------------------------------------------
# Load
# ---------------------------------------------------------------------------

def _parse_manifest(payload: str, where: str) -> Dict[str, Any]:
    try:
        doc = json.loads(payload)
    except json.JSONDecodeError as exc:
        raise ArtifactError(f"{where} is not valid JSON: {exc}") from None
    if is_envelope(doc):
        # Envelope form: framing + digest are checked here, and the
        # flat manifest is handed to the rest of the loader unchanged.
        try:
            return validate_kind(FORMAT_NAME, doc)
        except SchemaError as exc:
            raise ArtifactError(f"{where}: {exc}") from None
    return doc


def _open_container(path: str) -> Tuple[Dict[str, Any],
                                        Callable[[str], bytes]]:
    """Return (manifest, blob reader) for a directory or zip artifact."""
    if os.path.isdir(path):
        manifest_path = os.path.join(path, MANIFEST_NAME)
        if not os.path.exists(manifest_path):
            raise ArtifactError(
                f"{path} is not a pipeline artifact: missing {MANIFEST_NAME}")
        with open(manifest_path, "r", encoding="utf-8") as fh:
            manifest = _parse_manifest(fh.read(), manifest_path)

        def read_blob(name: str) -> bytes:
            with open(os.path.join(path, name), "rb") as bh:
                return bh.read()

        return manifest, read_blob

    if not os.path.exists(path):
        raise ArtifactError(f"no pipeline artifact at {path}")
    with open(path, "rb") as fh:
        head = fh.read(4)
    if head.startswith(b"PK"):
        # Read the whole archive eagerly so the handle never outlives
        # this call (artifacts are small: a manifest + model blobs).
        with zipfile.ZipFile(path) as zf:
            members = {name: zf.read(name) for name in zf.namelist()}
        if MANIFEST_NAME not in members:
            raise ArtifactError(
                f"{path} is a zip without {MANIFEST_NAME}; "
                "not a pipeline artifact")
        manifest = _parse_manifest(members[MANIFEST_NAME].decode("utf-8"),
                                   path)

        def read_blob(name: str) -> bytes:
            return members[name]

        return manifest, read_blob
    if head[:1] in _PICKLE_MAGIC:
        warnings.warn(
            "loading raw-pickle detector artifacts is no longer supported; "
            "use the versioned pipeline artifact format "
            "(DetectionPipeline.save / MPIErrorDetector.save)",
            DeprecationWarning, stacklevel=3)
        raise ArtifactError(_LEGACY_MESSAGE % path)
    raise ArtifactError(f"{path} is neither an artifact directory, a zip "
                        "artifact, nor a recognizable legacy pickle")


def validate_manifest(manifest: Dict[str, Any]) -> None:
    """Validate a manifest (flat or envelope form) through the unified
    schema registry, mapping violations to :class:`ArtifactError`."""
    if not isinstance(manifest, dict):
        raise ArtifactError("manifest must be a JSON object")
    if not is_envelope(manifest) and manifest.get("format") != FORMAT_NAME:
        raise ArtifactError(
            f"unrecognized artifact format {manifest.get('format')!r} "
            f"(expected {FORMAT_NAME!r})")
    try:
        validate_kind(FORMAT_NAME, manifest)
    except SchemaError as exc:
        raise ArtifactError(str(exc)) from None


def inspect_artifact(path: str) -> Dict[str, Any]:
    """Summarize an artifact *without unpickling any stage blob*.

    Validates the manifest and reads each referenced blob only to hash
    it, so inspection is safe on untrusted or half-written artifacts —
    which is exactly why the serving registry runs it before committing
    to a hot reload, and why ``repro artifact inspect`` exists.

    Returns a JSON-able dict: format/schema/repro versions, method,
    label_mode, fitted, per-stage ``{name, config, state{blob, bytes,
    sha256}}``, and a short content ``version`` digest that changes
    whenever the manifest or any blob does.
    """
    manifest, read_blob = _open_container(path)
    validate_manifest(manifest)

    stages: Dict[str, Any] = {}
    blob_digests: Dict[str, str] = {}
    for role in ("frontend", "featurizer", "classifier"):
        entry = manifest["stages"][role]
        info: Dict[str, Any] = {"name": entry["name"],
                                "config": entry.get("config") or {}}
        blob_name = entry.get("state")
        if blob_name:
            try:
                blob = read_blob(blob_name)
            except (FileNotFoundError, KeyError):
                raise ArtifactError(
                    f"artifact is missing blob {blob_name!r} referenced "
                    f"by its {role} stage") from None
            digest = hashlib.sha256(blob).hexdigest()
            blob_digests[blob_name] = digest
            info["state"] = {"blob": blob_name, "bytes": len(blob),
                             "sha256": digest}
        stages[role] = info

    version_basis = json.dumps({"manifest": manifest, "blobs": blob_digests},
                               sort_keys=True)
    return {
        "path": str(path),
        "format": manifest["format"],
        "schema_version": manifest["schema_version"],
        "repro_version": manifest.get("repro_version"),
        "method": manifest.get("method"),
        "label_mode": manifest["label_mode"],
        "fitted": bool(manifest.get("fitted")),
        "version": hashlib.sha256(
            version_basis.encode("utf-8")).hexdigest()[:12],
        "stages": stages,
    }


def load_pipeline(path: str) -> DetectionPipeline:
    """Rebuild a :class:`DetectionPipeline` from a saved artifact."""
    manifest, read_blob = _open_container(path)
    validate_manifest(manifest)

    stages: Dict[str, Any] = {}
    for role, registry in _STAGE_REGISTRIES.items():
        entry = manifest["stages"][role]
        try:
            stage = registry.create(entry["name"], entry.get("config") or {})
        except KeyError as exc:
            raise ArtifactError(
                f"artifact needs {role} {entry['name']!r} which is not "
                f"registered: {exc.args[0]}") from None
        blob_name = entry.get("state")
        if blob_name:
            set_state = getattr(stage, "set_state", None)
            if set_state is None:
                raise ArtifactError(
                    f"artifact carries state for {role} {entry['name']!r} "
                    "but the registered stage has no set_state()")
            try:
                blob = read_blob(blob_name)
            except (FileNotFoundError, KeyError):
                raise ArtifactError(
                    f"artifact is missing blob {blob_name!r} referenced "
                    f"by its {role} stage") from None
            set_state(blob)
        stages[role] = stage

    try:
        pipeline = DetectionPipeline(stages["frontend"], stages["featurizer"],
                                     stages["classifier"],
                                     label_mode=manifest["label_mode"],
                                     method=manifest.get("method"))
    except ValueError as exc:            # e.g. featurizer/classifier mismatch
        raise ArtifactError(f"artifact stages are inconsistent: {exc}") from None
    pipeline.fitted = bool(manifest.get("fitted"))
    return pipeline
