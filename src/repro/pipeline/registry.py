"""Named stage registries — build featurizers/classifiers/frontends by name.

Every pipeline stage is registered under a short name together with its
config dataclass, so callers (CLI flags, artifact manifests, experiment
drivers) can construct stages from plain strings and JSON-safe mappings:

>>> register_featurizer("my-feat", MyFeaturizer, MyFeaturizerConfig)
>>> feat = make_featurizer("my-feat", window=3)

Unknown names raise ``KeyError`` listing what *is* available, so typos in
CLI flags or hand-edited manifests fail loudly.
"""

from __future__ import annotations

import dataclasses
import typing
from typing import Any, Callable, Dict, Mapping, Optional, Tuple


def config_from_mapping(config_cls: type, mapping: Mapping[str, Any]):
    """Instantiate a config dataclass from a JSON-safe mapping.

    Coerces what JSON round-trips lossily: nested dataclasses arrive as
    dicts, tuples as lists, and ``Optional[...]`` wrappers are unwrapped
    before inspection.
    """
    if not dataclasses.is_dataclass(config_cls):
        return dict(mapping)
    hints = typing.get_type_hints(config_cls)
    field_names = {f.name for f in dataclasses.fields(config_cls)}
    unknown = sorted(set(mapping) - field_names)
    if unknown:
        raise TypeError(
            f"{config_cls.__name__} has no option(s) {', '.join(unknown)}; "
            f"valid options: {', '.join(sorted(field_names))}")
    kwargs = {}
    for key, value in mapping.items():
        kwargs[key] = _coerce(hints.get(key), value)
    return config_cls(**kwargs)


def _coerce(annotation, value):
    if annotation is None or value is None:
        return value
    origin = typing.get_origin(annotation)
    args = typing.get_args(annotation)
    if origin is typing.Union:                      # Optional[X] and friends
        for arg in args:
            if arg is type(None):
                continue
            return _coerce(arg, value)
        return value
    if dataclasses.is_dataclass(annotation) and isinstance(value, Mapping):
        return config_from_mapping(annotation, value)
    if origin is tuple and isinstance(value, (list, tuple)):
        return tuple(value)
    return value


@dataclasses.dataclass(frozen=True)
class RegistryEntry:
    name: str
    factory: Callable[..., Any]
    config_cls: Optional[type] = None


class StageRegistry:
    """A name → (factory, config class) table for one kind of stage."""

    def __init__(self, kind: str):
        self.kind = kind
        self._entries: Dict[str, RegistryEntry] = {}

    # -- registration --------------------------------------------------------
    def register(self, name: str, factory: Callable[..., Any],
                 config_cls: Optional[type] = None, *,
                 overwrite: bool = False) -> None:
        if not name or not isinstance(name, str):
            raise ValueError(f"{self.kind} name must be a non-empty string")
        if name in self._entries and not overwrite:
            raise ValueError(
                f"{self.kind} {name!r} is already registered; "
                f"pass overwrite=True to replace it")
        self._entries[name] = RegistryEntry(name, factory, config_cls)

    def unregister(self, name: str) -> None:
        self._entries.pop(name, None)

    # -- lookup --------------------------------------------------------------
    def entry(self, name: str) -> RegistryEntry:
        try:
            return self._entries[name]
        except KeyError:
            available = ", ".join(sorted(self._entries)) or "<none>"
            raise KeyError(
                f"unknown {self.kind} {name!r}; available: {available}"
            ) from None

    def create(self, name: str, config: Any = None, **overrides: Any):
        """Build the named stage, from a config object or keyword overrides."""
        entry = self.entry(name)
        if config is not None and overrides:
            raise TypeError("pass either a config object or keyword "
                            "overrides, not both")
        if config is None:
            if entry.config_cls is not None:
                config = config_from_mapping(entry.config_cls, overrides)
            elif overrides:
                config = dict(overrides)
        elif (entry.config_cls is not None
              and isinstance(config, Mapping)):
            config = config_from_mapping(entry.config_cls, config)
        return entry.factory(config) if config is not None else entry.factory()

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._entries))

    def __contains__(self, name: str) -> bool:
        return name in self._entries


FRONTENDS = StageRegistry("frontend")
FEATURIZERS = StageRegistry("featurizer")
CLASSIFIERS = StageRegistry("classifier")


def register_frontend(name: str, factory: Callable[..., Any],
                      config_cls: Optional[type] = None, *,
                      overwrite: bool = False) -> None:
    FRONTENDS.register(name, factory, config_cls, overwrite=overwrite)


def register_featurizer(name: str, factory: Callable[..., Any],
                        config_cls: Optional[type] = None, *,
                        overwrite: bool = False) -> None:
    FEATURIZERS.register(name, factory, config_cls, overwrite=overwrite)


def register_classifier(name: str, factory: Callable[..., Any],
                        config_cls: Optional[type] = None, *,
                        overwrite: bool = False) -> None:
    CLASSIFIERS.register(name, factory, config_cls, overwrite=overwrite)


def make_frontend(name: str, config: Any = None, **overrides: Any):
    return FRONTENDS.create(name, config, **overrides)


def make_featurizer(name: str, config: Any = None, **overrides: Any):
    return FEATURIZERS.create(name, config, **overrides)


def make_classifier(name: str, config: Any = None, **overrides: Any):
    return CLASSIFIERS.create(name, config, **overrides)


def frontend_names() -> Tuple[str, ...]:
    return FRONTENDS.names()


def featurizer_names() -> Tuple[str, ...]:
    return FEATURIZERS.names()


def classifier_names() -> Tuple[str, ...]:
    return CLASSIFIERS.names()
