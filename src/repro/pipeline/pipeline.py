"""Batch-first detection pipeline composed of registry-built stages.

A :class:`DetectionPipeline` chains a frontend, a featurizer, and a
classifier.  It is batch-first: ``predict_batch`` compiles every source
through the content-hash compile cache, runs the featurizer once over
all modules, and issues a *single* vectorized classifier call — instead
of the old one-sample-at-a-time facade loop.

Build one from stage objects, by stage names, or from the paper's two
method presets:

>>> pipe = DetectionPipeline.from_names("ir2vec", "decision-tree")
>>> pipe.fit(load_mbi(subsample=200))
>>> [r.label for r in pipe.predict_batch(sources)]

``save``/``load`` use the versioned artifact format of
:mod:`repro.pipeline.artifact` (JSON manifest + per-stage blobs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.datasets.labels import CORRECT
from repro.datasets.loader import Dataset, Sample
from repro.engine import ExecutionEngine, default_engine
from repro.pipeline.registry import (
    CLASSIFIERS,
    FEATURIZERS,
    FRONTENDS,
)
from repro.pipeline.stages import (
    CFrontend,
    CFrontendConfig,
    Classifier,
    DecisionTreeStage,
    DecisionTreeStageConfig,
    Featurizer,
    Frontend,
    GNNStageConfig,
    IR2VecFeaturizer,
    IR2VecFeaturizerConfig,
    ProGraMLFeaturizerConfig,
)

#: Anything predict_batch accepts as one item: raw source, a Sample, or a
#: (name, source) pair.
SourceLike = Union[str, Sample, Tuple[str, str]]

#: The paper's two methods as (featurizer name, classifier name) presets.
METHOD_STAGES = {
    "ir2vec": ("ir2vec", "decision-tree"),
    "gnn": ("programl", "gnn"),
}


@dataclass
class DetectionResult:
    label: str
    is_correct: bool
    method: str
    detail: str = ""


def method_stage_specs(method: str, *, opt_level: Optional[str] = None,
                       embedding_seed: int = 42, normalization: str = "vector",
                       use_ga: bool = True, ga_config: Optional[Any] = None,
                       epochs: int = 10, lr: float = 4e-4, batch_size: int = 32,
                       seed: int = 0, pooling: str = "max",
                       attention: bool = True, hetero: bool = True,
                       ) -> Tuple[str, Any, str, Any]:
    """Map a paper method name to (featurizer name, config, classifier
    name, config) with the paper's defaults filled in."""
    if method == "ir2vec":
        feat_cfg = IR2VecFeaturizerConfig(opt_level=opt_level or "Os",
                                          seed=embedding_seed)
        clf_cfg = DecisionTreeStageConfig(normalization=normalization,
                                          use_ga=use_ga, ga=ga_config)
        return "ir2vec", feat_cfg, "decision-tree", clf_cfg
    if method == "gnn":
        feat_cfg = ProGraMLFeaturizerConfig(opt_level=opt_level or "O0")
        clf_cfg = GNNStageConfig(epochs=epochs, lr=lr, batch_size=batch_size,
                                 seed=seed, pooling=pooling,
                                 attention=attention, hetero=hetero)
        return "programl", feat_cfg, "gnn", clf_cfg
    raise ValueError(f"method must be one of {sorted(METHOD_STAGES)}, "
                     f"got {method!r}")


class DetectionPipeline:
    """Frontend → featurizer → classifier, batch-first."""

    def __init__(self, frontend: Optional[Frontend] = None,
                 featurizer: Optional[Featurizer] = None,
                 classifier: Optional[Classifier] = None, *,
                 label_mode: str = "binary", method: Optional[str] = None,
                 engine: Optional[ExecutionEngine] = None):
        self.featurizer = featurizer if featurizer is not None \
            else IR2VecFeaturizer()
        self.classifier = classifier if classifier is not None \
            else DecisionTreeStage()
        # Default frontend matches the featurizer's IR level so fit-time
        # and predict-time compilation agree.
        self.frontend = frontend if frontend is not None else CFrontend(
            CFrontendConfig(opt_level=self.featurizer.opt_level))
        # Catch matrix-vs-graph mismatches at assembly time, not deep
        # inside the model: stages may advertise kind/expects metadata.
        kind = getattr(self.featurizer, "kind", None)
        expects = getattr(self.classifier, "expects", None)
        if kind is not None and expects is not None and kind != expects:
            raise ValueError(
                f"featurizer {self.featurizer.name!r} produces {kind!r} "
                f"features but classifier {self.classifier.name!r} expects "
                f"{expects!r}")
        self.label_mode = label_mode
        self.method = method or (f"{self.featurizer.name}"
                                 f"+{self.classifier.name}")
        # None → resolve the process-wide default engine at call time, so
        # repro.engine.configure() affects already-built pipelines too.
        self._engine = engine
        self.fitted = False

    @property
    def engine(self) -> ExecutionEngine:
        """The execution engine compile/featurize work runs on."""
        return self._engine if self._engine is not None else default_engine()

    @engine.setter
    def engine(self, engine: Optional[ExecutionEngine]) -> None:
        self._engine = engine

    # ------------------------------------------------------------- builders
    @classmethod
    def from_names(cls, featurizer: str = "ir2vec",
                   classifier: str = "decision-tree", *,
                   frontend: str = "mini-c",
                   featurizer_config: Any = None,
                   classifier_config: Any = None,
                   frontend_config: Any = None,
                   label_mode: str = "binary",
                   method: Optional[str] = None,
                   engine: Optional[ExecutionEngine] = None,
                   ) -> "DetectionPipeline":
        """Assemble a pipeline entirely from registry names."""
        feat = FEATURIZERS.create(featurizer, featurizer_config)
        clf = CLASSIFIERS.create(classifier, classifier_config)
        if frontend_config is None:
            fe = FRONTENDS.create(
                frontend, CFrontendConfig(opt_level=feat.opt_level)
                if frontend == CFrontend.name else None)
        else:
            fe = FRONTENDS.create(frontend, frontend_config)
        return cls(fe, feat, clf, label_mode=label_mode, method=method,
                   engine=engine)

    @classmethod
    def from_method(cls, method: str, *, opt_level: Optional[str] = None,
                    embedding_seed: int = 42, normalization: str = "vector",
                    use_ga: bool = True, ga_config: Optional[Any] = None,
                    epochs: int = 10, lr: float = 4e-4, batch_size: int = 32,
                    seed: int = 0,
                    engine: Optional[ExecutionEngine] = None,
                    ) -> "DetectionPipeline":
        """The paper's presets: ``ir2vec`` (+DT) or ``gnn`` (ProGraML)."""
        feat_name, feat_cfg, clf_name, clf_cfg = method_stage_specs(
            method, opt_level=opt_level, embedding_seed=embedding_seed,
            normalization=normalization, use_ga=use_ga, ga_config=ga_config,
            epochs=epochs, lr=lr, batch_size=batch_size, seed=seed)
        return cls.from_names(feat_name, clf_name,
                              featurizer_config=feat_cfg,
                              classifier_config=clf_cfg, method=method,
                              engine=engine)

    # ------------------------------------------------------------------ fit
    def fit(self, dataset: Dataset, labels: str = "binary",
            ) -> "DetectionPipeline":
        """Fit on a labeled dataset; ``labels`` is 'binary' or 'type'."""
        if labels not in ("binary", "type"):
            raise ValueError("labels must be 'binary' or 'type'")
        self.label_mode = labels
        y = np.array([s.binary if labels == "binary" else s.label
                      for s in dataset.samples])
        self.classifier.fit(self._featurize_dataset(dataset), y)
        self.fitted = True
        return self

    def _featurize_dataset(self, dataset: Dataset):
        """Dataset features through whatever frontend this pipeline has.

        The default frontend routes through the shared per-dataset feature
        cache (which compiles with identical settings); custom frontends
        (or ``verify=True``) run through the engine directly so training
        and serving always see the same IR.  Either way the work lands on
        this pipeline's execution engine (worker pool + persistent store).
        """
        if (isinstance(self.frontend, CFrontend)
                and not self.frontend.config.verify):
            from repro.models.features import featurize_dataset

            return featurize_dataset(self.featurizer, dataset,
                                     opt_level=self.frontend.opt_level,
                                     engine=self.engine)
        return self.engine.featurize_samples(self.frontend, self.featurizer,
                                             dataset.samples)

    # -------------------------------------------------------------- predict
    @staticmethod
    def _as_named_source(item: SourceLike, index: int) -> Tuple[str, str]:
        if isinstance(item, Sample):
            return item.name, item.source
        if isinstance(item, tuple):
            name, source = item
            return name, source
        return f"input{index}.c", item

    def predict_batch(self, sources: Sequence[SourceLike],
                      ) -> List[DetectionResult]:
        """Classify many sources with shared compile/feature work.

        Sources stream through the execution engine — chunked over the
        worker pool when ``workers>0``, skipping compilation/featurization
        for anything already in the persistent store — and are classified
        in one vectorized model call.  Accepts any iterable.
        """
        if not self.fitted:
            raise RuntimeError("call fit() before predict_batch()")
        named = [self._as_named_source(s, i) for i, s in enumerate(sources)]
        features = self.engine.featurize_sources(self.frontend,
                                                 self.featurizer, named)
        labels = self.classifier.predict(features)
        # opt_level is a built-in convenience, not part of the Frontend
        # protocol — don't require it of custom frontends.
        opt = getattr(self.frontend, "opt_level", "?")
        detail = f"opt={opt}, labels={self.label_mode}"
        return [DetectionResult(label=str(label),
                                is_correct=str(label) == CORRECT,
                                method=self.method, detail=detail)
                for label in labels]

    def predict_source(self, source: str,
                       name: str = "input.c") -> DetectionResult:
        """Classify a single C source (thin wrapper over the batch path)."""
        return self.predict_batch([(name, source)])[0]

    def predict_dataset(self, dataset: Dataset) -> np.ndarray:
        """Label array for a whole dataset, via the cached feature path."""
        if not self.fitted:
            raise RuntimeError("call fit() before predict_dataset()")
        return self.classifier.predict(self._featurize_dataset(dataset))

    # ------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Shut down the engine's worker pool deterministically.

        Long-lived callers (the serving loop, test suites) need teardown
        that does not wait for interpreter exit.  Idempotent, and the
        pipeline stays usable — the next parallel run restarts the pool.
        This applies to whatever engine the pipeline resolves, including
        the process-wide default: other pipelines sharing it lose only a
        warm pool (restarted lazily), never correctness.
        """
        self.engine.close()

    def __enter__(self) -> "DetectionPipeline":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -------------------------------------------------------------- persist
    def save(self, path: str) -> None:
        """Write the versioned artifact (JSON manifest + stage blobs)."""
        from repro.pipeline.artifact import save_pipeline

        save_pipeline(self, path)

    @classmethod
    def load(cls, path: str) -> "DetectionPipeline":
        from repro.pipeline.artifact import load_pipeline

        return load_pipeline(path)
