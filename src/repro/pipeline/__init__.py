"""Composable detection pipeline: pluggable stages, batch-first inference.

The public surface of the redesign:

* stage protocols and built-ins (:mod:`repro.pipeline.stages`),
* name-based registries (:mod:`repro.pipeline.registry`),
* the batch-first :class:`DetectionPipeline`
  (:mod:`repro.pipeline.pipeline`),
* the versioned on-disk artifact format
  (:mod:`repro.pipeline.artifact`).

Registering a custom stage requires no core-code edits:

>>> from repro.pipeline import register_featurizer, DetectionPipeline
>>> register_featurizer("my-feat", MyFeaturizer, MyFeaturizerConfig)
>>> pipe = DetectionPipeline.from_names("my-feat", "decision-tree")
"""

from repro.pipeline.registry import (
    CLASSIFIERS,
    FEATURIZERS,
    FRONTENDS,
    StageRegistry,
    classifier_names,
    featurizer_names,
    frontend_names,
    make_classifier,
    make_featurizer,
    make_frontend,
    register_classifier,
    register_featurizer,
    register_frontend,
)
from repro.pipeline.stages import (
    CFrontend,
    CFrontendConfig,
    Classifier,
    DecisionTreeStage,
    DecisionTreeStageConfig,
    Featurizer,
    Frontend,
    GNNStage,
    GNNStageConfig,
    IR2VecFeaturizer,
    IR2VecFeaturizerConfig,
    ProGraMLFeaturizer,
    ProGraMLFeaturizerConfig,
    clear_compile_cache,
    compile_cache_stats,
    source_digest,
    take,
)
from repro.pipeline.pipeline import (
    METHOD_STAGES,
    DetectionPipeline,
    DetectionResult,
    method_stage_specs,
)
from repro.pipeline.artifact import (
    ArtifactError,
    SCHEMA_VERSION,
    inspect_artifact,
    load_pipeline,
    save_pipeline,
)

__all__ = [
    # pipeline
    "DetectionPipeline", "DetectionResult", "METHOD_STAGES",
    "method_stage_specs",
    # registries
    "StageRegistry", "FRONTENDS", "FEATURIZERS", "CLASSIFIERS",
    "register_frontend", "register_featurizer", "register_classifier",
    "make_frontend", "make_featurizer", "make_classifier",
    "frontend_names", "featurizer_names", "classifier_names",
    # stage protocols + built-ins
    "Frontend", "Featurizer", "Classifier",
    "CFrontend", "CFrontendConfig",
    "IR2VecFeaturizer", "IR2VecFeaturizerConfig",
    "ProGraMLFeaturizer", "ProGraMLFeaturizerConfig",
    "DecisionTreeStage", "DecisionTreeStageConfig",
    "GNNStage", "GNNStageConfig",
    "take", "source_digest", "clear_compile_cache", "compile_cache_stats",
    # artifacts
    "ArtifactError", "SCHEMA_VERSION", "save_pipeline", "load_pipeline",
    "inspect_artifact",
]
