"""ITAC analogue (Intel Trace Analyzer and Collector).

Mechanism-faithful model: ITAC traces the execution and reports argument,
type, and matching errors it observes; deadlocks are handled with a
*time-out* heuristic (the paper reports 157 TO / 1 RE for ITAC on MBI).
We reproduce that split: a *total* deadlock (every rank blocked — a
wait-for cycle ITAC's progress engine can identify) is reported as an
error, while a *partial* hang (some ranks finished, others blocked
forever — indistinguishable from slowness) times out.
"""

from __future__ import annotations

from repro.datasets.loader import Sample
from repro.frontend import CompileError, compile_c
from repro.mpi.simulator import MPISimulator, RunOutcome
from repro.verify.base import ToolVerdict, VerificationTool

#: Runtime event kinds ITAC's checkers surface.
_DETECTED = {
    "invalid_arg", "type_mismatch", "truncation", "parameter_matching",
    "request_lifecycle", "epoch_lifecycle", "call_ordering",
}
#: Kinds ITAC does not reliably flag (races need DAMPI-style replay).
_MISSED = {"message_race", "local_concurrency", "global_concurrency",
           "resource_leak"}


class ITACTool(VerificationTool):
    name = "ITAC"

    def __init__(self, nprocs: int = 3, max_steps: int = 300_000,
                 binary: str = None):
        self.nprocs = nprocs
        self.max_steps = max_steps
        self.binary = binary

    def check_sample(self, sample: Sample) -> ToolVerdict:
        if self.external_binary():
            # run_external degrades to a typed ToolUnavailable verdict
            # when the configured executable is missing.
            return self.run_external(sample)
        try:
            module = compile_c(sample.source, sample.name, "O0", verify=False)
        except CompileError as exc:
            return ToolVerdict("compile_error", detail=str(exc))
        return self.check_module(module)

    def check_module(self, module) -> ToolVerdict:
        """Analogue verdict for an already-compiled module."""
        report = MPISimulator(module, self.nprocs,
                              max_steps=self.max_steps).run()
        return self.verdict_of(report)

    def verdict_of(self, report) -> ToolVerdict:
        """Map one simulator :class:`SimReport` to ITAC's verdict —
        shared by :meth:`check_module` and the differential fuzz
        harness (which runs the simulator once for every dynamic
        oracle)."""
        detected = sorted(k for k in report.kinds if k in _DETECTED)
        if report.outcome is RunOutcome.TIMEOUT:
            return ToolVerdict("timeout", detected, "step budget exhausted")
        if report.outcome is RunOutcome.FAULT:
            return ToolVerdict("runtime_error", detected, "crash during trace")
        if report.outcome is RunOutcome.ABORT:
            return ToolVerdict("incorrect", detected + ["abort"], "MPI_Abort")
        if report.outcome is RunOutcome.DEADLOCK:
            blocked = {e.rank for e in report.events if e.kind == "deadlock"}
            if len(blocked) >= self.nprocs:
                return ToolVerdict("incorrect", detected + ["deadlock"],
                                   "wait-for cycle")
            # Partial hang: the progress engine cannot conclude; time out.
            return ToolVerdict("timeout", detected, "partial hang")
        if detected:
            return ToolVerdict("incorrect", detected)
        return ToolVerdict("correct")
