"""PARCOACH analogue: static collective-matching analysis over the IR.

PARCOACH's core check (Saillard et al.): a collective call whose
execution is control-dependent on a *rank-dependent* condition may not be
executed by all ranks ⇒ potential collective error.  Extensions add
conservative warnings for nonblocking/persistent and one-sided
communications.  Like the original, the analysis over-approximates
heavily — rank-dependent communication that is actually well-matched
still raises warnings, which is why the paper measures specificity 0.088
for PARCOACH on MBI.

Implementation: taint propagation from ``MPI_Comm_rank``/``MPI_Comm_size``
outputs through SSA/data flow; control-dependence approximated through
conditional branches on tainted values; collective sequences on the two
branch arms compared (equal multisets are accepted).
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.datasets.loader import Sample
from repro.frontend import CompileError, compile_c
from repro.ir.instructions import (
    CallInst,
    CondBranchInst,
    Instruction,
    LoadInst,
    StoreInst,
)
from repro.ir.module import BasicBlock, Function, Module
from repro.mpi.api import COLLECTIVE_NAMES, CallClass, MPI_FUNCTIONS
from repro.verify.base import ToolVerdict, VerificationTool

_RANK_SOURCES = {"MPI_Comm_rank", "MPI_Comm_size"}
_RISKY_CLASSES = {
    CallClass.NB_SEND, CallClass.NB_RECV, CallClass.PERSISTENT_INIT,
    CallClass.RMA_OP, CallClass.RMA_EPOCH,
}


def _tainted_values(fn: Function) -> Set[int]:
    """SSA values derived from the rank/size outputs (incl. memory slots)."""
    tainted: Set[int] = set()
    tainted_slots: Set[int] = set()
    for inst in fn.instructions():
        if isinstance(inst, CallInst) and inst.callee_name in _RANK_SOURCES:
            if len(inst.args) >= 2:
                tainted_slots.add(id(inst.args[-1]))
    changed = True
    while changed:
        changed = False
        for inst in fn.instructions():
            if id(inst) in tainted:
                continue
            if isinstance(inst, LoadInst) and id(inst.pointer) in tainted_slots:
                tainted.add(id(inst))
                changed = True
            elif any(id(op) in tainted for op in inst.operands):
                tainted.add(id(inst))
                changed = True
            if isinstance(inst, StoreInst) and id(inst.value) in tainted:
                if id(inst.pointer) not in tainted_slots:
                    tainted_slots.add(id(inst.pointer))
                    changed = True
    return tainted


_COMM_CLASSES = {
    CallClass.P2P_SEND, CallClass.P2P_RECV, CallClass.NB_SEND,
    CallClass.NB_RECV, CallClass.COLLECTIVE, CallClass.NB_COLLECTIVE,
    CallClass.PERSISTENT_INIT, CallClass.RMA_OP,
}


def _is_comm_call(inst: CallInst) -> bool:
    info = MPI_FUNCTIONS.get(inst.callee_name)
    return info is not None and info.call_class in _COMM_CLASSES


def _arm_comm_sequence(block: BasicBlock, stop: Set[int], depth: int = 64) -> List[str]:
    """Communication call names reachable from ``block`` before ``stop``.

    PARCOACH v2.x matches both collective *and* point-to-point sequences
    along divergent paths (the nonblocking/persistent extension); anything
    it cannot prove matched raises a warning.
    """
    seen: Set[int] = set()
    result: List[str] = []
    stack = [block]
    while stack and depth:
        depth -= 1
        current = stack.pop()
        if id(current) in seen or id(current) in stop:
            continue
        seen.add(id(current))
        for inst in current.instructions:
            if isinstance(inst, CallInst) and _is_comm_call(inst):
                result.append(inst.callee_name)
        stack.extend(current.successors())
    return result


class ParcoachTool(VerificationTool):
    name = "PARCOACH"

    def __init__(self, conservative: bool = True, binary: str = None):
        #: conservative=True enables the nonblocking/RMA/wildcard warnings
        #: of the PARCOACH extensions (the paper evaluates v2.3.1, which
        #: includes them).
        self.conservative = conservative
        self.binary = binary

    # -- static analysis over a module ------------------------------------
    def analyze_module(self, module: Module) -> List[str]:
        warnings: List[str] = []
        for fn in module.defined_functions():
            warnings.extend(self._analyze_function(fn))
        return warnings

    def _analyze_function(self, fn: Function) -> List[str]:
        warnings: List[str] = []
        tainted = _tainted_values(fn)

        for block in fn.blocks:
            term = block.terminator
            if not isinstance(term, CondBranchInst):
                continue
            if id(term.cond) not in tainted:
                continue
            # Rank-dependent branch: compare communication sequences on arms.
            stop = {id(b) for b in fn.blocks
                    if self._post_dominates_both(b, term)}
            left = _arm_comm_sequence(term.true_block, stop)
            right = _arm_comm_sequence(term.false_block, stop)
            if left != right:
                involved = sorted(set(left) | set(right)) or ["(communication)"]
                warnings.append(
                    f"{fn.name}: rank-dependent control flow with unmatched "
                    f"communication sequence {involved}")

        if self.conservative:
            for inst in fn.instructions():
                if not isinstance(inst, CallInst):
                    continue
                info = MPI_FUNCTIONS.get(inst.callee_name)
                if info is None:
                    continue
                if info.call_class in _RISKY_CLASSES:
                    warnings.append(
                        f"{fn.name}: {inst.callee_name} may race "
                        "(nonblocking/persistent/RMA data-flow not provable)")
                    break
        return warnings

    @staticmethod
    def _post_dominates_both(block: BasicBlock, term: CondBranchInst) -> bool:
        # Cheap join detection: a block with >= 2 predecessors downstream
        # of the branch acts as the merge point that ends both arms.
        return len(block.predecessors()) >= 2

    # -- tool interface -----------------------------------------------------
    def check_sample(self, sample: Sample) -> ToolVerdict:
        if self.external_binary():
            # run_external degrades to a typed ToolUnavailable verdict
            # when the configured executable is missing.
            return self.run_external(sample)
        try:
            module = compile_c(sample.source, sample.name, "O0", verify=False)
        except CompileError as exc:
            return ToolVerdict("compile_error", detail=str(exc))
        return self.check_module(module)

    def check_module(self, module: Module) -> ToolVerdict:
        """Analogue verdict for an already-compiled module."""
        warnings = self.analyze_module(module)
        if warnings:
            return ToolVerdict("incorrect", ["static_warning"],
                               "; ".join(warnings[:3]))
        return ToolVerdict("correct")
