"""Per-rank abstract interpretation and communication-order matching.

The deadlock / matching checkers need the *sequence* of MPI operations
each rank executes, not just the set of call sites.  This module runs a
small abstract interpreter over the IR once per rank with concrete
``rank`` / ``nprocs`` values: scalar locals are tracked exactly, branch
conditions fold through the lattice, and every executed MPI call is
appended to that rank's trace.  A rendezvous scheduler then matches the
traces — eager (buffered) sends, blocking receives, collective
rendezvous, request completion — and reports deadlocks, envelope
mismatches, root divergence, unmatched sends and leaked requests.

Soundness contract: the interpreter raises :class:`Imprecise` the
moment it cannot prove what a rank does (an unfoldable branch guarding
communication, an unsupported MPI class, a step-budget blow-up).  The
caller then *skips* the sequence checkers entirely rather than guessing
— imprecision degrades recall, never precision.  The scheduler
under-approximates blocking (standard sends are treated as buffered),
so every deadlock it reports exists under MPI's weakest progress
guarantees too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.ir import analysis
from repro.ir.instructions import (
    AllocaInst,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    CondBranchInst,
    FCmpInst,
    GEPInst,
    ICmpInst,
    LoadInst,
    PhiInst,
    ReturnInst,
    SelectInst,
    StoreInst,
    UnreachableInst,
)
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.types import ArrayType, FloatType, IntType, PointerType
from repro.ir.values import Constant, ConstantString, GlobalVariable
from repro.mpi.api import MPI_CONSTANTS, MPI_FUNCTIONS, CallClass, is_mpi_call
from repro.verify.static.findings import StaticFinding, StaticWitness
from repro.verify.static.lattice import (
    TOP,
    element_of,
    fold_binary,
    fold_cast,
    fold_fcmp,
    fold_icmp,
    is_const,
    render_abstract,
)

_PROC_NULL = MPI_CONSTANTS["MPI_PROC_NULL"]
_ANY_SOURCE = MPI_CONSTANTS["MPI_ANY_SOURCE"]
_ANY_TAG = MPI_CONSTANTS["MPI_ANY_TAG"]

#: External functions with no effect the analysis cares about.
_SAFE_EXTERNALS = frozenset({
    "printf", "fprintf", "puts", "putchar", "fflush", "sprintf",
    "snprintf", "free", "rand", "srand", "abs", "atoi", "exit",
    "sqrt", "fabs", "pow", "sin", "cos", "memset", "memcpy", "sleep",
    "usleep", "clock", "time",
})

#: MPI functions the interpreter models by name (everything else in an
#: unsupported call class bails to :class:`Imprecise`).
_MPI_NOOPS = frozenset({"MPI_Init", "MPI_Finalize", "MPI_Wtime",
                        "MPI_Initialized", "MPI_Finalized",
                        "MPI_Get_processor_name", "MPI_Error_string"})

_SUPPORTED_CLASSES = {
    CallClass.P2P_SEND, CallClass.P2P_RECV, CallClass.NB_SEND,
    CallClass.NB_RECV, CallClass.COLLECTIVE, CallClass.NB_COLLECTIVE,
    CallClass.COMPLETION,
}


class Imprecise(Exception):
    """The interpreter lost precision; sequence checks must not run."""


class Cell:
    """One tracked memory object (an alloca, a global, or a heap block)."""

    __slots__ = ("kind", "value", "elem", "size", "label")

    def __init__(self, kind: str, label: str = "",
                 elem: Optional[tuple] = None, size: Optional[int] = None):
        self.kind = kind            # 'scalar' | 'buffer' | 'opaque'
        self.value = TOP            # scalar contents (abstract)
        self.elem = elem            # buffer element (kind, bytes)
        self.size = size            # buffer size in bytes, if known
        self.label = label


class Ptr:
    """Abstract pointer: which cell it addresses (offsets untracked)."""

    __slots__ = ("cell",)

    def __init__(self, cell: Cell):
        self.cell = cell


@dataclass
class MPIEvent:
    """One executed MPI operation in a rank's trace."""

    name: str
    call_class: CallClass
    block: str
    fields: Dict[str, object] = field(default_factory=dict)
    buf_elem: Optional[tuple] = None
    recv_elem: Optional[tuple] = None
    request: Optional[int] = None           # id() of the request cell
    requests_all: bool = False              # Waitall with unresolved array


@dataclass
class RankTrace:
    rank: int
    events: List[MPIEvent] = field(default_factory=list)


def _element_from_type(type_) -> Optional[tuple]:
    if isinstance(type_, ArrayType):
        return element_of(type_.element)
    return element_of(type_)


class _Interpreter:
    """Executes one function body for one concrete rank."""

    def __init__(self, module: Module, rank: int, nprocs: int,
                 max_steps: int = 60_000):
        self.module = module
        self.rank = rank
        self.nprocs = nprocs
        self.max_steps = max_steps
        self.steps = 0
        self.env: Dict[int, object] = {}
        self.cells: Dict[int, Cell] = {}
        self.globals: Dict[int, Cell] = {}
        self.trace: List[MPIEvent] = []
        self.summaries = analysis.mpi_summaries(module)
        self._ipdom_cache: Dict[int, Dict[BasicBlock,
                                          Optional[BasicBlock]]] = {}
        self.call_stack: List[str] = []

    # -- value resolution ---------------------------------------------------
    def val(self, value) -> object:
        if isinstance(value, Constant):
            return value.value if is_const(value.value) else TOP
        if isinstance(value, ConstantString):
            return TOP
        if isinstance(value, GlobalVariable):
            cell = self.globals.get(id(value))
            if cell is None:
                if isinstance(value.value_type, (IntType, FloatType,
                                                 PointerType)):
                    cell = Cell("scalar", value.name)
                else:
                    cell = Cell("buffer", value.name,
                                elem=_element_from_type(value.value_type))
                self.globals[id(value)] = cell
            return Ptr(cell)
        return self.env.get(id(value), TOP)

    def _ipdom(self, fn: Function) -> Dict[BasicBlock, Optional[BasicBlock]]:
        cached = self._ipdom_cache.get(id(fn))
        if cached is None:
            cached = analysis.compute_postdominators(fn)
            self._ipdom_cache[id(fn)] = cached
        return cached

    # -- main loop ----------------------------------------------------------
    def run(self, fn: Function, args: Sequence[object]) -> object:
        if fn.name in self.call_stack:
            raise Imprecise(f"recursive call to {fn.name}")
        if len(self.call_stack) >= 8:
            raise Imprecise("call depth limit")
        self.call_stack.append(fn.name)
        try:
            return self._run_body(fn, args)
        finally:
            self.call_stack.pop()

    def _run_body(self, fn: Function, args: Sequence[object]) -> object:
        for i, arg in enumerate(fn.arguments):
            self.env[id(arg)] = args[i] if i < len(args) else TOP
        block = fn.entry
        prev: Optional[BasicBlock] = None
        while True:
            jump = self._exec_block(fn, block, prev)
            if jump is None:
                return self.env.get(-1, TOP)        # never used
            kind, target = jump
            if kind == "return":
                return target
            prev = block if kind == "branch" else None
            block = target

    def _exec_block(self, fn: Function, block: BasicBlock,
                    prev: Optional[BasicBlock]):
        for inst in block.instructions:
            self.steps += 1
            if self.steps > self.max_steps:
                raise Imprecise("step budget exhausted")
            if isinstance(inst, AllocaInst):
                self.cells[id(inst)] = self._make_cell(inst)
                self.env[id(inst)] = Ptr(self.cells[id(inst)])
            elif isinstance(inst, LoadInst):
                pointer = self.val(inst.pointer)
                if isinstance(pointer, Ptr) and pointer.cell.kind == "scalar":
                    self.env[id(inst)] = pointer.cell.value
                else:
                    self.env[id(inst)] = TOP
            elif isinstance(inst, StoreInst):
                pointer = self.val(inst.pointer)
                if isinstance(pointer, Ptr):
                    if pointer.cell.kind == "scalar":
                        pointer.cell.value = self.val(inst.value)
                    # buffer/opaque contents are untracked: no-op
                else:
                    # a store through a pointer we lost: anything we
                    # track could alias it
                    raise Imprecise("store through unknown pointer")
            elif isinstance(inst, BinaryInst):
                bits = inst.lhs.type.bits if isinstance(
                    inst.lhs.type, IntType) else 64
                self.env[id(inst)] = fold_binary(
                    inst.opcode, self.val(inst.lhs), self.val(inst.rhs), bits)
            elif isinstance(inst, ICmpInst):
                lhs, rhs = inst.operands[0], inst.operands[1]
                bits = lhs.type.bits if isinstance(lhs.type, IntType) else 64
                self.env[id(inst)] = fold_icmp(
                    inst.predicate, self.val(lhs), self.val(rhs), bits)
            elif isinstance(inst, FCmpInst):
                self.env[id(inst)] = fold_fcmp(
                    inst.predicate, self.val(inst.operands[0]),
                    self.val(inst.operands[1]))
            elif isinstance(inst, CastInst):
                operand = self.val(inst.operands[0])
                if isinstance(operand, Ptr):
                    self.env[id(inst)] = operand
                    self._refine_buffer(operand.cell, inst)
                else:
                    self.env[id(inst)] = fold_cast(inst.opcode, operand,
                                                   inst.type)
            elif isinstance(inst, SelectInst):
                cond = self.val(inst.operands[0])
                if is_const(cond):
                    self.env[id(inst)] = self.val(
                        inst.operands[1 if cond else 2])
                else:
                    self.env[id(inst)] = TOP
            elif isinstance(inst, GEPInst):
                base = self.val(inst.pointer)
                self.env[id(inst)] = base if isinstance(base, Ptr) else TOP
            elif isinstance(inst, PhiInst):
                resolved = TOP
                if prev is not None:
                    for value, incoming in inst.incoming:
                        if incoming is prev:
                            resolved = self.val(value)
                            break
                self.env[id(inst)] = resolved
            elif isinstance(inst, CallInst):
                self._exec_call(inst)
            elif isinstance(inst, BranchInst):
                return ("branch", inst.target)
            elif isinstance(inst, CondBranchInst):
                cond = self.val(inst.cond)
                if is_const(cond):
                    return ("branch",
                            inst.true_block if cond else inst.false_block)
                return self._skip_region(fn, block)
            elif isinstance(inst, ReturnInst):
                value = (self.val(inst.return_value)
                         if inst.return_value is not None else TOP)
                return ("return", value)
            elif isinstance(inst, UnreachableInst):
                return ("return", TOP)
        return ("return", TOP)      # fallthrough: malformed block

    def _make_cell(self, inst: AllocaInst) -> Cell:
        allocated = inst.allocated_type
        if isinstance(allocated, (IntType, FloatType, PointerType)):
            return Cell("scalar", inst.name)
        if isinstance(allocated, ArrayType):
            elem = element_of(allocated.element)
            size = allocated.count * elem[1] if elem else None
            return Cell("buffer", inst.name, elem=elem, size=size)
        return Cell("opaque", inst.name)

    @staticmethod
    def _refine_buffer(cell: Cell, cast: CastInst) -> None:
        """``bitcast i8* (malloc) to T*`` tells us the element type."""
        if cell.kind == "buffer" and cell.elem is None and isinstance(
                cast.type, PointerType):
            cell.elem = element_of(cast.type.pointee)

    # -- unknown branches ---------------------------------------------------
    def _skip_region(self, fn: Function, branch_block: BasicBlock):
        """Jump a TOP-condition branch to its immediate post-dominator,
        havocking everything the skipped region may write.  Bails to
        :class:`Imprecise` if the region can communicate."""
        ipdom = self._ipdom(fn).get(branch_block)
        if ipdom is None:
            raise Imprecise(
                f"unfoldable branch in {fn.name}:{branch_block.name} "
                "without a post-dominator")
        region: List[BasicBlock] = []
        seen: Set[int] = {id(ipdom)}
        stack = [branch_block]      # the branch block re-runs on loops
        while stack:
            current = stack.pop()
            if id(current) in seen:
                continue
            seen.add(id(current))
            region.append(current)
            stack.extend(current.successors())
        for current in region:
            for inst in current.instructions:
                if isinstance(inst, StoreInst):
                    self._havoc_pointer(inst.pointer, fn, current)
                elif isinstance(inst, CallInst):
                    self._havoc_call(inst, fn, current)
        return ("jump", ipdom)

    def _havoc_call(self, inst: CallInst, fn: Function,
                    block: BasicBlock) -> None:
        name = inst.callee_name
        if is_mpi_call(name) and name not in _MPI_NOOPS:
            raise Imprecise(
                f"MPI call {name} under unfoldable branch in "
                f"{fn.name}:{block.name}")
        callee = self.module.get_function(name)
        if callee is not None and not callee.is_declaration:
            # a defined callee may write memory we cannot enumerate
            # (globals, pointers threaded through its body): bail
            raise Imprecise(
                f"call to defined {name} under unfoldable branch in "
                f"{fn.name}:{block.name}")
        for arg in inst.args:
            if isinstance(arg.type, PointerType):
                self._havoc_pointer(arg, fn, block)

    def _havoc_pointer(self, value, fn: Function, block: BasicBlock,
                       depth: int = 8) -> None:
        """Set the cell a (possibly not-yet-executed) pointer expression
        roots at to TOP; bail if the root is unresolvable."""
        if depth <= 0:
            raise Imprecise("pointer chain too deep to havoc")
        if isinstance(value, AllocaInst):
            cell = self.cells.get(id(value))
            if cell is not None and cell.kind == "scalar":
                cell.value = TOP
            return
        if isinstance(value, GlobalVariable):
            resolved = self.val(value)
            if isinstance(resolved, Ptr) and resolved.cell.kind == "scalar":
                resolved.cell.value = TOP
            return
        if isinstance(value, (CastInst, GEPInst)):
            self._havoc_pointer(value.operands[0], fn, block, depth - 1)
            return
        if isinstance(value, Constant):
            return                  # string literals, null pointers
        if isinstance(value, LoadInst):
            # pointer loaded from a slot: havoc whatever the slot holds
            slot = self.val(value.pointer)
            if isinstance(slot, Ptr) and isinstance(slot.cell.value, Ptr):
                target = slot.cell.value.cell
                if target.kind == "scalar":
                    target.value = TOP
                return
            if isinstance(slot, Ptr) and slot.cell.kind != "scalar":
                return              # buffer contents are untracked anyway
            raise Imprecise(
                f"indirect store target unknown in {fn.name}:{block.name}")
        if isinstance(value, PhiInst):
            raise Imprecise("phi-carried pointer in skipped region")
        # SelectInst, call results...: give up rather than guess
        raise Imprecise(
            f"unresolvable pointer in skipped region of {fn.name}")

    # -- calls --------------------------------------------------------------
    def _exec_call(self, inst: CallInst) -> None:
        name = inst.callee_name
        if name == "MPI_Comm_rank":
            self._store_out(inst, -1, self.rank)
            self.env[id(inst)] = 0
            return
        if name == "MPI_Comm_size":
            self._store_out(inst, -1, self.nprocs)
            self.env[id(inst)] = 0
            return
        if name in _MPI_NOOPS:
            self.env[id(inst)] = TOP if name == "MPI_Wtime" else 0
            return
        if is_mpi_call(name):
            self._exec_mpi(inst, name)
            return
        if name in ("malloc", "calloc"):
            size = self.val(inst.args[0]) if inst.args else TOP
            if name == "calloc" and len(inst.args) >= 2:
                size = fold_binary("mul", size, self.val(inst.args[1]))
            cell = Cell("buffer", f"heap:{inst.name}",
                        size=int(size) if is_const(size) and size >= 0
                        else None)
            self.env[id(inst)] = Ptr(cell)
            return
        callee = self.module.get_function(name)
        if callee is not None and not callee.is_declaration:
            result = self.run(callee, [self.val(a) for a in inst.args])
            self.env[id(inst)] = result
            return
        if name in _SAFE_EXTERNALS:
            self.env[id(inst)] = TOP
            return
        # unknown external: it may write through any pointer argument
        for arg in inst.args:
            if isinstance(arg.type, PointerType):
                resolved = self.val(arg)
                if isinstance(resolved, Ptr):
                    if resolved.cell.kind == "scalar":
                        resolved.cell.value = TOP
                else:
                    raise Imprecise(
                        f"unknown external {name} with untracked pointer")
        self.env[id(inst)] = TOP

    def _store_out(self, inst: CallInst, arg_index: int,
                   value: object) -> None:
        if not inst.args:
            return
        pointer = self.val(inst.args[arg_index])
        if isinstance(pointer, Ptr) and pointer.cell.kind == "scalar":
            pointer.cell.value = value

    def _exec_mpi(self, inst: CallInst, name: str) -> None:
        info = MPI_FUNCTIONS.get(name)
        if info is None or info.call_class not in _SUPPORTED_CLASSES:
            raise Imprecise(f"unmodeled MPI call {name}")
        if info.call_class is CallClass.COMPLETION and (
                not info.blocking or name == "MPI_Waitany"):
            raise Imprecise(f"nondeterministic completion {name}")
        event = MPIEvent(name=name, call_class=info.call_class,
                         block=inst.parent.name if inst.parent else "")
        for role, index in info.roles.items():
            if index >= len(inst.args):
                continue
            arg = inst.args[index]
            if role in ("buf", "recvbuf"):
                elem = None
                resolved = self.val(arg)
                if isinstance(resolved, Ptr):
                    elem = resolved.cell.elem
                if role == "buf":
                    event.buf_elem = elem
                else:
                    event.recv_elem = elem
            elif role == "request":
                resolved = self.val(arg)
                if isinstance(resolved, Ptr):
                    event.request = id(resolved.cell)
                elif name == "MPI_Waitall":
                    event.requests_all = True
            elif role == "status":
                continue
            else:
                event.fields[role] = self.val(arg)
        self.trace.append(event)
        self.env[id(inst)] = 0


def interpret_rank(module: Module, rank: int, nprocs: int,
                   max_steps: int = 60_000) -> RankTrace:
    """Abstractly execute ``main`` for one concrete rank."""
    main = module.get_function("main")
    if main is None or main.is_declaration:
        return RankTrace(rank=rank)
    interp = _Interpreter(module, rank, nprocs, max_steps)
    interp.run(main, [TOP, TOP])
    return RankTrace(rank=rank, events=interp.trace)


# ---------------------------------------------------------------------------
# Rendezvous scheduler over per-rank traces
# ---------------------------------------------------------------------------

@dataclass
class _Msg:
    src: int
    dst: int
    tag: object
    dtype: object
    count: object
    name: str
    block: str
    elem: Optional[tuple]


@dataclass
class _OpenReq:
    kind: str                       # 'send' | 'recv'
    rank: int
    event: MPIEvent


class _Bail(Exception):
    """Scheduler hit an abstract value it cannot match on."""


def _tag_matches(recv_tag: object, msg_tag: object) -> bool:
    if not is_const(recv_tag) or not is_const(msg_tag):
        return True                 # wildcard on imprecision: no false alarm
    return recv_tag == _ANY_TAG or recv_tag == msg_tag


def _src_matches(recv_src: int, msg_src: int) -> bool:
    return recv_src == _ANY_SOURCE or recv_src == msg_src


class _Scheduler:
    def __init__(self, traces: Sequence[RankTrace], nprocs: int):
        self.traces = list(traces)
        self.nprocs = nprocs
        self.pos = [0] * len(self.traces)
        self.queue: List[_Msg] = []
        self.open: Dict[Tuple[int, int], _OpenReq] = {}   # (rank, cellid)
        self.findings: List[StaticFinding] = []
        self.halted = False

    # -- helpers ------------------------------------------------------------
    def _cur(self, r: int) -> Optional[MPIEvent]:
        trace = self.traces[r].events
        return trace[self.pos[r]] if self.pos[r] < len(trace) else None

    def _done(self, r: int) -> bool:
        return self.pos[r] >= len(self.traces[r].events)

    @staticmethod
    def _where(rank: int, event: MPIEvent) -> str:
        return f"rank {rank} @ main:{event.block} {event.name}"

    def _valid_peer(self, peer: object, allow_any: bool) -> Optional[bool]:
        """True valid / False invalid / None unknown."""
        if not is_const(peer):
            return None
        if peer == _PROC_NULL or (allow_any and peer == _ANY_SOURCE):
            return True
        return 0 <= peer < self.nprocs

    # -- per-event processing ----------------------------------------------
    def _advance(self, r: int) -> bool:
        event = self._cur(r)
        if event is None:
            return False
        cls = event.call_class
        if cls in (CallClass.P2P_SEND, CallClass.NB_SEND):
            return self._do_send(r, event)
        if cls in (CallClass.P2P_RECV,):
            return self._do_recv(r, event, blocking=True)
        if cls is CallClass.NB_RECV:
            return self._do_irecv(r, event)
        if cls is CallClass.COMPLETION:
            return self._do_wait(r, event)
        return False                # collectives advance at rendezvous

    def _do_send(self, r: int, event: MPIEvent) -> bool:
        dest = event.fields.get("dest")
        valid = self._valid_peer(dest, allow_any=False)
        if valid is None:
            raise _Bail("send destination unknown")
        if valid and dest != _PROC_NULL:
            self.queue.append(_Msg(
                src=r, dst=int(dest), tag=event.fields.get("tag"),
                dtype=event.fields.get("datatype"),
                count=event.fields.get("count"), name=event.name,
                block=event.block, elem=event.buf_elem))
        if event.call_class is CallClass.NB_SEND and event.request:
            self.open[(r, event.request)] = _OpenReq("send", r, event)
        self.pos[r] += 1
        if event.name == "MPI_Sendrecv":
            # the receive half runs as a synthetic blocking recv
            recv = MPIEvent(name="MPI_Sendrecv(recv)",
                            call_class=CallClass.P2P_RECV, block=event.block,
                            fields={"source": event.fields.get("source"),
                                    "tag": event.fields.get("recvtag"),
                                    "datatype": event.fields.get("recvtype"),
                                    "count": event.fields.get("recvcount")},
                            buf_elem=event.recv_elem)
            self.traces[r].events.insert(self.pos[r], recv)
        return True

    def _match(self, r: int, source: object, tag: object) -> Optional[_Msg]:
        for i, msg in enumerate(self.queue):
            if msg.dst != r:
                continue
            if is_const(source) and source != _ANY_SOURCE \
                    and not _src_matches(int(source), msg.src):
                continue
            if not _tag_matches(tag, msg.tag):
                continue
            return self.queue.pop(i)
        return None

    def _check_envelope(self, r: int, event: MPIEvent, msg: _Msg) -> None:
        dtype_r = event.fields.get("datatype")
        if is_const(dtype_r) and is_const(msg.dtype) and dtype_r != msg.dtype:
            self.findings.append(StaticFinding(
                check="sequence-matching", kind="datatype_mismatch",
                function="main", call=event.name,
                message=(f"{event.name} on rank {r} receives with datatype "
                         f"{dtype_r} but the matching {msg.name} from rank "
                         f"{msg.src} sent datatype {msg.dtype}"),
                witness=StaticWitness(
                    blocks=(f"main:{msg.block}", f"main:{event.block}"),
                    values=((f"rank {msg.src} send datatype",
                             render_abstract(msg.dtype)),
                            (f"rank {r} recv datatype",
                             render_abstract(dtype_r))))))
        count_r = event.fields.get("count")
        if is_const(count_r) and is_const(msg.count) and count_r < msg.count:
            self.findings.append(StaticFinding(
                check="sequence-matching", kind="message_truncation",
                function="main", call=event.name,
                message=(f"{event.name} on rank {r} posts count {count_r} "
                         f"for a message of count {msg.count} from rank "
                         f"{msg.src}"),
                witness=StaticWitness(
                    blocks=(f"main:{msg.block}", f"main:{event.block}"),
                    values=((f"rank {msg.src} send count",
                             render_abstract(msg.count)),
                            (f"rank {r} recv count",
                             render_abstract(count_r))))))

    def _do_recv(self, r: int, event: MPIEvent, blocking: bool) -> bool:
        source = event.fields.get("source")
        valid = self._valid_peer(source, allow_any=True)
        if valid is None:
            raise _Bail("recv source unknown")
        if not valid or source == _PROC_NULL:
            self.pos[r] += 1        # invalid peer reported arg-level
            return True
        msg = self._match(r, source, event.fields.get("tag"))
        if msg is None:
            return False
        self._check_envelope(r, event, msg)
        self.pos[r] += 1
        return True

    def _do_irecv(self, r: int, event: MPIEvent) -> bool:
        source = event.fields.get("source")
        valid = self._valid_peer(source, allow_any=True)
        if valid is None:
            raise _Bail("irecv source unknown")
        if valid and source != _PROC_NULL and event.request:
            self.open[(r, event.request)] = _OpenReq("recv", r, event)
        self.pos[r] += 1
        return True

    def _do_wait(self, r: int, event: MPIEvent) -> bool:
        if event.requests_all:
            keys = [k for k in self.open if k[0] == r]
        elif event.request is not None:
            keys = [(r, event.request)] if (r, event.request) in self.open \
                else []
        else:
            keys = []
        for key in keys:
            req = self.open[key]
            if req.kind == "recv":
                msg = self._match(r, req.event.fields.get("source"),
                                  req.event.fields.get("tag"))
                if msg is None:
                    return False    # blocked in MPI_Wait
                self._check_envelope(r, req.event, msg)
            del self.open[key]
        self.pos[r] += 1
        return True

    # -- collective rendezvous ---------------------------------------------
    def _rendezvous(self) -> bool:
        ranks = range(len(self.traces))
        if any(self._done(r) for r in ranks):
            return False
        current = [self._cur(r) for r in ranks]
        if not all(ev is not None and ev.call_class in
                   (CallClass.COLLECTIVE, CallClass.NB_COLLECTIVE)
                   for ev in current):
            return False
        names = {ev.name for ev in current}
        if len(names) > 1:
            self.findings.append(StaticFinding(
                check="sequence-matching", kind="collective_mismatch",
                function="main", call="/".join(sorted(names)),
                message=("ranks reach different collectives "
                         "simultaneously: " + "; ".join(
                             self._where(r, current[r]) for r in ranks)),
                witness=StaticWitness(
                    blocks=tuple(f"main:{ev.block}" for ev in current),
                    values=tuple((f"rank {r}", current[r].name)
                                 for r in ranks))))
            self.halted = True
            return False            # analysis cannot proceed past this
        roots = [ev.fields.get("root") for ev in current]
        if "root" in current[0].fields and all(is_const(x) for x in roots) \
                and len(set(roots)) > 1:
            self.findings.append(StaticFinding(
                check="sequence-matching", kind="root_mismatch",
                function="main", call=current[0].name,
                message=(f"{current[0].name} called with diverging root "
                         f"arguments across ranks: "
                         + ", ".join(f"rank {r} uses root {roots[r]}"
                                     for r in ranks)),
                witness=StaticWitness(
                    blocks=tuple(f"main:{ev.block}" for ev in current),
                    values=tuple((f"rank {r} root", render_abstract(roots[r]))
                                 for r in ranks))))
        dtypes = [ev.fields.get("datatype") for ev in current]
        if "datatype" in current[0].fields \
                and all(is_const(x) for x in dtypes) \
                and len(set(dtypes)) > 1:
            self.findings.append(StaticFinding(
                check="sequence-matching", kind="datatype_mismatch",
                function="main", call=current[0].name,
                message=(f"{current[0].name} called with diverging "
                         f"datatypes across ranks"),
                witness=StaticWitness(
                    blocks=tuple(f"main:{ev.block}" for ev in current),
                    values=tuple((f"rank {r} datatype",
                                  render_abstract(dtypes[r]))
                                 for r in ranks))))
        for r in ranks:
            ev = current[r]
            if ev.call_class is CallClass.NB_COLLECTIVE and ev.request:
                self.open.pop((r, ev.request), None)
            self.pos[r] += 1
        return True

    # -- terminal reporting -------------------------------------------------
    def _report_deadlock(self) -> None:
        stuck = [(r, self._cur(r)) for r in range(len(self.traces))
                 if not self._done(r)]
        # refine: a receiver starving next to a near-miss message is a
        # tag mismatch, not a bare deadlock
        for r, event in stuck:
            if event.call_class not in (CallClass.P2P_RECV,
                                        CallClass.COMPLETION):
                continue
            fields = event.fields
            if event.call_class is CallClass.COMPLETION:
                req = next((v for (rr, _), v in self.open.items()
                            if rr == r and v.kind == "recv"), None)
                if req is None:
                    continue
                fields = req.event.fields
            source, tag = fields.get("source"), fields.get("tag")
            for msg in self.queue:
                if msg.dst == r and is_const(source) \
                        and _src_matches(int(source), msg.src) \
                        and is_const(tag) and is_const(msg.tag) \
                        and tag != msg.tag:
                    self.findings.append(StaticFinding(
                        check="sequence-matching", kind="tag_mismatch",
                        function="main", call=event.name,
                        message=(f"rank {r} waits for tag {tag} from rank "
                                 f"{msg.src} but the only in-flight message "
                                 f"({msg.name}) carries tag {msg.tag}"),
                        witness=StaticWitness(
                            blocks=(f"main:{msg.block}",
                                    f"main:{event.block}"),
                            values=((f"rank {msg.src} send tag",
                                     render_abstract(msg.tag)),
                                    (f"rank {r} recv tag",
                                     render_abstract(tag))))))
                    return
        self.findings.append(StaticFinding(
            check="sequence-matching", kind="deadlock",
            function="main",
            call=stuck[0][1].name if stuck else "",
            message="no rank can make progress: " + "; ".join(
                self._where(r, ev) for r, ev in stuck),
            witness=StaticWitness(
                blocks=tuple(f"main:{ev.block}" for _, ev in stuck),
                values=tuple((f"rank {r}", ev.name) for r, ev in stuck))))

    def _report_leftovers(self) -> None:
        for msg in self.queue:
            self.findings.append(StaticFinding(
                check="sequence-matching", kind="unmatched_send",
                function="main", call=msg.name,
                message=(f"message from rank {msg.src} to rank {msg.dst} "
                         f"(tag {render_abstract(msg.tag)}) is never "
                         f"received"),
                witness=StaticWitness(
                    blocks=(f"main:{msg.block}",),
                    values=(("source rank", str(msg.src)),
                            ("destination rank", str(msg.dst)),
                            ("tag", render_abstract(msg.tag))))))
        for (r, _), req in self.open.items():
            self.findings.append(StaticFinding(
                check="sequence-matching", kind="missing_wait",
                function="main", call=req.event.name,
                message=(f"request from {req.event.name} on rank {r} is "
                         f"never completed by MPI_Wait/MPI_Waitall"),
                witness=StaticWitness(
                    blocks=(f"main:{req.event.block}",),
                    values=((f"rank {r} request", req.event.name),))))

    # -- main loop ----------------------------------------------------------
    def run(self) -> List[StaticFinding]:
        # Sendrecv splitting can grow traces mid-run; re-derive the
        # guard bound each iteration and bail (imprecise) on blow-up
        # rather than misreport half-scheduled state.
        guard = 8 * (sum(len(t.events) for t in self.traces) + 8)
        try:
            while True:
                guard -= 1
                if guard <= 0:
                    return []       # scheduler budget exhausted: bail
                progress = False
                for r in range(len(self.traces)):
                    while self._advance(r):
                        progress = True
                if progress:
                    continue
                if all(self._done(r) for r in range(len(self.traces))):
                    break
                if self._rendezvous():
                    continue
                if self.halted:
                    # a collective mismatch already explains the stall
                    return self.findings
                self._report_deadlock()
                return self.findings
        except _Bail:
            return []               # imprecise: no sequence findings
        self._report_leftovers()
        return self.findings


def match_traces(traces: Sequence[RankTrace],
                 nprocs: int) -> List[StaticFinding]:
    """Run the rendezvous scheduler over per-rank traces."""
    return _Scheduler(traces, nprocs).run()
