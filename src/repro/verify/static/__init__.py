"""``repro.verify.static`` — dataflow static analysis over the mini IR.

A trusted, explainable static analyzer for the MPI error taxonomy:

* :mod:`.lattice` — constant lattice, folding, buffer/datatype typing;
* :mod:`.sequence` — per-rank abstract interpretation and the
  rendezvous scheduler over the resulting MPI call traces;
* :mod:`.checkers` — flow-insensitive argument/buffer checks and the
  PARCOACH-style collective-divergence check;
* :mod:`.findings` — :class:`StaticFinding` / :class:`StaticWitness`,
  the typed, machine-checkable report format;
* :mod:`.analyzer` — the driver, the ``repro.verify`` tool adapter
  (:class:`StaticAnalyzerTool`) and the embedded self-test corpus.
"""

from repro.verify.static.findings import StaticFinding, StaticWitness

__all__ = [
    "StaticFinding",
    "StaticWitness",
    "StaticAnalyzerTool",
    "analyze_module",
    "analyze_source",
    "self_test",
]


def __getattr__(name):
    # analyzer imports the frontend (and through it numpy-adjacent
    # layers); keep the package importable for findings-only users.
    if name in ("StaticAnalyzerTool", "analyze_module", "analyze_source",
                "self_test"):
        from repro.verify.static import analyzer
        return getattr(analyzer, name)
    raise AttributeError(name)
