"""Typed findings with machine-checkable witnesses.

Every checker in :mod:`repro.verify.static` reports a
:class:`StaticFinding`, never a bare string: the witness carries the
block trace, the culprit branch condition, and the abstract values that
triggered the report, so a finding can be re-checked (or refuted) by a
human or a downstream tool without re-running the analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class StaticWitness:
    """Evidence attached to a finding.

    ``blocks`` is a trace of ``function:block`` labels leading to (or
    surrounding) the defect; ``condition`` renders the culprit branch
    condition when control flow is involved; ``values`` are the
    (name, abstract value) pairs the checker compared; ``note`` is
    free-form detail (e.g. the frontend diagnostic for rejects).
    """

    blocks: Tuple[str, ...] = ()
    condition: str = ""
    values: Tuple[Tuple[str, str], ...] = ()
    note: str = ""

    @property
    def is_empty(self) -> bool:
        return not (self.blocks or self.condition or self.values or self.note)

    def as_dict(self) -> Dict[str, object]:
        return {
            "blocks": list(self.blocks),
            "condition": self.condition,
            "values": {name: value for name, value in self.values},
            "note": self.note,
        }


@dataclass(frozen=True)
class StaticFinding:
    """One defect report from the static analyzer.

    ``check`` names the checker that fired (stable identifiers, e.g.
    ``"sequence-matching"``); ``kind`` is the error-class tag carried
    into ``ToolVerdict.detected_kinds`` and fuzz fingerprints.
    """

    check: str
    kind: str
    function: str = ""
    call: str = ""
    message: str = ""
    witness: StaticWitness = StaticWitness()

    def as_dict(self) -> Dict[str, object]:
        return {
            "check": self.check,
            "kind": self.kind,
            "function": self.function,
            "call": self.call,
            "message": self.message,
            "witness": self.witness.as_dict(),
        }

    def dedup_key(self) -> Tuple[object, ...]:
        """Identity for cross-checker de-duplication (message excluded:
        two phrasings of one defect are still one defect)."""
        return (self.check, self.kind, self.function, self.call,
                self.witness.blocks, self.witness.condition,
                self.witness.values)
