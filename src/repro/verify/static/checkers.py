"""Flow-insensitive checkers over the constant lattice and the CDG.

These run on every defined function and never depend on the per-rank
interpreter, so they still fire when :mod:`.sequence` bails out as
imprecise.  All of them follow the same reporting discipline: a finding
is emitted only from *definitely known* abstract values (``TOP`` means
silence), which keeps the checker suite safe to trust in the
differential fuzz harness.

Checkers:

* argument validity — constant counts, peer ranks and roots checked
  against their domains (``count >= 0``, peers in ``[0, nprocs)`` plus
  the wildcard/null sentinels);
* datatype/buffer compatibility — a constant datatype handle matched
  against the element type of the buffer the pointer argument provably
  points at;
* constant-count buffer overflow — ``count * sizeof(datatype)`` checked
  against the allocation size of stack buffers;
* PARCOACH-style collective divergence — a conditional branch whose
  condition is tainted by ``MPI_Comm_rank`` with *different* collective
  multisets on its two arms before the branch's immediate
  post-dominator.  Unlike the external-tool analogue in
  :mod:`repro.verify.parcoach`, only the rank output is tainted
  (``MPI_Comm_size`` is the same on every rank, so branching on it
  cannot diverge) and point-to-point calls on the arms are ignored —
  both choices remove whole classes of false alarms.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Set

from repro.ir import analysis
from repro.ir.instructions import (
    CallInst,
    CondBranchInst,
    FCmpInst,
    ICmpInst,
    LoadInst,
    StoreInst,
)
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.values import Value
from repro.mpi.api import CallClass, MPI_CONSTANTS, MPI_FUNCTIONS
from repro.verify.static.findings import StaticFinding, StaticWitness
from repro.verify.static.lattice import (
    ConstLattice,
    allocation_bytes,
    compatible_element,
    datatype_kind,
    is_const,
    pointed_element,
    render_abstract,
)

_PROC_NULL = MPI_CONSTANTS["MPI_PROC_NULL"]
_ANY_SOURCE = MPI_CONSTANTS["MPI_ANY_SOURCE"]

_COMM_CLASSES = {
    CallClass.P2P_SEND, CallClass.P2P_RECV, CallClass.NB_SEND,
    CallClass.NB_RECV, CallClass.COLLECTIVE, CallClass.NB_COLLECTIVE,
}

#: Calls where ``buf`` must hold ``count`` elements on every rank that
#: executes the call.  Asymmetric cases (Scatter's send side is only
#: significant at the root; Alltoall sends ``count`` elements *per
#: destination*) are deliberately absent: sizing them needs the rank or
#: ``nprocs``, and guessing would risk false alarms.
_BUF_HOLDS_COUNT = frozenset({
    "MPI_Send", "MPI_Ssend", "MPI_Rsend", "MPI_Bsend",
    "MPI_Isend", "MPI_Issend", "MPI_Irsend", "MPI_Ibsend",
    "MPI_Recv", "MPI_Irecv", "MPI_Sendrecv",
    "MPI_Bcast", "MPI_Ibcast",
    "MPI_Reduce", "MPI_Ireduce", "MPI_Allreduce", "MPI_Iallreduce",
    "MPI_Scan", "MPI_Exscan",
    "MPI_Gather", "MPI_Allgather",
})

#: Calls where ``recvbuf`` must hold ``recvcount`` elements on every
#: rank (Gather/Allgather/Alltoall receive nprocs-scaled data and
#: Reduce's recvbuf only matters at the root — all skipped).
_RECVBUF_HOLDS_COUNT = frozenset({"MPI_Sendrecv", "MPI_Scatter",
                                  "MPI_Iscatter"})


def _where(fn: Function, inst: CallInst) -> str:
    block = inst.parent.name if inst.parent else "?"
    return f"{fn.name}:{block}"


def _render_value(value: Value) -> str:
    ref = getattr(value, "ref", None)
    return ref if ref else repr(value)


def render_condition(cond: Value) -> str:
    """Human-readable rendering of a branch condition for witnesses."""
    if isinstance(cond, (ICmpInst, FCmpInst)):
        return (f"{_render_value(cond.operands[0])} {cond.predicate} "
                f"{_render_value(cond.operands[1])}")
    return _render_value(cond)


# ---------------------------------------------------------------------------
# Argument-domain and buffer checks
# ---------------------------------------------------------------------------

def check_call_arguments(fn: Function, nprocs: int) -> List[StaticFinding]:
    findings: List[StaticFinding] = []
    lattice = ConstLattice(fn)
    for inst in fn.instructions():
        if not isinstance(inst, CallInst):
            continue
        info = MPI_FUNCTIONS.get(inst.callee_name)
        if info is None or info.call_class not in _COMM_CLASSES:
            continue
        name = inst.callee_name
        where = _where(fn, inst)

        def arg(role: str):
            index = info.roles.get(role)
            if index is None or index >= len(inst.args):
                return None
            return inst.args[index]

        def folded(role: str):
            value = arg(role)
            return lattice.fold(value) if value is not None else None

        # counts must be non-negative
        for role in ("count", "recvcount"):
            count = folded(role)
            if count is not None and is_const(count) and count < 0:
                findings.append(StaticFinding(
                    check="argument-domain", kind="invalid_count",
                    function=fn.name, call=name,
                    message=(f"{name} called with negative {role} "
                             f"{count}"),
                    witness=StaticWitness(
                        blocks=(where,),
                        values=((role, render_abstract(count)),))))

        # peer ranks must be in [0, nprocs) modulo the sentinels
        for role in ("dest", "source"):
            peer = folded(role)
            if peer is None or not is_const(peer):
                continue
            if peer == _PROC_NULL:
                continue
            if role == "source" and peer == _ANY_SOURCE:
                continue
            if not 0 <= peer < nprocs:
                findings.append(StaticFinding(
                    check="argument-domain", kind="invalid_rank",
                    function=fn.name, call=name,
                    message=(f"{name} uses {role} {peer}, outside the "
                             f"communicator [0, {nprocs})"),
                    witness=StaticWitness(
                        blocks=(where,),
                        values=((role, render_abstract(peer)),
                                ("nprocs", str(nprocs))))))

        root = folded("root")
        if root is not None and is_const(root) and not 0 <= root < nprocs:
            findings.append(StaticFinding(
                check="argument-domain", kind="invalid_root",
                function=fn.name, call=name,
                message=(f"{name} uses root {root}, outside the "
                         f"communicator [0, {nprocs})"),
                witness=StaticWitness(
                    blocks=(where,),
                    values=(("root", render_abstract(root)),
                            ("nprocs", str(nprocs))))))

        # datatype handles against the pointed-at buffer element
        for buf_role, dtype_role, count_role in (
                ("buf", "datatype", "count"),
                ("recvbuf", "recvtype", "recvcount")):
            buf = arg(buf_role)
            dtype = folded(dtype_role)
            if buf is None or dtype is None or not is_const(dtype):
                continue
            dt = datatype_kind(int(dtype))
            if dt is None:
                continue
            elem = pointed_element(buf)
            if elem is not None and not compatible_element(elem, dt):
                findings.append(StaticFinding(
                    check="buffer-typing", kind="datatype_mismatch",
                    function=fn.name, call=name,
                    message=(f"{name} passes a buffer of {elem[0]}"
                             f"[{elem[1]} bytes] as {buf_role} but "
                             f"declares datatype handle {int(dtype)} "
                             f"({dt[0]}, {dt[1]} bytes)"),
                    witness=StaticWitness(
                        blocks=(where,),
                        values=((f"{buf_role} element",
                                 f"{elem[0]}/{elem[1]}B"),
                                (dtype_role,
                                 f"{int(dtype)} ({dt[0]}/{dt[1]}B)")))))
            # constant-count overflow against stack allocation sizes
            symmetric = (_BUF_HOLDS_COUNT if buf_role == "buf"
                         else _RECVBUF_HOLDS_COUNT)
            count = folded(count_role)
            if name not in symmetric or count is None \
                    or not is_const(count) or count < 0:
                continue
            capacity = allocation_bytes(buf)
            if capacity is not None and count * dt[1] > capacity:
                findings.append(StaticFinding(
                    check="buffer-bounds", kind="buffer_overflow",
                    function=fn.name, call=name,
                    message=(f"{name} reads/writes {count} x {dt[1]} = "
                             f"{count * dt[1]} bytes through {buf_role} "
                             f"but the allocation holds only {capacity} "
                             f"bytes"),
                    witness=StaticWitness(
                        blocks=(where,),
                        values=((count_role, render_abstract(count)),
                                ("element bytes", str(dt[1])),
                                ("allocation bytes", str(capacity))))))
    return findings


# ---------------------------------------------------------------------------
# PARCOACH-style collective divergence on rank-tainted branches
# ---------------------------------------------------------------------------

def _rank_tainted(fn: Function) -> Set[int]:
    """ids of values derived from the ``MPI_Comm_rank`` output.

    ``MPI_Comm_size`` is intentionally *not* a taint source: it returns
    the same value on every rank, so control flow depending on it alone
    cannot diverge between ranks.
    """
    tainted: Set[int] = set()
    tainted_slots: Set[int] = set()
    for inst in fn.instructions():
        if isinstance(inst, CallInst) \
                and inst.callee_name == "MPI_Comm_rank" and inst.args:
            tainted_slots.add(id(inst.args[-1]))
    changed = True
    while changed:
        changed = False
        for inst in fn.instructions():
            if id(inst) not in tainted:
                if isinstance(inst, LoadInst) \
                        and id(inst.pointer) in tainted_slots:
                    tainted.add(id(inst))
                    changed = True
                elif any(id(op) in tainted for op in inst.operands):
                    tainted.add(id(inst))
                    changed = True
            if isinstance(inst, StoreInst) and id(inst.value) in tainted \
                    and id(inst.pointer) not in tainted_slots:
                tainted_slots.add(id(inst.pointer))
                changed = True
    return tainted


def _collectives_before(block: BasicBlock, stop: Optional[BasicBlock],
                        limit: int) -> Counter:
    """Multiset of collective names reachable from ``block`` without
    passing through ``stop``."""
    names: Counter = Counter()
    seen: Set[int] = set() if stop is None else {id(stop)}
    stack = [block]
    while stack and limit:
        limit -= 1
        current = stack.pop()
        if id(current) in seen:
            continue
        seen.add(id(current))
        for inst in current.instructions:
            if isinstance(inst, CallInst):
                info = MPI_FUNCTIONS.get(inst.callee_name)
                if info is not None and info.call_class in (
                        CallClass.COLLECTIVE, CallClass.NB_COLLECTIVE):
                    names[inst.callee_name] += 1
        stack.extend(current.successors())
    return names


def check_collective_divergence(fn: Function) -> List[StaticFinding]:
    findings: List[StaticFinding] = []
    tainted = _rank_tainted(fn)
    if not tainted:
        return findings
    ipdom: Optional[Dict[BasicBlock, Optional[BasicBlock]]] = None
    limit = len(fn.blocks) + 8
    for block in analysis.reachable_blocks(fn):
        term = block.terminator
        if not isinstance(term, CondBranchInst) \
                or id(term.cond) not in tainted:
            continue
        if ipdom is None:
            ipdom = analysis.compute_postdominators(fn)
        join = ipdom.get(block)
        left = _collectives_before(term.true_block, join, limit)
        right = _collectives_before(term.false_block, join, limit)
        if left == right:
            continue
        diverging = sorted((left | right).keys())
        findings.append(StaticFinding(
            check="collective-divergence", kind="collective_divergence",
            function=fn.name, call="/".join(diverging),
            message=(f"collective calls {diverging} are control-dependent "
                     f"on the rank-dependent condition in "
                     f"{fn.name}:{block.name}: the two branch arms execute "
                     f"different collective sequences"),
            witness=StaticWitness(
                blocks=(f"{fn.name}:{block.name}",
                        f"{fn.name}:{term.true_block.name}",
                        f"{fn.name}:{term.false_block.name}"),
                condition=render_condition(term.cond),
                values=(("true-arm collectives",
                         str(sorted(left.elements()))),
                        ("false-arm collectives",
                         str(sorted(right.elements())))))))
    return findings


def check_function(fn: Function, nprocs: int) -> List[StaticFinding]:
    """All flow-insensitive checks for one function."""
    findings = check_call_arguments(fn, nprocs)
    findings.extend(check_collective_divergence(fn))
    return findings


def check_module(module: Module, nprocs: int) -> List[StaticFinding]:
    findings: List[StaticFinding] = []
    for fn in module.defined_functions():
        findings.extend(check_function(fn, nprocs))
    return findings
