"""Constant-propagation lattice over MPI call arguments.

The domain is the classic three-level constant lattice (unreached /
constant / ``TOP``) applied in two places:

* flow-insensitively here, via unique-store folding — an ``alloca``
  whose entire function body stores it exactly once with a foldable
  value acts as that constant at every load; everything else is
  ``TOP``; and
* flow- and rank-sensitively in :mod:`repro.verify.static.sequence`,
  where the per-rank abstract interpreter re-uses :func:`fold_binary`
  and friends with concrete ``rank`` / ``nprocs`` values.

Only *definitely known* values ever leave the lattice: every checker
treats ``TOP`` as "don't know, don't report", which is what makes the
analyzer safe to trust in the differential fuzz harness.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.ir.instructions import (
    AllocaInst,
    BinaryInst,
    CastInst,
    ICmpInst,
    Instruction,
    LoadInst,
    SelectInst,
    StoreInst,
)
from repro.ir.module import Function
from repro.ir.types import FloatType, IntType, PointerType, Type
from repro.ir.values import Constant, Value
from repro.mpi.api import DATATYPE_INFO


class _Top:
    """Unknown value (lattice top)."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "TOP"


TOP = _Top()

#: A lattice element: a concrete Python number or :data:`TOP`.
Abstract = Union[int, float, _Top]


def is_const(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def join(a: Abstract, b: Abstract) -> Abstract:
    """Least upper bound of two lattice elements."""
    if is_const(a) and is_const(b) and a == b:
        return a
    return TOP


def _mask(value: int, bits: int) -> int:
    return value & ((1 << bits) - 1)


def _width(type_: Type) -> int:
    return type_.bits if isinstance(type_, IntType) else 64


def fold_binary(opcode: str, lhs: Abstract, rhs: Abstract,
                bits: int = 32) -> Abstract:
    """Constant-fold one binary opcode; ``TOP`` on any unknown input or
    undefined operation (division by zero, oversized shift)."""
    if not (is_const(lhs) and is_const(rhs)):
        return TOP
    try:
        if opcode == "add":
            return lhs + rhs
        if opcode == "sub":
            return lhs - rhs
        if opcode == "mul":
            return lhs * rhs
        if opcode == "sdiv":
            return int(lhs / rhs) if rhs else TOP
        if opcode == "udiv":
            return _mask(int(lhs), bits) // _mask(int(rhs), bits) if rhs else TOP
        if opcode == "srem":
            return int(lhs) - int(lhs / rhs) * int(rhs) if rhs else TOP
        if opcode == "urem":
            return _mask(int(lhs), bits) % _mask(int(rhs), bits) if rhs else TOP
        if opcode == "and":
            return int(lhs) & int(rhs)
        if opcode == "or":
            return int(lhs) | int(rhs)
        if opcode == "xor":
            return int(lhs) ^ int(rhs)
        if opcode == "shl":
            return _mask(int(lhs) << int(rhs), bits) if 0 <= rhs < bits else TOP
        if opcode == "lshr":
            return _mask(int(lhs), bits) >> int(rhs) if 0 <= rhs < bits else TOP
        if opcode == "ashr":
            return int(lhs) >> int(rhs) if 0 <= rhs < bits else TOP
        if opcode == "fadd":
            return float(lhs) + float(rhs)
        if opcode == "fsub":
            return float(lhs) - float(rhs)
        if opcode == "fmul":
            return float(lhs) * float(rhs)
        if opcode == "fdiv":
            return float(lhs) / float(rhs) if rhs else TOP
        if opcode == "frem":
            import math
            return math.fmod(float(lhs), float(rhs)) if rhs else TOP
    except (OverflowError, ValueError, ZeroDivisionError):
        return TOP
    return TOP


_ICMP = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "sgt": lambda a, b: a > b,
    "sge": lambda a, b: a >= b,
    "slt": lambda a, b: a < b,
    "sle": lambda a, b: a <= b,
}
_FCMP = {
    "oeq": lambda a, b: a == b,
    "one": lambda a, b: a != b,
    "ogt": lambda a, b: a > b,
    "oge": lambda a, b: a >= b,
    "olt": lambda a, b: a < b,
    "ole": lambda a, b: a <= b,
}


def fold_icmp(predicate: str, lhs: Abstract, rhs: Abstract,
              bits: int = 32) -> Abstract:
    if not (is_const(lhs) and is_const(rhs)):
        return TOP
    if predicate in _ICMP:
        return int(_ICMP[predicate](lhs, rhs))
    unsigned = {"ugt": "sgt", "uge": "sge", "ult": "slt", "ule": "sle"}
    if predicate in unsigned:
        return int(_ICMP[unsigned[predicate]](_mask(int(lhs), bits),
                                              _mask(int(rhs), bits)))
    return TOP


def fold_fcmp(predicate: str, lhs: Abstract, rhs: Abstract) -> Abstract:
    if not (is_const(lhs) and is_const(rhs)):
        return TOP
    fn = _FCMP.get(predicate)
    return int(fn(float(lhs), float(rhs))) if fn else TOP


def fold_cast(opcode: str, value: Abstract, to_type: Type) -> Abstract:
    if not is_const(value):
        return TOP
    if opcode in ("zext", "sext", "fpext", "fptrunc", "bitcast"):
        return value
    if opcode == "trunc":
        bits = _width(to_type)
        masked = _mask(int(value), bits)
        # re-sign the truncated value (i1 stays 0/1)
        if bits > 1 and masked >= (1 << (bits - 1)):
            masked -= 1 << bits
        return masked
    if opcode == "fptosi":
        try:
            return int(value)
        except (OverflowError, ValueError):
            return TOP
    if opcode == "sitofp":
        return float(value)
    return TOP          # ptrtoint / inttoptr lose provenance


def render_abstract(value: object) -> str:
    """Human/machine-stable rendering for witnesses."""
    if isinstance(value, _Top) or value is None:
        return "TOP"
    return repr(value)


def datatype_kind(handle: object) -> Optional[tuple]:
    """(kind, size-in-bytes) of a constant MPI datatype handle."""
    if isinstance(handle, int):
        return DATATYPE_INFO.get(handle)
    return None


def element_of(type_: Type) -> Optional[tuple]:
    """(kind, size-in-bytes) of a scalar IR element type."""
    if isinstance(type_, IntType):
        return ("int", max(1, type_.bits // 8))
    if isinstance(type_, FloatType):
        return ("float", type_.bits // 8)
    return None


def compatible_element(elem: tuple, dtype: tuple) -> bool:
    """Whether a buffer element and an MPI datatype can describe the
    same storage.  ``char`` counts as a 1-byte integer kind."""
    elem_kind, elem_size = elem
    dtype_kind, dtype_size = dtype
    if elem_size != dtype_size:
        return False
    numeric = {"int": "int", "char": "int", "float": "float"}
    return numeric.get(elem_kind, elem_kind) == numeric.get(dtype_kind,
                                                            dtype_kind)


class ConstLattice:
    """Flow-insensitive unique-store constant environment of a function.

    ``fold(value)`` returns a Python number when ``value`` is provably
    that constant on every path, else ``TOP``.  Loads fold through an
    ``alloca`` only when the whole function stores it exactly once and
    the stored value itself folds — multi-store slots (like ``rank``,
    which is initialized and then overwritten by ``MPI_Comm_rank``) are
    ``TOP`` by construction.
    """

    _MAX_DEPTH = 16

    def __init__(self, fn: Function):
        self._stores: Dict[int, List[StoreInst]] = {}
        self._escaped: set = set()
        for inst in fn.instructions():
            if isinstance(inst, StoreInst):
                self._stores.setdefault(id(inst.pointer), []).append(inst)
                if isinstance(inst.value, AllocaInst):
                    self._escaped.add(id(inst.value))
                continue
            if isinstance(inst, LoadInst):
                continue
            # an alloca whose address flows anywhere else (a call
            # argument like &rank, a GEP, a phi...) may be written
            # behind our back — never fold it
            for op in inst.operands:
                if isinstance(op, AllocaInst):
                    self._escaped.add(id(op))
        self._memo: Dict[int, Abstract] = {}

    def fold(self, value: Value, depth: int = 0) -> Abstract:
        if depth > self._MAX_DEPTH:
            return TOP
        if isinstance(value, Constant) and is_const(value.value):
            return value.value
        if not isinstance(value, Instruction):
            return TOP
        key = id(value)
        if key in self._memo:
            return self._memo[key]
        self._memo[key] = TOP           # cycle guard
        result: Abstract = TOP
        if isinstance(value, LoadInst):
            pointer = value.pointer
            if (isinstance(pointer, AllocaInst)
                    and id(pointer) not in self._escaped
                    and isinstance(pointer.allocated_type,
                                   (IntType, FloatType))):
                stores = self._stores.get(id(pointer), [])
                if len(stores) == 1:
                    result = self.fold(stores[0].value, depth + 1)
        elif isinstance(value, BinaryInst):
            result = fold_binary(
                value.opcode,
                self.fold(value.lhs, depth + 1),
                self.fold(value.rhs, depth + 1),
                _width(value.lhs.type))
        elif isinstance(value, ICmpInst):
            result = fold_icmp(
                value.predicate,
                self.fold(value.operands[0], depth + 1),
                self.fold(value.operands[1], depth + 1),
                _width(value.operands[0].type))
        elif isinstance(value, CastInst):
            result = fold_cast(value.opcode,
                               self.fold(value.operands[0], depth + 1),
                               value.type)
        elif isinstance(value, SelectInst):
            cond = self.fold(value.operands[0], depth + 1)
            if is_const(cond):
                result = self.fold(value.operands[1 if cond else 2],
                                   depth + 1)
            else:
                result = join(self.fold(value.operands[1], depth + 1),
                              self.fold(value.operands[2], depth + 1))
        self._memo[key] = result
        return result


def pointed_element(value: Value, depth: int = 6) -> Optional[tuple]:
    """(kind, size) of the element a pointer argument points at, by
    unwrapping casts/GEPs to a typed pointer (the frontend erases buffer
    types to ``i8*`` right at the call).

    A bare ``i8*`` is ambiguous (it may be an erased cast of anything)
    and keeps unwrapping; an ``[N x i8]`` alloca really is a char
    buffer and resolves to a 1-byte integer element.
    """
    from repro.ir.instructions import GEPInst
    from repro.ir.types import ArrayType

    if depth <= 0:
        return None
    if isinstance(value, AllocaInst):
        allocated = value.allocated_type
        if isinstance(allocated, ArrayType):
            return element_of(allocated.element)
        return element_of(allocated)
    type_ = value.type
    if isinstance(type_, PointerType):
        pointee = type_.pointee
        if isinstance(pointee, ArrayType):
            return element_of(pointee.element)
        elem = element_of(pointee)
        if elem is not None and not (isinstance(pointee, IntType)
                                     and pointee.bits == 8):
            return elem
    if isinstance(value, (CastInst, GEPInst)) and value.operands:
        return pointed_element(value.operands[0], depth - 1)
    return None


def allocation_bytes(value: Value, depth: int = 6) -> Optional[int]:
    """Definite byte size of the allocation behind a pointer argument,
    or ``None`` when unknown (heap buffers, escaped pointers)."""
    from repro.ir.instructions import GEPInst
    from repro.ir.types import ArrayType

    if depth <= 0:
        return None
    if isinstance(value, AllocaInst):
        allocated = value.allocated_type
        if isinstance(allocated, ArrayType):
            elem = element_of(allocated.element)
            return allocated.count * elem[1] if elem else None
        elem = element_of(allocated)
        return elem[1] if elem else None
    if isinstance(value, (CastInst, GEPInst)) and value.operands:
        return allocation_bytes(value.operands[0], depth - 1)
    return None
