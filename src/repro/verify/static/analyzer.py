"""Top-level driver: analyze modules/sources, tool adapter, self-test.

``analyze_module`` composes the two layers of the suite — the
flow-insensitive checkers (always run) and the per-rank abstract
interpretation plus rendezvous matching (run only when every rank's
execution folds precisely) — and de-duplicates the findings.

:class:`StaticAnalyzerTool` adapts the analyzer to the
``repro.verify`` tool protocol so the fuzz harness and the eval matrix
can drive it exactly like the external-tool analogues.  Unlike those
analogues it is registered as a *trusted* oracle: when it reports a
defect on a correct-by-construction program, that is a bug in this
package, not noise.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.datasets.loader import Sample
from repro.frontend import CompileError, compile_c
from repro.ir.module import Module
from repro.verify.base import ToolVerdict, VerificationTool
from repro.verify.static import checkers
from repro.verify.static.findings import StaticFinding, StaticWitness
from repro.verify.static.sequence import Imprecise, interpret_rank, match_traces

DEFAULT_NPROCS = 3


def analyze_module(module: Module, nprocs: int = DEFAULT_NPROCS,
                   strict: bool = False) -> List[StaticFinding]:
    """All findings for a compiled module.

    With ``strict=False`` (the production default) any internal error
    degrades to "no findings": a trusted oracle must never turn its own
    bugs into verdicts.  Tests run with ``strict=True`` so regressions
    surface as failures instead of silence.
    """
    try:
        findings = checkers.check_module(module, nprocs)
        main = module.get_function("main")
        if main is not None and not main.is_declaration:
            try:
                traces = [interpret_rank(module, rank, nprocs)
                          for rank in range(nprocs)]
            except Imprecise:
                traces = None
            if traces is not None:
                findings.extend(match_traces(traces, nprocs))
        seen = set()
        unique: List[StaticFinding] = []
        for finding in findings:
            key = finding.dedup_key()
            if key not in seen:
                seen.add(key)
                unique.append(finding)
        return unique
    except Exception:
        if strict:
            raise
        return []


def analyze_source(source: str, name: str = "sample",
                   nprocs: int = DEFAULT_NPROCS,
                   strict: bool = False) -> Tuple[str, List[StaticFinding]]:
    """(verdict, findings) for a C source.

    Verdicts mirror the tool protocol: ``compile_error`` when the
    frontend rejects the program (with a ``frontend_reject`` finding
    whose witness carries the diagnostic), else ``incorrect`` /
    ``correct`` by presence of findings.
    """
    try:
        module = compile_c(source, name, "O0", verify=False)
    except CompileError as exc:
        detail = str(exc)
        finding = StaticFinding(
            check="frontend", kind="frontend_reject",
            message=f"frontend rejected {name}: {detail.splitlines()[0][:160]}",
            witness=StaticWitness(note=detail[:500]))
        return ("compile_error", [finding])
    findings = analyze_module(module, nprocs, strict=strict)
    return ("incorrect" if findings else "correct", findings)


class StaticAnalyzerTool(VerificationTool):
    """``repro.verify`` adapter for the dataflow static analyzer."""

    name = "static"

    def __init__(self, nprocs: int = DEFAULT_NPROCS,
                 binary: Optional[str] = None):
        self.nprocs = nprocs
        self.binary = binary

    @staticmethod
    def _verdict(verdict: str,
                 findings: Sequence[StaticFinding]) -> ToolVerdict:
        kinds = sorted({f.kind for f in findings})
        detail = "; ".join(
            (f.message or f.witness.note) for f in findings[:3])
        if verdict == "correct":
            return ToolVerdict("correct")
        return ToolVerdict(verdict, kinds, detail)

    def check_sample(self, sample: Sample) -> ToolVerdict:
        if self.external_binary():
            return self.run_external(sample)
        verdict, findings = analyze_source(sample.source, sample.name,
                                           self.nprocs)
        return self._verdict(verdict, findings)

    def check_module(self, module: Module) -> ToolVerdict:
        findings = analyze_module(module, self.nprocs)
        return self._verdict("incorrect" if findings else "correct",
                             findings)


# ---------------------------------------------------------------------------
# Self-test corpus: one micro-program per checker
# ---------------------------------------------------------------------------

_PROLOGUE = """\
#include <mpi.h>
#include <stdio.h>
#include <stdlib.h>

int main(int argc, char** argv) {
  int nprocs = -1;
  int rank = -1;
"""

_EPILOGUE = """\
  MPI_Finalize();
  return 0;
}
"""


def _program(decls: str, body: str) -> str:
    return (_PROLOGUE + decls
            + "\n  MPI_Init(&argc, &argv);\n"
            + "  MPI_Comm_size(MPI_COMM_WORLD, &nprocs);\n"
            + "  MPI_Comm_rank(MPI_COMM_WORLD, &rank);\n"
            + body + _EPILOGUE)


#: (case name, source, expected verdict, kinds that must be reported)
SELF_TEST_CASES: List[Tuple[str, str, str, Tuple[str, ...]]] = [
    ("clean-p2p-collective", _program(
        "  int sb[4];\n  int rb[4];\n  int cb[4];\n",
        "  if (rank == 0) {\n"
        "    MPI_Send(sb, 4, MPI_INT, 1, 9, MPI_COMM_WORLD);\n"
        "  }\n"
        "  if (rank == 1) {\n"
        "    MPI_Recv(rb, 4, MPI_INT, 0, 9, MPI_COMM_WORLD,"
        " MPI_STATUS_IGNORE);\n"
        "  }\n"
        "  MPI_Bcast(cb, 4, MPI_INT, 0, MPI_COMM_WORLD);\n"),
     "correct", ()),
    ("tag-mismatch", _program(
        "  int sb[4];\n  int rb[4];\n",
        "  if (rank == 0) {\n"
        "    MPI_Send(sb, 4, MPI_INT, 1, 3, MPI_COMM_WORLD);\n"
        "  }\n"
        "  if (rank == 1) {\n"
        "    MPI_Recv(rb, 4, MPI_INT, 0, 103, MPI_COMM_WORLD,"
        " MPI_STATUS_IGNORE);\n"
        "  }\n"),
     "incorrect", ("tag_mismatch",)),
    ("datatype-mismatch", _program(
        "  int sb[8];\n",
        "  MPI_Bcast(sb, 4, MPI_DOUBLE, 0, MPI_COMM_WORLD);\n"),
     "incorrect", ("datatype_mismatch",)),
    ("invalid-count", _program(
        "  int sb[4];\n  int rb[4];\n",
        "  if (rank == 0) {\n"
        "    MPI_Send(sb, -1, MPI_INT, 1, 3, MPI_COMM_WORLD);\n"
        "  }\n"
        "  if (rank == 1) {\n"
        "    MPI_Recv(rb, -1, MPI_INT, 0, 3, MPI_COMM_WORLD,"
        " MPI_STATUS_IGNORE);\n"
        "  }\n"),
     "incorrect", ("invalid_count",)),
    ("invalid-rank", _program(
        "  int sb[4];\n",
        "  if (rank == 0) {\n"
        "    MPI_Send(sb, 4, MPI_INT, 9999, 3, MPI_COMM_WORLD);\n"
        "  }\n"),
     "incorrect", ("invalid_rank",)),
    ("root-divergence", _program(
        "  int cb[4];\n",
        "  MPI_Bcast(cb, 4, MPI_INT, rank, MPI_COMM_WORLD);\n"),
     "incorrect", ("root_mismatch",)),
    ("missing-wait", _program(
        "  int sb[4];\n  int rb[4];\n  MPI_Request rq;\n"
        "  MPI_Status st;\n",
        "  if (rank == 0) {\n"
        "    MPI_Isend(sb, 4, MPI_INT, 1, 3, MPI_COMM_WORLD, &rq);\n"
        "  }\n"
        "  if (rank == 1) {\n"
        "    MPI_Recv(rb, 4, MPI_INT, 0, 3, MPI_COMM_WORLD, &st);\n"
        "  }\n"),
     "incorrect", ("missing_wait",)),
    ("collective-divergence", _program(
        "",
        "  if (rank == 0) {\n"
        "    MPI_Barrier(MPI_COMM_WORLD);\n"
        "  }\n"),
     "incorrect", ("collective_divergence",)),
    ("buffer-overflow", _program(
        "  int cb[2];\n",
        "  MPI_Bcast(cb, 8, MPI_INT, 0, MPI_COMM_WORLD);\n"),
     "incorrect", ("buffer_overflow",)),
    ("negative-extent", _PROLOGUE.replace(
        "  int rank = -1;\n", "  int rank = -1;\n  int v[-4];\n")
     + "  MPI_Init(&argc, &argv);\n" + _EPILOGUE,
     "compile_error", ("frontend_reject",)),
]


def self_test(nprocs: int = DEFAULT_NPROCS) -> List[str]:
    """Run the embedded micro-corpus; return failure descriptions."""
    failures: List[str] = []
    for case, source, expected_verdict, expected_kinds in SELF_TEST_CASES:
        try:
            verdict, findings = analyze_source(source, case, nprocs,
                                               strict=True)
        except Exception as exc:  # noqa: BLE001 - reported, not raised
            failures.append(f"{case}: analyzer raised {exc!r}")
            continue
        kinds = {f.kind for f in findings}
        if verdict != expected_verdict:
            failures.append(
                f"{case}: expected verdict {expected_verdict}, got "
                f"{verdict} (kinds={sorted(kinds)})")
            continue
        missing = set(expected_kinds) - kinds
        if missing:
            failures.append(
                f"{case}: missing expected kinds {sorted(missing)} "
                f"(got {sorted(kinds)})")
        if expected_verdict == "correct" and findings:
            failures.append(
                f"{case}: expected clean, got {sorted(kinds)}")
        if findings and any(f.witness.is_empty for f in findings):
            failures.append(f"{case}: finding with empty witness")
    return failures
