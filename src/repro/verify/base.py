"""Common interface for the baseline verification tools.

Verdict contract: ``check_sample`` never raises for *environmental*
reasons.  An adapter that has been pointed at a real tool executable
(``binary=`` or the ``REPRO_<TOOL>_BIN`` environment variable) returns a
typed :class:`ToolUnavailable` verdict when that executable is missing —
it used to be tempting to raise a bare ``RuntimeError`` here, but then
every caller (the Table III evaluation loop, the differential fuzz
harness, the CLI) needed its own try/except to skip the tool cleanly.
Callers can branch on ``verdict == "unavailable"`` or on the type.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import tempfile
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.datasets.loader import Sample
from repro.ml.metrics import ConfusionCounts


@dataclass
class ToolVerdict:
    """Outcome of running a tool on one code."""

    verdict: str                 # 'correct' | 'incorrect' | 'timeout' |
    #                              'runtime_error' | 'compile_error' |
    #                              'unavailable'
    detected_kinds: List[str] = field(default_factory=list)
    detail: str = ""


@dataclass
class ToolUnavailable(ToolVerdict):
    """The tool could not run at all (missing executable, broken install).

    A typed verdict rather than an exception so suite evaluations and the
    differential fuzz harness skip the tool instead of unwinding."""

    verdict: str = "unavailable"


class VerificationTool:
    name = "tool"

    #: Optional path to a real tool executable to delegate to instead of
    #: the simulated analogue.  ``None`` (the default) always uses the
    #: analogue; adapters also honor ``REPRO_<TOOL>_BIN``.
    binary: Optional[str] = None

    #: Seconds before an external delegation run is declared a timeout.
    external_timeout_s: float = 60.0

    # -- external-binary delegation ----------------------------------------
    def _env_key(self) -> str:
        slug = "".join(ch if ch.isalnum() else "_" for ch in self.name)
        return f"REPRO_{slug.upper()}_BIN"

    def external_binary(self) -> Optional[str]:
        """The configured real-tool executable, if any."""
        return self.binary or os.environ.get(self._env_key()) or None

    def resolve_external(self) -> Optional[str]:
        """Absolute path of the configured executable, or ``None`` when
        no binary was configured *or* the configured one is missing
        (callers distinguish via :meth:`unavailable_verdict`)."""
        binary = self.external_binary()
        if not binary:
            return None
        if os.path.sep in binary:
            return binary if os.access(binary, os.X_OK) else None
        return shutil.which(binary)

    def unavailable_verdict(self) -> Optional[ToolUnavailable]:
        """A :class:`ToolUnavailable` when a real binary was requested
        but cannot be executed; ``None`` when the tool can run."""
        binary = self.external_binary()
        if binary and self.resolve_external() is None:
            return ToolUnavailable(
                detail=f"{self.name} binary {binary!r} not found "
                       f"(configure {self._env_key()} or pass binary=)")
        return None

    def run_external(self, sample: Sample) -> ToolVerdict:
        """Delegate one sample to the real tool executable.

        Exit-code protocol: 0 → correct, anything else → incorrect;
        a wall-clock overrun → timeout; failing to launch at all →
        :class:`ToolUnavailable` (never an exception).
        """
        path = self.resolve_external()
        if path is None:
            verdict = self.unavailable_verdict()
            assert verdict is not None
            return verdict
        with tempfile.NamedTemporaryFile("w", suffix=".c",
                                         delete=False) as fh:
            fh.write(sample.source)
            tmp = fh.name
        try:
            proc = subprocess.run(
                [path, tmp], capture_output=True, text=True,
                timeout=self.external_timeout_s)
        except subprocess.TimeoutExpired:
            return ToolVerdict("timeout", detail="external tool timed out")
        except OSError as exc:
            return ToolUnavailable(
                detail=f"{self.name} binary {path!r} failed to run: {exc}")
        finally:
            try:
                os.unlink(tmp)
            except OSError:
                pass
        output = (proc.stdout + proc.stderr).strip()
        if proc.returncode == 0:
            return ToolVerdict("correct", detail=output[-500:])
        return ToolVerdict("incorrect", ["external_report"], output[-500:])

    # -- analogue interface -------------------------------------------------
    def check_sample(self, sample: Sample) -> ToolVerdict:  # pragma: no cover
        raise NotImplementedError

    def evaluate(self, samples: Sequence[Sample]) -> ConfusionCounts:
        """Confusion counts over a suite (Table III protocol).

        Samples the tool was unavailable for are skipped — they carry no
        information about its detection quality.
        """
        counts = ConfusionCounts()
        for sample in samples:
            verdict = self.check_sample(sample)
            if verdict.verdict == "unavailable":
                continue
            if verdict.verdict == "compile_error":
                counts.ce += 1
            elif verdict.verdict == "timeout":
                counts.to += 1
            elif verdict.verdict == "runtime_error":
                counts.re += 1
            elif verdict.verdict == "incorrect":
                if sample.is_correct:
                    counts.fp += 1
                else:
                    counts.tp += 1
            else:
                if sample.is_correct:
                    counts.tn += 1
                else:
                    counts.fn += 1
        return counts
