"""Common interface for the baseline verification tools."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.datasets.loader import Sample
from repro.ml.metrics import ConfusionCounts


@dataclass
class ToolVerdict:
    """Outcome of running a tool on one code."""

    verdict: str                 # 'correct' | 'incorrect' | 'timeout' |
    #                              'runtime_error' | 'compile_error'
    detected_kinds: List[str] = field(default_factory=list)
    detail: str = ""


class VerificationTool:
    name = "tool"

    def check_sample(self, sample: Sample) -> ToolVerdict:  # pragma: no cover
        raise NotImplementedError

    def evaluate(self, samples: Sequence[Sample]) -> ConfusionCounts:
        """Confusion counts over a suite (Table III protocol)."""
        counts = ConfusionCounts()
        for sample in samples:
            verdict = self.check_sample(sample)
            if verdict.verdict == "compile_error":
                counts.ce += 1
            elif verdict.verdict == "timeout":
                counts.to += 1
            elif verdict.verdict == "runtime_error":
                counts.re += 1
            elif verdict.verdict == "incorrect":
                if sample.is_correct:
                    counts.fp += 1
                else:
                    counts.tp += 1
            else:
                if sample.is_correct:
                    counts.tn += 1
                else:
                    counts.fn += 1
        return counts
