"""Baseline MPI verification tools (simulated analogues).

The paper compares its ML models against expert tools.  Each analogue
here follows its original's *mechanism*:

* :class:`ITACTool` / :class:`MUSTTool` — dynamic: run the code on the
  MPI runtime simulator and map runtime events to a verdict.  ITAC uses a
  timeout-based deadlock strategy (the paper reports 157 TO on MBI);
  MUST analyzes wait-for state directly.
* :class:`ParcoachTool` — static: interprocedural CFG analysis of
  collective call sites (rank-dependent divergence ⇒ potential collective
  mismatch), plus nonblocking/persistent misuse checks; characteristically
  over-approximates (many false positives, specificity ≈ 0.09).
* :class:`MPICheckerTool` — static AST-level checks (type usage,
  request usage along paths), detecting a narrower error set.
* :class:`StaticAnalyzerTool` — our own dataflow analyzer over the IR
  (:mod:`repro.verify.static`): constant-lattice argument checks,
  per-rank abstract interpretation with communication matching, and
  PARCOACH-style collective divergence — precise enough to be registered
  as a *trusted* oracle in the fuzz harness, with every finding carrying
  a machine-checkable witness.
"""

from repro.verify.base import ToolUnavailable, ToolVerdict, VerificationTool
from repro.verify.itac import ITACTool
from repro.verify.must import MUSTTool
from repro.verify.parcoach import ParcoachTool
from repro.verify.mpi_checker import MPICheckerTool
from repro.verify.static.analyzer import StaticAnalyzerTool

__all__ = [
    "VerificationTool", "ToolVerdict", "ToolUnavailable",
    "ITACTool", "MUSTTool", "ParcoachTool", "MPICheckerTool",
    "StaticAnalyzerTool",
]
