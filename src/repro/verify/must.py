"""MUST analogue: runtime correctness checking over intercepted MPI calls.

MUST (Hilbrich et al.) intercepts every MPI operation through GTI and
performs online analysis: wait-for-graph deadlock detection, type
matching, request tracking, and leak detection at finalize.  Our analogue
runs the simulator (which performs exactly these checks) and converts
events into MUST's verdict, detecting deadlocks *structurally* (no
timeout heuristic, unlike ITAC).
"""

from __future__ import annotations

from repro.datasets.loader import Sample
from repro.frontend import CompileError, compile_c
from repro.mpi.simulator import MPISimulator, RunOutcome
from repro.verify.base import ToolVerdict, VerificationTool

_DETECTED = {
    "invalid_arg", "type_mismatch", "truncation", "parameter_matching",
    "request_lifecycle", "resource_leak", "epoch_lifecycle", "call_ordering",
    "deadlock",
}
#: MUST misses data races it cannot observe on the traced interleaving.
_MISSED = {"message_race", "local_concurrency", "global_concurrency"}


class MUSTTool(VerificationTool):
    name = "MUST"

    def __init__(self, nprocs: int = 3, max_steps: int = 300_000,
                 binary: str = None):
        self.nprocs = nprocs
        self.max_steps = max_steps
        self.binary = binary

    def check_sample(self, sample: Sample) -> ToolVerdict:
        if self.external_binary():
            # run_external degrades to a typed ToolUnavailable verdict
            # when the configured executable is missing.
            return self.run_external(sample)
        try:
            module = compile_c(sample.source, sample.name, "O0", verify=False)
        except CompileError as exc:
            return ToolVerdict("compile_error", detail=str(exc))
        return self.check_module(module)

    def check_module(self, module) -> ToolVerdict:
        """Analogue verdict for an already-compiled module."""
        report = MPISimulator(module, self.nprocs,
                              max_steps=self.max_steps).run()
        return self.verdict_of(report)

    def verdict_of(self, report) -> ToolVerdict:
        """Map one simulator :class:`SimReport` to MUST's verdict."""
        detected = sorted(k for k in report.kinds if k in _DETECTED)
        if report.outcome is RunOutcome.TIMEOUT:
            return ToolVerdict("timeout", detected)
        if report.outcome is RunOutcome.FAULT:
            return ToolVerdict("runtime_error", detected)
        if report.outcome in (RunOutcome.DEADLOCK, RunOutcome.ABORT) or detected:
            return ToolVerdict("incorrect", detected or [report.outcome.value])
        return ToolVerdict("correct")
