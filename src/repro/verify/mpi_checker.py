"""MPI-Checker analogue: AST-level / path-sensitive static checks.

MPI-Checker (Droste et al., LLVM'15) runs on the Clang Static Analyzer
and performs (a) AST-based type-usage checks — the buffer's C element
type must match the MPI datatype argument — and (b) path-sensitive
request checks: double nonblocking on one request, missing wait,
unmatched wait.  It covers a deliberately narrow error set, which is why
its CorrBench scores in the paper's Fig. 7(a) are modest.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.datasets.loader import Sample
from repro.frontend import CompileError, compile_c
from repro.ir.instructions import CallInst, CastInst, GEPInst, Instruction
from repro.ir.types import FloatType, IntType, PointerType
from repro.ir.values import Constant, ConstantString
from repro.mpi.api import CallClass, DATATYPE_INFO, MPI_CONSTANTS, MPI_FUNCTIONS
from repro.verify.base import ToolVerdict, VerificationTool

# C element kind expected for each basic datatype handle.
_KIND_OF_IR = {
    ("int", 4): {"MPI_INT", "MPI_UNSIGNED"},
    ("int", 8): {"MPI_LONG", "MPI_UNSIGNED_LONG", "MPI_LONG_LONG",
                 "MPI_INT64_T", "MPI_UINT64_T"},
    ("int", 2): {"MPI_SHORT", "MPI_UNSIGNED_SHORT"},
    ("int", 1): {"MPI_CHAR", "MPI_SIGNED_CHAR", "MPI_UNSIGNED_CHAR",
                 "MPI_BYTE", "MPI_INT8_T"},
    ("float", 4): {"MPI_FLOAT"},
    ("float", 8): {"MPI_DOUBLE"},
}
_HANDLE_BY_VALUE = {v: k for k, v in MPI_CONSTANTS.items() if k.startswith("MPI_")}


def _buffer_element_type(value) -> Optional[tuple]:
    """(kind, size) of the element type behind a buffer argument."""
    seen = 0
    while isinstance(value, CastInst) and seen < 4:
        value = value.operands[0]
        seen += 1
    if isinstance(value, GEPInst):
        t = value.type
    else:
        t = value.type
    if not isinstance(t, PointerType):
        return None
    elem = t.pointee
    if isinstance(elem, IntType):
        return ("int", max(1, elem.bits // 8))
    if isinstance(elem, FloatType):
        return ("float", elem.bits // 8)
    return None


class MPICheckerTool(VerificationTool):
    name = "MPI-Checker"

    def __init__(self, binary: str = None):
        self.binary = binary

    def analyze_module(self, module) -> List[str]:
        warnings: List[str] = []
        for fn in module.defined_functions():
            request_state: Dict[int, str] = {}   # slot id -> 'active'|'done'
            for inst in fn.instructions():
                if not isinstance(inst, CallInst):
                    continue
                info = MPI_FUNCTIONS.get(inst.callee_name)
                if info is None:
                    continue
                warnings.extend(self._check_type_usage(inst, info, fn.name))
                self._track_requests(inst, info, request_state, warnings, fn.name)
            for state in request_state.values():
                if state == "active":
                    warnings.append(f"{fn.name}: nonblocking request never waited")
        return warnings

    def _check_type_usage(self, inst: CallInst, info, fn_name: str) -> List[str]:
        out: List[str] = []
        dt_idx = info.role("datatype")
        buf_idx = info.role("buf")
        if dt_idx is None or buf_idx is None:
            return out
        if dt_idx >= len(inst.args) or buf_idx >= len(inst.args):
            return out
        dt = inst.args[dt_idx]
        if not isinstance(dt, Constant) or isinstance(dt, ConstantString):
            return out
        handle = _HANDLE_BY_VALUE.get(dt.value)
        if handle is None or dt.value not in DATATYPE_INFO:
            if dt.value == MPI_CONSTANTS["MPI_DATATYPE_NULL"]:
                out.append(f"{fn_name}: {inst.callee_name} uses MPI_DATATYPE_NULL")
            return out
        elem = _buffer_element_type(inst.args[buf_idx])
        if elem is None:
            return out
        expected = _KIND_OF_IR.get(elem)
        if expected is not None and handle not in expected:
            out.append(f"{fn_name}: {inst.callee_name} buffer element "
                       f"{elem} mismatches {handle}")
        # Statically visible bad scalars.
        count_idx = info.role("count")
        if count_idx is not None and count_idx < len(inst.args):
            count = inst.args[count_idx]
            if isinstance(count, Constant) and not isinstance(count, ConstantString) \
                    and isinstance(count.value, int) and count.value < 0:
                out.append(f"{fn_name}: {inst.callee_name} negative count")
        return out

    def _track_requests(self, inst: CallInst, info, state: Dict[int, str],
                        warnings: List[str], fn_name: str) -> None:
        req_idx = info.role("request")
        if info.call_class in (CallClass.NB_SEND, CallClass.NB_RECV,
                               CallClass.NB_COLLECTIVE):
            if req_idx is not None and req_idx < len(inst.args):
                slot = id(inst.args[req_idx])
                if state.get(slot) == "active":
                    warnings.append(f"{fn_name}: double nonblocking on one request")
                state[slot] = "active"
        elif info.call_class is CallClass.COMPLETION:
            if req_idx is not None and req_idx < len(inst.args):
                state[id(inst.args[req_idx])] = "done"
            else:
                for slot in state:
                    state[slot] = "done"

    def check_sample(self, sample: Sample) -> ToolVerdict:
        if self.external_binary():
            # run_external degrades to a typed ToolUnavailable verdict
            # when the configured executable is missing.
            return self.run_external(sample)
        try:
            module = compile_c(sample.source, sample.name, "O0", verify=False)
        except CompileError as exc:
            return ToolVerdict("compile_error", detail=str(exc))
        return self.check_module(module)

    def check_module(self, module) -> ToolVerdict:
        """Analogue verdict for an already-compiled module."""
        warnings = self.analyze_module(module)
        if warnings:
            return ToolVerdict("incorrect", ["static_warning"], "; ".join(warnings[:3]))
        return ToolVerdict("correct")
