"""Command-line interface.

One executable front door over the library, mirroring how the paper's
artifact is used day to day:

=============  ==============================================================
subcommand     what it does
=============  ==============================================================
compile        mini-C file → textual IR at -O0 / -O2 / -Os
simulate       run a program on the virtual MPI runtime, print the outcome
verify         run one of the baseline tool analogues on a file
analyze        run the in-tree dataflow static analyzer on a file, its
               built-in self-test, or a fuzz corpus (``--corpus``)
generate       write an MBI / CorrBench / Mix style suite to a directory
train          train a detection pipeline on a suite, save its artifact
check          classify C files (batched) with a saved pipeline artifact
experiment     regenerate one of the paper's tables / figures
eval           evaluation matrix: run the scenario grid (``eval matrix``),
               gate an artifact against a baseline (``eval compare``)
mutate         inject MPI bugs into a correct program (mutation operators)
fuzz           differential pipeline fuzzing: ``fuzz run`` generates
               programs, cross-checks the oracles, minimizes findings
               into a replay-first corpus; ``fuzz replay`` re-checks it
profile        time the cold pipeline per stage, write PERF_profile.json
cache          inspect / clear the persistent engine cache
artifact       inspect a saved pipeline artifact (manifest only, no unpickle)
serve          run the async micro-batching HTTP detection service
bench-serve    load-test a served model, write BENCH_serving.json
fleet          run N serve replicas behind one digest-routing front door
               with a fleet-shared compile cache (network CAS)
bench-fleet    measure 1-vs-N replica cold-path scaling, merge a
               ``fleet`` section into BENCH_serving.json
obs            scrape telemetry (``obs dump``) from a running server
trace          fetch one trace by id and print its span tree
=============  ==============================================================

The corpus subcommands (``train``, ``check``, ``experiment``) accept
``--workers N`` (parallel compile/featurize over N processes) and
``--cache-dir PATH`` (persistent content-addressed cache — warm re-runs
skip compilation and featurization entirely); both also default from the
``REPRO_WORKERS`` / ``REPRO_CACHE_DIR`` environment variables.

Every subcommand is a plain function taking parsed args and returning an
exit code, so the test suite drives ``main([...])`` in-process.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Sequence

#: experiment name → (driver, renderer) factory; drivers live in
#: repro.eval.experiments and all take a ReproConfig.
_EXPERIMENTS = {
    "fig1", "fig2", "fig3", "fig6", "fig7", "fig8", "fig9",
    "table2", "table3", "table4", "table5", "table6",
    "seeds", "mutation", "ablation-encoding", "ablation-gnn",
}


def _read_source(path: str) -> str:
    with open(path, "r", encoding="utf-8") as fh:
        return fh.read()


def _apply_engine_flags(args: argparse.Namespace) -> None:
    """Install the process default engine from --workers / --cache-dir."""
    if getattr(args, "workers", None) is not None \
            or getattr(args, "cache_dir", None) is not None:
        from repro.engine import configure

        configure(workers=args.workers, cache_dir=args.cache_dir)


def _resolve_cache_dir(args: argparse.Namespace) -> Optional[str]:
    return getattr(args, "cache_dir", None) \
        or os.environ.get("REPRO_CACHE_DIR") or None


# ---------------------------------------------------------------------------
# Subcommands
# ---------------------------------------------------------------------------

def cmd_compile(args: argparse.Namespace) -> int:
    from repro.frontend import CompileError, compile_c
    from repro.ir.printer import print_module

    try:
        module = compile_c(_read_source(args.file), os.path.basename(args.file),
                           args.opt, verify=not args.no_verify)
    except CompileError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    text = print_module(module)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text)
    else:
        print(text)
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    from repro.frontend import CompileError, compile_c
    from repro.mpi.simulator import simulate

    try:
        module = compile_c(_read_source(args.file), os.path.basename(args.file),
                           args.opt, verify=False)
    except CompileError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    report = simulate(module, args.nprocs, seed=args.seed,
                      max_steps=args.max_steps)
    print(f"outcome: {report.outcome.name}  (steps={report.steps})")
    for event in report.events:
        print(f"  [{event.kind}] rank {event.rank} in {event.call}: "
              f"{event.detail}")
    return 0 if report.clean else 2


def cmd_verify(args: argparse.Namespace) -> int:
    from repro.datasets.loader import Sample
    from repro.verify import ITACTool, MPICheckerTool, MUSTTool, ParcoachTool

    tools = {
        "itac": lambda: ITACTool(nprocs=args.nprocs),
        "must": lambda: MUSTTool(nprocs=args.nprocs),
        "parcoach": ParcoachTool,
        "mpi-checker": MPICheckerTool,
    }
    tool = tools[args.tool]()
    sample = Sample(name=os.path.basename(args.file),
                    source=_read_source(args.file), label="?", suite="CLI")
    verdict = tool.check_sample(sample)
    print(f"{tool.name}: {verdict.verdict}")
    for kind in verdict.detected_kinds:
        print(f"  detected: {kind}")
    if verdict.detail:
        print(f"  detail: {verdict.detail}")
    return 0 if verdict.verdict == "correct" else 2


def cmd_analyze(args: argparse.Namespace) -> int:
    """``analyze``: the in-tree dataflow static analyzer as a CLI.

    Three modes: a single file (exit 0 clean, 2 findings, 1 on frontend
    rejection), ``--self-test`` (the analyzer's built-in contract cases),
    and ``--corpus DIR`` (re-analyze every minimized fuzz-corpus case;
    every known-bug seed must still be flagged with a non-empty witness,
    so a regressed checker fails CI instead of silently losing recall).
    """
    import json

    from repro.verify.static.analyzer import (
        SELF_TEST_CASES,
        analyze_source,
        self_test,
    )

    if args.self_test:
        failures = self_test(nprocs=args.nprocs)
        for failure in failures:
            print(f"FAIL {failure}", file=sys.stderr)
        if failures:
            print(f"self-test: {len(failures)} failure(s) over "
                  f"{len(SELF_TEST_CASES)} case(s)", file=sys.stderr)
            return 1
        print(f"self-test: {len(SELF_TEST_CASES)} case(s) ok")
        return 0

    if args.corpus:
        from repro.fuzz import CorpusStore

        if not os.path.isdir(args.corpus):
            print(f"error: corpus directory {args.corpus!r} does not "
                  "exist", file=sys.stderr)
            return 1
        cases = CorpusStore(args.corpus).cases()
        if not cases:
            print(f"error: corpus {args.corpus!r} holds no cases",
                  file=sys.stderr)
            return 1
        unflagged: List[str] = []
        for case in cases:
            verdict, findings = analyze_source(case.source, case.name,
                                               args.nprocs)
            witnessed = [f for f in findings if not f.witness.is_empty]
            known_bug = case.origin.startswith("known-bug:")
            flagged = verdict != "correct" and bool(witnessed)
            mark = "ok " if (flagged or not known_bug) else "FAIL"
            print(f"{mark} {case.name} [{case.origin or 'fuzz'}] -> "
                  f"{verdict}, {len(witnessed)} witnessed finding(s)")
            if known_bug and not flagged:
                unflagged.append(case.name)
        if unflagged:
            print(f"{len(unflagged)} known-bug seed(s) no longer "
                  f"flagged: {', '.join(unflagged)}", file=sys.stderr)
            return 1
        print(f"{len(cases)} corpus case(s) analyzed, all known-bug "
              "seeds still flagged")
        return 0

    if not args.file:
        print("error: a file is required unless --self-test or --corpus "
              "is given", file=sys.stderr)
        return 1
    verdict, findings = analyze_source(_read_source(args.file),
                                       os.path.basename(args.file),
                                       args.nprocs)
    if args.json:
        print(json.dumps({"name": os.path.basename(args.file),
                          "verdict": verdict,
                          "findings": [f.as_dict() for f in findings]},
                         indent=2, sort_keys=True))
    else:
        print(f"static: {verdict}")
        for f in findings:
            where = f.function and f" in {f.function}" or ""
            print(f"  [{f.check}] {f.kind}{where}: {f.message}")
            witness = f.witness.as_dict()
            for key in ("blocks", "condition", "values", "note"):
                if witness.get(key):
                    print(f"      {key}: {witness[key]}")
    if verdict == "compile_error":
        return 1
    return 2 if findings else 0


def cmd_generate(args: argparse.Namespace) -> int:
    from repro.eval.config import ReproConfig

    config = ReproConfig()
    if args.subsample:
        config.mbi_subsample = args.subsample
        config.corr_subsample = args.subsample
    dataset = config.dataset(args.suite)
    os.makedirs(args.directory, exist_ok=True)
    manifest_lines = []
    for sample in dataset:
        path = os.path.join(args.directory, sample.name)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(sample.source)
        manifest_lines.append(f"{sample.name}\t{sample.label}")
    manifest = os.path.join(args.directory, "MANIFEST.tsv")
    with open(manifest, "w", encoding="utf-8") as fh:
        fh.write("\n".join(manifest_lines) + "\n")
    print(f"wrote {len(dataset)} codes to {args.directory} "
          f"(labels in MANIFEST.tsv)")
    return 0


def cmd_train(args: argparse.Namespace) -> int:
    from repro.eval.config import ReproConfig
    from repro.pipeline import DetectionPipeline

    _apply_engine_flags(args)
    config = getattr(ReproConfig, args.profile)()
    dataset = config.dataset(args.dataset)
    if args.featurizer or args.classifier:
        # Explicit stage names compose any registered featurizer/classifier.
        # A stage left unnamed defaults from --method, and built-in stages
        # pick up the profile's settings via the same presets --method uses.
        from repro.pipeline import METHOD_STAGES, method_stage_specs

        profile_configs = {}
        for method in METHOD_STAGES:
            feat_n, feat_c, clf_n, clf_c = method_stage_specs(
                method, embedding_seed=config.embedding_seed,
                normalization=config.normalization, ga_config=config.ga,
                epochs=config.gnn_epochs, lr=config.gnn_lr,
                batch_size=config.gnn_batch_size, seed=config.seed)
            profile_configs[feat_n] = feat_c
            profile_configs[clf_n] = clf_c
        feat_default, clf_default = METHOD_STAGES[args.method]
        feat_name = args.featurizer or feat_default
        clf_name = args.classifier or clf_default
        try:
            pipeline = DetectionPipeline.from_names(
                featurizer=feat_name, classifier=clf_name,
                featurizer_config=profile_configs.get(feat_name),
                classifier_config=profile_configs.get(clf_name))
        except (KeyError, ValueError) as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 1
    else:
        pipeline = DetectionPipeline.from_method(
            args.method, ga_config=config.ga,
            embedding_seed=config.embedding_seed,
            normalization=config.normalization,
            epochs=config.gnn_epochs, lr=config.gnn_lr,
            batch_size=config.gnn_batch_size, seed=config.seed)
    pipeline.fit(dataset, labels=args.labels)
    pipeline.save(args.output)
    print(f"trained {pipeline.method} on {dataset.name} "
          f"({len(dataset)} codes), saved artifact to {args.output}")
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    from repro.pipeline import ArtifactError, DetectionPipeline

    _apply_engine_flags(args)
    try:
        pipeline = DetectionPipeline.load(args.model)
    except ArtifactError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if not pipeline.fitted:
        print(f"error: {args.model} holds an unfitted pipeline; "
              "train it before checking files", file=sys.stderr)
        return 1
    # One batch: shared compile cache, one vectorized classifier call.
    sources = [(os.path.basename(path), _read_source(path))
               for path in args.files]
    results = pipeline.predict_batch(sources)
    exit_code = 0
    for path, result in zip(args.files, results):
        print(f"{path}: {result.label}")
        if not result.is_correct:
            exit_code = 2
    return exit_code


def cmd_mutate(args: argparse.Namespace) -> int:
    from repro.datasets.loader import Sample
    from repro.datasets.mutation import MutationEngine

    sample = Sample(name=os.path.basename(args.file),
                    source=_read_source(args.file), label="Correct",
                    suite=args.suite)
    engine = MutationEngine(seed=args.seed)
    mutants = engine.mutate_sample(sample, per_sample=args.count)
    if not mutants:
        print("no applicable mutation operators", file=sys.stderr)
        return 1
    os.makedirs(args.directory, exist_ok=True)
    for m in mutants:
        path = os.path.join(args.directory, m.sample.name)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(m.sample.source)
        print(f"{m.sample.name}\t{m.operator}\t{m.sample.label}")
    return 0


def cmd_localize(args: argparse.Namespace) -> int:
    from repro.core import MPIErrorDetector
    from repro.core.localize import localize_call_sites, localize_error
    from repro.models.ir2vec_model import IR2vecModel
    from repro.pipeline import ArtifactError

    try:
        detector = MPIErrorDetector.load(args.model)
    except ArtifactError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if detector.method != "ir2vec" or not isinstance(detector.model,
                                                     IR2vecModel):
        print("error: localization requires an ir2vec detector",
              file=sys.stderr)
        return 1
    source = _read_source(args.file)
    print("function-level suspects:")
    for s in localize_error(source, detector.model,
                            opt_level=detector.opt_level,
                            embedding_seed=detector.embedding_seed):
        print(f"  #{s.rank} {s.name:<20} isolated={s.isolated_verdict:<10} "
              f"influence={s.influence:.3f}")
    print("call-site suspects:")
    suspects = localize_call_sites(source, detector.model,
                                   opt_level=detector.opt_level,
                                   embedding_seed=detector.embedding_seed,
                                   top=args.top)
    for s in suspects:
        print(f"  {s}")
    if not suspects:
        print("  (no non-boilerplate MPI calls)")
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    from repro.eval import experiments as E
    from repro.eval.config import ReproConfig
    from repro.eval.reporting import render_series, render_table

    # --workers/--cache-dir land on the process default engine, which
    # ReproConfig.engine() inherits for every scenario driver.
    _apply_engine_flags(args)
    config = getattr(ReproConfig, args.profile)()
    name = args.name

    if name == "fig1":
        for suite, counts in E.fig1_error_distribution(config).items():
            data = [[label, n] for label, n in counts.items()]
            print(render_table(["label", "codes"], data, f"Fig. 1 — {suite}"))
    elif name == "fig2":
        for suite, rows in E.fig2_code_size(config).items():
            data = [[lbl, v["min"], v["median"], v["max"]]
                    for lbl, v in rows.items()]
            print(render_table(["label", "min", "median", "max"], data,
                               f"Fig. 2 — {suite}"))
    elif name == "fig3":
        for suite, (ok, ko) in E.fig3_correct_incorrect(config).items():
            print(f"{suite}: correct={ok} incorrect={ko}")
    elif name == "fig6":
        acc, support = E.fig6_per_label_with_support(config)
        print(render_series(acc, title="Fig. 6 — per-label accuracy (MBI)"))
        print("support:", dict(sorted(support.items())))
    elif name == "fig7":
        for suite, tools in E.fig7_tool_metric_bars(config).items():
            data = [[tool, *m.values()] for tool, m in tools.items()]
            print(render_table(["tool", "Recall", "Precision", "F1",
                                "Accuracy"], data, f"Fig. 7 — {suite}"))
    elif name == "fig8":
        for suite, accs in E.fig8_single_ablation(config).items():
            print(render_series(accs, title=f"Fig. 8 — {suite}"))
    elif name == "fig9":
        pairs = E.fig9_pair_ablation(config)
        data = [[f"{a} + {b}", v1, v2] for (a, b), (v1, v2) in pairs.items()]
        print(render_table(["pair", "1st excluded", "2nd excluded"], data,
                           "Fig. 9 — pair ablation (CorrBench)"))
    elif name == "table2":
        print(E.render_table2(E.table2_model_results(config)))
    elif name == "table3":
        rows = E.table3_tool_comparison(config)
        data = [[r["tool"], r["TP"], r["TN"], r["FP"], r["FN"], r["TO"],
                 r["Recall"], r["Precision"], r["F1"], r["Accuracy"]]
                for r in rows]
        print(render_table(["tool", "TP", "TN", "FP", "FN", "TO", "Recall",
                            "Precision", "F1", "Accuracy"], data,
                           "Table III — MBI tools"))
    elif name == "table4":
        rows = E.table4_options(config)
        data = [[r["dataset"], r["normalization"], r["opt"], r["Recall"],
                 r["Precision"], r["F1"], r["Accuracy"]] for r in rows]
        print(render_table(["dataset", "norm", "opt", "Recall", "Precision",
                            "F1", "Accuracy"], data, "Table IV"))
    elif name == "table5":
        rows = E.table5_ga_effect(config)
        data = [[r["GA"], r["scenario"], r["train"], r["val"], r["Accuracy"]]
                for r in rows]
        print(render_table(["GA", "scenario", "train", "val", "Accuracy"],
                           data, "Table V"))
    elif name == "table6":
        print(E.render_table6(E.table6_hypre(config)))
    elif name == "seeds":
        print(E.render_seed_study(E.seed_sensitivity(config)))
    elif name == "mutation":
        print(E.render_mutation_detection(
            E.mutation_detection(config, "MBI"), "MBI"))
        print(E.render_mutation_cross(E.mutation_augmented_cross(config)))
    elif name == "ablation-encoding":
        print(E.render_encoding_ablation(E.ir2vec_encoding_ablation(config)))
    elif name == "ablation-gnn":
        print(E.render_gnn_ablation(E.gnn_design_ablation(config)))
    else:  # pragma: no cover - argparse choices guard this
        print(f"unknown experiment {name}", file=sys.stderr)
        return 1
    return 0


def _csv(value: Optional[str]) -> Optional[List[str]]:
    if value is None:
        return None
    return [item.strip() for item in value.split(",") if item.strip()]


def cmd_eval_matrix(args: argparse.Namespace) -> int:
    """``eval matrix``: run the declarative scenario grid, write the
    schema-checked ``EVAL_matrix.json`` artifact."""
    import json

    from repro.eval.config import ReproConfig
    from repro.eval.matrix import MatrixSpec, run_matrix, save_matrix_artifact
    from repro.eval.reporting import render_generalization, render_matrix

    _apply_engine_flags(args)
    config = getattr(ReproConfig, args.profile)()
    spec = MatrixSpec.for_profile(args.profile)
    overrides = {}
    for field_name, flag in (("train_datasets", args.train),
                             ("test_datasets", args.test),
                             ("methods", args.methods)):
        values = _csv(flag)
        if values:
            overrides[field_name] = tuple(values)
    if args.mutation_levels:
        try:
            overrides["mutation_levels"] = tuple(
                int(v) for v in _csv(args.mutation_levels) or ())
        except ValueError:
            print(f"error: --mutation-levels must be comma-separated "
                  f"integers, got {args.mutation_levels!r}", file=sys.stderr)
            return 1
    if overrides:
        import dataclasses

        try:
            spec = dataclasses.replace(spec, **overrides)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    try:
        doc = run_matrix(spec, config, profile=args.profile)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    save_matrix_artifact(doc, args.output)
    status = f"wrote {len(doc['cells'])} cells to {args.output}"
    if args.json:
        # Keep stdout pure JSON so `--json | jq .` works.
        print(json.dumps(doc, indent=2, sort_keys=True))
        print(status, file=sys.stderr)
    else:
        print(render_matrix(doc))
        print(render_generalization(doc))
        print(status)
    return 0


def cmd_eval_compare(args: argparse.Namespace) -> int:
    """``eval compare``: pass/fail regression verdict between two
    matrix artifacts; non-zero exit on any gated F1 drop."""
    import json

    from repro.eval.compare import (
        CompareThresholds,
        compare_artifacts,
        parse_class_thresholds,
    )
    from repro.eval.matrix import load_matrix_artifact
    from repro.eval.reporting import render_compare
    from repro.eval.schema import SchemaError

    try:
        per_class = parse_class_thresholds(args.class_threshold or [])
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    thresholds = CompareThresholds(max_f1_drop=args.max_f1_drop,
                                   per_class=per_class,
                                   min_support=args.min_support)
    try:
        baseline = load_matrix_artifact(args.baseline)
        candidate = load_matrix_artifact(args.candidate)
    except (OSError, json.JSONDecodeError, SchemaError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    result = compare_artifacts(baseline, candidate, thresholds)
    if args.json:
        print(json.dumps(result.as_dict(), indent=2, sort_keys=True))
    else:
        print(render_compare(result))
    return 0 if result.passed else 1


def cmd_fuzz_run(args: argparse.Namespace) -> int:
    """``fuzz run``: one differential fuzz campaign — replay the corpus,
    check the known-bug seeds, generate ``--budget`` fresh programs, and
    write the schema-checked ``FUZZ_report.json``.  Exit 1 when the
    campaign found blocking problems (hard failures, replay mismatches,
    generator-contract violations); disagreements and seed rejections
    are recorded in the report but do not fail the run."""
    import json

    from repro.fuzz import FuzzConfig, run_campaign, save_fuzz_report
    from repro.fuzz.harness import campaign_failed
    from repro.fuzz.report import render_fuzz_report

    _apply_engine_flags(args)
    try:
        config = FuzzConfig(
            seed=args.seed, budget=args.budget, nprocs=args.nprocs,
            bug_ratio=args.bug_ratio, corpus_dir=args.corpus_dir,
            include_known_bugs=not args.no_known_bugs)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    pipeline = None
    if args.model:
        from repro.pipeline import ArtifactError, DetectionPipeline

        try:
            pipeline = DetectionPipeline.load(args.model)
        except ArtifactError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if not pipeline.fitted:
            print(f"error: {args.model} holds an unfitted pipeline",
                  file=sys.stderr)
            return 2
    doc = run_campaign(config, pipeline=pipeline)
    save_fuzz_report(doc, args.output)
    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True))
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(render_fuzz_report(doc))
        print(f"wrote {args.output}")
    return 1 if campaign_failed(doc) else 0


def cmd_fuzz_replay(args: argparse.Namespace) -> int:
    """``fuzz replay``: re-check every minimized corpus case against its
    recorded signature, without generating anything.  Exit 1 on any
    mismatch."""
    from repro.fuzz import CorpusStore, FuzzConfig, replay_corpus

    _apply_engine_flags(args)
    if not os.path.isdir(args.corpus_dir):
        # A replay gate that silently passes on a typo'd path verifies
        # nothing — a missing corpus is an error, not a clean run.
        print(f"error: corpus directory {args.corpus_dir!r} does not "
              "exist", file=sys.stderr)
        return 2
    try:
        config = FuzzConfig(seed=0, budget=0, nprocs=args.nprocs,
                            corpus_dir=args.corpus_dir)
        store = CorpusStore(args.corpus_dir)
        entries = replay_corpus(store, config)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not entries:
        print(f"error: corpus {args.corpus_dir!r} holds no cases",
              file=sys.stderr)
        return 2
    mismatches = 0
    for entry in entries:
        ok = entry["ok"]
        mismatches += 0 if ok else 1
        mark = "ok " if ok else "FAIL"
        line = (f"{mark} {entry['digest'][:16]} {entry['name']} "
                f"[{entry['recorded']['status']}/"
                f"{entry['recorded']['kind']}]")
        if not ok:
            line += (f" -> observed {entry['observed']['status']}/"
                     f"{entry['observed']['kind']}")
        print(line)
    print(f"{len(entries)} corpus case(s), {mismatches} mismatch(es)")
    return 1 if mismatches else 0


def cmd_repair(args: argparse.Namespace) -> int:
    """``repair``: rule-based automated repair validated by the
    differential harness.

    Input is one file, a stored fuzz corpus (``--corpus``), and/or a
    seed-deterministic batch of grammar mutants (``--seed``/``--budget``
    — the ground-truth denominator for the repair rate).  Writes the
    schema-checked ``REPAIR_report.json``.  Exit 0 when every case ends
    clean (repaired or validated no-op); 1 when cases stay unrepaired or
    the ``--baseline`` repair-rate gate fails; 2 on usage errors.  When
    a ``--baseline`` gate applies (ground truth present), the gate is
    the sole pass criterion — unrepaired cases without mutation
    metadata are data, not failures."""
    import json

    from repro.repair import (
        RepairConfig,
        RepairTask,
        build_report,
        corpus_tasks,
        generated_tasks,
        repair_tasks,
        render_repair_report,
        save_repair_report,
    )

    _apply_engine_flags(args)
    try:
        config = RepairConfig(nprocs=args.nprocs,
                              max_attempts=args.max_attempts)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    tasks = []
    if args.file:
        if not os.path.isfile(args.file):
            print(f"error: no such file {args.file!r}", file=sys.stderr)
            return 2
        with open(args.file, "r", encoding="utf-8") as fh:
            tasks.append(RepairTask(name=os.path.basename(args.file),
                                    source=fh.read()))
    if args.corpus:
        if not os.path.isdir(args.corpus):
            print(f"error: corpus directory {args.corpus!r} does not "
                  "exist", file=sys.stderr)
            return 2
        tasks.extend(corpus_tasks(args.corpus))
    if args.budget:
        tasks.extend(generated_tasks(args.seed, args.budget,
                                     nprocs=args.nprocs,
                                     include_correct=args.include_correct))
    if not tasks:
        print("error: nothing to repair (give a file, --corpus, or "
              "--budget)", file=sys.stderr)
        return 2
    entries = repair_tasks(tasks, config)
    doc = build_report(entries, config, corpus_dir=args.corpus,
                       seed=args.seed if args.budget else None,
                       budget=args.budget or None)
    save_repair_report(doc, args.output)
    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True))
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(render_repair_report(doc))
        print(f"wrote {args.output}")
    failed = doc["counts"]["unrepaired"] > 0
    if args.baseline:
        try:
            with open(args.baseline, "r", encoding="utf-8") as fh:
                floor = float(json.load(fh)["min_repair_rate"])
        except (OSError, ValueError, KeyError) as exc:
            print(f"error: unusable baseline {args.baseline!r}: {exc}",
                  file=sys.stderr)
            return 2
        rate = doc["repair_rate"]
        if rate is None:
            print("baseline gate skipped: no ground-truth mutation "
                  "metadata in this run")
        elif rate < floor:
            print(f"baseline gate FAILED: repair rate {rate:.2f} < "
                  f"{floor:.2f}")
            failed = True
        else:
            # An applicable gate *is* the pass criterion: cases without
            # mutation metadata (e.g. committed compile-reject known
            # bugs) are reported as data, not failures.
            print(f"baseline gate ok: repair rate {rate:.2f} >= "
                  f"{floor:.2f}")
            failed = False
    return 1 if failed else 0


def cmd_profile(args: argparse.Namespace) -> int:
    """``profile``: drive a dataset through the cold pipeline under the
    per-stage timers and write the schema-checked profile artifact."""
    import json

    from repro.engine import default_engine
    from repro.eval.config import ReproConfig
    from repro.perf import collect_profile, save_profile

    _apply_engine_flags(args)
    config = getattr(ReproConfig, args.profile)()
    samples = list(config.dataset(args.dataset))
    if args.subsample:
        samples = samples[:args.subsample]
    if not samples:
        print("error: empty dataset", file=sys.stderr)
        return 1
    doc = collect_profile(args.dataset, samples, method=args.method,
                          opt_level=args.opt, engine=default_engine(),
                          classify=not args.no_classify)
    save_profile(doc, args.output)
    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 0
    print(f"profiled {doc['samples']} {args.dataset} samples "
          f"({doc['method']}, {doc['opt_level']}, "
          f"workers={doc['workers']}): "
          f"{doc['samples_per_sec']:.1f} samples/s")
    width = max((len(k) for k in doc["stage_sec"]), default=0)
    for stage, sec in sorted(doc["stage_sec"].items(),
                             key=lambda kv: -kv[1]):
        share = sec / doc["wall_sec"] if doc["wall_sec"] else 0.0
        print(f"  {stage:<{width}}  {sec:>9.4f}s  {share:>6.1%}  "
              f"(x{doc['stage_counts'][stage]})")
    print(f"  {'total':<{width}}  {doc['stage_total_sec']:>9.4f}s  "
          f"coverage {doc['coverage']:.1%} of {doc['wall_sec']:.4f}s wall")
    print(f"wrote {args.output}")
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    from repro.engine import ContentStore

    cache_dir = _resolve_cache_dir(args)
    if not cache_dir:
        print("error: no cache directory (pass --cache-dir or set "
              "REPRO_CACHE_DIR)", file=sys.stderr)
        return 1
    store = ContentStore(cache_dir)
    if args.action == "clear":
        removed = store.clear(args.stage)
        scope = f"stage {args.stage!r}" if args.stage else "all stages"
        print(f"removed {removed} cached entries ({scope}) from {cache_dir}")
        return 0
    summary = store.summary()
    print(f"cache {cache_dir}")
    if not summary:
        print("  (empty)")
    else:
        total_entries = total_bytes = 0
        for stage, info in sorted(summary.items()):
            print(f"  {stage:<12} {info['entries']:>8} entries  "
                  f"{info['bytes'] / 1024:>10.1f} KiB")
            total_entries += info["entries"]
            total_bytes += info["bytes"]
        print(f"  {'total':<12} {total_entries:>8} entries  "
              f"{total_bytes / 1024:>10.1f} KiB")
    _print_engine_stats()
    return 0


def _print_engine_stats() -> None:
    """This-process execution-engine counters (the fan-out observability
    half of ``cache stats``; zeros in a freshly started CLI process)."""
    from repro.engine import default_engine

    engine = default_engine()
    stats = engine.stats_dict()
    print("engine (this process)")
    print(f"  workers={stats['workers']} "
          f"chunk_size={engine.config.chunk_size or 'auto'} "
          f"pool_active={stats['pool_active']}")
    # Zero counters are noise (and a fresh CLI process is all zeros) —
    # only activity is worth a line.
    counters = {k: v for k, v in stats.get("counters", {}).items() if v}
    if counters:
        print("  " + "  ".join(f"{k}={v}" for k, v in sorted(counters.items())))
    perf = stats.get("perf", {})
    if perf:
        print(f"  payload_bytes_per_task={perf['payload_bytes_per_task']:.0f} "
              f"pool_utilization={perf['pool_utilization']:.2f} "
              f"worker_busy_sec={perf['worker_busy_sec']:.3f} "
              f"parallel_wall_sec={perf['parallel_wall_sec']:.3f} "
              f"ewma_sample_sec={perf['ewma_sample_sec']:.5f}")
        if "effective_cores" in perf:
            pool = stats.get("pool", {})
            print(f"  effective_cores={perf['effective_cores']} "
                  f"pool_starts={pool.get('starts', 0)} "
                  f"start_method={pool.get('start_method') or '-'}")


def cmd_artifact(args: argparse.Namespace) -> int:
    """``artifact inspect``: print the versioned-artifact manifest
    (stages, versions, digests) without unpickling any stage blob."""
    import json

    from repro.pipeline import ArtifactError, inspect_artifact

    try:
        info = inspect_artifact(args.path)
    except ArtifactError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(info, indent=2, sort_keys=True))
        return 0
    print(f"artifact {info['path']}")
    print(f"  format          {info['format']} "
          f"(schema v{info['schema_version']}, "
          f"repro {info['repro_version']})")
    print(f"  method          {info['method']}")
    print(f"  label mode      {info['label_mode']}")
    print(f"  fitted          {info['fitted']}")
    print(f"  version         {info['version']}")
    print("  stages:")
    for role in ("frontend", "featurizer", "classifier"):
        stage = info["stages"][role]
        line = f"    {role:<12} {stage['name']}"
        state = stage.get("state")
        if state:
            line += (f"  [{state['blob']}: {state['bytes']} bytes, "
                     f"sha256 {state['sha256'][:12]}…]")
        print(line)
        for key, value in sorted(stage["config"].items()):
            print(f"      {key} = {value!r}")
    return 0


def _serve_config(args: argparse.Namespace):
    from repro.serve import ServeConfig

    return ServeConfig.from_env(
        host=args.host, port=args.port, max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms, max_queue=args.max_queue,
        poll_interval_s=getattr(args, "poll_interval", None),
        workers=args.workers, cache_dir=args.cache_dir,
        trace=False if getattr(args, "no_trace", False) else None,
        trace_ring=getattr(args, "trace_ring", None),
        obs_log=getattr(args, "obs_log", None))


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.pipeline import ArtifactError
    from repro.serve import serve

    try:
        config = _serve_config(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    try:
        # The registry validates the artifact (manifest-first, fitted
        # check) before the server starts accepting, so a bad artifact
        # lands here as a clean error rather than a traceback.
        serve(args.model, config)
    except ArtifactError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def cmd_bench_serve(args: argparse.Namespace) -> int:
    """Start a server in-process and measure sequential vs micro-batched
    dispatch over a generated corpus; writes ``BENCH_serving.json``."""
    import dataclasses
    import json

    from repro.pipeline import ArtifactError
    from repro.serve import BackgroundServer, measure_regimes

    try:
        config = _serve_config(args)
        if args.port is None and not os.environ.get("REPRO_SERVE_PORT"):
            # Benchmarks shouldn't collide with a live service: default
            # to an ephemeral port unless one was asked for explicitly.
            config = dataclasses.replace(config, port=0)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    from repro.datasets import load_mbi

    corpus = [(s.name, s.source)
              for s in load_mbi(subsample=args.requests)][:args.requests]
    try:
        with BackgroundServer(args.model, config) as server:
            results = {
                "model": args.model,
                "max_batch": config.max_batch,
                "max_wait_ms": config.max_wait_ms,
                **measure_regimes(config.host, server.port, corpus,
                                  concurrency=args.concurrency),
            }
    except (ArtifactError, RuntimeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    with open(args.output, "w", encoding="utf-8") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
    print(json.dumps(results, indent=2, sort_keys=True))
    print(f"wrote {args.output}")
    return 0


def _fleet_config(args: argparse.Namespace, *, ephemeral: bool = False):
    from repro.fleet import FleetConfig

    port = args.port
    if ephemeral and port is None \
            and not os.environ.get("REPRO_FLEET_PORT"):
        port = 0
    return FleetConfig.from_env(
        host=args.host, port=port, replicas=args.replicas,
        cas_max_bytes=args.cas_max_bytes, workers=args.workers,
        cache_dir=args.cache_dir,
        request_timeout_s=getattr(args, "request_timeout", None))


def cmd_fleet(args: argparse.Namespace) -> int:
    """``fleet``: N replica subprocesses, one front door, one shared CAS."""
    from repro.fleet import serve_fleet
    from repro.pipeline import ArtifactError

    try:
        config = _fleet_config(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    try:
        serve_fleet(args.model, config)
    except (ArtifactError, RuntimeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def cmd_bench_fleet(args: argparse.Namespace) -> int:
    """``bench-fleet``: cold-path scaling of 1 vs N replicas; merges a
    ``fleet`` section into BENCH_serving.json (see repro.fleet.bench)."""
    import json

    from repro.fleet.bench import run_bench
    from repro.pipeline import ArtifactError

    try:
        config = _fleet_config(args, ephemeral=True)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    try:
        results = run_bench(
            args.model, args.output, replicas=config.replicas,
            requests=args.requests, concurrency=args.concurrency,
            workers=config.workers, timeout=config.request_timeout_s,
            target_speedup=args.target_speedup)
    except (ArtifactError, RuntimeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except SystemExit as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(results, indent=2, sort_keys=True))
    print(f"merged 'fleet' section into {args.output}")
    return 0


def _obs_client(args: argparse.Namespace):
    """Resolve --host/--port against REPRO_SERVE_* like `serve` does,
    then open one keep-alive client to the running service."""
    from repro.serve import ServeConfig
    from repro.serve.loadgen import ServeClient

    config = ServeConfig.from_env(host=args.host, port=args.port)
    return ServeClient(config.host, config.port, timeout=args.timeout)


def cmd_obs_dump(args: argparse.Namespace) -> int:
    """``obs dump``: one-shot telemetry scrape of a running server.

    JSON mode prints the /metrics document extended with the recent-trace
    index; ``--format prometheus`` prints the exposition text verbatim
    (pipeable into a Prometheus checker).
    """
    import json

    client = _obs_client(args)
    try:
        if args.format == "prometheus":
            text = client.metrics_text()
            sys.stdout.write(text if text.endswith("\n") else text + "\n")
            return 0
        doc = client.metrics()
        status, traces = client.request("GET", "/v1/traces")
        if status == 200:
            doc["traces"] = traces
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 0
    except (OSError, RuntimeError) as exc:
        print(f"error: cannot scrape server: {exc}", file=sys.stderr)
        return 1
    finally:
        client.close()


def _print_span_tree(spans: List[dict]) -> None:
    known = {s["span_id"] for s in spans}
    children: dict = {}
    for s in spans:
        parent = s.get("parent_id")
        children.setdefault(parent if parent in known else None,
                            []).append(s)

    def walk(parent_id, depth: int) -> None:
        for s in sorted(children.get(parent_id, []),
                        key=lambda x: x.get("start_s", 0.0)):
            attrs = s.get("attrs") or {}
            extra = " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
            line = (f"{'  ' * depth}{s['name']:<{max(1, 30 - 2 * depth)}} "
                    f"{s.get('elapsed_s', 0.0) * 1000:>9.3f}ms  "
                    f"[{s.get('kind', '?')}] pid={s.get('process', '?')}")
            if extra:
                line += f"  {extra}"
            print(line)
            walk(s["span_id"], depth + 1)

    walk(None, 0)


def cmd_trace(args: argparse.Namespace) -> int:
    """``trace <id>``: fetch one completed trace from a running server
    and print its span tree (indentation = parenthood)."""
    import json

    client = _obs_client(args)
    try:
        status, doc = client.trace(args.trace_id)
    except OSError as exc:
        print(f"error: cannot reach server: {exc}", file=sys.stderr)
        return 1
    finally:
        client.close()
    if status == 404:
        hint = ""
        if isinstance(doc, dict) and doc.get("tracing_enabled") is False:
            hint = " (tracing is disabled on the server)"
        print(f"error: trace {args.trace_id!r} not found{hint}",
              file=sys.stderr)
        return 1
    if status != 200:
        print(f"error: server answered {status}: {doc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 0
    spans = doc.get("spans", [])
    processes = {s.get("process") for s in spans}
    print(f"trace {doc['trace_id']}  {doc.get('name', '?')}  "
          f"{doc.get('duration_s', 0.0) * 1000:.3f}ms  "
          f"{len(spans)} span(s) across {len(processes)} process(es)")
    _print_span_tree(spans)
    return 0


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------

def _add_engine_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("--workers", type=int, default=None, metavar="N",
                   help="parallel compile/featurize worker processes "
                        "(0 = serial; default: $REPRO_WORKERS or 0)")
    p.add_argument("--cache-dir", default=None, metavar="PATH",
                   help="persistent content-addressed cache directory "
                        "(default: $REPRO_CACHE_DIR or disabled)")

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-mpi",
        description="MPI error detection via IR embeddings and GNNs "
                    "(reproduction of arXiv:2403.02518)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compile", help="compile mini-C to textual IR")
    p.add_argument("file")
    p.add_argument("-O", "--opt", choices=("O0", "O2", "Os"), default="O0")
    p.add_argument("-o", "--output")
    p.add_argument("--no-verify", action="store_true",
                   help="skip the IR verifier")
    p.set_defaults(func=cmd_compile)

    p = sub.add_parser("simulate", help="run a program on the virtual MPI")
    p.add_argument("file")
    p.add_argument("-n", "--nprocs", type=int, default=2)
    p.add_argument("-O", "--opt", choices=("O0", "O2", "Os"), default="O0")
    p.add_argument("--seed", type=int, default=0,
                   help="interleaving schedule seed")
    p.add_argument("--max-steps", type=int, default=400_000)
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser("verify", help="run a baseline tool analogue")
    p.add_argument("file")
    p.add_argument("--tool", choices=("itac", "must", "parcoach",
                                      "mpi-checker"), default="itac")
    p.add_argument("-n", "--nprocs", type=int, default=3)
    p.set_defaults(func=cmd_verify)

    p = sub.add_parser("analyze",
                       help="run the in-tree dataflow static analyzer")
    p.add_argument("file", nargs="?", default=None,
                   help="mini-C file to analyze")
    p.add_argument("-n", "--nprocs", type=int, default=3,
                   help="rank count the per-rank interpretation assumes")
    p.add_argument("--json", action="store_true",
                   help="emit the verdict and findings as JSON")
    p.add_argument("--self-test", action="store_true",
                   help="run the analyzer's built-in contract cases")
    p.add_argument("--corpus", default=None, metavar="DIR",
                   help="re-analyze a minimized fuzz corpus; fail if any "
                        "known-bug seed is no longer flagged")
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser("generate", help="write a benchmark suite to disk")
    p.add_argument("suite", choices=("mbi", "corrbench", "mix"))
    p.add_argument("directory")
    p.add_argument("--subsample", type=int, default=None)
    p.set_defaults(func=cmd_generate)

    p = sub.add_parser("train",
                       help="train a detection pipeline, save its artifact")
    p.add_argument("-d", "--dataset", choices=("mbi", "corrbench", "mix"),
                   default="mbi")
    p.add_argument("-m", "--method", choices=("ir2vec", "gnn"),
                   default="ir2vec")
    p.add_argument("--featurizer", default=None,
                   help="registered featurizer name (overrides --method)")
    p.add_argument("--classifier", default=None,
                   help="registered classifier name (overrides --method)")
    p.add_argument("--labels", choices=("binary", "type"), default="binary")
    p.add_argument("--profile", choices=("smoke", "fast", "paper"),
                   default="smoke")
    p.add_argument("-o", "--output", required=True,
                   help="artifact path (directory, or .zip)")
    _add_engine_flags(p)
    p.set_defaults(func=cmd_train)

    p = sub.add_parser("check",
                       help="classify C files with a saved pipeline artifact")
    p.add_argument("model")
    p.add_argument("files", nargs="+")
    _add_engine_flags(p)
    p.set_defaults(func=cmd_check)

    p = sub.add_parser("mutate", help="inject MPI bugs into a correct code")
    p.add_argument("file")
    p.add_argument("directory")
    p.add_argument("--suite", choices=("MBI", "CORR"), default="MBI",
                   help="label taxonomy for the mutants")
    p.add_argument("--count", type=int, default=4)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_mutate)

    p = sub.add_parser("localize",
                       help="rank suspect functions / MPI call sites")
    p.add_argument("model", help="pickled ir2vec detector (see 'train')")
    p.add_argument("file")
    p.add_argument("--top", type=int, default=None,
                   help="show only the N most suspect call sites")
    p.set_defaults(func=cmd_localize)

    p = sub.add_parser("experiment",
                       help="regenerate one of the paper's tables/figures")
    p.add_argument("name", choices=sorted(_EXPERIMENTS))
    p.add_argument("--profile", choices=("smoke", "fast", "paper"),
                   default="smoke")
    _add_engine_flags(p)
    p.set_defaults(func=cmd_experiment)

    p = sub.add_parser("eval",
                       help="evaluation-matrix artifacts: run / compare")
    esub = p.add_subparsers(dest="eval_command", required=True)

    pm = esub.add_parser("matrix",
                         help="run the declarative scenario grid, write "
                              "EVAL_matrix.json")
    pm.add_argument("--profile", choices=("smoke", "fast", "paper"),
                    default="smoke")
    pm.add_argument("-o", "--output", default="EVAL_matrix.json")
    pm.add_argument("--train", default=None, metavar="DS,DS",
                    help="override train datasets (mbi,corrbench,mix)")
    pm.add_argument("--test", default=None, metavar="DS,DS",
                    help="override test datasets (mbi,corrbench,mix,hypre)")
    pm.add_argument("--methods", default=None, metavar="M,M",
                    help="override embedding backends (ir2vec,gnn)")
    pm.add_argument("--mutation-levels", default=None, metavar="L,L",
                    help="override mutation-augmentation levels (e.g. 0,1,2)")
    pm.add_argument("--json", action="store_true",
                    help="print the full artifact instead of tables")
    _add_engine_flags(pm)
    pm.set_defaults(func=cmd_eval_matrix)

    pc = esub.add_parser("compare",
                         help="gate a matrix artifact against a baseline "
                              "(exit 1 on regression)")
    pc.add_argument("candidate", help="candidate EVAL_matrix.json")
    pc.add_argument("--baseline", required=True,
                    help="baseline EVAL_matrix.json to gate against")
    pc.add_argument("--max-f1-drop", type=float, default=0.05,
                    metavar="DROP",
                    help="tolerated F1 drop for overall scores and any "
                         "class without an explicit threshold")
    pc.add_argument("--class-threshold", action="append", default=None,
                    metavar="CLASS=DROP",
                    help="per-error-class F1 drop tolerance (repeatable)")
    pc.add_argument("--min-support", type=int, default=2, metavar="N",
                    help="skip classes with fewer baseline test samples")
    pc.add_argument("--json", action="store_true",
                    help="emit the verdict as JSON")
    pc.set_defaults(func=cmd_eval_compare)

    p = sub.add_parser("fuzz",
                       help="differential pipeline fuzzing: run / replay")
    fsub = p.add_subparsers(dest="fuzz_command", required=True)

    pf = fsub.add_parser("run",
                         help="run a fuzz campaign, write FUZZ_report.json")
    pf.add_argument("--seed", type=int, default=0,
                    help="campaign seed (same seed ⇒ same programs)")
    pf.add_argument("--budget", type=int, default=100, metavar="N",
                    help="generated programs per campaign")
    pf.add_argument("-n", "--nprocs", type=int, default=3,
                    help="simulated ranks per program (2..8)")
    pf.add_argument("--bug-ratio", type=float, default=0.4, metavar="R",
                    help="fraction of programs given one injected bug")
    pf.add_argument("--corpus-dir", default=None, metavar="PATH",
                    help="content-addressed corpus of minimized repro "
                         "cases; replayed first, extended with new finds")
    pf.add_argument("--no-known-bugs", action="store_true",
                    help="skip the built-in known-bug seed templates")
    pf.add_argument("--model", default=None, metavar="ARTIFACT",
                    help="optional pipeline artifact used as the "
                         "(non-blocking) model oracle")
    pf.add_argument("-o", "--output", default="FUZZ_report.json")
    pf.add_argument("--json", action="store_true",
                    help="print the full report instead of the summary")
    _add_engine_flags(pf)
    pf.set_defaults(func=cmd_fuzz_run)

    pr = fsub.add_parser("replay",
                         help="re-check every minimized corpus case "
                              "(exit 1 on signature mismatch)")
    pr.add_argument("--corpus-dir", required=True, metavar="PATH")
    pr.add_argument("-n", "--nprocs", type=int, default=3)
    _add_engine_flags(pr)
    pr.set_defaults(func=cmd_fuzz_replay)

    p = sub.add_parser("repair",
                       help="rule-based automated repair validated by "
                            "the differential harness")
    p.add_argument("file", nargs="?", default=None,
                   help="one mini-C source to repair")
    p.add_argument("--corpus", default=None, metavar="DIR",
                   help="repair every stored fuzz-corpus case")
    p.add_argument("--seed", type=int, default=7,
                   help="grammar seed for generated mutants (default 7)")
    p.add_argument("--budget", type=int, default=0, metavar="N",
                   help="generate N grammar programs and repair the "
                        "mutated ones (ground-truth repair rate)")
    p.add_argument("--include-correct", action="store_true",
                   help="also run generated correct programs (the "
                        "no-false-repair control group)")
    p.add_argument("--nprocs", type=int, default=3)
    p.add_argument("--max-attempts", type=int, default=12, metavar="N",
                   help="candidate patches gated per case (default 12)")
    p.add_argument("-o", "--output", default="REPAIR_report.json")
    p.add_argument("--baseline", default=None, metavar="PATH",
                   help="JSON {\"min_repair_rate\": R} gate — exit 1 "
                        "when the ground-truth repair rate drops below R")
    p.add_argument("--json", action="store_true",
                   help="print the full report as JSON")
    _add_engine_flags(p)
    p.set_defaults(func=cmd_repair)

    p = sub.add_parser("profile",
                       help="time the cold pipeline per stage, write "
                            "PERF_profile.json")
    p.add_argument("dataset", choices=("mbi", "corrbench", "mix", "hypre"),
                   help="dataset to drive through the cold path")
    p.add_argument("--profile", default="fast",
                   choices=("paper", "fast", "smoke"),
                   help="scaling profile controlling subsampling "
                        "(default: fast)")
    p.add_argument("--method", default="ir2vec", choices=("ir2vec", "gnn"),
                   help="featurization pipeline to profile")
    p.add_argument("-O", "--opt", default="Os", metavar="LEVEL",
                   help="optimization level (default: Os)")
    p.add_argument("--subsample", type=int, default=None, metavar="N",
                   help="profile only the first N samples")
    p.add_argument("--no-classify", action="store_true",
                   help="skip the classify stage (featurize only)")
    p.add_argument("-o", "--output", default="PERF_profile.json",
                   help="output path (default: PERF_profile.json)")
    p.add_argument("--json", action="store_true",
                   help="print the full profile document as JSON")
    _add_engine_flags(p)
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser("cache",
                       help="inspect / clear the persistent engine cache")
    p.add_argument("action", choices=("stats", "clear"))
    p.add_argument("--cache-dir", default=None, metavar="PATH",
                   help="cache directory (default: $REPRO_CACHE_DIR)")
    p.add_argument("--stage", default=None, choices=("compile", "features"),
                   help="restrict 'clear' to one stage")
    p.set_defaults(func=cmd_cache)

    p = sub.add_parser("artifact",
                       help="inspect a saved pipeline artifact")
    p.add_argument("action", choices=("inspect",))
    p.add_argument("path", help="artifact directory or .zip")
    p.add_argument("--json", action="store_true",
                   help="emit the manifest summary as JSON")
    p.set_defaults(func=cmd_artifact)

    def _add_serve_flags(sp: argparse.ArgumentParser) -> None:
        sp.add_argument("--host", default=None,
                        help="bind address (default: $REPRO_SERVE_HOST "
                             "or 127.0.0.1)")
        sp.add_argument("--port", type=int, default=None,
                        help="bind port, 0 = ephemeral (default: "
                             "$REPRO_SERVE_PORT or 8321)")
        sp.add_argument("--max-batch", type=int, default=None, metavar="N",
                        help="samples coalesced per predict_batch call "
                             "(default: $REPRO_SERVE_MAX_BATCH or 16)")
        sp.add_argument("--max-wait-ms", type=float, default=None,
                        metavar="MS",
                        help="micro-batch window after the first queued "
                             "request (default: $REPRO_SERVE_MAX_WAIT_MS "
                             "or 10)")
        sp.add_argument("--max-queue", type=int, default=None, metavar="N",
                        help="queued samples before 429 backpressure "
                             "(default: $REPRO_SERVE_MAX_QUEUE or 256)")
        sp.add_argument("--no-trace", action="store_true",
                        help="disable trace spans / metric collection "
                             "(default: on, or $REPRO_SERVE_TRACE)")
        sp.add_argument("--trace-ring", type=int, default=None, metavar="N",
                        help="completed traces kept for GET /v1/trace/<id> "
                             "(default: $REPRO_SERVE_TRACE_RING or 256)")
        sp.add_argument("--obs-log", default=None, metavar="PATH",
                        help="JSON-lines event log sink: a path, or '-' "
                             "for stderr (default: $REPRO_OBS_LOG or off)")
        _add_engine_flags(sp)

    p = sub.add_parser("serve",
                       help="run the micro-batching HTTP detection service")
    p.add_argument("model", help="pipeline artifact to serve")
    p.add_argument("--poll-interval", type=float, default=None, metavar="S",
                   help="reload the artifact when its mtime changes, "
                        "checked every S seconds (default: "
                        "$REPRO_SERVE_POLL_INTERVAL or disabled)")
    _add_serve_flags(p)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("bench-serve",
                       help="load-test a model artifact, write "
                            "BENCH_serving.json")
    p.add_argument("model", help="pipeline artifact to serve")
    p.add_argument("--requests", type=int, default=48, metavar="N",
                   help="distinct generated sources to send per regime")
    p.add_argument("--concurrency", type=int, default=8, metavar="C",
                   help="client threads in the micro-batched regime")
    p.add_argument("-o", "--output", default="BENCH_serving.json")
    _add_serve_flags(p)
    p.set_defaults(func=cmd_bench_serve)

    def _add_fleet_flags(sp: argparse.ArgumentParser) -> None:
        sp.add_argument("--host", default=None,
                        help="front-door bind address (default: "
                             "$REPRO_FLEET_HOST or 127.0.0.1)")
        sp.add_argument("--port", type=int, default=None,
                        help="front-door port, 0 = ephemeral (default: "
                             "$REPRO_FLEET_PORT or 8320)")
        sp.add_argument("--replicas", type=int, default=None, metavar="N",
                        help="serve subprocesses behind the front door "
                             "(default: $REPRO_FLEET_REPLICAS or 2)")
        sp.add_argument("--cas-max-bytes", type=int, default=None,
                        metavar="B",
                        help="shared CAS byte budget (default: "
                             "$REPRO_FLEET_CAS_MAX_BYTES or 256 MiB)")
        sp.add_argument("--request-timeout", type=float, default=None,
                        metavar="S",
                        help="per-replica forward timeout (default: "
                             "$REPRO_FLEET_REQUEST_TIMEOUT or 300)")
        sp.add_argument("--workers", type=int, default=None, metavar="N",
                        help="engine workers per replica (default: "
                             "each replica's $REPRO_WORKERS policy)")
        sp.add_argument("--cache-dir", default=None, metavar="PATH",
                        help="base cache dir; replica i gets "
                             "PATH/replica<i> (default: a temp dir)")

    p = sub.add_parser("fleet",
                       help="run N serve replicas behind a digest-routing "
                            "front door with a shared network CAS")
    p.add_argument("model", help="pipeline artifact every replica serves")
    _add_fleet_flags(p)
    p.set_defaults(func=cmd_fleet)

    p = sub.add_parser("bench-fleet",
                       help="measure 1-vs-N replica cold-path scaling, "
                            "merge a 'fleet' section into "
                            "BENCH_serving.json")
    p.add_argument("model", help="pipeline artifact every replica serves")
    p.add_argument("--requests", type=int, default=12, metavar="N",
                   help="cold sources per run (default: 12)")
    p.add_argument("--concurrency", type=int, default=4, metavar="C",
                   help="closed-loop client threads (default: 4)")
    p.add_argument("--target-speedup", type=float, default=1.6,
                   metavar="X",
                   help="cold-path speedup gate; soft unless "
                        "REPRO_BENCH_STRICT=1 (default: 1.6)")
    p.add_argument("-o", "--output", default="BENCH_serving.json")
    _add_fleet_flags(p)
    p.set_defaults(func=cmd_bench_fleet)

    def _add_obs_client_flags(sp: argparse.ArgumentParser) -> None:
        sp.add_argument("--host", default=None,
                        help="server address (default: $REPRO_SERVE_HOST "
                             "or 127.0.0.1)")
        sp.add_argument("--port", type=int, default=None,
                        help="server port (default: $REPRO_SERVE_PORT "
                             "or 8321)")
        sp.add_argument("--timeout", type=float, default=10.0, metavar="S",
                        help="HTTP timeout in seconds (default: 10)")

    p = sub.add_parser("obs",
                       help="scrape telemetry from a running server")
    osub = p.add_subparsers(dest="obs_command", required=True)
    po = osub.add_parser("dump",
                         help="print /metrics (+ recent traces) of a "
                              "running server")
    po.add_argument("--format", choices=("json", "prometheus"),
                    default="json",
                    help="json: metrics + trace index; prometheus: raw "
                         "exposition text")
    _add_obs_client_flags(po)
    po.set_defaults(func=cmd_obs_dump)

    p = sub.add_parser("trace",
                       help="fetch one trace from a running server and "
                            "print its span tree")
    p.add_argument("trace_id", help="value of the X-Repro-Trace header")
    p.add_argument("--json", action="store_true",
                   help="print the raw trace document")
    _add_obs_client_flags(p)
    p.set_defaults(func=cmd_trace)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "workers", None) is None \
            and getattr(args, "cache_dir", None) is None:
        return args.func(args)
    # --workers/--cache-dir reconfigure the process default engine; the
    # test suite drives main([...]) in-process, so restore it afterwards
    # rather than leaking one subcommand's engine into the next — and
    # close the temporary engine's worker pool deterministically (an
    # abandoned pool dies noisily in the interpreter's atexit phase).
    from repro.engine import default_engine, set_default_engine

    previous = default_engine()
    try:
        return args.func(args)
    finally:
        current = default_engine()
        set_default_engine(previous)
        if current is not previous:
            current.close()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
