"""Fleet configuration.

Same pattern as :class:`~repro.serve.ServeConfig`: one frozen dataclass,
unset fields defaulting from ``REPRO_FLEET_*`` environment variables
(malformed values warn and fall back):

================================  =========================================
variable                          meaning (dataclass field)
================================  =========================================
``REPRO_FLEET_HOST``              front-door bind address (``host``)
``REPRO_FLEET_PORT``              front-door port, 0 = ephemeral (``port``)
``REPRO_FLEET_REPLICAS``          replica subprocess count (``replicas``)
``REPRO_FLEET_CAS_MAX_BYTES``     shared CAS byte budget
                                  (``cas_max_bytes``)
``REPRO_FLEET_RETRY_AFTER``       shed-response Retry-After seconds
                                  (``retry_after_s``)
``REPRO_FLEET_CONNECT_TIMEOUT``   per-replica connect timeout seconds
                                  (``connect_timeout_s``)
``REPRO_FLEET_REQUEST_TIMEOUT``   per-replica request timeout seconds
                                  (``request_timeout_s``)
``REPRO_FLEET_STARTUP_TIMEOUT``   replica readiness deadline seconds
                                  (``startup_timeout_s``)
``REPRO_FLEET_TRACE``             0/false disables front-door tracing
                                  (``trace``)
``REPRO_FLEET_TRACE_RING``        completed front-door traces kept
                                  (``trace_ring``)
``REPRO_FLEET_RESTART``           0/false disables replica auto-restart
                                  (``restart``)
``REPRO_FLEET_RESTART_BACKOFF``   base restart backoff seconds, doubled
                                  per consecutive attempt
                                  (``restart_backoff_s``)
``REPRO_FLEET_RESTART_POLL``      supervision-loop poll interval seconds
                                  (``restart_poll_s``)
``REPRO_FLEET_CAS_SPILL``         0/false disables the CAS disk spill
                                  tier (``cas_spill``)
================================  =========================================

``cache_dir`` is the *base* directory: the supervisor gives replica *i*
its own ``<cache_dir>/replica<i>`` subtree, which is what makes the
cross-replica CAS test honest — a warm hit on replica B can only have
come through the network tier, never a shared filesystem path.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass
from typing import Optional

ENV_PREFIX = "REPRO_FLEET_"


def _env_number(name: str, default, cast, minimum):
    raw = os.environ.get(ENV_PREFIX + name, "").strip()
    if not raw:
        return default
    try:
        value = cast(raw)
    except ValueError:
        warnings.warn(f"ignoring malformed {ENV_PREFIX}{name}={raw!r}",
                      RuntimeWarning, stacklevel=3)
        return default
    if value < minimum:
        warnings.warn(
            f"ignoring out-of-range {ENV_PREFIX}{name}={raw!r} "
            f"(minimum {minimum})", RuntimeWarning, stacklevel=3)
        return default
    return value


def _env_flag(name: str, default: bool) -> bool:
    raw = os.environ.get(ENV_PREFIX + name, "").strip().lower()
    if not raw:
        return default
    return raw not in ("0", "false", "no", "off")


@dataclass(frozen=True)
class FleetConfig:
    """Knobs of the replica fleet: front door, supervisor, shared CAS."""

    host: str = "127.0.0.1"
    port: int = 8320                   # 0 binds an ephemeral port
    replicas: int = 2                  # repro.serve subprocesses
    cas_max_bytes: int = 256 * 1024 * 1024
    retry_after_s: int = 1             # advertised on all-replicas-shedding
    connect_timeout_s: float = 5.0
    request_timeout_s: float = 300.0   # cold GNN compiles are slow
    startup_timeout_s: float = 180.0
    max_body_bytes: int = 8 * 1024 * 1024
    workers: Optional[int] = None      # per-replica engine workers
    cache_dir: Optional[str] = None    # base dir; replicas get subdirs
    trace: bool = True
    trace_ring: int = 256
    restart: bool = True               # auto-restart crashed replicas
    restart_backoff_s: float = 0.5     # doubled per attempt, capped 30s
    restart_poll_s: float = 0.5        # supervision-loop poll interval
    cas_spill: bool = True             # spill LRU-evicted blobs to disk

    def __post_init__(self):
        if self.port < 0 or self.port > 65535:
            raise ValueError("port must be in [0, 65535]")
        if self.replicas < 1:
            raise ValueError("replicas must be >= 1")
        if self.cas_max_bytes < 1:
            raise ValueError("cas_max_bytes must be positive")
        if self.retry_after_s < 0:
            raise ValueError("retry_after_s must be >= 0")
        if self.connect_timeout_s <= 0 or self.request_timeout_s <= 0:
            raise ValueError("timeouts must be positive")
        if self.startup_timeout_s <= 0:
            raise ValueError("startup_timeout_s must be positive")
        if self.max_body_bytes < 1:
            raise ValueError("max_body_bytes must be positive")
        if self.trace_ring < 1:
            raise ValueError("trace_ring must be >= 1")
        if self.restart_backoff_s <= 0:
            raise ValueError("restart_backoff_s must be positive")
        if self.restart_poll_s <= 0:
            raise ValueError("restart_poll_s must be positive")

    @classmethod
    def from_env(cls, **overrides) -> "FleetConfig":
        """Build a config from ``REPRO_FLEET_*``; ``overrides`` win.

        An override of ``None`` means "not given on the command line",
        so the environment (or the field default) still applies.
        """
        values = {
            "host": os.environ.get(ENV_PREFIX + "HOST") or cls.host,
            "port": _env_number("PORT", cls.port, int, 0),
            "replicas": _env_number("REPLICAS", cls.replicas, int, 1),
            "cas_max_bytes": _env_number("CAS_MAX_BYTES", cls.cas_max_bytes,
                                         int, 1),
            "retry_after_s": _env_number("RETRY_AFTER", cls.retry_after_s,
                                         int, 0),
            "connect_timeout_s": _env_number("CONNECT_TIMEOUT",
                                             cls.connect_timeout_s,
                                             float, 0.1),
            "request_timeout_s": _env_number("REQUEST_TIMEOUT",
                                             cls.request_timeout_s,
                                             float, 0.1),
            "startup_timeout_s": _env_number("STARTUP_TIMEOUT",
                                             cls.startup_timeout_s,
                                             float, 1.0),
            "trace": _env_flag("TRACE", cls.trace),
            "trace_ring": _env_number("TRACE_RING", cls.trace_ring, int, 1),
            "restart": _env_flag("RESTART", cls.restart),
            "restart_backoff_s": _env_number("RESTART_BACKOFF",
                                             cls.restart_backoff_s,
                                             float, 0.05),
            "restart_poll_s": _env_number("RESTART_POLL",
                                          cls.restart_poll_s, float, 0.05),
            "cas_spill": _env_flag("CAS_SPILL", cls.cas_spill),
        }
        values.update({k: v for k, v in overrides.items() if v is not None})
        return cls(**values)
