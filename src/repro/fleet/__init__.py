"""Replica fleet: N serve processes, one front door, one shared CAS.

``repro.serve`` scales a *single* process (micro-batching, a worker
pool); this package scales *out*:

* :mod:`repro.fleet.cas` — a length-prefixed network content-address
  store; replica engines mount it as the second tier of a
  :class:`~repro.fleet.cas.TieredStore` (local disk → fleet), so a
  compile paid once is warm fleet-wide;
* :mod:`repro.fleet.supervisor` — spawns/monitors the ``repro serve``
  subprocesses, each with a *private* local cache;
* :mod:`repro.fleet.frontdoor` — rendezvous-hashes request content
  digests onto replicas, fails over when one dies, propagates traces
  across the hop, and sheds load only when every replica sheds;
* :mod:`repro.fleet.bench` — the 1-vs-N cold-path scaling benchmark
  behind ``repro bench-fleet``.

See ``docs/fleet.md``.
"""

from repro.fleet.cas import (
    BackgroundCAS,
    CASClient,
    CASServer,
    TieredStore,
    parse_addr,
    shared_client,
)
from repro.fleet.config import FleetConfig
from repro.fleet.frontdoor import (
    BackgroundFleet,
    FleetFrontDoor,
    rendezvous_order,
    routing_digest,
    serve_fleet,
)
from repro.fleet.supervisor import Replica, ReplicaSupervisor, free_port

__all__ = [
    "BackgroundCAS",
    "BackgroundFleet",
    "CASClient",
    "CASServer",
    "FleetConfig",
    "FleetFrontDoor",
    "Replica",
    "ReplicaSupervisor",
    "TieredStore",
    "free_port",
    "parse_addr",
    "rendezvous_order",
    "routing_digest",
    "serve_fleet",
    "shared_client",
]
