"""Replica lifecycle: spawn, readiness, liveness, kill.

Each replica is one ``repro serve`` subprocess — the *unchanged* single
-process service — wired into the fleet purely through environment:

* ``REPRO_CAS_ADDR``   → its engine builds a
  :class:`~repro.fleet.cas.TieredStore` instead of a plain local store;
* ``REPRO_CACHE_DIR``  → a replica-*private* subtree
  (``<base>/replica<i>``), so any cross-replica cache warmth observable
  in tests can only have traveled through the network CAS;
* ``REPRO_WORKERS``    → per-replica engine pool size.

Liveness is ``Popen.poll()``-based: a killed replica reads as dead on
the very next routing decision, no health-check loop required.  Stdout
and stderr land in per-replica log files next to the cache subtree.

Crash recovery: the front door's supervision loop polls
:meth:`ReplicaSupervisor.maybe_restart`, which respawns replicas that
died *unexpectedly* (exponential backoff per index).  A replica taken
down through :meth:`kill` is *decommissioned* — it is never respawned,
so failure-injection tests keep their "dead stays dead" semantics; use
:meth:`crash` to simulate an unexpected death the loop should heal.
"""

from __future__ import annotations

import os
import shutil
import socket
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field
from typing import IO, Any, Dict, List, Optional

from repro.fleet.config import FleetConfig


def free_port(host: str = "127.0.0.1") -> int:
    """An OS-assigned free TCP port (bind-and-release)."""
    with socket.socket() as sock:
        sock.bind((host, 0))
        return sock.getsockname()[1]


def _repo_pythonpath() -> str:
    """``sys.path`` root of the ``repro`` package, prepended to the
    child's ``PYTHONPATH`` so replicas import the same build."""
    import repro

    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    existing = os.environ.get("PYTHONPATH", "")
    return f"{src}{os.pathsep}{existing}" if existing else src


@dataclass
class Replica:
    """One serve subprocess and its coordinates."""

    index: int
    host: str
    port: int
    proc: subprocess.Popen
    cache_dir: str
    log_path: str
    log_file: Optional[IO[bytes]] = field(default=None, repr=False)

    @property
    def alive(self) -> bool:
        return self.proc.poll() is None

    @property
    def addr(self) -> str:
        return f"{self.host}:{self.port}"

    def as_dict(self) -> Dict[str, Any]:
        return {"index": self.index, "port": self.port,
                "pid": self.proc.pid, "alive": self.alive,
                "cache_dir": self.cache_dir}


class ReplicaSupervisor:
    """Spawns and owns the fleet's ``repro serve`` subprocesses."""

    def __init__(self, model_path: str, config: FleetConfig,
                 cas_addr: str):
        self.model_path = model_path
        self.config = config
        self.cas_addr = cas_addr
        self.replicas: List[Replica] = []
        self.restarts = 0
        self._base_dir: Optional[str] = config.cache_dir
        self._owns_base_dir = config.cache_dir is None
        self._no_restart: set = set()          # decommissioned indices
        # index → (consecutive restart attempts, earliest next attempt)
        self._backoff: Dict[int, tuple] = {}

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> List[Replica]:
        """Spawn every replica and block until all answer ``/healthz``
        (or raise after ``startup_timeout_s``, tearing down spawned
        processes)."""
        if self._base_dir is None:
            self._base_dir = tempfile.mkdtemp(prefix="repro-fleet-")
        os.makedirs(self._base_dir, exist_ok=True)
        try:
            for index in range(self.config.replicas):
                self.replicas.append(self._spawn(index))
            deadline = time.time() + self.config.startup_timeout_s
            for replica in self.replicas:
                self._await_ready(replica, deadline)
        except BaseException:
            self.stop()
            raise
        return self.replicas

    def _spawn(self, index: int) -> Replica:
        cache_dir = os.path.join(self._base_dir, f"replica{index}")
        os.makedirs(cache_dir, exist_ok=True)
        port = free_port(self.config.host)
        env = dict(os.environ)
        env["PYTHONPATH"] = _repo_pythonpath()
        env["REPRO_CAS_ADDR"] = self.cas_addr
        env["REPRO_CACHE_DIR"] = cache_dir
        if self.config.workers is not None:
            env["REPRO_WORKERS"] = str(self.config.workers)
        log_path = os.path.join(self._base_dir, f"replica{index}.log")
        log_file = open(log_path, "ab")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", self.model_path,
             "--host", self.config.host, "--port", str(port)],
            env=env, stdout=log_file, stderr=subprocess.STDOUT,
            stdin=subprocess.DEVNULL)
        return Replica(index=index, host=self.config.host, port=port,
                       proc=proc, cache_dir=cache_dir, log_path=log_path,
                       log_file=log_file)

    def _await_ready(self, replica: Replica, deadline: float) -> None:
        import http.client

        while time.time() < deadline:
            if not replica.alive:
                raise RuntimeError(
                    f"replica {replica.index} exited with code "
                    f"{replica.proc.returncode} during startup "
                    f"(log: {replica.log_path})")
            try:
                conn = http.client.HTTPConnection(replica.host,
                                                  replica.port, timeout=5)
                try:
                    conn.request("GET", "/healthz")
                    if conn.getresponse().status == 200:
                        return
                finally:
                    conn.close()
            except OSError:
                pass
            time.sleep(0.2)
        raise RuntimeError(
            f"replica {replica.index} not ready within "
            f"{self.config.startup_timeout_s}s (log: {replica.log_path})")

    def kill(self, index: int) -> None:
        """Hard-kill and *decommission* one replica: the supervision
        loop will never respawn it (dead stays dead)."""
        self._no_restart.add(index)
        replica = self.replicas[index]
        if replica.alive:
            replica.proc.kill()
            replica.proc.wait(timeout=30)

    def crash(self, index: int) -> None:
        """Hard-kill one replica *without* decommissioning it — an
        unexpected crash :meth:`maybe_restart` is expected to heal."""
        replica = self.replicas[index]
        if replica.alive:
            replica.proc.kill()
            replica.proc.wait(timeout=30)

    def restart(self, index: int) -> Replica:
        """Respawn one dead replica in place and block until ready.

        The replacement listens on a *fresh* OS-assigned port (the old
        one may sit in TIME_WAIT or have been reclaimed), reuses the
        replica's private cache subtree, and appends to its log file.
        """
        old = self.replicas[index]
        if old.log_file is not None:
            try:
                old.log_file.close()
            except OSError:
                pass
            old.log_file = None
        replica = self._spawn(index)
        self.replicas[index] = replica
        self._await_ready(replica,
                          time.time() + self.config.startup_timeout_s)
        return replica

    def maybe_restart(self) -> List[tuple]:
        """Respawn every unexpectedly-dead replica whose backoff window
        has elapsed; returns ``[(index, old_port), ...]`` for each one
        actually restarted.

        Backoff is exponential per index (``restart_backoff_s`` doubling
        per consecutive attempt, capped at 30s) and resets once a
        restarted replica is seen alive again — a crash-looping replica
        can't hog the supervision loop.
        """
        restarted: List[tuple] = []
        now = time.monotonic()
        for index, replica in enumerate(self.replicas):
            if replica.alive:
                self._backoff.pop(index, None)
                continue
            if index in self._no_restart:
                continue
            attempts, next_at = self._backoff.get(index, (0, 0.0))
            if now < next_at:
                continue
            delay = min(30.0,
                        self.config.restart_backoff_s * (2 ** attempts))
            self._backoff[index] = (attempts + 1, now + delay)
            old_port = replica.port
            self.restart(index)
            self.restarts += 1
            restarted.append((index, old_port))
        return restarted

    def alive(self) -> List[Replica]:
        return [r for r in self.replicas if r.alive]

    def stop(self) -> None:
        for replica in self.replicas:
            if replica.alive:
                replica.proc.terminate()
        deadline = time.time() + 30
        for replica in self.replicas:
            try:
                replica.proc.wait(timeout=max(0.1,
                                              deadline - time.time()))
            except subprocess.TimeoutExpired:
                replica.proc.kill()
                replica.proc.wait(timeout=10)
            if replica.log_file is not None:
                try:
                    replica.log_file.close()
                except OSError:
                    pass
                replica.log_file = None
        if self._owns_base_dir and self._base_dir \
                and os.path.isdir(self._base_dir):
            shutil.rmtree(self._base_dir, ignore_errors=True)
            self._base_dir = None
