"""Fleet benchmark: cold-heavy scaling, 1 replica vs N.

The scenario the fleet exists for: a stream of *never-seen* sources
(every one needs a cold compile — the expensive path) spread across
replicas by content digest.  With a shared CAS, N replicas give close
to N× on that stream because each digest is compiled exactly once in
the whole fleet, on whichever replica owns it; without sharing they
would each pay their own compiles on any reroute or overlap.

Protocol (``repro bench-fleet`` and CI's fleet-smoke job):

1. 1-replica fleet, fresh corpus A, ``run_load`` → baseline cold rps;
2. N-replica fleet, fresh corpus B (same size/shape), ``run_load`` →
   scaled cold rps; then corpus B *again* → warm rps + fleet CAS stats
   (hits prove the network tier, not just local warmth);
3. merge a ``"fleet"`` section into ``BENCH_serving.json``.

The ≥ ``target_speedup`` gate is *soft* by default (a
``::warning::`` line): cold compiles are CPU-bound, so on a 1-core
runner two replicas time-share one core and the ratio is noise.  Set
``REPRO_BENCH_STRICT=1`` on machines with real parallelism to make it
a hard failure.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Tuple

from repro.fleet.config import FleetConfig
from repro.fleet.frontdoor import BackgroundFleet
from repro.serve.loadgen import ServeClient, run_load

_TEMPLATE = """#include <mpi.h>
/* {tag} */
int main(int argc, char** argv) {{
  int rank; int buf[{width}]; MPI_Status st;
  MPI_Init(&argc, &argv);
  MPI_Comm_rank(MPI_COMM_WORLD, &rank);
  if (rank == 0) {{ MPI_Send(buf, {width}, MPI_INT, 1, {tagno},
                             MPI_COMM_WORLD); }}
  if (rank == 1) {{ MPI_Recv(buf, {width}, MPI_INT, 0, {tagno},
                             MPI_COMM_WORLD, &st); }}
  MPI_Finalize();
  return 0;
}}
"""


def cold_corpus(count: int, label: str) -> List[Tuple[str, str]]:
    """``count`` never-before-seen sources: every one is a distinct
    digest (unique tag comment *and* buffer width / message tag, so the
    IR differs too) → a guaranteed cold compile somewhere in the fleet.
    """
    jobs = []
    for i in range(count):
        tag = f"{label}-cold-{i}"
        jobs.append((f"{tag}.c",
                     _TEMPLATE.format(tag=tag, width=4 + (i % 13),
                                      tagno=5 + i)))
    return jobs


def _fleet_doc(host: str, port: int) -> Dict[str, Any]:
    client = ServeClient(host, port)
    try:
        status, doc = client.request("GET", "/v1/fleet")
        if status != 200:
            raise RuntimeError(f"/v1/fleet answered {status}")
        return doc
    finally:
        client.close()


def measure_fleet(model_path: str, *, replicas: int = 2,
                  requests: int = 12, concurrency: int = 4,
                  workers: Optional[int] = None,
                  timeout: float = 300.0,
                  host: str = "127.0.0.1") -> Dict[str, Any]:
    """The bench protocol; returns the ``"fleet"`` results section."""
    single_jobs = cold_corpus(requests, "single")
    multi_jobs = cold_corpus(requests, "multi")

    def _config(n: int) -> FleetConfig:
        return FleetConfig(host=host, port=0, replicas=n, workers=workers,
                           request_timeout_s=timeout)

    with BackgroundFleet(model_path, _config(1)) as fleet:
        single = run_load(host, fleet.port, single_jobs,
                          concurrency=concurrency, timeout=timeout)

    with BackgroundFleet(model_path, _config(replicas)) as fleet:
        multi_cold = run_load(host, fleet.port, multi_jobs,
                              concurrency=concurrency, timeout=timeout)
        multi_warm = run_load(host, fleet.port, multi_jobs,
                              concurrency=concurrency, timeout=timeout)
        topology = _fleet_doc(host, fleet.port)

    speedup = (round(multi_cold["throughput_rps"]
                     / single["throughput_rps"], 3)
               if single["throughput_rps"] else None)
    return {
        "replicas": replicas,
        "requests_per_run": requests,
        "concurrency": concurrency,
        "single_replica_cold": single,
        "multi_replica_cold": multi_cold,
        "multi_replica_warm": multi_warm,
        "cold_speedup": speedup,
        "warm_vs_cold": (round(multi_warm["throughput_rps"]
                               / multi_cold["throughput_rps"], 3)
                         if multi_cold["throughput_rps"] else None),
        "cas": topology.get("cas"),
        "routing": topology.get("routing"),
    }


def run_bench(model_path: str, output: str = "BENCH_serving.json", *,
              replicas: int = 2, requests: int = 12, concurrency: int = 4,
              workers: Optional[int] = None, timeout: float = 300.0,
              target_speedup: float = 1.6) -> Dict[str, Any]:
    """Measure, merge into ``output`` under ``"fleet"``, apply the gate.

    Returns the results section; raises ``SystemExit`` on a hard-gate
    miss (``REPRO_BENCH_STRICT=1``), prints a ``::warning::`` otherwise.
    """
    results = measure_fleet(model_path, replicas=replicas,
                            requests=requests, concurrency=concurrency,
                            workers=workers, timeout=timeout)
    doc: Dict[str, Any] = {}
    if os.path.exists(output):
        try:
            with open(output, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, ValueError):
            doc = {}
    doc["fleet"] = results
    with open(output, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)

    for run in ("single_replica_cold", "multi_replica_cold",
                "multi_replica_warm"):
        if results[run]["failed"]:
            raise SystemExit(
                f"fleet bench: {results[run]['failed']} failed requests "
                f"in {run}: {results[run]['failures']}")
    speedup = results["cold_speedup"] or 0.0
    if speedup < target_speedup:
        message = (f"fleet cold-path speedup {speedup} < target "
                   f"{target_speedup} with {replicas} replicas "
                   f"(CPU-bound compiles need real cores to scale)")
        if os.environ.get("REPRO_BENCH_STRICT", "") == "1":
            raise SystemExit(f"fleet bench: {message}")
        print(f"::warning::{message}", flush=True)
    return results
