"""Fleet-shared network CAS: one cache tier above every replica's disk.

The execution engine already never redoes work *within* a process tree,
because every stage result lands in the persistent content-addressed
:class:`~repro.engine.cache.ContentStore`.  A replica fleet breaks that
economy: each replica has its own cache directory, so the same source
digest compiles cold once per replica.  This module closes the gap with
a tiny content-addressed cache service that the front door hosts and
every replica (and every pool worker forked by a replica) consults:

:class:`CASServer`
    An asyncio server holding a byte-bounded in-memory LRU of opaque
    blobs keyed by the engine's existing store digests.  It runs on the
    front door's event loop, so the fleet needs no extra process.
:class:`CASClient`
    A blocking, reconnecting client (one per process per address —
    see :func:`shared_client`; sockets never survive a ``fork``).
:class:`TieredStore`
    A drop-in :class:`ContentStore` whose misses consult the fleet tier
    and whose writes publish to it — the engine builds one whenever
    ``EngineConfig.cas_addr`` (or ``REPRO_CAS_ADDR``) is set.  Cold
    compile on replica A, warm hit on replica B.

Wire protocol (version 1), length-prefixed binary over TCP::

    request  := magic   b"RC"
                version u8   (1)
                op      u8   (1=GET 2=PUT 3=HAS 4=STATS)
                keylen  u16  big-endian
                key     bytes[keylen]      # "<stage>:<digest>", UTF-8
                vallen  u32  big-endian
                value   bytes[vallen]      # empty except for PUT

    response := status  u8   (0=NOT_FOUND 1=OK 2=ERROR)
                vallen  u32  big-endian
                value   bytes[vallen]

``STATS`` answers with a JSON *artifact envelope* (kind
``repro-cas-stats``) — the same framing every other persisted artifact
uses, validated by :func:`repro.schema.validate_envelope` on the client
side.  Failure semantics are strictly best-effort: a dead or unreachable
CAS degrades every :class:`TieredStore` to its local tier (counted in
``cas_errors``), never into a request failure.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import os
import pickle
import shutil
import socket
import tempfile
import threading
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

from repro.engine.cache import ContentStore
from repro.obs.metrics import METRICS
from repro.schema import (
    KindSpec,
    make_envelope,
    register_kind,
    validate_envelope,
)

MAGIC = b"RC"
PROTOCOL_VERSION = 1

OP_GET = 1
OP_PUT = 2
OP_HAS = 3
OP_STATS = 4

STATUS_NOT_FOUND = 0
STATUS_OK = 1
STATUS_ERROR = 2

#: Per-entry value bound: a stage blob bigger than this is not worth
#: shipping around the fleet (and protects the server from hostile
#: frames claiming multi-GB bodies).
MAX_VALUE_BYTES = 64 * 1024 * 1024
MAX_KEY_BYTES = 1024

CAS_STATS_KIND = "repro-cas-stats"

register_kind(KindSpec(
    name=CAS_STATS_KIND,
    schema_version=1,
    flat_schema={
        "type": "object",
        "required": ["kind", "schema_version", "entries", "bytes",
                     "max_bytes", "counters"],
        "properties": {
            "kind": {"const": CAS_STATS_KIND},
            "schema_version": {"const": 1},
            "entries": {"type": "integer"},
            "bytes": {"type": "integer"},
            "max_bytes": {"type": "integer"},
            "disk_entries": {"type": "integer"},
            "disk_bytes": {"type": "integer"},
            "counters": {"type": "object"},
        },
    },
))

_CAS_HITS = METRICS.counter(
    "repro_fleet_cas_hits_total", "Fleet CAS GETs answered from the store.")
_CAS_MISSES = METRICS.counter(
    "repro_fleet_cas_misses_total", "Fleet CAS GETs that found nothing.")
_CAS_PUTS = METRICS.counter(
    "repro_fleet_cas_puts_total", "Blobs published to the fleet CAS.")
_CAS_EVICTIONS = METRICS.counter(
    "repro_fleet_cas_evictions_total", "Blobs evicted to stay under budget.")
_CAS_SPILLS = METRICS.counter(
    "repro_fleet_cas_spills_total",
    "Evicted blobs spilled to the disk tier instead of dropped.")
_CAS_DISK_HITS = METRICS.counter(
    "repro_fleet_cas_disk_hits_total",
    "Fleet CAS GETs answered from the disk spill tier.")
_CAS_BYTES = METRICS.gauge(
    "repro_fleet_cas_bytes", "Bytes currently held by the fleet CAS.")
_CAS_ENTRIES = METRICS.gauge(
    "repro_fleet_cas_entries", "Blobs currently held by the fleet CAS.")


def parse_addr(addr: str) -> Tuple[str, int]:
    """``host:port`` → ``(host, port)`` with a diagnosable error."""
    host, sep, port = addr.rpartition(":")
    if not sep or not host:
        raise ValueError(f"CAS address must be host:port, got {addr!r}")
    try:
        return host, int(port)
    except ValueError:
        raise ValueError(f"bad CAS port in {addr!r}") from None


class CASServer:
    """Byte-bounded in-memory blob store behind the wire protocol above.

    Single-threaded by construction — all mutation happens on the owning
    event loop — so there is no locking.  Eviction is LRU by *bytes* —
    the memory tier never holds more than ``max_bytes`` of values — but
    evicted blobs **spill to a disk tier** instead of vanishing (unless
    ``spill=False``): under budget pressure a hot entry costs one file
    read on its next GET, never a fleet-wide re-compile.  A disk hit is
    promoted back into memory (which may spill something colder).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 max_bytes: int = 256 * 1024 * 1024,
                 spill: bool = True, spill_dir: Optional[str] = None):
        if max_bytes < 1:
            raise ValueError("max_bytes must be positive")
        self.host = host
        self.config_port = port
        self.max_bytes = max_bytes
        self.spill = spill
        self.port: Optional[int] = None
        self._data: "OrderedDict[str, bytes]" = OrderedDict()
        self.bytes_stored = 0
        self._disk: Dict[str, int] = {}       # key → spilled blob size
        self.disk_bytes = 0
        self._spill_dir = spill_dir
        self._owns_spill_dir = spill and spill_dir is None
        self.counters: Dict[str, int] = {
            "gets": 0, "hits": 0, "misses": 0, "puts": 0, "has": 0,
            "evictions": 0, "spills": 0, "disk_hits": 0, "errors": 0,
            "connections": 0,
        }
        self._server: Optional[asyncio.AbstractServer] = None

    @property
    def addr(self) -> str:
        return f"{self.host}:{self.port}"

    # -- lifecycle ----------------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.config_port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._owns_spill_dir and self._spill_dir \
                and os.path.isdir(self._spill_dir):
            shutil.rmtree(self._spill_dir, ignore_errors=True)
            self._spill_dir = None
            self._disk.clear()
            self.disk_bytes = 0

    # -- disk tier ----------------------------------------------------------
    def _path(self, key: str) -> str:
        # Keys are engine store keys ("<stage>:<digest>"); hash them so
        # the filename is always filesystem-safe and length-bounded.
        name = hashlib.sha256(key.encode("utf-8")).hexdigest()
        return os.path.join(self._spill_dir, name)

    def _spill(self, key: str, value: bytes) -> None:
        if not self.spill:
            return
        if self._spill_dir is None:
            self._spill_dir = tempfile.mkdtemp(prefix="repro-cas-spill-")
        try:
            with open(self._path(key), "wb") as fh:
                fh.write(value)
        except OSError:                       # a full disk degrades to LRU
            self.counters["errors"] += 1
            return
        old = self._disk.pop(key, None)
        if old is not None:
            self.disk_bytes -= old
        self._disk[key] = len(value)
        self.disk_bytes += len(value)
        self.counters["spills"] += 1
        if METRICS.enabled:
            _CAS_SPILLS.inc()

    def _disk_get(self, key: str) -> Optional[bytes]:
        size = self._disk.get(key)
        if size is None:
            return None
        try:
            with open(self._path(key), "rb") as fh:
                return fh.read()
        except OSError:
            self._disk.pop(key, None)
            self.disk_bytes -= size
            self.counters["errors"] += 1
            return None

    def _disk_drop(self, key: str) -> None:
        size = self._disk.pop(key, None)
        if size is None:
            return
        self.disk_bytes -= size
        try:
            os.unlink(self._path(key))
        except OSError:
            pass

    # -- the store ----------------------------------------------------------
    def _get(self, key: str) -> Optional[bytes]:
        self.counters["gets"] += 1
        value = self._data.get(key)
        if value is not None:
            self._data.move_to_end(key)
            self.counters["hits"] += 1
            if METRICS.enabled:
                _CAS_HITS.inc()
            return value
        value = self._disk_get(key)
        if value is not None:
            # Promote: hot again, so it belongs in memory (this may
            # spill something colder to make room).
            self._insert(key, value)
            self._disk_drop(key)
            self.counters["hits"] += 1
            self.counters["disk_hits"] += 1
            if METRICS.enabled:
                _CAS_HITS.inc()
                _CAS_DISK_HITS.inc()
            return value
        self.counters["misses"] += 1
        if METRICS.enabled:
            _CAS_MISSES.inc()
        return None

    def _insert(self, key: str, value: bytes) -> None:
        old = self._data.pop(key, None)
        if old is not None:
            self.bytes_stored -= len(old)
        self._data[key] = value
        self.bytes_stored += len(value)
        while self.bytes_stored > self.max_bytes and len(self._data) > 1:
            evicted_key, evicted = self._data.popitem(last=False)
            self.bytes_stored -= len(evicted)
            self.counters["evictions"] += 1
            if METRICS.enabled:
                _CAS_EVICTIONS.inc()
            self._spill(evicted_key, evicted)
        if METRICS.enabled:
            _CAS_BYTES.set(self.bytes_stored)
            _CAS_ENTRIES.set(len(self._data))

    def _put(self, key: str, value: bytes) -> None:
        self._insert(key, value)
        self._disk_drop(key)                  # memory copy is authoritative
        self.counters["puts"] += 1
        if METRICS.enabled:
            _CAS_PUTS.inc()

    def stats(self) -> Dict[str, Any]:
        """Flat stats document (``repro-cas-stats`` kind)."""
        return {
            "kind": CAS_STATS_KIND,
            "schema_version": 1,
            "entries": len(self._data),
            "bytes": self.bytes_stored,
            "max_bytes": self.max_bytes,
            "disk_entries": len(self._disk),
            "disk_bytes": self.disk_bytes,
            "counters": dict(self.counters),
        }

    def _apply(self, op: int, key: str, value: bytes,
               ) -> Tuple[int, bytes]:
        if op == OP_GET:
            blob = self._get(key)
            if blob is None:
                return STATUS_NOT_FOUND, b""
            return STATUS_OK, blob
        if op == OP_PUT:
            self._put(key, value)
            return STATUS_OK, b""
        if op == OP_HAS:
            self.counters["has"] += 1
            present = key in self._data or key in self._disk
            return (STATUS_OK, b"\x01") if present \
                else (STATUS_NOT_FOUND, b"")
        if op == OP_STATS:
            envelope = make_envelope(self.stats())
            return STATUS_OK, json.dumps(envelope,
                                         sort_keys=True).encode("utf-8")
        self.counters["errors"] += 1
        return STATUS_ERROR, f"unknown op {op}".encode("utf-8")

    # -- wire ---------------------------------------------------------------
    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        self.counters["connections"] += 1
        try:
            while True:
                head = await reader.readexactly(4)
                if head[:2] != MAGIC or head[2] != PROTOCOL_VERSION:
                    self.counters["errors"] += 1
                    writer.write(bytes([STATUS_ERROR])
                                 + (0).to_bytes(4, "big"))
                    await writer.drain()
                    return                    # unsynced stream: drop it
                op = head[3]
                key_len = int.from_bytes(await reader.readexactly(2), "big")
                if key_len > MAX_KEY_BYTES:
                    self.counters["errors"] += 1
                    return
                key = (await reader.readexactly(key_len)).decode(
                    "utf-8", "replace")
                value_len = int.from_bytes(await reader.readexactly(4),
                                           "big")
                if value_len > MAX_VALUE_BYTES:
                    self.counters["errors"] += 1
                    return
                value = (await reader.readexactly(value_len)
                         if value_len else b"")
                status, payload = self._apply(op, key, value)
                writer.write(bytes([status])
                             + len(payload).to_bytes(4, "big") + payload)
                await writer.drain()
        except (asyncio.IncompleteReadError, ConnectionResetError,
                BrokenPipeError, TimeoutError):
            pass                              # client went away
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass


class BackgroundCAS:
    """A :class:`CASServer` on its own thread + loop (tests, benches)."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 max_bytes: int = 256 * 1024 * 1024, spill: bool = True):
        self.server = CASServer(host, port, max_bytes, spill=spill)
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._error: Optional[BaseException] = None

    @property
    def addr(self) -> str:
        return self.server.addr

    def start(self) -> "BackgroundCAS":
        self._thread = threading.Thread(target=self._run,
                                        name="repro-fleet-cas", daemon=True)
        self._thread.start()
        self._ready.wait(timeout=60)
        if self._error is not None:
            raise self._error
        if self.server.port is None:
            raise RuntimeError("CAS server failed to start within 60s")
        return self

    def stop(self) -> None:
        if self._loop is not None and self._stop_event is not None \
                and not self._loop.is_closed():
            self._loop.call_soon_threadsafe(self._stop_event.set)
        if self._thread is not None:
            self._thread.join(timeout=30)
            self._thread = None

    def __enter__(self) -> "BackgroundCAS":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:
            if self._error is None:
                self._error = exc
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        try:
            await self.server.start()
        except BaseException as exc:
            self._error = exc
            self._ready.set()
            return
        self._ready.set()
        await self._stop_event.wait()
        await self.server.stop()


class CASClient:
    """Blocking client for one CAS address, safe across threads.

    The socket reconnects once per call on failure; after that the
    error propagates to the caller (:class:`TieredStore` treats any
    ``OSError`` as "fleet tier unavailable" and degrades to local).
    """

    def __init__(self, addr: str, timeout: float = 10.0):
        self.addr = addr
        self.host, self.port = parse_addr(addr)
        self.timeout = timeout
        #: Guard against sharing one socket across a fork: clients are
        #: minted per process (see :func:`shared_client`).
        self.pid = os.getpid()
        self._lock = threading.Lock()
        self._sock: Optional[socket.socket] = None

    # -- plumbing -----------------------------------------------------------
    def _close_locked(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def close(self) -> None:
        with self._lock:
            self._close_locked()

    def _recv_exact(self, n: int) -> bytes:
        chunks = []
        remaining = n
        while remaining:
            chunk = self._sock.recv(min(remaining, 1 << 20))
            if not chunk:
                raise ConnectionResetError("CAS server closed mid-frame")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def _request(self, op: int, key: bytes = b"",
                 value: bytes = b"") -> Tuple[int, bytes]:
        frame = (MAGIC + bytes([PROTOCOL_VERSION, op])
                 + len(key).to_bytes(2, "big") + key
                 + len(value).to_bytes(4, "big") + value)
        with self._lock:
            for attempt in (0, 1):
                try:
                    if self._sock is None:
                        self._sock = socket.create_connection(
                            (self.host, self.port), timeout=self.timeout)
                        self._sock.setsockopt(socket.IPPROTO_TCP,
                                              socket.TCP_NODELAY, 1)
                    self._sock.sendall(frame)
                    head = self._recv_exact(5)
                    status = head[0]
                    length = int.from_bytes(head[1:5], "big")
                    payload = self._recv_exact(length) if length else b""
                    return status, payload
                except OSError:
                    self._close_locked()
                    if attempt:
                        raise
            raise ConnectionError("unreachable")      # pragma: no cover

    # -- operations ---------------------------------------------------------
    def get(self, key: str) -> Optional[bytes]:
        status, payload = self._request(OP_GET, key.encode("utf-8"))
        return payload if status == STATUS_OK else None

    def put(self, key: str, value: bytes) -> bool:
        if len(value) > MAX_VALUE_BYTES:
            return False                      # too big to bother the fleet
        status, _payload = self._request(OP_PUT, key.encode("utf-8"), value)
        return status == STATUS_OK

    def has(self, key: str) -> bool:
        status, _payload = self._request(OP_HAS, key.encode("utf-8"))
        return status == STATUS_OK

    def stats(self) -> Dict[str, Any]:
        """Server stats, validated through the artifact-envelope API."""
        status, payload = self._request(OP_STATS)
        if status != STATUS_OK:
            raise ConnectionError(f"CAS STATS answered status {status}")
        return validate_envelope(json.loads(payload.decode("utf-8")))


#: One client per (process, address): forked pool workers must never
#: share the parent's socket, and replica threads should share one
#: connection instead of opening one per chunk.
_CLIENTS: Dict[str, CASClient] = {}
_CLIENTS_LOCK = threading.Lock()


def shared_client(addr: str, timeout: float = 10.0) -> CASClient:
    with _CLIENTS_LOCK:
        client = _CLIENTS.get(addr)
        if client is None or client.pid != os.getpid():
            client = CASClient(addr, timeout=timeout)
            _CLIENTS[addr] = client
        return client


class TieredStore(ContentStore):
    """Local disk tier in front of the fleet CAS tier.

    Reads: local hit wins; a local miss consults the fleet, and a fleet
    hit is written through to local disk so the *next* read (and every
    forked worker sharing the directory) stays local.  Writes: local
    first (correctness never depends on the network), then published to
    the fleet best-effort.  Any CAS failure counts in ``cas_errors``
    and degrades the store to plain local behavior.
    """

    def __init__(self, root: str, cas_addr: str,
                 version: Optional[str] = None):
        super().__init__(root, version)
        self.cas_addr = cas_addr
        self._client = shared_client(cas_addr)
        self.cas_counters: Dict[str, int] = {
            "cas_hits": 0, "cas_misses": 0, "cas_puts": 0, "cas_errors": 0,
        }

    def _cas_key(self, stage: str, key: str) -> str:
        return f"{stage}:{key}"

    def get(self, stage: str, key: str) -> Tuple[bool, Any]:
        found, value = super().get(stage, key)
        if found:
            return True, value
        try:
            blob = self._client.get(self._cas_key(stage, key))
        except OSError:
            self.cas_counters["cas_errors"] += 1
            return False, None
        if blob is None:
            self.cas_counters["cas_misses"] += 1
            return False, None
        try:
            value = pickle.loads(blob)
        except Exception:
            # A corrupt fleet blob is a miss, same policy as local disk.
            self.cas_counters["cas_errors"] += 1
            return False, None
        self.cas_counters["cas_hits"] += 1
        super().put(stage, key, value)        # warm the local tier
        return True, value

    def put(self, stage: str, key: str, value: Any) -> None:
        super().put(stage, key, value)
        try:
            blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            self.cas_counters["cas_errors"] += 1
            return
        try:
            if self._client.put(self._cas_key(stage, key), blob):
                self.cas_counters["cas_puts"] += 1
        except OSError:
            self.cas_counters["cas_errors"] += 1

    def cas_stats(self) -> Dict[str, Any]:
        return {"addr": self.cas_addr, **self.cas_counters}
