"""IR2vec → normalize → GA feature selection → decision tree (Fig. 4)."""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.embeddings.normalize import normalize_features
from repro.ml.decision_tree import DecisionTreeClassifier
from repro.ml.genetic import GAConfig, GeneticFeatureSelector


class IR2vecModel:
    """The paper's embedding-based detector.

    Parameters mirror the knobs of Section V-A: ``normalization`` in
    {'none', 'vector', 'index'}, ``use_ga`` toggles the GA feature
    selection (Table V), ``ga_config`` scales the GA (paper() vs fast()).
    """

    def __init__(self, normalization: str = "vector", use_ga: bool = True,
                 ga_config: Optional[GAConfig] = None,
                 fixed_features: Optional[Sequence[int]] = None):
        self.normalization = normalization
        self.use_ga = use_ga
        self.ga_config = ga_config or GAConfig.fast()
        #: When set, these coordinates are used verbatim and the GA is
        #: skipped — the paper's seed study reuses GA features selected on
        #: one embedding seed against vectors generated with another.
        self.fixed_features = (tuple(fixed_features)
                               if fixed_features is not None else None)
        self.selected: Optional[Tuple[int, ...]] = None
        self.tree: Optional[DecisionTreeClassifier] = None
        self._train_reference: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ fit
    def fit(self, X: np.ndarray, y: Sequence[str]) -> "IR2vecModel":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y)
        self._train_reference = X
        Xn = normalize_features(X, self.normalization)
        if self.fixed_features is not None:
            self.selected = self.fixed_features
        elif self.use_ga:
            selector = GeneticFeatureSelector(self.ga_config)
            self.selected = selector.select(Xn, y)
        else:
            self.selected = tuple(range(X.shape[1]))
        self.tree = DecisionTreeClassifier()
        self.tree.fit(Xn[:, list(self.selected)], y)
        return self

    # ------------------------------------------------------------------ predict
    def predict(self, X: np.ndarray) -> np.ndarray:
        assert self.tree is not None and self.selected is not None, "not fitted"
        X = np.asarray(X, dtype=np.float64)
        Xn = normalize_features(X, self.normalization,
                                reference=self._train_reference)
        return self.tree.predict(Xn[:, list(self.selected)])

    def score(self, X: np.ndarray, y: Sequence[str]) -> float:
        return float(np.mean(self.predict(X) == np.asarray(y)))
