"""The paper's GNN pipeline (Section IV-B, Fig. 5).

ProGraML graphs → 3 hetero GATv2 layers (128, 64, 32) → adaptive
(global) max pooling → 2 fully connected layers → softmax over classes.
Cross-entropy loss, Adam with lr 4e-4, 10 epochs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.graphs.programl import EDGE_TYPES, ProgramGraph
from repro.graphs.vocab import GraphVocabulary, build_vocabulary
from repro.nn.batching import MERGED_EDGE_TYPE, GraphBatch, batch_graphs
from repro.nn.gnn import (
    GATv2Conv,
    HeteroGATLayer,
    global_max_pool,
    global_mean_pool,
)
from repro.nn.layers import Embedding, Linear, Module
from repro.nn.loss import cross_entropy, softmax_probabilities
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor, relu


class _GNNNetwork(Module):
    def __init__(self, vocab_size: int, n_classes: int, rng: np.random.Generator,
                 emb_dim: int = 64, hidden: Sequence[int] = (128, 64, 32),
                 pooling: str = "max", attention: bool = True,
                 hetero: bool = True):
        self.embedding = Embedding(vocab_size, emb_dim, rng)
        self.type_embedding = Embedding(3, emb_dim, rng)   # control/var/const
        edge_types = EDGE_TYPES if hetero else (MERGED_EDGE_TYPE,)
        dims = [emb_dim, *hidden]
        self.layers = [
            HeteroGATLayer(dims[i], dims[i + 1], edge_types, rng,
                           attention=attention)
            for i in range(len(hidden))
        ]
        self.fc1 = Linear(hidden[-1], hidden[-1], rng)
        self.fc2 = Linear(hidden[-1], n_classes, rng)
        self.pool = global_max_pool if pooling == "max" else global_mean_pool

    def __call__(self, batch: GraphBatch) -> Tensor:
        x = self.embedding(batch.node_index) + self.type_embedding(batch.node_type)
        for layer in self.layers:
            x = layer(x, batch.edges, batch.src_ctx, batch.dst_ctx)
        pooled = self.pool(x, batch.graph_ids, batch.num_graphs, batch.pool_ctx)
        return self.fc2(relu(self.fc1(pooled)))


class GNNModel:
    """Trainable wrapper with the paper's hyperparameters as defaults.

    ``pooling`` ('max' | 'mean'), ``attention`` and ``hetero`` expose the
    architecture choices the paper fixed (adaptive max pooling, GATv2
    attention, heterogeneous edge types) for the design-ablation study.
    """

    def __init__(self, epochs: int = 10, lr: float = 4e-4, batch_size: int = 32,
                 emb_dim: int = 64, hidden: Sequence[int] = (128, 64, 32),
                 seed: int = 0, verbose: bool = False, pooling: str = "max",
                 attention: bool = True, hetero: bool = True):
        if pooling not in ("max", "mean"):
            raise ValueError("pooling must be 'max' or 'mean'")
        self.epochs = epochs
        self.lr = lr
        self.batch_size = batch_size
        self.emb_dim = emb_dim
        self.hidden = tuple(hidden)
        self.seed = seed
        self.verbose = verbose
        self.pooling = pooling
        self.attention = attention
        self.hetero = hetero
        self.network: Optional[_GNNNetwork] = None
        self.vocab: Optional[GraphVocabulary] = None
        self.classes_: Optional[np.ndarray] = None

    def _batch(self, graphs: Sequence[ProgramGraph]) -> GraphBatch:
        return batch_graphs(graphs, self.vocab, merge_edges=not self.hetero)

    def fit(self, graphs: List[ProgramGraph], y: Sequence[str],
            vocab: Optional[GraphVocabulary] = None) -> "GNNModel":
        rng = np.random.default_rng(self.seed)
        self.vocab = vocab or build_vocabulary(graphs)
        labels = np.asarray(y)
        self.classes_, y_enc = np.unique(labels, return_inverse=True)
        self.network = _GNNNetwork(len(self.vocab), len(self.classes_), rng,
                                   self.emb_dim, self.hidden,
                                   pooling=self.pooling,
                                   attention=self.attention,
                                   hetero=self.hetero)
        optimizer = Adam(self.network.parameters(), lr=self.lr)
        n = len(graphs)
        # Fixed batch composition (contexts are precomputed per batch and
        # reused every epoch); only the batch *order* is reshuffled.
        order = rng.permutation(n)
        batches = []
        for start in range(0, n, self.batch_size):
            idx = order[start:start + self.batch_size]
            batches.append((self._batch([graphs[i] for i in idx]),
                            y_enc[idx], len(idx)))
        for epoch in range(self.epochs):
            total_loss = 0.0
            for b in rng.permutation(len(batches)):
                batch, labels, size = batches[b]
                logits = self.network(batch)
                loss = cross_entropy(logits, labels)
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                total_loss += float(loss.data) * size
            if self.verbose:
                print(f"  epoch {epoch + 1}/{self.epochs}: loss {total_loss / n:.4f}")
        return self

    def predict_logits(self, graphs: List[ProgramGraph]) -> np.ndarray:
        assert self.network is not None and self.vocab is not None, "not fitted"
        outputs = []
        for start in range(0, len(graphs), self.batch_size):
            batch = self._batch(graphs[start:start + self.batch_size])
            outputs.append(self.network(batch).data)
        return np.concatenate(outputs) if outputs else np.zeros((0, len(self.classes_)))

    def predict(self, graphs: List[ProgramGraph]) -> np.ndarray:
        assert self.classes_ is not None
        logits = self.predict_logits(graphs)
        return self.classes_[logits.argmax(axis=1)]

    def predict_proba(self, graphs: List[ProgramGraph]) -> np.ndarray:
        return softmax_probabilities(self.predict_logits(graphs))

    def score(self, graphs: List[ProgramGraph], y: Sequence[str]) -> float:
        return float(np.mean(self.predict(graphs) == np.asarray(y)))
