"""Dataset → feature extraction (compilation, embeddings, graphs), cached.

Feature extraction dominates experiment wall-clock, and the paper reuses
the same features across many scenarios (Intra/Mix/Cross share vectors),
so everything here is memoized on a *content digest* of the dataset —
every sample name and source is hashed, so two datasets that differ in
any sample (even one in the middle) never share a cache entry.

The actual per-sample work runs on the corpus execution engine
(:mod:`repro.engine`): pass ``engine=`` to fan compilation/featurization
out over a worker pool and/or back it with the persistent on-disk
content-addressed store; the process-wide default engine is used
otherwise.  The in-memory memo here stays as the fastest tier — one
dict lookup for a whole dataset — with the engine's store underneath it
as the cross-process, cross-run tier.

``featurize_dataset`` is the generic entry point: it accepts any object
satisfying the :class:`repro.pipeline.stages.Featurizer` protocol and
caches its output per (featurizer identity, config, dataset digest, opt
level).  The legacy helpers ``ir2vec_feature_matrix`` / ``graph_dataset``
are thin wrappers over the built-in featurizers.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.datasets.loader import Dataset
from repro.engine import ExecutionEngine, default_engine
from repro.ir.module import Module

_MODULE_CACHE: Dict[Tuple, List[Module]] = {}
_FEATURE_CACHE: Dict[Tuple, Any] = {}


def _dataset_key(dataset: Dataset) -> Tuple:
    """Cache key covering *all* sample names and sources.

    Uses the dataset's :meth:`~repro.datasets.loader.Dataset.content_digest`
    — the same digest the evaluation-matrix artifact records as per-cell
    provenance — so datasets that agree on name, length, and boundary
    samples but differ somewhere in the middle hash differently.
    """
    return (dataset.name, len(dataset), dataset.content_digest())


def compile_dataset(dataset: Dataset, opt_level: str = "O0",
                    engine: Optional[ExecutionEngine] = None) -> List[Module]:
    """Compile every sample; results cached per (dataset, opt level)."""
    return _compile_dataset(_dataset_key(dataset), dataset, opt_level,
                            engine if engine is not None else default_engine())


def _compile_dataset(ds_key: Tuple, dataset: Dataset, opt_level: str,
                     engine: ExecutionEngine) -> List[Module]:
    from repro.pipeline.stages import CFrontend

    key = (ds_key, opt_level)
    if key not in _MODULE_CACHE:
        _MODULE_CACHE[key] = engine.compile_sources(
            CFrontend(opt_level=opt_level),
            ((s.name, s.source) for s in dataset.samples))
    return _MODULE_CACHE[key]


def featurize_dataset(featurizer: Any, dataset: Dataset,
                      opt_level: Optional[str] = None,
                      engine: Optional[ExecutionEngine] = None) -> Any:
    """Featurize a whole dataset through the shared compile/feature cache.

    ``featurizer`` is any object with ``transform(modules)`` and an
    ``opt_level`` attribute (see :mod:`repro.pipeline.stages`);
    ``opt_level`` overrides the featurizer's preferred IR level.

    Results are memoized per (featurizer type, config repr, dataset
    content digest, opt level); on a miss, the per-sample work runs on
    ``engine`` (default: the process-wide engine), which consults its
    persistent store before compiling or featurizing anything.  A
    featurizer without a ``config`` attribute has no cacheable identity —
    two differently-parameterized instances would collide — so those
    transform fresh every call (compiled modules still come from the
    shared module cache).
    """
    from repro.pipeline.stages import CFrontend

    level = opt_level or getattr(featurizer, "opt_level", "O0")
    eng = engine if engine is not None else default_engine()
    ds_key = _dataset_key(dataset)       # hash the corpus exactly once
    config = getattr(featurizer, "config", None)
    if config is None:
        return featurizer.transform(
            _compile_dataset(ds_key, dataset, level, eng))
    key = ((type(featurizer).__qualname__,
            getattr(featurizer, "name", type(featurizer).__name__),
            repr(config)),
           ds_key, level)
    if key not in _FEATURE_CACHE:
        _FEATURE_CACHE[key] = eng.featurize_samples(
            CFrontend(opt_level=level), featurizer, dataset.samples)
    return _FEATURE_CACHE[key]


def ir2vec_feature_matrix(dataset: Dataset, opt_level: str = "Os",
                          seed: int = 42,
                          engine: Optional[ExecutionEngine] = None,
                          ) -> np.ndarray:
    """(n_samples, 512) concat(symbolic, flow-aware) embedding matrix."""
    from repro.pipeline.stages import IR2VecFeaturizer

    return featurize_dataset(
        IR2VecFeaturizer(opt_level=opt_level, seed=seed), dataset,
        engine=engine)


def graph_dataset(dataset: Dataset, opt_level: str = "O0",
                  engine: Optional[ExecutionEngine] = None) -> List[Any]:
    """ProGraML graphs for every sample (GNN input; paper uses -O0)."""
    from repro.pipeline.stages import ProGraMLFeaturizer

    return featurize_dataset(
        ProGraMLFeaturizer(opt_level=opt_level), dataset, engine=engine)


def clear_caches() -> None:
    """Drop every in-process feature/compile memo, including the
    frontend's (the engine's persistent on-disk store is left alone; use
    ``repro cache clear`` or :meth:`ContentStore.clear` for that)."""
    from repro.pipeline.stages import clear_compile_cache

    _MODULE_CACHE.clear()
    _FEATURE_CACHE.clear()
    clear_compile_cache()
