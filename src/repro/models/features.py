"""Dataset → feature extraction (compilation, embeddings, graphs), cached.

Feature extraction dominates experiment wall-clock, and the paper reuses
the same features across many scenarios (Intra/Mix/Cross share vectors),
so everything here is memoized on (dataset name, sample names, options).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.datasets.loader import Dataset
from repro.embeddings.ir2vec import default_encoder
from repro.frontend import compile_c
from repro.graphs.programl import ProgramGraph, build_program_graph
from repro.ir.module import Module

_MODULE_CACHE: Dict[Tuple, List[Module]] = {}
_FEATURE_CACHE: Dict[Tuple, np.ndarray] = {}
_GRAPH_CACHE: Dict[Tuple, List[ProgramGraph]] = {}


def _dataset_key(dataset: Dataset) -> Tuple:
    return (dataset.name, len(dataset), tuple(s.name for s in dataset.samples[:5]),
            tuple(s.name for s in dataset.samples[-5:]))


def compile_dataset(dataset: Dataset, opt_level: str = "O0") -> List[Module]:
    """Compile every sample; results cached per (dataset, opt level)."""
    key = (_dataset_key(dataset), opt_level)
    if key not in _MODULE_CACHE:
        _MODULE_CACHE[key] = [
            compile_c(s.source, s.name, opt_level, verify=False)
            for s in dataset.samples
        ]
    return _MODULE_CACHE[key]


def ir2vec_feature_matrix(dataset: Dataset, opt_level: str = "Os",
                          seed: int = 42) -> np.ndarray:
    """(n_samples, 512) concat(symbolic, flow-aware) embedding matrix."""
    key = (_dataset_key(dataset), opt_level, seed)
    if key not in _FEATURE_CACHE:
        encoder = default_encoder(seed)
        modules = compile_dataset(dataset, opt_level)
        _FEATURE_CACHE[key] = np.stack([encoder.encode(m) for m in modules])
    return _FEATURE_CACHE[key]


def graph_dataset(dataset: Dataset, opt_level: str = "O0") -> List[ProgramGraph]:
    """ProGraML graphs for every sample (GNN input; paper uses -O0)."""
    key = (_dataset_key(dataset), opt_level)
    if key not in _GRAPH_CACHE:
        modules = compile_dataset(dataset, opt_level)
        _GRAPH_CACHE[key] = [build_program_graph(m) for m in modules]
    return _GRAPH_CACHE[key]


def clear_caches() -> None:
    _MODULE_CACHE.clear()
    _FEATURE_CACHE.clear()
    _GRAPH_CACHE.clear()
