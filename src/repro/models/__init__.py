"""End-to-end model pipelines: IR2vec+DT and the ProGraML GNN."""

from repro.models.features import (
    compile_dataset,
    featurize_dataset,
    graph_dataset,
    ir2vec_feature_matrix,
)
from repro.models.ir2vec_model import IR2vecModel
from repro.models.gnn_model import GNNModel

__all__ = [
    "IR2vecModel", "GNNModel",
    "ir2vec_feature_matrix", "graph_dataset", "compile_dataset",
    "featurize_dataset",
]
